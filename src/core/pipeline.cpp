#include "core/pipeline.hpp"

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <sstream>

namespace bw::core {

AnalysisReport run_pipeline(const Dataset& dataset,
                            const AnalysisConfig& config) {
  AnalysisReport report;
  report.summary = dataset.summary();
  report.events = merge_events(dataset.blackhole_updates(),
                               dataset.period().end, config.merge_delta);
  report.pre = compute_pre_rtbh(dataset, report.events, config.pre);
  report.drop = compute_drop_rates(dataset, report.events, config.drop);
  report.protocols =
      compute_protocol_mix(dataset, report.events, report.pre, config.protocols);
  report.filtering = compute_filtering(dataset, report.events, report.pre);
  report.participation =
      compute_participation(dataset, report.events, report.pre);
  report.ports = compute_port_stats(dataset, report.events, config.ports);
  report.radviz = radviz_projection(report.ports, config.ports.min_days);
  report.collateral = compute_collateral(dataset, report.events, report.ports,
                                         config.sampling_rate);
  report.classes =
      classify_events(dataset, report.events, report.pre, config.classify);
  return report;
}

namespace {

std::string config_fingerprint(const gen::ScenarioConfig& cfg) {
  std::ostringstream os;
  os << "v5|" << cfg.sampling_rate << '|' << cfg.scale << '|' << cfg.seed
     << '|' << cfg.period.begin << '|'
     << cfg.period.end << '|' << cfg.members << '|' << cfg.blackholer_members
     << '|' << cfg.victim_origin_as << '|' << cfg.amplifier_origins << '|'
     << cfg.amplifiers << '|' << cfg.server_hosts << '|' << cfg.client_hosts
     << '|' << cfg.idle_victims << '|' << cfg.rtbh_events << '|'
     << cfg.attack_fraction << '|' << cfg.steady_fraction << '|'
     << cfg.zombies << '|' << cfg.squatting_prefixes << '|'
     << cfg.content_blocking << '|' << cfg.attack_packets_log_mean << '|'
     << cfg.server_daily_packets << '|' << cfg.client_daily_packets;
  const std::size_t h = std::hash<std::string>{}(os.str());
  std::ostringstream name;
  name << "scenario_" << std::hex << h << ".bwds";
  return name.str();
}

}  // namespace

ScenarioRun run_scenario(const gen::ScenarioConfig& config,
                         std::optional<std::string> cache_dir) {
  gen::Scenario scenario(config);
  ixp::Platform platform(gen::Scenario::platform_config(config));
  scenario.install(platform);

  std::string cache_path;
  if (!cache_dir.has_value()) {
    const char* env = std::getenv("BW_CACHE_DIR");
    cache_dir = env != nullptr ? std::string(env) : std::string("bw_cache");
  }
  if (!cache_dir->empty()) {
    std::filesystem::create_directories(*cache_dir);
    cache_path = *cache_dir + "/" + config_fingerprint(config);
  }

  auto finish = [&](Dataset dataset) {
    ScenarioRun run{std::move(dataset), scenario.registry(),
                    platform.route_server().peer_asns(), scenario.truth()};
    return run;
  };

  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    return finish(Dataset::load(cache_path));
  }

  ixp::RunResult result =
      platform.run(scenario.control(), scenario.traffic_source());
  Dataset dataset = Dataset::from_run(std::move(result), platform);
  if (!cache_path.empty()) dataset.save(cache_path);
  return finish(std::move(dataset));
}

gen::ScenarioConfig default_benchmark_scenario() {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.25;
  if (const char* env = std::getenv("BW_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) cfg.scale = s;
  }
  return cfg;
}

}  // namespace bw::core
