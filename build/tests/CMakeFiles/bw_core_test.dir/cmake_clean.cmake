file(REMOVE_RECURSE
  "CMakeFiles/bw_core_test.dir/core/anomaly_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/anomaly_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/classify_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/classify_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/dataset_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/dataset_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/empty_edge_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/empty_edge_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/event_merge_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/event_merge_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/io_text_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/io_text_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/monitor_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/monitor_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/port_stats_collateral_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/port_stats_collateral_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/pre_rtbh_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/pre_rtbh_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/protocol_filter_participation_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/protocol_filter_participation_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/report_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/report_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/time_offset_load_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/time_offset_load_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/visibility_drop_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/visibility_drop_test.cpp.o.d"
  "CMakeFiles/bw_core_test.dir/core/whatif_test.cpp.o"
  "CMakeFiles/bw_core_test.dir/core/whatif_test.cpp.o.d"
  "bw_core_test"
  "bw_core_test.pdb"
  "bw_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
