// Figure 11: cumulative number of 5-minute time slots contributing traffic
// samples within the 72 hours before each RTBH event (Section 5.2).
//
// Paper: only 18k of 34k pre-RTBH events show any sampled traffic (46%
// show none); 13k of those have data in at most 24 slots — very sparse.
#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig11");
  const auto& pre = exp.report.pre;

  bench::print_header("Fig. 11", "slots with data in pre-RTBH windows");
  std::vector<double> slot_counts;
  for (const auto& r : pre.per_event) {
    if (r.has_data) slot_counts.push_back(static_cast<double>(r.slots_with_data));
  }
  const auto cdf = util::empirical_cdf(slot_counts);
  auto csv = bench::open_csv("fig11_pre_slots",
                             {"slots_with_data", "cumulative_events"});
  util::TextTable table({"slots with data <=", "events (cumulative)"});
  for (const std::size_t bound : {1u, 6u, 12u, 24u, 48u, 96u, 288u, 864u}) {
    std::size_t count = 0;
    for (const double v : slot_counts) {
      if (v <= static_cast<double>(bound)) ++count;
    }
    table.add_row({std::to_string(bound),
                   util::fmt_count(static_cast<std::int64_t>(count))});
  }
  for (const auto& p : cdf) {
    csv->write_row({util::fmt_double(p.value, 0),
                    util::fmt_double(p.cumulative_fraction *
                                         static_cast<double>(slot_counts.size()),
                                     0)});
  }
  std::cout << table;

  const double total = static_cast<double>(pre.total());
  std::size_t sparse = 0;
  for (const double v : slot_counts) {
    if (v <= 24.0) ++sparse;
  }
  bench::print_paper_row(
      "pre-RTBH events with any sampled traffic", "54% (18k of 34k)",
      util::fmt_percent(static_cast<double>(slot_counts.size()) / total, 0) +
          " (" + util::fmt_count(static_cast<std::int64_t>(slot_counts.size())) +
          " of " + util::fmt_count(static_cast<std::int64_t>(pre.total())) +
          ")");
  bench::print_paper_row(
      "of those: data in <= 24 slots (2 h total)", "13k of 18k (~72%)",
      util::fmt_percent(slot_counts.empty()
                            ? 0.0
                            : static_cast<double>(sparse) /
                                  static_cast<double>(slot_counts.size()),
                        0));
  return 0;
}
