#include "net/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "util/rng.hpp"

namespace bw::net {
namespace {

TEST(PrefixTrieTest, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrieTest, ExactMatchDistinguishesLengths) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.0.0.0/16"), 16);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/16")), 16);
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/12")), nullptr);
}

TEST(PrefixTrieTest, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  trie.insert(*Prefix::parse("10.1.2.3/32"), 32);

  EXPECT_EQ(*trie.match(Ipv4(10, 1, 2, 3)), 32);
  EXPECT_EQ(*trie.match(Ipv4(10, 1, 2, 4)), 24);
  EXPECT_EQ(*trie.match(Ipv4(10, 1, 3, 1)), 16);
  EXPECT_EQ(*trie.match(Ipv4(10, 9, 9, 9)), 8);
  EXPECT_EQ(trie.match(Ipv4(11, 0, 0, 0)), nullptr);
}

TEST(PrefixTrieTest, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4(0), 0), 42);
  EXPECT_EQ(*trie.match(Ipv4(255, 1, 2, 3)), 42);
  const auto entry = trie.match_entry(Ipv4(1, 2, 3, 4));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->first.length(), 0);
}

TEST(PrefixTrieTest, MatchEntryReconstructsPrefix) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("192.168.4.0/22"), 1);
  const auto entry = trie.match_entry(Ipv4(192, 168, 6, 9));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->first, *Prefix::parse("192.168.4.0/22"));
  EXPECT_EQ(entry->second, 1);
}

TEST(PrefixTrieTest, MatchesReturnsAllCoveringShortestFirst) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.3/32"), 32);
  const auto all = trie.matches(Ipv4(10, 1, 2, 3));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first.length(), 8);
  EXPECT_EQ(all[1].first.length(), 16);
  EXPECT_EQ(all[2].first.length(), 32);
  EXPECT_EQ(*all[2].second, 32);
}

TEST(PrefixTrieTest, ForEachVisitsEverythingInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("9.0.0.0/8"), 2);
  trie.insert(*Prefix::parse("10.5.0.0/16"), 3);
  std::vector<Prefix> visited;
  trie.for_each([&](const Prefix& p, const int&) { visited.push_back(p); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], *Prefix::parse("9.0.0.0/8"));
  EXPECT_EQ(visited[1], *Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(visited[2], *Prefix::parse("10.5.0.0/16"));
}

TEST(PrefixTrieTest, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.match(Ipv4(10, 0, 0, 1)), nullptr);
}

// Property: trie LPM agrees with a brute-force reference over random data.
class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, MatchesBruteForce) {
  util::Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Prefix, int> reference;

  for (int i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    // Concentrate prefixes to force overlaps.
    const Prefix p(
        Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFF)) << 16 |
             static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFF))),
        len);
    trie.insert(p, i);
    reference[p] = i;
  }
  EXPECT_EQ(trie.size(), reference.size());

  for (int i = 0; i < 2000; ++i) {
    const Ipv4 addr(static_cast<std::uint32_t>(
        rng.uniform_int(0, std::numeric_limits<std::uint32_t>::max())));
    std::optional<int> expected;
    int best_len = -1;
    for (const auto& [p, v] : reference) {
      if (p.contains(addr) && p.length() > best_len) {
        best_len = p.length();
        expected = v;
      }
    }
    const int* got = trie.match(addr);
    if (expected.has_value()) {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, *expected);
    } else {
      EXPECT_EQ(got, nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(FlatLpmTest, EmptyMatchesNothing) {
  FlatLpm<int> lpm;
  EXPECT_TRUE(lpm.empty());
  EXPECT_EQ(lpm.match(Ipv4(10, 0, 0, 1)), nullptr);
}

TEST(FlatLpmTest, ShortAndLongPrefixesResolve) {
  std::vector<std::pair<Prefix, int>> entries{
      {*Prefix::parse("10.0.0.0/8"), 8},
      {*Prefix::parse("10.1.0.0/16"), 16},
      {*Prefix::parse("10.1.2.0/24"), 24},
      {*Prefix::parse("10.1.2.3/32"), 32},
      {Prefix(Ipv4(0), 0), 0},
  };
  const FlatLpm<int> lpm(entries);
  EXPECT_EQ(lpm.size(), 5u);
  EXPECT_EQ(*lpm.match(Ipv4(10, 1, 2, 3)), 32);
  EXPECT_EQ(*lpm.match(Ipv4(10, 1, 2, 4)), 24);
  EXPECT_EQ(*lpm.match(Ipv4(10, 1, 3, 1)), 16);
  EXPECT_EQ(*lpm.match(Ipv4(10, 9, 9, 9)), 8);
  EXPECT_EQ(*lpm.match(Ipv4(11, 0, 0, 0)), 0);  // default route
}

TEST(FlatLpmTest, LastInsertWinsLikeTrieOverwrite) {
  std::vector<std::pair<Prefix, int>> entries{
      {*Prefix::parse("10.0.0.0/8"), 1},
      {*Prefix::parse("10.0.0.0/8"), 2},
      {*Prefix::parse("172.16.0.0/12"), 3},
      {*Prefix::parse("172.16.0.0/12"), 4},
  };
  const FlatLpm<int> lpm(entries);
  EXPECT_EQ(lpm.size(), 2u);
  EXPECT_EQ(*lpm.match(Ipv4(10, 0, 0, 1)), 2);
  EXPECT_EQ(*lpm.match(Ipv4(172, 16, 0, 1)), 4);
}

// Property: FlatLpm agrees with PrefixTrie on every lookup, over a large
// random prefix set with heavy overlap (including duplicates, so the
// last-wins rule is exercised too).
class FlatLpmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatLpmPropertyTest, MatchesTrieOn10kRandomPrefixes) {
  util::Rng rng(GetParam());
  PrefixTrie<std::uint32_t> trie;
  std::vector<std::pair<Prefix, std::uint32_t>> entries;
  entries.reserve(10000);

  for (std::uint32_t i = 0; i < 10000; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(0, 32));
    // Concentrate the top bits so level-1 buckets collide and collect
    // multiple long prefixes.
    const Prefix p(
        Ipv4((static_cast<std::uint32_t>(rng.uniform_int(0, 0x3FF)) << 22) |
             (static_cast<std::uint32_t>(rng.uniform_int(
                  0, std::numeric_limits<std::int32_t>::max())) &
              0x3FFFFF)),
        len);
    trie.insert(p, i);
    entries.emplace_back(p, i);
  }
  const FlatLpm<std::uint32_t> lpm(entries);
  EXPECT_EQ(lpm.size(), trie.size());

  util::Rng probe_rng(GetParam() ^ 0x9E3779B97F4A7C15ull);
  for (int i = 0; i < 20000; ++i) {
    // Half the probes near the concentrated region, half uniform.
    const std::uint32_t addr_bits =
        i % 2 == 0
            ? (static_cast<std::uint32_t>(probe_rng.uniform_int(0, 0x3FF))
               << 22) |
                  static_cast<std::uint32_t>(probe_rng.uniform_int(0, 0x3FFFFF))
            : static_cast<std::uint32_t>(probe_rng.uniform_int(
                  0, std::numeric_limits<std::uint32_t>::max()));
    const Ipv4 addr(addr_bits);
    const std::uint32_t* expected = trie.match(addr);
    const std::uint32_t* got = lpm.match(addr);
    if (expected == nullptr) {
      ASSERT_EQ(got, nullptr) << addr.to_string();
    } else {
      ASSERT_NE(got, nullptr) << addr.to_string();
      ASSERT_EQ(*got, *expected) << addr.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatLpmPropertyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace bw::net
