# Empty compiler generated dependencies file for exp_fig07_top100_reaction.
# This may be replaced when dependencies are built.
