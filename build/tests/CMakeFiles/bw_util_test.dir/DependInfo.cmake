
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bootstrap_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/bootstrap_test.cpp.o.d"
  "/root/repo/tests/util/cusum_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/cusum_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/cusum_test.cpp.o.d"
  "/root/repo/tests/util/ewma_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/ewma_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/ewma_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_csv_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/table_csv_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/table_csv_test.cpp.o.d"
  "/root/repo/tests/util/time_test.cpp" "tests/CMakeFiles/bw_util_test.dir/util/time_test.cpp.o" "gcc" "tests/CMakeFiles/bw_util_test.dir/util/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
