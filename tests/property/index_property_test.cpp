// Property tests: the annotated blackhole index against a brute-force
// reference over random announce/withdraw sequences.
#include <gtest/gtest.h>

#include <map>

#include "bgp/blackhole_index.hpp"
#include "util/rng.hpp"

namespace bw::bgp {
namespace {

// Naive reference: list of (prefix, [begin,end)) intervals.
class NaiveIndex {
 public:
  void open(const net::Prefix& p, util::TimeMs t) {
    if (!open_.contains(p)) open_[p] = t;
  }
  void close(const net::Prefix& p, util::TimeMs t) {
    const auto it = open_.find(p);
    if (it == open_.end()) return;
    if (t > it->second) closed_.emplace_back(p, util::TimeRange{it->second, t});
    open_.erase(it);
  }
  void finalize(util::TimeMs end) {
    for (const auto& [p, begin] : open_) {
      closed_.emplace_back(p, util::TimeRange{begin, end});
    }
    open_.clear();
  }
  [[nodiscard]] bool announced_at(net::Ipv4 addr, util::TimeMs t) const {
    for (const auto& [p, range] : closed_) {
      if (p.contains(addr) && range.contains(t)) return true;
    }
    return false;
  }

 private:
  std::map<net::Prefix, util::TimeMs> open_;
  std::vector<std::pair<net::Prefix, util::TimeRange>> closed_;
};

class IndexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexPropertyTest, MatchesNaiveReference) {
  util::Rng rng(GetParam());
  BlackholeIndex index(64600);
  NaiveIndex naive;

  // A small, colliding prefix universe so covering relationships happen.
  std::vector<net::Prefix> universe;
  for (int i = 0; i < 12; ++i) {
    universe.push_back(net::Prefix(
        net::Ipv4(0x18000000u + static_cast<std::uint32_t>(rng.index(4)) * 256 +
                  static_cast<std::uint32_t>(rng.index(8))),
        32));
  }
  universe.push_back(*net::Prefix::parse("24.0.0.0/24"));
  universe.push_back(*net::Prefix::parse("24.0.1.0/24"));
  universe.push_back(*net::Prefix::parse("24.0.0.0/16"));

  const util::TimeMs horizon = util::days(2);
  for (int step = 0; step < 600; ++step) {
    const auto& p = universe[rng.index(universe.size())];
    const util::TimeMs t = (horizon / 600) * step;
    if (rng.chance(0.55)) {
      index.open(p, t, {kBlackhole}, 1);
      naive.open(p, t);
    } else {
      index.close(p, t);
      naive.close(p, t);
    }
  }
  index.finalize(horizon);
  naive.finalize(horizon);

  for (int probe = 0; probe < 4000; ++probe) {
    const net::Ipv4 addr(0x18000000u +
                         static_cast<std::uint32_t>(rng.index(4)) * 256 +
                         static_cast<std::uint32_t>(rng.index(8)));
    const util::TimeMs t = rng.uniform_int(-util::kHour, horizon + util::kHour);
    ASSERT_EQ(index.announced_at(addr, t), naive.announced_at(addr, t))
        << addr.to_string() << " @ " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace bw::bgp
