#include "ixp/fabric.hpp"

namespace bw::ixp {

void Fabric::carry(const flow::TrafficBurst& burst) {
  ++acct_.bursts;
  acct_.true_packets += static_cast<std::uint64_t>(
      burst.packets > 0 ? burst.packets : 0);

  // Squatting-protection prefixes are *only* announced as RTBH routes: with
  // no owner, traffic can still cross the fabric into the blackhole, but a
  // packet that is neither owned nor blackholed never enters the IXP.
  const flow::MemberId* victim = ownership_->match(burst.dst_ip);
  if (victim == nullptr) ++acct_.unroutable_bursts;

  const std::uint64_t key = burst.id != 0 ? burst.id : ++unkeyed_counter_;
  util::Rng sample_rng = sampler_.stream(key);
  const auto times = sampler_.sample_times(burst, sample_rng);
  if (times.empty()) return;

  const bgp::Asn handover_asn = member_asn_(burst.handover);
  const net::Mac src_mac = macs_->mac_of(burst.handover);
  const net::Mac victim_mac =
      victim != nullptr ? macs_->mac_of(*victim) : net::Mac{};

  // Bilateral (non route-server) blackholing only exists with peers that
  // honour host blackhole routes in the first place — a stock-configured
  // peer has no session to install the private route on.
  const bool peer_supports_private =
      rs_->policy_of(handover_asn)
          .accepts_blackhole(net::Prefix::host(burst.dst_ip));

  util::Rng jitter_rng = collector_->jitter_stream(key);
  for (const util::TimeMs t : times) {
    const bool rs_dropped =
        rs_->blackholed_for_peer(handover_asn, burst.dst_ip, t);
    const bool private_dropped = !rs_dropped && peer_supports_private &&
                                 service_->privately_dropped(burst.dst_ip, t);
    const bool dropped = rs_dropped || private_dropped;
    if (victim == nullptr && !dropped) continue;

    flow::FlowRecord rec;
    rec.time = t;
    rec.src_ip = burst.src_ip;
    rec.dst_ip = burst.dst_ip;
    rec.proto = burst.proto;
    rec.src_port = burst.src_port;
    rec.dst_port = burst.dst_port;
    rec.src_mac = src_mac;
    rec.dst_mac = dropped ? service_->blackhole_mac() : victim_mac;
    rec.packets = 1;
    rec.bytes = static_cast<std::uint64_t>(
        burst.avg_packet_bytes > 0 ? burst.avg_packet_bytes : 1);

    ++acct_.sampled_packets;
    if (dropped) ++acct_.sampled_dropped;
    if (private_dropped) ++acct_.sampled_dropped_private;

    collector_->ingest(rec, jitter_rng);
  }
}

}  // namespace bw::ixp
