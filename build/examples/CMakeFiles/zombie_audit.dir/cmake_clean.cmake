file(REMOVE_RECURSE
  "CMakeFiles/zombie_audit.dir/zombie_audit.cpp.o"
  "CMakeFiles/zombie_audit.dir/zombie_audit.cpp.o.d"
  "zombie_audit"
  "zombie_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zombie_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
