#include "bgp/blackhole_index.hpp"

#include <algorithm>

namespace bw::bgp {

const BlackholeIndex::Span* BlackholeIndex::Entry::active_at(
    util::TimeMs t) const {
  if (open && t >= open->range.begin) return &*open;
  auto it = std::upper_bound(closed.begin(), closed.end(), t,
                             [](util::TimeMs value, const Span& s) {
                               return value < s.range.begin;
                             });
  if (it == closed.begin()) return nullptr;
  --it;
  return it->range.contains(t) ? &*it : nullptr;
}

void BlackholeIndex::open(const net::Prefix& prefix, util::TimeMs t,
                          std::vector<Community> communities, Asn sender) {
  Entry* entry = trie_.find(prefix);
  if (entry == nullptr) {
    trie_.insert(prefix, Entry{});
    entry = trie_.find(prefix);
  }
  if (entry->open) {
    // Re-announcement while active: refresh metadata only.
    entry->open->communities = std::move(communities);
    entry->open->sender = sender;
    return;
  }
  Span span;
  span.range.begin = t;
  span.communities = std::move(communities);
  span.sender = sender;
  entry->open = std::move(span);
}

void BlackholeIndex::close(const net::Prefix& prefix, util::TimeMs t) {
  Entry* entry = trie_.find(prefix);
  if (entry == nullptr || !entry->open) return;
  Span span = std::move(*entry->open);
  entry->open.reset();
  span.range.end = t;
  if (span.range.end > span.range.begin) entry->closed.push_back(std::move(span));
}

void BlackholeIndex::finalize(util::TimeMs end_time) {
  std::vector<net::Prefix> open_prefixes;
  trie_.for_each([&](const net::Prefix& p, const Entry& e) {
    if (e.open) open_prefixes.push_back(p);
  });
  for (const auto& p : open_prefixes) close(p, end_time);
  trie_.for_each([&](const net::Prefix& p, const Entry&) {
    Entry* e = trie_.find(p);
    std::sort(e->closed.begin(), e->closed.end(),
              [](const Span& a, const Span& b) {
                return a.range.begin < b.range.begin;
              });
  });
}

bool BlackholeIndex::announced_at(net::Ipv4 addr, util::TimeMs t) const {
  for (const auto& [prefix, entry] : trie_.matches(addr)) {
    if (entry->active_at(t) != nullptr) return true;
  }
  return false;
}

bool BlackholeIndex::announced_at(const net::Prefix& prefix,
                                  util::TimeMs t) const {
  const Entry* entry = trie_.find(prefix);
  return entry != nullptr && entry->active_at(t) != nullptr;
}

std::vector<util::TimeRange> BlackholeIndex::announced_ranges(
    net::Ipv4 addr) const {
  std::vector<util::TimeRange> out;
  for (const auto& [prefix, entry] : trie_.matches(addr)) {
    for (const Span& s : entry->closed) out.push_back(s.range);
  }
  return out;
}

bool BlackholeIndex::dropped_for_peer(const PeerPolicy& policy, Asn peer_asn,
                                      net::Ipv4 addr, util::TimeMs t) const {
  const auto peer16 = static_cast<std::uint16_t>(peer_asn & 0xFFFF);
  for (const auto& [prefix, entry] : trie_.matches(addr)) {
    const Span* span = entry->active_at(t);
    if (span == nullptr) continue;
    if (span->sender == peer_asn) continue;  // own announcements not echoed
    if (!targeted_.should_announce(span->communities, peer16)) continue;
    if (policy.accepts_blackhole(prefix)) return true;
  }
  return false;
}

void BlackholeIndex::for_each(
    const std::function<void(const net::Prefix&, const std::vector<Span>&)>& fn)
    const {
  trie_.for_each(
      [&](const net::Prefix& p, const Entry& e) { fn(p, e.closed); });
}

}  // namespace bw::bgp
