#include "util/time.hpp"

#include <cstdio>

namespace bw::util {

std::int64_t slot_index(TimeMs t, DurationMs slot_width) noexcept {
  if (slot_width <= 0) return 0;
  std::int64_t q = t / slot_width;
  if (t % slot_width != 0 && t < 0) --q;  // floor division
  return q;
}

TimeMs slot_start(TimeMs t, DurationMs slot_width) noexcept {
  return slot_index(t, slot_width) * slot_width;
}

std::string format_time(TimeMs t) {
  const bool neg = t < 0;
  TimeMs a = neg ? -t : t;
  const std::int64_t day = a / kDay;
  a %= kDay;
  const std::int64_t h = a / kHour;
  a %= kHour;
  const std::int64_t m = a / kMinute;
  a %= kMinute;
  const std::int64_t s = a / kSecond;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%sday%lld %02lld:%02lld:%02lld",
                neg ? "-" : "", static_cast<long long>(day),
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s));
  return buf;
}

std::string format_duration(DurationMs d) {
  const bool neg = d < 0;
  DurationMs a = neg ? -d : d;
  char buf[48];
  const char* sign = neg ? "-" : "";
  if (a >= kDay) {
    std::snprintf(buf, sizeof(buf), "%s%.1fd", sign,
                  static_cast<double>(a) / static_cast<double>(kDay));
  } else if (a >= kHour) {
    std::snprintf(buf, sizeof(buf), "%s%.1fh", sign,
                  static_cast<double>(a) / static_cast<double>(kHour));
  } else if (a >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%.1fm", sign,
                  static_cast<double>(a) / static_cast<double>(kMinute));
  } else if (a >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", sign,
                  static_cast<double>(a) / static_cast<double>(kSecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldms", sign, static_cast<long long>(a));
  }
  return buf;
}

}  // namespace bw::util
