
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/amplification.cpp" "src/CMakeFiles/bw_gen.dir/gen/amplification.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/amplification.cpp.o.d"
  "/root/repo/src/gen/ddos.cpp" "src/CMakeFiles/bw_gen.dir/gen/ddos.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/ddos.cpp.o.d"
  "/root/repo/src/gen/legit.cpp" "src/CMakeFiles/bw_gen.dir/gen/legit.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/legit.cpp.o.d"
  "/root/repo/src/gen/operator_model.cpp" "src/CMakeFiles/bw_gen.dir/gen/operator_model.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/operator_model.cpp.o.d"
  "/root/repo/src/gen/scan.cpp" "src/CMakeFiles/bw_gen.dir/gen/scan.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/scan.cpp.o.d"
  "/root/repo/src/gen/scenario.cpp" "src/CMakeFiles/bw_gen.dir/gen/scenario.cpp.o" "gcc" "src/CMakeFiles/bw_gen.dir/gen/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
