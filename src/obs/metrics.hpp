// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms for the long multi-stage batch runs blackwatch
// executes (34k events, hundreds of millions of sampled flows at paper
// scale). An unobservable run of that size is undebuggable; this registry
// is the always-on, low-overhead substrate every subsystem reports into.
//
// Design constraints, in order:
//   1. Negligible hot-path cost. Counter::add is one relaxed fetch_add on a
//      per-thread shard (cache-line padded, so concurrent writers never
//      bounce a line). No locks, no allocation, no branches beyond the
//      shard index.
//   2. Deterministic snapshots. A snapshot merges shards in fixed shard
//      order and lists metrics in name order, so two runs that performed
//      the same work produce byte-identical metric JSON — the property the
//      obs determinism test pins at BW_THREADS=1 vs 8.
//   3. Stable handles. Metrics are registered once (mutex-protected map
//      lookup) and the returned reference stays valid for the process
//      lifetime; hot paths cache it in a function-local static.
//
// Naming scheme (enforced by convention, checked by is_deterministic_metric):
//   <subsystem>.<what>[.<unit-suffix>]
//   - names ending in "_us" / "_ns" carry wall/cpu time and are expected to
//     differ run to run;
//   - names starting with "sched." describe scheduling shape (chunk/shard
//     counts) and legitimately vary with the thread count;
//   - every other metric must be a pure function of the input data, i.e.
//     identical at any BW_THREADS.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bw::obs {

/// Shards per metric. Threads hash onto shards by a process-unique thread
/// index, so with pool sizes up to the shard count increments are
/// contention-free; beyond that they merely share a line with one peer.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Dense per-thread index (assigned on first use), folded onto the shard
/// array.
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum over shards (relaxed; exact once writers are quiescent).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value (e.g. configured thread count).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram (microseconds). Bucket bounds are powers
/// of four from 1 µs to ~4.2 s plus an overflow bucket — coarse enough to
/// be cheap, fine enough to separate "cache hit" from "regeneration".
class Histogram {
 public:
  static constexpr std::array<std::uint64_t, 12> kBucketBounds = {
      1,     4,      16,     64,      256,     1024,
      4096,  16384,  65536,  262144,  1048576, 4194304};
  static constexpr std::size_t kBucketCount = kBucketBounds.size() + 1;

  void record(std::uint64_t value_us) noexcept {
    auto& shard = shards_[detail::shard_index()];
    shard.counts[bucket_for(value_us)].fetch_add(1,
                                                 std::memory_order_relaxed);
    shard.sum.fetch_add(value_us, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> counts{};
    std::uint64_t count{0};  ///< total recordings
    std::uint64_t sum{0};    ///< sum of recorded values (µs)
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

  [[nodiscard]] static std::size_t bucket_for(std::uint64_t value_us) noexcept {
    std::size_t b = 0;
    while (b < kBucketBounds.size() && value_us > kBucketBounds[b]) ++b;
    return b;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Point-in-time copy of every registered metric, name-sorted. Two runs
/// performing the same work render byte-identical JSON from this.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  struct Hist {
    std::string name;
    Histogram::Snapshot data;
  };
  std::vector<Hist> histograms;

  /// Counter value by exact name; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Stable-key-ordered JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with every map in name order.
  [[nodiscard]] std::string to_json() const;
};

/// True unless the name is timing ("_us"/"_ns" suffix) or scheduling-shape
/// ("sched." prefix) — the two classes allowed to vary across thread counts
/// and runs.
[[nodiscard]] bool is_deterministic_metric(std::string_view name);

class Registry {
 public:
  /// The process-wide registry every subsystem reports into.
  [[nodiscard]] static Registry& global();

  /// Find-or-create; the reference is valid for the registry's lifetime.
  /// Registration takes a mutex — hot paths cache the reference.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric value (handles stay registered and valid). Tests
  /// only — production code accumulates for the process lifetime.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Wall-clock stopwatch on std::chrono::steady_clock — the single clock
/// source for stage timing, BENCH_*.json, and --metrics-out output.
class StopWatch {
 public:
  StopWatch() noexcept { restart(); }
  void restart() noexcept;
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept;
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept;
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_us()) * 1e-6;
  }

 private:
  std::uint64_t start_ns_{0};
};

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Measures the stage-guard thread only — parallel kernels fan work out to
/// pool workers whose cycles are not attributed here.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept : start_us_(now_us()) {}
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept {
    return now_us() - start_us_;
  }

 private:
  [[nodiscard]] static std::uint64_t now_us() noexcept;
  std::uint64_t start_us_{0};
};

/// RAII: adds elapsed wall-clock µs to `counter` on destruction.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Counter& counter) noexcept : counter_(counter) {}
  ~ScopedTimerUs() { counter_.add(watch_.elapsed_us()); }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Counter& counter_;
  StopWatch watch_;
};

}  // namespace bw::obs
