#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace bw::net {
namespace {

TEST(PrefixTest, ZeroesHostBits) {
  const Prefix p(Ipv4(192, 168, 1, 200), 24);
  EXPECT_EQ(p.network(), Ipv4(192, 168, 1, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(PrefixTest, MaskValues) {
  EXPECT_EQ(Prefix(Ipv4(0), 0).mask(), 0u);
  EXPECT_EQ(Prefix(Ipv4(0), 8).mask(), 0xFF000000u);
  EXPECT_EQ(Prefix(Ipv4(0), 24).mask(), 0xFFFFFF00u);
  EXPECT_EQ(Prefix(Ipv4(0), 32).mask(), 0xFFFFFFFFu);
}

TEST(PrefixTest, LengthClamped) {
  const Prefix p(Ipv4(1, 2, 3, 4), 40);
  EXPECT_EQ(p.length(), 32);
}

TEST(PrefixTest, ContainsAddress) {
  const Prefix p(Ipv4(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4(10, 1, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4(10, 2, 0, 0)));
}

TEST(PrefixTest, ContainsPrefix) {
  const Prefix p16(Ipv4(10, 1, 0, 0), 16);
  const Prefix p24(Ipv4(10, 1, 5, 0), 24);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
  EXPECT_TRUE(Prefix(Ipv4(0), 0).contains(p16));  // default route covers all
}

TEST(PrefixTest, SizeAndAddressAt) {
  const Prefix p(Ipv4(10, 0, 0, 0), 30);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.address_at(0), Ipv4(10, 0, 0, 0));
  EXPECT_EQ(p.address_at(3), Ipv4(10, 0, 0, 3));
  EXPECT_EQ(p.address_at(4), Ipv4(10, 0, 0, 0));  // wraps modulo size
  EXPECT_EQ(Prefix::host(Ipv4(1, 1, 1, 1)).size(), 1u);
}

TEST(PrefixTest, ParseRoundTrip) {
  const auto p = Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "192.168.0.0/16");
  const auto host = Prefix::parse("1.2.3.4");
  ASSERT_TRUE(host);
  EXPECT_EQ(host->length(), 32);
}

TEST(PrefixTest, ParseZeroesHostBits) {
  const auto p = Prefix::parse("192.168.1.77/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->network(), Ipv4(192, 168, 1, 0));
}

TEST(PrefixTest, ParseInvalid) {
  EXPECT_FALSE(Prefix::parse(""));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/-1"));
  EXPECT_FALSE(Prefix::parse("1.2.3/24"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4/24x"));
}

TEST(PrefixTest, DefaultRoute) {
  const Prefix def;
  EXPECT_EQ(def.length(), 0);
  EXPECT_EQ(def.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(def.contains(Ipv4(255, 255, 255, 255)));
}

TEST(PrefixTest, HashDistinguishesLengths) {
  const std::hash<Prefix> h;
  const Prefix a(Ipv4(10, 0, 0, 0), 16);
  const Prefix b(Ipv4(10, 0, 0, 0), 24);
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(Prefix(Ipv4(10, 0, 99, 99), 16)));  // same network
}

}  // namespace
}  // namespace bw::net
