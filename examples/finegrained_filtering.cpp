// Example: what would fine-grained filtering buy over RTBH?
//
// Runs a scaled scenario and contrasts, per attack-correlated RTBH event,
// (a) what the blackhole did — drop everything towards the victim, with a
// wildly unpredictable actual drop rate — against (b) an amplification-
// port filter that drops only attack traffic (Section 5.5 / Fig. 14).
//
//   ./finegrained_filtering [scale]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bw;
  gen::ScenarioConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  if (cfg.scale <= 0.0) cfg.scale = 0.08;

  std::cout << "Generating scenario at scale " << cfg.scale << "...\n";
  const core::ScenarioRun run = core::run_scenario(cfg, std::string{});
  const auto events = core::merge_events(run.dataset.blackhole_updates(),
                                         run.dataset.period().end);
  const auto pre = core::compute_pre_rtbh(run.dataset, events);
  const auto drop = core::compute_drop_rates(run.dataset, events);
  const auto filt = core::compute_filtering(run.dataset, events, pre);

  util::TextTable table({"mitigation", "median effect", "q1..q3"});
  table.add_row(
      {"RTBH (/32): share of victim traffic actually dropped",
       util::fmt_percent(util::quantile(drop.event_rates_len32, 0.5), 0),
       util::fmt_percent(util::quantile(drop.event_rates_len32, 0.25), 0) +
           ".." +
           util::fmt_percent(util::quantile(drop.event_rates_len32, 0.75), 0)});
  table.add_row(
      {"amp-port filter: share of attack-event packets covered",
       util::fmt_percent(util::quantile(filt.coverage, 0.5), 0),
       util::fmt_percent(util::quantile(filt.coverage, 0.25), 0) + ".." +
           util::fmt_percent(util::quantile(filt.coverage, 0.75), 0)});
  std::cout << "\n" << table;

  std::cout << "\n" << util::fmt_percent(filt.fully_filterable_fraction, 1)
            << " of " << filt.events_considered
            << " attack events could be handled *completely* by a static\n"
               "filter on "
            << net::amplification_protocols().size()
            << " known UDP amplification ports (paper: ~90%) — while the\n"
               "blackhole's outcome depends on every peer's BGP policy and "
               "drops legitimate\ntraffic along with the attack.\n";

  // The hard 10%: events the port filter cannot cover.
  std::size_t hard = 0;
  for (const double c : filt.coverage) {
    if (c < 0.5) ++hard;
  }
  std::cout << "\nHard cases (coverage < 50%): " << hard
            << " events — random-port floods, increasing-port sweeps and\n"
               "SYN floods, which need transport-agnostic mitigation.\n";
  return 0;
}
