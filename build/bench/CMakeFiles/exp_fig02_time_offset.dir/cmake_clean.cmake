file(REMOVE_RECURSE
  "CMakeFiles/exp_fig02_time_offset.dir/exp_fig02_time_offset.cpp.o"
  "CMakeFiles/exp_fig02_time_offset.dir/exp_fig02_time_offset.cpp.o.d"
  "exp_fig02_time_offset"
  "exp_fig02_time_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig02_time_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
