// Supervision tests: the stage watchdog must never change the bytes of a
// healthy run, must bound a wedged stage's wall-clock, and must surface a
// timeout as the same deterministic degraded report at every thread count.
#include <gtest/gtest.h>

#include <chrono>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/parallel.hpp"

namespace bw::core {
namespace {

class SupervisedPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::ScenarioConfig cfg;
    cfg.scale = 0.04;
    cfg.seed = 20191021;
    dataset_ = new Dataset(run_scenario(cfg, std::string{}).dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static AnalysisReport run(std::size_t workers, util::DurationMs timeout,
                            std::vector<std::string> hangs = {}) {
    util::ThreadPool pool(workers);
    AnalysisConfig cfg;
    cfg.pool = &pool;
    cfg.stage_timeout = timeout;
    cfg.inject_stage_hangs = std::move(hangs);
    return run_pipeline(*dataset_, cfg);
  }

  static Dataset* dataset_;
};

Dataset* SupervisedPipelineTest::dataset_ = nullptr;

TEST_F(SupervisedPipelineTest, SupervisionDoesNotChangeHealthyReportBytes) {
  // Acceptance: serial and parallel runs with supervision enabled produce
  // byte-identical reports, identical to the unsupervised baseline.
  const util::DurationMs generous = 10 * util::kMinute;
  const AnalysisReport baseline = run(3, 0);
  const AnalysisReport serial = run(0, generous);
  const AnalysisReport wide = run(7, generous);

  EXPECT_FALSE(serial.data_quality.degraded());
  EXPECT_FALSE(serial.data_quality.timed_out());
  const std::string baseline_md = render_markdown(*dataset_, baseline, nullptr);
  const std::string serial_md = render_markdown(*dataset_, serial, nullptr);
  const std::string wide_md = render_markdown(*dataset_, wide, nullptr);
  EXPECT_EQ(serial_md, baseline_md);
  EXPECT_EQ(wide_md, baseline_md);
}

TEST_F(SupervisedPipelineTest, HungStageTimesOutAndRunCompletes) {
  // A planted wedge in one stage: the watchdog must fire, the stage must
  // degrade with timed_out set, and every other stage must still produce
  // its section — the process is never allowed to hang.
  // 2 s budget: long enough that healthy stages never trip it even on a
  // loaded single-core CI box running the suite at -j, short enough that
  // the wedged stage is bounded well under the 60 s ceiling below.
  const auto t0 = std::chrono::steady_clock::now();
  const AnalysisReport report = run(3, 2000, {"filtering"});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 60.0) << "watchdog failed to bound the wedged stage";

  EXPECT_TRUE(report.data_quality.degraded());
  EXPECT_TRUE(report.data_quality.timed_out());
  bool found = false;
  for (const auto& stage : report.data_quality.stages) {
    if (stage.name == "filtering") {
      found = true;
      EXPECT_TRUE(stage.degraded);
      EXPECT_TRUE(stage.timed_out);
      EXPECT_NE(stage.error.find("deadline exceeded"), std::string::npos)
          << stage.error;
    } else {
      EXPECT_FALSE(stage.timed_out) << stage.name;
    }
  }
  EXPECT_TRUE(found);
  // Unaffected sections are intact.
  EXPECT_GT(report.events.size(), 0u);
  EXPECT_GT(report.summary.flow_records, 0u);
  EXPECT_EQ(report.filtering.events_considered, 0u);
  // The rendered document says which stage timed out.
  const std::string md = render_markdown(*dataset_, report, nullptr);
  EXPECT_NE(md.find("`filtering` (timed out)"), std::string::npos) << md;
}

TEST_F(SupervisedPipelineTest, TimedOutReportIsThreadCountIndependent) {
  // DeadlineExceeded carries a deterministic message, so even the degraded
  // document is byte-identical at every thread count.
  const AnalysisReport serial = run(0, 2000, {"pre_rtbh"});
  const AnalysisReport wide = run(7, 2000, {"pre_rtbh"});
  EXPECT_EQ(render_markdown(*dataset_, serial, nullptr),
            render_markdown(*dataset_, wide, nullptr));
}

TEST_F(SupervisedPipelineTest, HangInjectionWithoutTimeoutDegrades) {
  // A hang with no watchdog configured would spin forever; the guard must
  // reject the injection instead of wedging the test suite.
  const AnalysisReport report = run(3, 0, {"classify"});
  EXPECT_TRUE(report.data_quality.degraded());
  EXPECT_FALSE(report.data_quality.timed_out());
  for (const auto& stage : report.data_quality.stages) {
    if (stage.name == "classify") {
      EXPECT_TRUE(stage.degraded);
      EXPECT_NE(stage.error.find("without a stage timeout"),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace bw::core
