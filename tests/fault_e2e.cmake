# End-to-end fault drill, run as a CTest script (label: fault):
#   1. bw-generate a small corpus and export it to CSV
#   2. bw-faultgen applies the default fault mix
#   3. bw-analyze --strict must reject the corrupted corpus (exit 3)
#   4. bw-analyze --skip-bad-rows must survive it (exit 0)
#   5. every byte-level container fault (truncate/bitflip/torn/swap) must be
#      rejected with a data error, never ingested
#   6. the stage watchdog: a planted hang times out into a degraded-but-
#      complete analysis (exit 0); an over-budget generation exits 3
#
#   7. bw-monitor honours the same strictness contract on the same corpora:
#      strict rejects the corrupted CSV (exit 3), --skip-bad-rows survives
#      it, and the clean corpus replays strictly (exit 0)
#
# Expects -DBW_GENERATE, -DBW_FAULTGEN, -DBW_ANALYZE, -DBW_MONITOR (tool
# paths) and -DWORK_DIR (scratch directory, wiped on entry).

foreach(var BW_GENERATE BW_FAULTGEN BW_ANALYZE BW_MONITOR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fault_e2e: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_step expect_rc)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY "${WORK_DIR}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL expect_rc)
    message(FATAL_ERROR "fault_e2e: '${ARGN}' exited ${rc}, expected "
                        "${expect_rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

run_step(0 "${BW_GENERATE}" --out corpus.bwds --scale 0.05 --seed 7
           --days 21 --csv clean_csv)
run_step(0 "${BW_FAULTGEN}" --in clean_csv --out faulty_csv --seed 7)

# A corrupted corpus must fail a strict load with a data error...
run_step(3 "${BW_ANALYZE}" faulty_csv --strict)
# ...and must survive a tolerant load, degraded but complete.
run_step(0 "${BW_ANALYZE}" faulty_csv --skip-bad-rows --markdown faulty.md)

# The clean CSV corpus round-trips strictly.
run_step(0 "${BW_ANALYZE}" clean_csv --strict)

# bw-monitor shares the loader and the contract: same corpus, same flags,
# same exit codes — strict rejects, tolerant degrades, clean passes.
run_step(3 "${BW_MONITOR}" faulty_csv --strict --quiet)
run_step(0 "${BW_MONITOR}" faulty_csv --skip-bad-rows --quiet)
run_step(0 "${BW_MONITOR}" clean_csv --strict --quiet --replay --lockstep)

# --- Byte-level container faults -------------------------------------------
# The checksummed container must turn each corruption into a load error
# (exit 3). The clean container itself must still analyze.
run_step(0 "${BW_ANALYZE}" corpus.bwds)
foreach(kind truncate bitflip torn swap)
  run_step(0 "${BW_FAULTGEN}" --in corpus.bwds --out "bad_${kind}.bwds"
             --binary ${kind} --seed 7)
  run_step(3 "${BW_ANALYZE}" "bad_${kind}.bwds")
endforeach()

# --- Stage watchdog --------------------------------------------------------
# A wedged analysis stage times out and degrades; the run still completes
# with a report (exit 0).
run_step(0 "${BW_ANALYZE}" corpus.bwds --stage-timeout-s 1
           --inject-hang filtering --markdown hung.md)
# A generation run that exceeds its budget is cancelled with a data error:
# 1 ms of budget cannot cover a 21-day corpus.
run_step(3 "${BW_GENERATE}" --out never.bwds --scale 0.05 --seed 7
           --days 21 --stage-timeout-s 0.001)
