#include "core/event_merge.hpp"

#include <gtest/gtest.h>

#include "ixp/blackhole_service.hpp"

namespace bw::core {
namespace {

const net::Prefix kP1 = *net::Prefix::parse("10.0.0.1/32");
const net::Prefix kP2 = *net::Prefix::parse("10.0.0.2/32");

class EventMergeTest : public ::testing::Test {
 protected:
  void add(const net::Prefix& p, util::TimeMs announce, util::TimeMs withdraw) {
    log_.push_back(svc_.make_announce(announce, 100, 200, p));
    if (withdraw >= 0) log_.push_back(svc_.make_withdraw(withdraw, 100, 200, p));
  }

  ixp::BlackholeService svc_;
  bgp::UpdateLog log_;
};

TEST_F(EventMergeTest, SingleAnnounceWithdraw) {
  add(kP1, 100, 200);
  const auto events = merge_events(log_, 1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span, (util::TimeRange{100, 200}));
  EXPECT_EQ(events[0].announcements, 1u);
  EXPECT_EQ(events[0].prefix, kP1);
  EXPECT_EQ(events[0].sender, 100u);
  EXPECT_EQ(events[0].origin, 200u);
}

TEST_F(EventMergeTest, GapBelowDeltaMerges) {
  add(kP1, 0, util::kMinute);
  add(kP1, util::kMinute + 5 * util::kMinute, 10 * util::kMinute);
  const auto events = merge_events(log_, util::kHour, 10 * util::kMinute);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].announcements, 2u);
  EXPECT_EQ(events[0].active.size(), 2u);
  EXPECT_EQ(events[0].span.begin, 0);
  EXPECT_EQ(events[0].span.end, 10 * util::kMinute);
}

TEST_F(EventMergeTest, GapAboveDeltaSplits) {
  add(kP1, 0, util::kMinute);
  add(kP1, 12 * util::kMinute, 13 * util::kMinute);
  const auto events = merge_events(log_, util::kHour, 10 * util::kMinute);
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(EventMergeTest, GapExactlyDeltaMerges) {
  add(kP1, 0, util::kMinute);
  add(kP1, util::kMinute + 10 * util::kMinute, 15 * util::kMinute);
  const auto events = merge_events(log_, util::kHour, 10 * util::kMinute);
  EXPECT_EQ(events.size(), 1u);  // |withdraw - announce| <= delta
}

TEST_F(EventMergeTest, DifferentPrefixesNeverMerge) {
  add(kP1, 0, util::kMinute);
  add(kP2, util::kMinute, 2 * util::kMinute);
  const auto events = merge_events(log_, util::kHour);
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(EventMergeTest, NeverWithdrawnClosesAtPeriodEnd) {
  add(kP1, 100, -1);
  const auto events = merge_events(log_, 5000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span.end, 5000);
}

TEST_F(EventMergeTest, WithdrawWithoutAnnounceIgnored) {
  log_.push_back(svc_.make_withdraw(50, 100, 200, kP1));
  add(kP1, 100, 200);
  const auto events = merge_events(log_, 1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span.begin, 100);
}

TEST_F(EventMergeTest, EventsSortedByStart) {
  add(kP2, 500, 600);
  add(kP1, 100, 200);
  const auto events = merge_events(log_, 1000);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].span.begin, events[1].span.begin);
}

TEST_F(EventMergeTest, DeltaZeroSplitsEveryGap) {
  add(kP1, 0, 10);
  add(kP1, 11, 20);
  add(kP1, 21, 30);
  EXPECT_EQ(merge_events(log_, 100, 0).size(), 3u);
  EXPECT_EQ(merge_events(log_, 100, 5).size(), 1u);
}

TEST_F(EventMergeTest, SweepIsMonotoneAndEndsAtUniquePrefixes) {
  // Build a prefix with gaps of 1, 5, and 20 minutes.
  add(kP1, 0, util::kMinute);
  add(kP1, 2 * util::kMinute, 3 * util::kMinute);
  add(kP1, 8 * util::kMinute, 9 * util::kMinute);
  add(kP1, 29 * util::kMinute, 30 * util::kMinute);
  add(kP2, 0, util::kMinute);

  const std::vector<util::DurationMs> deltas{0, util::kMinute,
                                             10 * util::kMinute, util::kHour};
  const auto sweep = merge_sweep(log_, util::kDay, deltas);
  ASSERT_EQ(sweep.size(), deltas.size() + 1);
  for (std::size_t i = 1; i + 1 < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].events, sweep[i - 1].events) << "monotone in delta";
  }
  // Delta = infinity row: one event per unique prefix.
  EXPECT_EQ(sweep.back().delta, -1);
  EXPECT_EQ(sweep.back().events, 2u);
  // Fractions relative to 5 announcements.
  EXPECT_DOUBLE_EQ(sweep.front().event_fraction, 5.0 / 5.0);
  EXPECT_DOUBLE_EQ(sweep.back().event_fraction, 2.0 / 5.0);
}

TEST_F(EventMergeTest, ActiveIntervalsPreserved) {
  add(kP1, 0, util::kMinute);
  add(kP1, 2 * util::kMinute, 3 * util::kMinute);
  const auto events = merge_events(log_, util::kHour);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].active.size(), 2u);
  EXPECT_EQ(events[0].active[0], (util::TimeRange{0, util::kMinute}));
  EXPECT_EQ(events[0].active[1],
            (util::TimeRange{2 * util::kMinute, 3 * util::kMinute}));
}

}  // namespace
}  // namespace bw::core
