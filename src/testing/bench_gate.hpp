// Performance regression gate over the unified BENCH_*.json schema.
//
// The bench binaries emit one JSON file per benchmark with a shared key
// set (bench_schema_version, benchmark, scale, flow_records,
// hardware_concurrency, wall_ms_by_threads, flows_per_s_by_threads,
// speedup_8_vs_1). This module parses those files and compares a fresh
// measurement against a committed baseline: the gate fails when the
// single-thread flows_per_s drops by more than the allowed fraction, and
// the failure message names the regressing metric. Multi-thread numbers
// are parsed and carried along for a future multicore CI runner but are
// not gated on a single-core box.
//
// Lives in bw::testing because it is harness machinery, not analysis:
// tools/bench-gate is a thin CLI over check_regression, and the unit tests
// feed it doctored baselines to prove the gate actually fires.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace bw::testing {

/// Version of the unified bench JSON schema this gate understands.
/// Bump when the key set changes; the gate refuses mismatched files
/// instead of silently comparing incompatible numbers.
inline constexpr std::int64_t kBenchSchemaVersion = 2;

/// A parsed bench JSON file, flattened: nested objects become dotted paths
/// ("flows_per_s_by_threads.1"), numeric leaves land in `numbers`, string
/// leaves in `strings`. Unknown keys are retained — the gate only reads
/// the keys it needs, so the schema can grow without breaking old gates.
struct BenchJson {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;

  [[nodiscard]] bool has(const std::string& key) const {
    return numbers.contains(key);
  }
  [[nodiscard]] double number(const std::string& key,
                              double fallback = 0.0) const {
    const auto it = numbers.find(key);
    return it == numbers.end() ? fallback : it->second;
  }
  [[nodiscard]] std::string name() const {
    const auto it = strings.find("benchmark");
    return it == strings.end() ? std::string("unknown") : it->second;
  }
};

/// Parse a bench JSON document (strict subset of JSON: objects, strings,
/// numbers, booleans, null; arrays are rejected — the schema has none).
[[nodiscard]] util::Result<BenchJson> parse_bench_json(std::string_view text);

/// Read and parse one BENCH_*.json file.
[[nodiscard]] util::Result<BenchJson> load_bench_json(const std::string& path);

/// Outcome of one baseline-vs-current comparison.
struct GateResult {
  bool pass{false};
  std::string metric;   ///< the gated metric, e.g. flows_per_s_by_threads.1
  double baseline{0.0};
  double current{0.0};
  double change{0.0};   ///< (current - baseline) / baseline
  std::string message;  ///< one line; names the regressing metric on failure
};

/// Gate `current` against `baseline` on flows_per_s at `threads` (default
/// the single-thread number). Fails when current < baseline * (1 -
/// max_regression), when either file misses the metric, or when schema
/// versions mismatch. Improvements always pass (refresh the baseline to
/// ratchet them in).
[[nodiscard]] GateResult check_regression(const BenchJson& baseline,
                                          const BenchJson& current,
                                          double max_regression,
                                          const std::string& threads = "1");

}  // namespace bw::testing
