// Collateral-damage quantification (Section 6.3, Fig. 18).
//
// For every detected server (stable top ports), count the sampled packets
// addressed to those top ports *during* RTBH events covering the server —
// legitimate-looking traffic that an RTBH throws away. Reported as absolute
// per-event packet counts (the paper deliberately avoids relative shares),
// split into all packets to top ports vs. the subset actually dropped.
#pragma once

#include <vector>

#include "core/event_merge.hpp"
#include "core/port_stats.hpp"

namespace bw::core {

struct CollateralEvent {
  net::Ipv4 server;
  std::size_t event_index{0};
  std::uint64_t packets_to_top_ports{0};   ///< should have been dropped
  std::uint64_t packets_actually_dropped{0};
  std::uint64_t est_original_packets{0};   ///< sampled x sampling rate
};

struct CollateralReport {
  std::vector<CollateralEvent> events;  ///< only events with such traffic
  std::size_t servers_considered{0};
  std::uint64_t total_top_port_packets{0};
  std::uint64_t total_dropped_packets{0};
};

/// Events fan out over `pool` (null: the global pool); per-event results
/// are concatenated in event order, so the report is identical at any
/// thread count.
/// A non-null `deadline` is polled per chunk (cooperative supervision).
[[nodiscard]] CollateralReport compute_collateral(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PortStatsReport& stats, std::uint32_t sampling_rate = 10000,
    util::ThreadPool* pool = nullptr,
    const util::Deadline* deadline = nullptr,
    KernelEngine engine = KernelEngine::kColumnar);

}  // namespace bw::core
