#include "gen/operator_model.hpp"

#include <algorithm>
#include <cmath>

namespace bw::gen {

OperatorModel::Mitigation OperatorModel::mitigate(
    const net::Prefix& prefix, bgp::Asn sender, bgp::Asn origin,
    util::TimeMs detection_time, util::DurationMs attack_duration,
    util::TimeMs not_after, const MitigationBehavior& behavior,
    std::vector<bgp::Community> extra) {
  Mitigation out;

  const double latency_s =
      rng_.lognormal(behavior.latency_log_mean, behavior.latency_log_sd);
  util::TimeMs t = detection_time + util::seconds(latency_s);
  if (t >= not_after) t = std::max(detection_time, not_after - util::kMinute);
  out.span.begin = t;

  const auto cycles = static_cast<int>(
      1 + rng_.poisson(std::max(behavior.mean_cycles - 1.0, 0.0)));
  const util::TimeMs target_end =
      std::min(detection_time + attack_duration, not_after);

  for (int c = 0; c < cycles && t < not_after; ++c) {
    out.updates.push_back(
        service_->make_announce(t, sender, origin, prefix, extra));
    ++out.announcements;

    const double hold_s =
        rng_.lognormal(behavior.hold_log_mean, behavior.hold_log_sd);
    util::TimeMs withdraw_at = t + util::seconds(std::max(hold_s, 10.0));
    // Operators keep the final blackhole up until the attack has faded.
    if (c == cycles - 1 && withdraw_at < target_end) withdraw_at = target_end;
    withdraw_at = std::min(withdraw_at, not_after);
    out.updates.push_back(
        service_->make_withdraw(withdraw_at, sender, origin, prefix, extra));
    out.span.end = withdraw_at;

    double gap_s = rng_.lognormal(behavior.gap_log_mean, behavior.gap_log_sd);
    if (rng_.chance(behavior.long_gap_probability)) {
      gap_s = rng_.uniform(15.0 * 60.0, 4.0 * 3600.0);  // pause, new event
    }
    t = withdraw_at + util::seconds(std::max(gap_s, 1.0));
  }

  if (out.updates.empty()) {
    // Degenerate window: fall back to a single momentary blackhole.
    out.updates.push_back(
        service_->make_announce(out.span.begin, sender, origin, prefix, extra));
    out.updates.push_back(service_->make_withdraw(
        out.span.begin + util::kMinute, sender, origin, prefix, extra));
    out.announcements = 1;
    out.span.end = out.span.begin + util::kMinute;
  }
  return out;
}

bgp::UpdateLog OperatorModel::long_lived(const net::Prefix& prefix,
                                         bgp::Asn sender, bgp::Asn origin,
                                         util::TimeRange span, bool withdraw) {
  bgp::UpdateLog log;
  log.push_back(service_->make_announce(span.begin, sender, origin, prefix));
  if (withdraw) {
    log.push_back(service_->make_withdraw(span.end, sender, origin, prefix));
  }
  return log;
}

}  // namespace bw::gen
