// Streaming replay: push a finished corpus through the full live-ingest
// path — per-feed SPSC rings, shedding policy, watermark merge — into the
// RtbhMonitor, exactly as a route-server tap and an IPFIX exporter would.
//
// Two execution modes:
//
//   lockstep   a single thread interleaves producing and consuming on a
//              fixed schedule (per `tick_events` pushed, the consumer pops
//              at most `drain_per_tick` ring events). Fully deterministic:
//              the same corpus, options, and fault plan give byte-identical
//              alerts and exact shed counts. This is what the convergence
//              proof and the overload CI job run.
//   threaded   one producer thread per feed plus a consumer thread, with
//              optional real-time pacing (`speed`) and wall-clock faults.
//              This is the daemon shape; the TSan job runs it to prove the
//              rings under real concurrency.
//
// Convergence guarantee (ISSUE 7): with no shedding the monitor receives
// the events in (time, kind, seq) order — identical to the batch merge in
// replay_batch — so the alert sequence is byte-for-byte the same. Under
// forced shedding the run still exits cleanly, every dropped event is
// counted (stream.shed_*, stream.late_dropped), and produced ==
// delivered + shed + late holds exactly.
#pragma once

#include <cstdint>
#include <functional>

#include "core/dataset.hpp"
#include "core/monitor.hpp"
#include "stream/shedding.hpp"
#include "stream/watermark.hpp"
#include "testing/fault.hpp"
#include "util/time.hpp"

namespace bw::stream {

struct ReplayOptions {
  /// Per-feed ring capacity (rounded up to a power of two).
  std::size_t ring_capacity{8192};
  /// Out-of-orderness allowance subtracted from each feed's watermark.
  util::DurationMs allowance{0};
  ShedMode shed_mode{ShedMode::kBlockWithDeadline};
  /// kBlockWithDeadline, threaded mode: how long a producer waits for ring
  /// space before shedding anyway.
  util::DurationMs block_deadline{5 * util::kSecond};
  /// Threaded mode: corpus-time to wall-clock ratio (2.0 = twice real
  /// time); 0 = as fast as possible.
  double speed{0.0};
  /// Single-thread deterministic interleave instead of real threads.
  bool lockstep{false};
  /// Reorder-heap bound of the watermark mux.
  std::size_t max_reorder{1 << 16};
  /// Forced-overload fault (slow consumer / bursty producer); inert when
  /// `fault.any()` is false.
  testing::StreamFaultPlan fault;
  /// Ground-truth shed log; called once per shed decision.
  std::function<void(const ShedRecord&)> shed_sink;
};

struct ReplayStats {
  ShedStats shed;  ///< summed over both feeds
  MuxStats mux;
  std::uint64_t produced_bgp{0};
  std::uint64_t produced_flow{0};
  std::uint64_t delivered_bgp{0};
  std::uint64_t delivered_flow{0};

  [[nodiscard]] std::uint64_t produced() const noexcept {
    return produced_bgp + produced_flow;
  }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_bgp + delivered_flow;
  }
  [[nodiscard]] double shed_fraction() const noexcept {
    return produced() == 0
               ? 0.0
               : static_cast<double>(shed.shed_total) /
                     static_cast<double>(produced());
  }
};

/// Stream `dataset` through rings -> shedding -> watermark mux -> monitor
/// and finish() it at the corpus end. The accounting identity
/// produced == delivered + shed_total + late_dropped holds on return.
ReplayStats replay_streaming(const core::Dataset& dataset,
                             core::RtbhMonitor& monitor,
                             const ReplayOptions& options);

/// The direct batch merge (the pre-streaming bw-monitor loop): visit both
/// logs in (time, update-before-flow) order and finish(). The convergence
/// reference for replay_streaming.
void replay_batch(const core::Dataset& dataset, core::RtbhMonitor& monitor);

}  // namespace bw::stream
