// Checksummed sectioned file container (version 2 of the .bwds framing).
//
// Layout (all integers little-endian, host-endian assumed homogeneous):
//
//   header   u64 magic "bwds0002"  u32 version(2)  u32 flags(0)
//   payloads section payload blobs, back to back
//   TOC      per section: u32 id  u32 reserved  u64 offset  u64 length
//            u32 crc32c(payload)                               (28 bytes)
//   footer   u32 section_count  u32 crc32c(header ‖ TOC)
//            u64 toc_offset  u64 file_size  u32 magic "bwnd"   (28 bytes)
//
// The TOC lives at the *end* so writers stream payloads without seeking —
// exactly what the atomic temp-then-rename commit wants. Every byte of the
// file is covered by a check: payloads by per-section CRCs, the header and
// TOC by the footer CRC, and the footer fields by cross-validation
// (file_size against the actual size, toc_offset/section_count against the
// bounds, the closing magic literally). Truncation loses the footer, a torn
// in-place write breaks a payload CRC, and a swapped or re-ordered section
// breaks offsets or CRCs — all surfaced as a section-precise util::Status
// instead of a garbage decode.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/checksum.hpp"
#include "util/status.hpp"

namespace bw::util::container {

inline constexpr std::uint64_t kMagic = 0x3230303073647762ULL;  // "bwds0002"
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::uint32_t kFooterMagic = 0x646E7762u;  // "bwnd"
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kTocEntryBytes = 28;
inline constexpr std::size_t kFooterBytes = 28;

/// Four-character section id packed little-endian ("PERI" -> 'P' first).
[[nodiscard]] constexpr std::uint32_t section_id(char a, char b, char c,
                                                 char d) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

[[nodiscard]] std::string section_name(std::uint32_t id);

struct Section {
  std::uint32_t id{0};
  std::uint64_t offset{0};  ///< payload offset from file start
  std::uint64_t length{0};  ///< payload bytes
  std::uint32_t crc{0};     ///< crc32c of the payload
};

struct Toc {
  std::uint32_t version{0};
  std::uint64_t file_size{0};
  std::vector<Section> sections;

  /// First section with `id`, or nullptr.
  [[nodiscard]] const Section* find(std::uint32_t id) const;
};

/// Streaming container writer over a caller-owned ostream. Payload bytes
/// go through write() so lengths and CRCs accumulate without seeking.
class Writer {
 public:
  /// Emits the file header immediately.
  explicit Writer(std::ostream& os);

  void begin_section(std::uint32_t id);
  void write(const void* data, std::size_t n);
  void end_section();

  /// Writes the TOC and footer. Returns the stream's verdict.
  [[nodiscard]] Status finish();

 private:
  std::ostream& os_;
  std::vector<Section> sections_;
  Crc32c meta_crc_;     ///< header ‖ TOC, folded as bytes are emitted
  Crc32c section_crc_;  ///< current section payload
  std::uint64_t written_{0};
  bool in_section_{false};
  bool finished_{false};
};

/// Read and fully validate the footer and TOC of a seekable istream of
/// `file_size` bytes: magics, version, size cross-check, bounds of every
/// section, and the header+TOC checksum. Payload CRCs are NOT checked here
/// (see verify_section) — this call touches only the frame metadata.
[[nodiscard]] Result<Toc> read_toc(std::istream& is, std::uint64_t file_size);

/// Stream `section`'s payload and compare its CRC. Leaves the stream
/// positioned at the section payload start on success.
[[nodiscard]] Status verify_section(std::istream& is, const Section& section);

}  // namespace bw::util::container
