// Concurrency stress for the SPSC ring: the test the TSan job exists for.
//
// Four rings, each with exactly one producer and one consumer thread
// (the ring's entire concurrency contract), a million elements per ring.
// The payload is the push sequence number, so the consumer proves the full
// FIFO property in one pass: every element arrives exactly once, in order
// — no loss, no duplication, no reordering. A capacity-1 ring rides along
// because the single-slot handoff is where acquire/release mistakes are
// cheapest to expose.
#include "stream/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace bw::stream {
namespace {

struct StressResult {
  std::uint64_t popped{0};
  bool in_order{true};
};

void stress_one_ring(std::size_t capacity, std::uint64_t ops,
                     StressResult& result) {
  SpscRing<std::uint64_t> ring(capacity);
  std::thread producer([&] {
    for (std::uint64_t v = 0; v < ops; ++v) {
      while (!ring.try_push(std::uint64_t{v})) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < ops) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      if (out != expected) {
        result.in_order = false;
        break;
      }
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  result.popped = expected;
}

TEST(SpscRingStressTest, FourRingsMillionOpsNoLossNoDupNoReorder) {
  constexpr std::uint64_t kOps = 1'000'000;
  constexpr std::size_t kRings = 4;
  const std::size_t capacities[kRings] = {64, 256, 1024, 4096};

  std::vector<StressResult> results(kRings);
  std::vector<std::thread> harness;
  harness.reserve(kRings);
  for (std::size_t r = 0; r < kRings; ++r) {
    harness.emplace_back(
        [&, r] { stress_one_ring(capacities[r], kOps, results[r]); });
  }
  for (auto& t : harness) t.join();

  for (std::size_t r = 0; r < kRings; ++r) {
    EXPECT_TRUE(results[r].in_order) << "ring " << r << " reordered/lost";
    EXPECT_EQ(results[r].popped, kOps) << "ring " << r;
  }
}

TEST(SpscRingStressTest, CapacityOneHandoffUnderConcurrency) {
  constexpr std::uint64_t kOps = 100'000;
  StressResult result;
  stress_one_ring(1, kOps, result);
  EXPECT_TRUE(result.in_order);
  EXPECT_EQ(result.popped, kOps);
}

}  // namespace
}  // namespace bw::stream
