// MAC address value type. At the IXP, sampled packets are attributed to
// member ASes by mapping source/destination MACs to router interfaces
// (Section 3.1); dropped traffic is identified by a unique blackhole MAC.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bw::net {

class Mac {
 public:
  constexpr Mac() = default;
  constexpr explicit Mac(std::uint64_t bits) : value_(bits & kMask) {}

  /// Parse colon-separated hex notation "aa:bb:cc:dd:ee:ff".
  static std::optional<Mac> parse(std::string_view text);

  /// Deterministically derive the router-interface MAC of an IXP member
  /// port. Uses a locally-administered OUI so synthetic MACs are marked.
  static constexpr Mac for_member_port(std::uint32_t member_id) noexcept {
    return Mac((std::uint64_t{0x02'42'00} << 24) | member_id);
  }

  /// The IXP's dedicated non-forwarding blackhole MAC (Section 3.1:
  /// "a unique (blackhole) MAC address that does not forward data").
  static constexpr Mac blackhole() noexcept { return Mac(0x06'66'00'00'00'66ULL); }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Mac, Mac) = default;

 private:
  static constexpr std::uint64_t kMask = 0xFFFF'FFFF'FFFFULL;
  std::uint64_t value_{0};
};

}  // namespace bw::net

template <>
struct std::hash<bw::net::Mac> {
  std::size_t operator()(bw::net::Mac m) const noexcept {
    return std::hash<std::uint64_t>{}(m.value());
  }
};
