#include "bgp/message.hpp"

#include <algorithm>
#include <sstream>

namespace bw::bgp {

std::string_view to_string(UpdateType t) {
  return t == UpdateType::kAnnounce ? "ANNOUNCE" : "WITHDRAW";
}

std::string Update::to_string() const {
  std::ostringstream os;
  os << util::format_time(time) << ' ' << bgp::to_string(type) << ' '
     << prefix.to_string() << " via AS" << sender_asn << " origin AS"
     << origin_asn;
  if (is_blackhole()) os << " [BLACKHOLE]";
  return os.str();
}

void sort_updates(UpdateLog& log) {
  std::stable_sort(log.begin(), log.end(), [](const Update& a, const Update& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.type == UpdateType::kWithdraw && b.type == UpdateType::kAnnounce;
  });
}

}  // namespace bw::bgp
