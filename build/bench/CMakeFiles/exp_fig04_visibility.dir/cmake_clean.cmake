file(REMOVE_RECURSE
  "CMakeFiles/exp_fig04_visibility.dir/exp_fig04_visibility.cpp.o"
  "CMakeFiles/exp_fig04_visibility.dir/exp_fig04_visibility.cpp.o.d"
  "exp_fig04_visibility"
  "exp_fig04_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig04_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
