// Example: run the online RTBH monitor over a scenario, replayed in
// timestamp order exactly as a live collector would deliver it.
//
// Prints the first alerts of each kind plus a summary comparing the online
// event segmentation with the offline pipeline — the operator-facing
// counterpart of the paper's retrospective analysis.
//
//   ./live_monitor [scale]
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bw;
  gen::ScenarioConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.04;
  if (cfg.scale <= 0.0) cfg.scale = 0.04;

  std::cout << "Generating scenario at scale " << cfg.scale << "...\n";
  const core::ScenarioRun run = core::run_scenario(cfg, std::string{});

  std::map<core::AlertKind, std::size_t> counts;
  std::map<core::AlertKind, std::vector<std::string>> first;
  core::RtbhMonitor monitor({}, [&](const core::Alert& alert) {
    ++counts[alert.kind];
    auto& shown = first[alert.kind];
    if (shown.size() < 3) {
      shown.push_back("[" + util::format_time(alert.time) + "] " +
                      std::string(core::to_string(alert.kind)) + ": " +
                      alert.message);
    }
  });

  // Replay both feeds chronologically, as a collector tap would.
  const auto& updates = run.dataset.blackhole_updates();
  const auto& flows = run.dataset.flows();
  std::size_t ui = 0;
  std::size_t fi = 0;
  while (ui < updates.size() || fi < flows.size()) {
    const bool take_update =
        fi >= flows.size() ||
        (ui < updates.size() && updates[ui].time <= flows[fi].time);
    if (take_update) monitor.on_update(updates[ui++]);
    else monitor.on_flow(flows[fi++]);
  }
  monitor.finish(run.dataset.period().end);

  std::cout << "\nSample alerts:\n";
  for (const auto& [kind, lines] : first) {
    for (const auto& line : lines) std::cout << "  " << line << "\n";
  }

  const auto offline = core::merge_events(run.dataset.blackhole_updates(),
                                          run.dataset.period().end);
  util::TextTable table({"signal", "count"});
  for (const auto& [kind, n] : counts) {
    table.add_row({std::string(core::to_string(kind)),
                   util::fmt_count(static_cast<std::int64_t>(n))});
  }
  std::cout << "\n" << table;
  std::cout << "\nOnline events: " << monitor.total_events()
            << " | offline merge: " << offline.size() << " ("
            << util::fmt_percent(
                   static_cast<double>(monitor.total_events()) /
                       static_cast<double>(offline.size()),
                   1)
            << " agreement)\n";
  std::cout << "Every signal here is available *while the blackhole is "
               "still up* — the\npaper's retrospect (leaky /32s, forgotten "
               "zombies) becomes an operator alert.\n";
  return 0;
}
