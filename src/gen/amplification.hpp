// Amplifier population model.
//
// UDP reflection attacks bounce off real, unspoofed amplifiers (open DNS
// resolvers, NTP servers, ...). Section 5.5 of the paper exploits exactly
// this: because reflector source addresses are genuine, the *origin AS* of
// attack traffic can be determined, and the amplifier population turns out
// to be highly distributed (11,124 origin ASes; on average 1,086 amplifiers
// per attack; one AS participating in ~60% of all attacks).
//
// This pool reproduces that structure: amplifiers spread over many origin
// ASes with a heavy-tailed size distribution and one dominant
// amplifier-rich origin.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/community.hpp"
#include "flow/record.hpp"
#include "net/ipv4.hpp"
#include "net/ports.hpp"
#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace bw::gen {

struct Amplifier {
  net::Ipv4 ip;
  bgp::Asn origin{0};          ///< real (unspoofed) origin AS
  flow::MemberId handover{0};  ///< IXP member carrying this origin
  net::Port udp_port{0};       ///< amplification protocol port
};

struct AmplifierPoolConfig {
  std::size_t origin_as_count{1100};
  std::size_t amplifier_count{20000};
  /// Pareto shape for amplifiers-per-origin (smaller = heavier tail).
  /// 3.0 yields a skewed but not single-origin-dominated population, in
  /// line with the paper's "highly distributed" amplifier usage.
  double origin_size_shape{3.0};
  /// Fraction of all amplifiers hosted by the single dominant origin AS —
  /// drives the "one AS in 60% of attacks" effect of Fig. 15.
  double dominant_origin_share{0.06};
  bgp::Asn first_origin_asn{210000};
};

class AmplifierPool {
 public:
  /// Build the pool. `handover_members` are the member ids eligible to
  /// carry amplifier origins (each origin is pinned to one of them).
  AmplifierPool(const AmplifierPoolConfig& config,
                std::vector<flow::MemberId> handover_members, util::Rng rng);

  /// Draw `count` distinct amplifiers speaking `udp_port`. When the pool
  /// has fewer, all of them are returned. The dominant origin is included
  /// with probability `dominant_origin_share`-weighted draws, reproducing
  /// its outsized participation.
  [[nodiscard]] std::vector<const Amplifier*> draw(net::Port udp_port,
                                                   std::size_t count,
                                                   util::Rng& rng) const;

  [[nodiscard]] const std::vector<Amplifier>& all() const noexcept {
    return amplifiers_;
  }
  /// Origin ASes with their source prefixes, for platform registration.
  struct OriginInfo {
    bgp::Asn asn{0};
    net::Prefix prefix;
    flow::MemberId handover{0};
  };
  [[nodiscard]] const std::vector<OriginInfo>& origins() const noexcept {
    return origins_;
  }
  [[nodiscard]] bgp::Asn dominant_origin() const noexcept {
    return dominant_origin_;
  }

 private:
  std::vector<Amplifier> amplifiers_;
  std::vector<OriginInfo> origins_;
  /// Indices into amplifiers_ per amplification port.
  std::vector<std::pair<net::Port, std::vector<std::size_t>>> by_port_;
  bgp::Asn dominant_origin_{0};
};

}  // namespace bw::gen
