file(REMOVE_RECURSE
  "CMakeFiles/exp_fig10_merge_threshold.dir/exp_fig10_merge_threshold.cpp.o"
  "CMakeFiles/exp_fig10_merge_threshold.dir/exp_fig10_merge_threshold.cpp.o.d"
  "exp_fig10_merge_threshold"
  "exp_fig10_merge_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig10_merge_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
