// Example: study one DDoS mitigation end to end.
//
// Builds a small IXP with three peers of different RTBH import policies,
// launches a two-vector amplification attack against a web server, lets an
// automatic mitigation system announce on/off blackholes (Fig. 9), and then
// walks the analysis chain over the resulting corpus: event merging,
// pre-RTBH anomaly detection, drop-rate accounting, and the fine-grained
// filtering what-if.
//
//   ./ddos_mitigation_study
#include <iostream>

#include "core/drop_rate.hpp"
#include "core/event_merge.hpp"
#include "core/filtering.hpp"
#include "core/pre_rtbh.hpp"
#include "core/protocol_mix.hpp"
#include "gen/amplification.hpp"
#include "gen/ddos.hpp"
#include "gen/operator_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace bw;

  // --- A minimal IXP: victim's upstream plus two transit peers. ---
  ixp::PlatformConfig pcfg;
  pcfg.period = {0, util::days(8)};
  pcfg.sampling_rate = 100;  // denser sampling for a readable small demo
  pcfg.clock.offset_ms = -40;
  pcfg.seed = 7;
  ixp::Platform ixp(pcfg);

  const auto upstream = ixp.add_member(
      64500, {.blackhole = bgp::BlackholeAcceptance::kAcceptAll},
      {*net::Prefix::parse("24.10.0.0/16")});
  const auto good_transit = ixp.add_member(
      64501, {.blackhole = bgp::BlackholeAcceptance::kWhitelistHost},
      {*net::Prefix::parse("16.0.0.0/16")});
  const auto lazy_transit = ixp.add_member(
      64502, {.blackhole = bgp::BlackholeAcceptance::kClassfulOnly},
      {*net::Prefix::parse("16.1.0.0/16")});
  (void)upstream;

  const net::Ipv4 victim(24, 10, 0, 80);  // the web server under attack
  std::cout << "Victim " << victim.to_string()
            << " behind AS64500; transit peers AS64501 (whitelists /32) and "
               "AS64502 (stock /24 filter).\n";

  // --- Amplifier ecosystem behind the two transit peers. ---
  gen::AmplifierPoolConfig acfg;
  acfg.origin_as_count = 40;
  acfg.amplifier_count = 3000;
  gen::AmplifierPool pool(acfg, {good_transit, lazy_transit}, util::Rng(1));
  for (const auto& origin : pool.origins()) {
    ixp.register_origin(origin.prefix, origin.asn, origin.handover);
  }

  // --- The attack: NTP + cLDAP reflection, day 5, ~75 minutes. ---
  gen::AttackSpec attack;
  attack.victim = victim;
  attack.window = {util::days(5), util::days(5) + util::minutes(75.0)};
  attack.total_packets = 40'000'000;
  attack.amplifier_count = 120;
  attack.vectors.push_back({gen::VectorKind::kUdpAmplification, 123, 0.6});
  attack.vectors.push_back({gen::VectorKind::kUdpAmplification, 389, 0.4});

  // --- Automatic mitigation reacting to the attack. ---
  gen::OperatorModel op(ixp.service(), util::Rng(2));
  gen::MitigationBehavior behavior;
  behavior.mean_cycles = 10;
  const auto mitigation =
      op.mitigate(net::Prefix::host(victim), 64500, 65000,
                  attack.window.begin, attack.window.length(),
                  pcfg.period.end, behavior);
  std::cout << "Mitigation: " << mitigation.announcements
            << " announce/withdraw cycles, first announcement "
            << util::format_duration(mitigation.span.begin -
                                     attack.window.begin)
            << " after attack start.\n\n";

  // --- Replay: attack + some legitimate background to the victim. ---
  auto result = ixp.run(mitigation.updates, [&](const auto& sink) {
    gen::DdosGenerator ddos(pool, util::Rng(3));
    ddos.emit(attack, std::vector<flow::MemberId>{good_transit, lazy_transit},
              sink);
    // Daily HTTPS traffic towards the victim from a fixed client.
    for (int day = 0; day < 8; ++day) {
      flow::TrafficBurst b;
      b.window = {day * util::kDay + 9 * util::kHour,
                  day * util::kDay + 17 * util::kHour};
      b.src_ip = net::Ipv4(16, 0, 0, 10);
      b.dst_ip = victim;
      b.proto = net::Proto::kTcp;
      b.src_port = 40000;
      b.dst_port = 443;
      b.packets = 200'000;
      b.avg_packet_bytes = 800;
      b.handover = good_transit;
      sink(b);
    }
  });

  const core::Dataset dataset =
      core::Dataset::from_run(std::move(result), ixp);
  const auto summary = dataset.summary();
  std::cout << "Corpus: " << summary.flow_records << " sampled records, "
            << summary.dropped_packets << " dropped.\n";

  // --- Analysis chain. ---
  const auto events =
      core::merge_events(dataset.blackhole_updates(), dataset.period().end);
  std::cout << "Merged " << summary.blackhole_updates
            << " BGP updates into " << events.size() << " RTBH event(s).\n";

  const auto pre = core::compute_pre_rtbh(dataset, events);
  for (const auto& r : pre.per_event) {
    std::cout << "Event on " << events[r.event_index].prefix.to_string()
              << ": anomaly within 10 min = "
              << (r.anomaly_within_10min ? "YES" : "no")
              << ", max anomaly level " << r.max_level << "/5\n";
  }

  const auto drop = core::compute_drop_rates(dataset, events);
  util::TextTable table({"prefix len", "packets", "dropped"});
  for (const auto& s : drop.by_length) {
    table.add_row({"/" + std::to_string(static_cast<int>(s.length)),
                   std::to_string(s.packets_total),
                   util::fmt_percent(s.packet_drop_rate(), 1)});
  }
  std::cout << "\nDrop accounting during blackhole activity:\n" << table;
  std::cout << "AS64501 whitelists /32 -> its share drops; AS64502 keeps "
               "forwarding (stock <= /24 filter).\n\n";

  const auto mixr = core::compute_protocol_mix(dataset, events, pre);
  std::cout << "Attack protocol mix: " << util::fmt_percent(mixr.udp_share, 1)
            << " UDP; amplification protocols seen:";
  for (const auto& [name, n] : mixr.protocol_event_counts) {
    std::cout << " " << name;
  }
  const auto filt = core::compute_filtering(dataset, events, pre);
  std::cout << "\nFine-grained filter coverage: "
            << (filt.coverage.empty()
                    ? std::string("n/a")
                    : util::fmt_percent(filt.coverage.front(), 1))
            << " of the event's packets match known amplification ports —\n"
            << "an ACL on those ports would have spared the legitimate "
               "HTTPS flows the blackhole discarded.\n";
  return 0;
}
