// Synthetic PeeringDB substitute.
//
// The paper joins its traffic-derived AS sets against PeeringDB to group
// ASes by organisation type (Fig. 8) and to type client/server victims
// (Table 4). PeeringDB itself is an online, user-maintained database we
// cannot ship; this registry reproduces its *join semantics*: a partial
// (some ASes are simply absent → "Unknown"), typed, scoped AS directory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace bw::pdb {

using Asn = std::uint32_t;

/// PeeringDB "info_type" categories used by the paper.
enum class OrgType : std::uint8_t {
  kContent,
  kCableDslIsp,
  kNsp,           ///< network service provider (transit)
  kEnterprise,
  kEducational,
  kNonProfit,
  kRouteServer,
  kUnknown,       ///< AS not present in the registry / type not disclosed
};

/// PeeringDB "info_scope" categories (Fig. 8 splits NSPs by scope).
enum class Scope : std::uint8_t {
  kGlobal,
  kEurope,
  kNorthAmerica,
  kAsiaPacific,
  kRegional,
  kUnknown,
};

[[nodiscard]] std::string_view to_string(OrgType t);
[[nodiscard]] std::string_view to_string(Scope s);

struct OrgRecord {
  Asn asn{0};
  OrgType type{OrgType::kUnknown};
  Scope scope{Scope::kUnknown};
};

class Registry {
 public:
  /// Insert or replace a record.
  void upsert(const OrgRecord& record);

  /// Lookup; nullopt when the AS is not listed (the paper maps these to
  /// "Unknown" in Table 4).
  [[nodiscard]] std::optional<OrgRecord> find(Asn asn) const;

  /// Type lookup that folds missing ASes into kUnknown.
  [[nodiscard]] OrgType type_of(Asn asn) const;
  [[nodiscard]] Scope scope_of(Asn asn) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Marginal distribution for synthesising a realistic registry. Weights
  /// need not sum to 1.
  struct Marginals {
    double content{0.12};
    double cable_dsl_isp{0.35};
    double nsp{0.22};
    double enterprise{0.06};
    double educational{0.04};
    double non_profit{0.03};
    /// Probability that an AS is missing from the registry entirely
    /// (PeeringDB coverage is far from complete).
    double absent{0.18};
  };

  /// Populate the registry with `asns`, drawing types from `marginals`.
  /// ASes that draw "absent" are left out of the registry.
  static Registry synthesize(std::span<const Asn> asns,
                             const Marginals& marginals, util::Rng& rng);

 private:
  std::unordered_map<Asn, OrgRecord> records_;
};

}  // namespace bw::pdb
