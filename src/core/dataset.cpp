#include "core/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/container.hpp"
#include "util/parallel.hpp"

namespace bw::core {

namespace {

/// dataset.{save,load}.{ok,fail,wall_us} plus a latency histogram — the
/// numbers that separate "cache hit" from "regenerate + save" in a run
/// manifest at a glance.
struct IoMetrics {
  obs::Counter* ok;
  obs::Counter* fail;
  obs::Counter* wall_us;
  obs::Histogram* latency;
};

const IoMetrics& io_metrics(const char* op) {
  auto make = [](const std::string& base) {
    auto& reg = obs::Registry::global();
    return IoMetrics{&reg.counter(base + ".ok"), &reg.counter(base + ".fail"),
                     &reg.counter(base + ".wall_us"),
                     &reg.histogram(base + ".latency_us")};
  };
  static const IoMetrics save = make("dataset.save");
  static const IoMetrics load = make("dataset.load");
  return op[0] == 's' ? save : load;
}

void record_io(const IoMetrics& m, bool succeeded, const obs::StopWatch& wall) {
  const std::uint64_t us = wall.elapsed_us();
  (succeeded ? m.ok : m.fail)->add();
  m.wall_us->add(us);
  m.latency->record(us);
}

}  // namespace

Dataset Dataset::from_run(ixp::RunResult run, const ixp::Platform& platform) {
  std::unordered_map<net::Mac, bgp::Asn> macs;
  for (const auto& m : platform.members()) macs[m.port_mac] = m.asn;
  // The platform's origin table is the BGP-derived prefix->origin view the
  // paper resolves source addresses against.
  auto origins = platform.origin_prefix_table();
  return Dataset(std::move(run.control), std::move(run.data), std::move(macs),
                 std::move(origins), platform.config().period);
}

Dataset::Dataset(bgp::UpdateLog control, flow::FlowLog data,
                 std::unordered_map<net::Mac, bgp::Asn> mac_to_asn,
                 std::vector<std::pair<net::Prefix, bgp::Asn>> origin_prefixes,
                 util::TimeRange period, const BuildOptions& options)
    : control_(std::move(control)),
      data_(std::move(data)),
      mac_to_asn_(std::move(mac_to_asn)),
      origin_prefixes_(std::move(origin_prefixes)),
      period_(period) {
  sanitize(options);
  build_indices();
}

namespace {

/// Adjacent input-order time inversions — what an out-of-order feed looks
/// like before the build sorts it.
template <typename Records>
std::size_t count_inversions(const Records& records) {
  std::size_t n = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].time < records[i - 1].time) ++n;
  }
  return n;
}

bool flow_records_equal(const flow::FlowRecord& a, const flow::FlowRecord& b) {
  return a.time == b.time && a.src_ip == b.src_ip && a.dst_ip == b.dst_ip &&
         a.proto == b.proto && a.src_port == b.src_port &&
         a.dst_port == b.dst_port && a.src_mac == b.src_mac &&
         a.dst_mac == b.dst_mac && a.packets == b.packets && a.bytes == b.bytes;
}

/// Total order over every FlowRecord field, so exact duplicates sort
/// adjacent and the dedupe pass is thread-count independent.
bool flow_record_less(const flow::FlowRecord& a, const flow::FlowRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.src_ip != b.src_ip) return a.src_ip < b.src_ip;
  if (a.dst_ip != b.dst_ip) return a.dst_ip < b.dst_ip;
  if (a.proto != b.proto) return a.proto < b.proto;
  if (a.src_port != b.src_port) return a.src_port < b.src_port;
  if (a.dst_port != b.dst_port) return a.dst_port < b.dst_port;
  if (a.src_mac != b.src_mac) return a.src_mac < b.src_mac;
  if (a.dst_mac != b.dst_mac) return a.dst_mac < b.dst_mac;
  if (a.packets != b.packets) return a.packets < b.packets;
  return a.bytes < b.bytes;
}

}  // namespace

void Dataset::sanitize(const BuildOptions& options) {
  quality_.reordered_updates = count_inversions(control_);
  quality_.reordered_flows = count_inversions(data_);

  if (options.quarantine_out_of_period) {
    const util::TimeMs lo = period_.begin - options.period_slack;
    const util::TimeMs hi = period_.end + options.period_slack;
    auto out_of_period = [&](util::TimeMs t) { return t < lo || t >= hi; };
    const std::size_t control_before = control_.size();
    std::erase_if(control_,
                  [&](const bgp::Update& u) { return out_of_period(u.time); });
    quality_.out_of_period_updates = control_before - control_.size();
    const std::size_t flows_before = data_.size();
    std::erase_if(data_, [&](const flow::FlowRecord& r) {
      return out_of_period(r.time);
    });
    quality_.out_of_period_flows = flows_before - data_.size();
  }

  if (options.dedupe_flows && !data_.empty()) {
    // Full-key sort makes exact duplicates adjacent; build_indices re-sorts
    // by time afterwards, so the record order analyses see is unchanged.
    util::parallel_sort(util::ThreadPool::global(), data_.begin(), data_.end(),
                        flow_record_less);
    const std::size_t before = data_.size();
    data_.erase(std::unique(data_.begin(), data_.end(), flow_records_equal),
                data_.end());
    quality_.duplicate_flows = before - data_.size();
  }

  // Unattributable MACs (e.g. a damaged MAC table): flows whose handover
  // port — or egress port, blackhole MAC aside — has no member mapping.
  const net::Mac blackhole = net::Mac::blackhole();
  for (const auto& r : data_) {
    const bool src_unknown = mac_to_asn_.find(r.src_mac) == mac_to_asn_.end();
    const bool dst_unknown = r.dst_mac != blackhole &&
                             mac_to_asn_.find(r.dst_mac) == mac_to_asn_.end();
    if (src_unknown || dst_unknown) ++quality_.unknown_mac_flows;
  }
}

void Dataset::build_indices() {
  util::ThreadPool& pool = util::ThreadPool::global();

  // Sort the two raw corpora concurrently; each sort is itself parallel.
  // Both comparators, with parallel_sort's stability, yield an order that
  // is independent of the thread count.
  auto control_sorted = pool.submit([&] {
    util::parallel_sort(pool, control_.begin(), control_.end(),
                        [](const bgp::Update& a, const bgp::Update& b) {
                          if (a.time != b.time) return a.time < b.time;
                          return a.type == bgp::UpdateType::kWithdraw &&
                                 b.type == bgp::UpdateType::kAnnounce;
                        });
  });
  util::parallel_sort(pool, data_.begin(), data_.end(),
                      [](const flow::FlowRecord& a, const flow::FlowRecord& b) {
                        return a.time < b.time;
                      });
  control_sorted.get();

  // The route-server replay is inherently sequential (open/close state),
  // but it only walks the control plane — overlap it with the trie build
  // and the flow-index sorts below.
  auto blackholes_done = pool.submit([&] {
    blackhole_updates_.clear();
    for (const auto& u : control_) {
      if (!u.is_blackhole()) continue;
      blackhole_updates_.push_back(u);
      if (u.type == bgp::UpdateType::kAnnounce) {
        rs_index_.open(u.prefix, u.time, u.communities, u.sender_asn);
      } else {
        rs_index_.close(u.prefix, u.time);
      }
    }
    rs_index_.finalize(period_.end);
  });
  auto lpm_done = pool.submit([&] {
    // FlatLpm freezes the origin table with last-wins dedupe — exactly the
    // overwrite semantics the trie's insert loop had.
    origin_lpm_ = net::FlatLpm<bgp::Asn>(origin_prefixes_);
  });

  by_dst_.resize(data_.size());
  by_src_.resize(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) by_dst_[i] = by_src_[i] = i;
  // Tie-break on the flow index so the comparators induce a total order:
  // the sorted indices are then unique, i.e. identical at any thread count.
  auto by_dst_done = pool.submit([&] {
    util::parallel_sort(pool, by_dst_.begin(), by_dst_.end(),
                        [this](std::size_t a, std::size_t b) {
                          if (data_[a].dst_ip != data_[b].dst_ip) {
                            return data_[a].dst_ip < data_[b].dst_ip;
                          }
                          if (data_[a].time != data_[b].time) {
                            return data_[a].time < data_[b].time;
                          }
                          return a < b;
                        });
  });
  util::parallel_sort(pool, by_src_.begin(), by_src_.end(),
                      [this](std::size_t a, std::size_t b) {
                        if (data_[a].src_ip != data_[b].src_ip) {
                          return data_[a].src_ip < data_[b].src_ip;
                        }
                        if (data_[a].time != data_[b].time) {
                          return data_[a].time < data_[b].time;
                        }
                        return a < b;
                      });

  // Dense member-source table: ascending unique source ASes, plus the
  // MAC -> dense id map the column build resolves handover MACs through.
  // Iterating a flat per-id array then visits ASes in ascending-ASN order,
  // i.e. exactly the order a std::map<Asn, ...> accumulation produces.
  source_as_.clear();
  source_as_.reserve(mac_to_asn_.size());
  for (const auto& [mac, asn] : mac_to_asn_) source_as_.push_back(asn);
  std::sort(source_as_.begin(), source_as_.end());
  source_as_.erase(std::unique(source_as_.begin(), source_as_.end()),
                   source_as_.end());
  std::unordered_map<net::Mac, std::uint32_t> member_ids;
  member_ids.reserve(mac_to_asn_.size());
  for (const auto& [mac, asn] : mac_to_asn_) {
    member_ids[mac] = static_cast<std::uint32_t>(
        std::lower_bound(source_as_.begin(), source_as_.end(), asn) -
        source_as_.begin());
  }

  by_dst_done.get();
  columns_ = flow::FlowColumns::build(data_, by_dst_, by_src_, member_ids,
                                      pool);
  blackholes_done.get();
  lpm_done.get();
}

std::optional<bgp::Asn> Dataset::member_asn(net::Mac mac) const {
  const auto it = mac_to_asn_.find(mac);
  if (it == mac_to_asn_.end()) return std::nullopt;
  return it->second;
}

std::optional<bgp::Asn> Dataset::origin_asn(net::Ipv4 src) const {
  const bgp::Asn* asn = origin_lpm_.match(src);
  if (asn == nullptr) return std::nullopt;
  return *asn;
}

std::vector<std::size_t> Dataset::flows_to(const net::Prefix& prefix,
                                           util::TimeRange range) const {
  std::vector<std::size_t> out;
  scan_sorted_index(
      by_dst_, prefix, range,
      [](const flow::FlowRecord& r) { return r.dst_ip; },
      [&](std::size_t idx, const flow::FlowRecord&) { out.push_back(idx); });
  return out;
}

std::vector<std::size_t> Dataset::flows_from(const net::Prefix& prefix,
                                             util::TimeRange range) const {
  std::vector<std::size_t> out;
  scan_sorted_index(
      by_src_, prefix, range,
      [](const flow::FlowRecord& r) { return r.src_ip; },
      [&](std::size_t idx, const flow::FlowRecord&) { out.push_back(idx); });
  return out;
}

Dataset::Summary Dataset::summary(util::ThreadPool* pool_opt,
                                  KernelEngine engine) const {
  Summary s;
  s.control_updates = control_.size();
  s.blackhole_updates = blackhole_updates_.size();
  s.blackholed_prefixes = rs_index_.prefix_count();
  s.flow_records = data_.size();

  // Shard the volume sums over the pool; integer addition is associative,
  // so the merged totals are exact at any thread count and identical under
  // either engine (the columns are a permutation of the records).
  util::ThreadPool& pool = util::pool_or_global(pool_opt);
  struct Volume {
    std::uint64_t packets{0}, bytes{0}, dropped_packets{0}, dropped_bytes{0};
  };
  const std::size_t shards =
      std::clamp<std::size_t>(data_.size() / 65536, 1, 64);
  const std::size_t shard_len = (data_.size() + shards - 1) / shards;
  std::vector<Volume> sums;
  if (engine == KernelEngine::kColumnar) {
    static const KernelScanMetrics metrics = make_kernel_scan_metrics("summary");
    const obs::StopWatch watch;
    const std::uint32_t* const packets = columns_.packets.data();
    const std::uint64_t* const bytes = columns_.bytes.data();
    sums = util::parallel_map(pool, shards, [&](std::size_t k) {
      Volume v;
      const std::size_t end = std::min(columns_.size(), (k + 1) * shard_len);
      for (std::size_t i = k * shard_len; i < end; ++i) {
        v.packets += packets[i];
        v.bytes += bytes[i];
        if (columns_.dropped(i)) {
          v.dropped_packets += packets[i];
          v.dropped_bytes += bytes[i];
        }
      }
      return v;
    });
    metrics.rows->add(columns_.size());
    metrics.ns->add(watch.elapsed_ns());
  } else {
    sums = util::parallel_map(pool, shards, [&](std::size_t k) {
      Volume v;
      const std::size_t end = std::min(data_.size(), (k + 1) * shard_len);
      for (std::size_t i = k * shard_len; i < end; ++i) {
        const auto& r = data_[i];
        v.packets += r.packets;
        v.bytes += r.bytes;
        if (r.dropped()) {
          v.dropped_packets += r.packets;
          v.dropped_bytes += r.bytes;
        }
      }
      return v;
    });
  }
  for (const Volume& v : sums) {
    s.sampled_packets += v.packets;
    s.sampled_bytes += v.bytes;
    s.dropped_packets += v.dropped_packets;
    s.dropped_bytes += v.dropped_bytes;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Binary persistence — checksummed sectioned container (see util/container)
// ---------------------------------------------------------------------------

namespace {

// Section ids of the v2 .bwds container. Each section carries its own
// length and CRC32C frame, so corruption is reported per section instead of
// surfacing as a garbage decode somewhere downstream.
constexpr std::uint32_t kSecPeriod = util::container::section_id('P', 'E', 'R', 'I');
constexpr std::uint32_t kSecControl = util::container::section_id('C', 'T', 'R', 'L');
constexpr std::uint32_t kSecFlows = util::container::section_id('F', 'L', 'O', 'W');
constexpr std::uint32_t kSecMacs = util::container::section_id('M', 'A', 'C', 'S');
constexpr std::uint32_t kSecOrigins = util::container::section_id('O', 'R', 'I', 'G');

template <typename T>
void put(util::container::Writer& w, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.write(&v, sizeof(v));
}

template <typename T>
T get(std::ifstream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void put_u64(util::container::Writer& w, std::uint64_t v) { put(w, v); }
std::uint64_t get_u64(std::ifstream& is) { return get<std::uint64_t>(is); }

// On-disk mirrors of the fixed-size table entries, packed to the exact byte
// layout the per-field put/get calls historically produced. Bulk span IO
// over these is format-identical to the field-at-a-time loops it replaced —
// only the syscall/copy count changes.
#pragma pack(push, 1)
struct DiskFlowRecord {
  util::TimeMs time;
  std::uint32_t src_ip;
  std::uint32_t dst_ip;
  std::uint8_t proto;
  net::Port src_port;
  net::Port dst_port;
  std::uint64_t src_mac;
  std::uint64_t dst_mac;
  std::uint32_t packets;
  std::uint64_t bytes;
};
struct DiskMacEntry {
  std::uint64_t mac;
  bgp::Asn asn;
};
struct DiskOriginEntry {
  std::uint32_t network;
  std::uint8_t length;
  bgp::Asn asn;
};
#pragma pack(pop)
static_assert(sizeof(DiskFlowRecord) == 49);
static_assert(sizeof(DiskMacEntry) == 8 + sizeof(bgp::Asn));
static_assert(sizeof(DiskOriginEntry) == 5 + sizeof(bgp::Asn));

/// Convert-and-write in bounded chunks: bulk IO without doubling the
/// resident corpus.
template <typename T, typename It, typename Fn>
void put_span(util::container::Writer& w, It first, It last, Fn to_disk) {
  constexpr std::size_t kChunk = 1 << 16;
  std::vector<T> buffer;
  buffer.reserve(std::min<std::size_t>(
      kChunk, static_cast<std::size_t>(std::distance(first, last))));
  while (first != last) {
    buffer.clear();
    for (; first != last && buffer.size() < kChunk; ++first) {
      buffer.push_back(to_disk(*first));
    }
    w.write(buffer.data(), buffer.size() * sizeof(T));
  }
}

template <typename T, typename Fn>
void get_span(std::ifstream& is, std::uint64_t count, Fn from_disk) {
  constexpr std::size_t kChunk = 1 << 16;
  std::vector<T> buffer(std::min<std::size_t>(kChunk, count));
  while (count > 0 && is) {
    const std::size_t n = std::min<std::uint64_t>(kChunk, count);
    is.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!is) return;
    for (std::size_t i = 0; i < n; ++i) from_disk(buffer[i]);
    count -= n;
  }
}

}  // namespace

util::Status Dataset::try_save(const std::string& path) const {
  const obs::TraceSpan span("dataset.try_save", "io");
  const obs::StopWatch wall;
  // Atomic commit: the container streams into `<path>.tmp`, which is
  // fsync'd and renamed over `path` only once complete — a crash mid-save
  // leaves the previous file (or nothing), never a torn one.
  util::Status st = util::atomic_write_file(path, [&](std::ostream& os) -> util::Status {
    util::container::Writer w(os);

    w.begin_section(kSecPeriod);
    put(w, period_.begin);
    put(w, period_.end);
    w.end_section();

    w.begin_section(kSecControl);
    put_u64(w, control_.size());
    for (const auto& u : control_) {
      put(w, u.time);
      put(w, static_cast<std::uint8_t>(u.type));
      put(w, u.sender_asn);
      put(w, u.origin_asn);
      put(w, u.prefix.network().value());
      put(w, u.prefix.length());
      put(w, u.next_hop.value());
      put_u64(w, u.communities.size());
      for (const auto& c : u.communities) {
        put(w, c.global);
        put(w, c.local);
      }
    }
    w.end_section();

    w.begin_section(kSecFlows);
    put_u64(w, data_.size());
    put_span<DiskFlowRecord>(w, data_.begin(), data_.end(),
                             [](const flow::FlowRecord& r) {
                               return DiskFlowRecord{
                                   r.time,
                                   r.src_ip.value(),
                                   r.dst_ip.value(),
                                   static_cast<std::uint8_t>(r.proto),
                                   r.src_port,
                                   r.dst_port,
                                   r.src_mac.value(),
                                   r.dst_mac.value(),
                                   r.packets,
                                   r.bytes,
                               };
                             });
    w.end_section();

    w.begin_section(kSecMacs);
    put_u64(w, mac_to_asn_.size());
    put_span<DiskMacEntry>(w, mac_to_asn_.begin(), mac_to_asn_.end(),
                           [](const auto& entry) {
                             return DiskMacEntry{entry.first.value(),
                                                 entry.second};
                           });
    w.end_section();

    w.begin_section(kSecOrigins);
    put_u64(w, origin_prefixes_.size());
    put_span<DiskOriginEntry>(w, origin_prefixes_.begin(),
                              origin_prefixes_.end(), [](const auto& entry) {
                                return DiskOriginEntry{
                                    entry.first.network().value(),
                                    entry.first.length(), entry.second};
                              });
    w.end_section();

    return w.finish().with_context("Dataset::try_save: " + path);
  });
  record_io(io_metrics("save"), st.ok(), wall);
  return st;
}

void Dataset::save(const std::string& path) const {
  const util::Status st = try_save(path);
  if (!st.ok()) throw std::runtime_error(st.to_string());
}

namespace {

/// Locate `id` in the TOC, verify its payload CRC, and leave `is` at the
/// payload start. Returns the section (for exact-length validation).
util::Result<util::container::Section> open_section(
    std::ifstream& is, const util::container::Toc& toc, std::uint32_t id) {
  const util::container::Section* sec = toc.find(id);
  if (sec == nullptr) {
    return util::data_loss("missing section " +
                           util::container::section_name(id));
  }
  util::Status st = util::container::verify_section(is, *sec);
  if (!st.ok()) return st;
  return *sec;
}

/// A section holding a u64 element count followed by `count * elem_size`
/// fixed-width records must have exactly that many bytes.
util::Status check_exact_length(const util::container::Section& sec,
                                std::uint64_t count, std::size_t elem_size) {
  if (sec.length != 8 + count * elem_size) {
    return util::data_loss("section " + util::container::section_name(sec.id) +
                           ": length does not match element count");
  }
  return util::ok_status();
}

}  // namespace

util::Result<Dataset> Dataset::try_load(const std::string& path) {
  const obs::TraceSpan span("dataset.try_load", "io");
  const obs::StopWatch wall;
  util::Result<Dataset> result = [&]() -> util::Result<Dataset> {
  std::ifstream is(path, std::ios::binary);
  if (!is) return util::not_found("Dataset::try_load: cannot open " + path);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());

  auto ctx = [&](util::Status st) {
    return std::move(st).with_context("Dataset::try_load: " + path);
  };

  auto toc_result = util::container::read_toc(is, file_size);
  if (!toc_result.ok()) return ctx(toc_result.status());
  const util::container::Toc& toc = *toc_result;

  // --- PERI: the analysis period, two TimeMs -------------------------------
  auto peri = open_section(is, toc, kSecPeriod);
  if (!peri.ok()) return ctx(peri.status());
  if (peri->length != 2 * sizeof(util::TimeMs)) {
    return ctx(util::data_loss("section PERI: unexpected length"));
  }
  util::TimeRange period;
  period.begin = get<util::TimeMs>(is);
  period.end = get<util::TimeMs>(is);

  // --- CTRL: variable-width updates; counts bounded by section length -----
  auto ctrl = open_section(is, toc, kSecControl);
  if (!ctrl.ok()) return ctx(ctrl.status());
  auto checked_count = [&](const char* what) -> util::Result<std::uint64_t> {
    const std::uint64_t n = get_u64(is);
    if (!is || n > ctrl->length) {
      return util::data_loss(std::string("section CTRL: implausible ") + what +
                             " count");
    }
    return n;
  };
  const auto n_control = checked_count("control update");
  if (!n_control.ok()) return ctx(n_control.status());
  bgp::UpdateLog control(*n_control);
  for (auto& u : control) {
    u.time = get<util::TimeMs>(is);
    u.type = static_cast<bgp::UpdateType>(get<std::uint8_t>(is));
    u.sender_asn = get<bgp::Asn>(is);
    u.origin_asn = get<bgp::Asn>(is);
    const auto net_v = get<std::uint32_t>(is);
    const auto len = get<std::uint8_t>(is);
    u.prefix = net::Prefix(net::Ipv4(net_v), len);
    u.next_hop = net::Ipv4(get<std::uint32_t>(is));
    const auto n_comms = checked_count("community");
    if (!n_comms.ok()) return ctx(n_comms.status());
    u.communities.resize(*n_comms);
    for (auto& c : u.communities) {
      c.global = get<std::uint16_t>(is);
      c.local = get<std::uint16_t>(is);
    }
  }
  if (!is) return ctx(util::data_loss("section CTRL: truncated decode"));

  // --- FLOW / MACS / ORIG: fixed-width tables with exact-length checks ----
  auto flow_sec = open_section(is, toc, kSecFlows);
  if (!flow_sec.ok()) return ctx(flow_sec.status());
  const std::uint64_t n_flows = get_u64(is);
  if (util::Status st = check_exact_length(*flow_sec, n_flows,
                                           sizeof(DiskFlowRecord));
      !st.ok()) {
    return ctx(std::move(st));
  }
  flow::FlowLog data;
  data.reserve(n_flows);
  get_span<DiskFlowRecord>(is, n_flows, [&](const DiskFlowRecord& d) {
    flow::FlowRecord r;
    r.time = d.time;
    r.src_ip = net::Ipv4(d.src_ip);
    r.dst_ip = net::Ipv4(d.dst_ip);
    r.proto = static_cast<net::Proto>(d.proto);
    r.src_port = d.src_port;
    r.dst_port = d.dst_port;
    r.src_mac = net::Mac(d.src_mac);
    r.dst_mac = net::Mac(d.dst_mac);
    r.packets = d.packets;
    r.bytes = d.bytes;
    data.push_back(r);
  });

  auto mac_sec = open_section(is, toc, kSecMacs);
  if (!mac_sec.ok()) return ctx(mac_sec.status());
  const std::uint64_t n_macs = get_u64(is);
  if (util::Status st = check_exact_length(*mac_sec, n_macs,
                                           sizeof(DiskMacEntry));
      !st.ok()) {
    return ctx(std::move(st));
  }
  std::unordered_map<net::Mac, bgp::Asn> macs;
  macs.reserve(n_macs);
  get_span<DiskMacEntry>(is, n_macs, [&](const DiskMacEntry& d) {
    macs[net::Mac(d.mac)] = d.asn;
  });

  auto orig_sec = open_section(is, toc, kSecOrigins);
  if (!orig_sec.ok()) return ctx(orig_sec.status());
  const std::uint64_t n_origins = get_u64(is);
  if (util::Status st = check_exact_length(*orig_sec, n_origins,
                                           sizeof(DiskOriginEntry));
      !st.ok()) {
    return ctx(std::move(st));
  }
  std::vector<std::pair<net::Prefix, bgp::Asn>> origins;
  origins.reserve(n_origins);
  get_span<DiskOriginEntry>(is, n_origins, [&](const DiskOriginEntry& d) {
    origins.emplace_back(net::Prefix(net::Ipv4(d.network), d.length), d.asn);
  });
  if (!is) return ctx(util::data_loss("truncated file"));

  return Dataset(std::move(control), std::move(data), std::move(macs),
                 std::move(origins), period);
  }();
  record_io(io_metrics("load"), result.ok(), wall);
  return result;
}

Dataset Dataset::load(const std::string& path) {
  auto result = try_load(path);
  if (!result.ok()) throw std::runtime_error(result.status().to_string());
  return std::move(result).value();
}

}  // namespace bw::core
