// Deterministic random-number facade.
//
// Every stochastic component in blackwatch draws through an Rng instance that
// is seeded explicitly, so a scenario run is exactly reproducible from its
// seed. Sub-streams are derived with `fork(tag)` (splitmix-style) so that
// adding draws to one generator never perturbs another.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace bw::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream. Identical (seed, tag) pairs always
  /// yield the identical stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(derive_seed(seed_, tag));
  }

  /// The seed a fork(tag) child would use. Exposed so content-keyed
  /// substreams (e.g. per-burst sampling in sharded generation) can chain
  /// derivations without constructing intermediate engines.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t seed,
                                                 std::uint64_t tag) noexcept {
    // splitmix64 finalizer over (seed ^ rotated tag)
    std::uint64_t z =
        seed ^ (tag + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Binomial(n, p) — used by the IPFIX sampler to thin packet bursts.
  std::int64_t binomial(std::int64_t n, double p) {
    if (n <= 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    return std::binomial_distribution<std::int64_t>(n, p)(engine_);
  }

  std::int64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  double normal(double mean, double sd) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto draw with scale x_m and shape alpha (heavy-tailed volumes).
  double pareto(double x_m, double alpha) {
    const double u = uniform(std::numeric_limits<double>::min(), 1.0);
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// the weight. Empty or all-zero weights pick index 0.
  std::size_t weighted_index(std::span<const double> weights);

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    return size <= 1 ? 0
                     : static_cast<std::size_t>(
                           uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Sample k distinct indices out of [0, n) (k clamped to n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace bw::util
