file(REMOVE_RECURSE
  "CMakeFiles/bw-monitor.dir/bw_monitor.cpp.o"
  "CMakeFiles/bw-monitor.dir/bw_monitor.cpp.o.d"
  "bw-monitor"
  "bw-monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw-monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
