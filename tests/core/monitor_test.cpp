#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorConfig default_config() {
    MonitorConfig cfg;
    cfg.ewma.window = 48;  // 4 h baseline so small tests can fill it
    return cfg;
  }

  std::vector<Alert> alerts_;
  RtbhMonitor make_monitor(MonitorConfig cfg) {
    return RtbhMonitor(cfg, [this](const Alert& a) { alerts_.push_back(a); });
  }

  [[nodiscard]] std::size_t count(AlertKind kind) const {
    std::size_t n = 0;
    for (const auto& a : alerts_) {
      if (a.kind == kind) ++n;
    }
    return n;
  }

  static bgp::Update announce(util::TimeMs t, net::Ipv4 ip) {
    ixp::BlackholeService svc;
    return svc.make_announce(t, 64500, 65000, net::Prefix::host(ip));
  }
  static bgp::Update withdraw(util::TimeMs t, net::Ipv4 ip) {
    ixp::BlackholeService svc;
    return svc.make_withdraw(t, 64500, 65000, net::Prefix::host(ip));
  }
  static flow::FlowRecord sample(util::TimeMs t, net::Ipv4 dst, bool dropped,
                                 net::Ipv4 src = net::Ipv4(16, 0, 0, 1),
                                 net::Port dst_port = 443) {
    flow::FlowRecord r;
    r.time = t;
    r.src_ip = src;
    r.dst_ip = dst;
    r.proto = net::Proto::kUdp;
    r.src_port = 123;
    r.dst_port = dst_port;
    r.src_mac = net::Mac::for_member_port(1);
    r.dst_mac = dropped ? net::Mac::blackhole() : net::Mac::for_member_port(2);
    return r;
  }
};

TEST_F(MonitorTest, EventLifecycle) {
  auto monitor = make_monitor(default_config());
  const net::Ipv4 victim(24, 0, 0, 1);
  monitor.on_update(announce(util::kHour, victim));
  EXPECT_EQ(monitor.active_events(), 1u);
  EXPECT_EQ(count(AlertKind::kEventStarted), 1u);

  // On/off churn within the merge delta stays one event.
  monitor.on_update(withdraw(util::kHour + util::minutes(5.0), victim));
  monitor.on_update(announce(util::kHour + util::minutes(7.0), victim));
  monitor.on_update(withdraw(util::kHour + util::minutes(20.0), victim));
  EXPECT_EQ(count(AlertKind::kEventStarted), 1u);
  EXPECT_EQ(monitor.total_events(), 1u);

  // Past the merge delta the event closes.
  monitor.advance(util::kHour + util::minutes(40.0));
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);
  EXPECT_EQ(monitor.active_events(), 0u);

  // A later announcement opens a new event.
  monitor.on_update(announce(5 * util::kHour, victim));
  EXPECT_EQ(monitor.total_events(), 2u);
}

TEST_F(MonitorTest, AttackCorrelationAlert) {
  auto cfg = default_config();
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 2);
  // Quiet baseline: one sample per slot for 48+ slots.
  for (int s = 0; s < 60; ++s) {
    monitor.on_flow(sample(s * cfg.slot + 1000, victim, false));
  }
  // Burst in the two slots before the announcement, many sources/ports.
  const util::TimeMs burst_start = 60 * cfg.slot;
  for (int i = 0; i < 200; ++i) {
    monitor.on_flow(sample(burst_start + i * 1000, victim, false,
                           net::Ipv4(64, 0, 0, static_cast<std::uint8_t>(i)),
                           static_cast<net::Port>(30000 + i)));
  }
  monitor.on_update(announce(burst_start + 6 * util::kMinute, victim));
  EXPECT_EQ(count(AlertKind::kAttackCorrelated), 1u);
  const auto& alert = alerts_.back();
  EXPECT_GE(alert.value, 3.0) << "burst should spike several features";
}

TEST_F(MonitorTest, NoAttackAlertWithoutAnomaly) {
  auto cfg = default_config();
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 3);
  for (int s = 0; s < 60; ++s) {
    monitor.on_flow(sample(s * cfg.slot + 1000, victim, false));
  }
  monitor.on_update(announce(60 * cfg.slot, victim));
  EXPECT_EQ(count(AlertKind::kAttackCorrelated), 0u);
}

TEST_F(MonitorTest, LowDropRateAlert) {
  auto cfg = default_config();
  cfg.min_drop_samples = 20;
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 4);
  monitor.on_update(announce(util::kHour, victim));
  // 30 samples, only 20% dropped.
  for (int i = 0; i < 30; ++i) {
    monitor.on_flow(
        sample(util::kHour + 1000 + i * 100, victim, i % 5 == 0));
  }
  EXPECT_EQ(count(AlertKind::kLowDropRate), 1u);
  EXPECT_LT(alerts_.back().value, 0.5);
}

TEST_F(MonitorTest, NoLowDropAlertWhenDropping) {
  auto cfg = default_config();
  cfg.min_drop_samples = 20;
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 5);
  monitor.on_update(announce(util::kHour, victim));
  for (int i = 0; i < 30; ++i) {
    monitor.on_flow(sample(util::kHour + 1000 + i * 100, victim, true));
  }
  EXPECT_EQ(count(AlertKind::kLowDropRate), 0u);
}

TEST_F(MonitorTest, ZombieSuspectAlert) {
  auto cfg = default_config();
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 6);
  monitor.on_update(announce(util::kHour, victim));
  monitor.advance(util::kHour + 3 * util::kDay);  // silence for days
  EXPECT_EQ(count(AlertKind::kZombieSuspect), 1u);
  // Only alerted once.
  monitor.advance(util::kHour + 5 * util::kDay);
  EXPECT_EQ(count(AlertKind::kZombieSuspect), 1u);
}

TEST_F(MonitorTest, BusyBlackholeIsNotZombie) {
  auto cfg = default_config();
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 7);
  monitor.on_update(announce(util::kHour, victim));
  for (int i = 0; i < 100; ++i) {
    monitor.on_flow(sample(util::kHour + i * util::kMinute, victim, true));
  }
  monitor.advance(util::kHour + 3 * util::kDay);
  EXPECT_EQ(count(AlertKind::kZombieSuspect), 0u);
}

TEST_F(MonitorTest, FinishClosesOpenEvents) {
  auto monitor = make_monitor(default_config());
  const net::Ipv4 victim(24, 0, 0, 8);
  monitor.on_update(announce(util::kHour, victim));
  monitor.on_update(withdraw(2 * util::kHour, victim));
  monitor.finish(util::days(1));
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);
  EXPECT_EQ(monitor.active_events(), 0u);
}

TEST_F(MonitorTest, LruCapBoundsTrackedDestinations) {
  auto cfg = default_config();
  cfg.max_destinations = 16;
  auto monitor = make_monitor(cfg);
  // Idle traffic towards many distinct destinations: state must not grow
  // past the cap, and shedding idle (no-event) destinations is silent.
  for (int i = 0; i < 500; ++i) {
    monitor.on_flow(sample(util::kHour + i * 1000,
                           net::Ipv4(24, 0, static_cast<std::uint8_t>(i / 250),
                                     static_cast<std::uint8_t>(i % 250)),
                           false));
  }
  EXPECT_EQ(count(AlertKind::kEventEnded), 0u);
  EXPECT_EQ(monitor.active_events(), 0u);

  // Recency, not insertion order, decides the victim: keep touching one
  // early destination and it must survive (its detector history intact).
  const net::Ipv4 keeper(24, 0, 0, 0);
  auto cfg2 = default_config();
  cfg2.max_destinations = 4;
  alerts_.clear();
  auto monitor2 = make_monitor(cfg2);
  util::TimeMs t = util::kHour;
  monitor2.on_flow(sample(t, keeper, false));
  for (int i = 1; i < 100; ++i) {
    t += 1000;
    monitor2.on_flow(sample(t, net::Ipv4(24, 1, 0,
                                         static_cast<std::uint8_t>(i)),
                            false));
    t += 1000;
    monitor2.on_flow(sample(t, keeper, false));
  }
  // The keeper still has accumulated slot state: a burst plus announcement
  // can only correlate if its history survived every eviction round.
  monitor2.on_update(announce(t + 1000, keeper));
  EXPECT_EQ(count(AlertKind::kEventStarted), 1u);
  EXPECT_EQ(monitor2.active_events(), 1u);
}

TEST_F(MonitorTest, LruEvictionOfActiveEventEmitsFinalAlert) {
  auto cfg = default_config();
  cfg.max_destinations = 2;
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 9);
  monitor.on_update(announce(util::kHour, victim));
  EXPECT_EQ(monitor.active_events(), 1u);

  // Two fresh destinations push the still-open event out of the cap.
  monitor.on_flow(sample(util::kHour + 1000, net::Ipv4(24, 2, 0, 1), false));
  monitor.on_flow(sample(util::kHour + 2000, net::Ipv4(24, 2, 0, 2), false));

  // The open event must not vanish silently: exactly one final
  // event-ended alert, and the active set is consistent afterwards.
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);
  EXPECT_EQ(monitor.active_events(), 0u);
  bool saw_eviction_alert = false;
  for (const auto& a : alerts_) {
    if (a.kind == AlertKind::kEventEnded) {
      saw_eviction_alert = true;
      EXPECT_EQ(a.prefix, net::Prefix::host(victim));
      EXPECT_NE(a.message.find("evicted"), std::string::npos) << a.message;
    }
  }
  EXPECT_TRUE(saw_eviction_alert);
  // finish() must not double-close the evicted event.
  monitor.finish(2 * util::kHour);
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);
}

TEST_F(MonitorTest, ReannounceAfterEvictionStartsFreshEvent) {
  auto cfg = default_config();
  cfg.max_destinations = 2;
  cfg.min_drop_samples = 10;
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 10);
  monitor.on_update(announce(util::kHour, victim));
  // Poison the pre-eviction event with forwarded (non-dropped) traffic: if
  // its drop counters leaked into the next incarnation, the fresh event
  // below would instantly trip a bogus low-drop alert.
  for (int i = 0; i < 20; ++i) {
    monitor.on_flow(sample(util::kHour + i * 100, victim, false));
  }
  EXPECT_EQ(count(AlertKind::kEventStarted), 1u);
  EXPECT_EQ(count(AlertKind::kLowDropRate), 1u);

  // Fresh destinations push the still-open event out of the cap.
  monitor.on_flow(sample(util::kHour + 3000, net::Ipv4(24, 3, 0, 1), false));
  monitor.on_flow(sample(util::kHour + 4000, net::Ipv4(24, 3, 0, 2), false));
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);  // eviction closed it loudly
  EXPECT_EQ(monitor.active_events(), 0u);

  // The destination is re-announced after the eviction: a brand-new event
  // must start — fresh kEventStarted, fresh drop accounting — even though
  // the announce falls inside what would have been the old event's merge
  // window had the state survived.
  monitor.on_update(announce(util::kHour + util::minutes(3.0), victim));
  EXPECT_EQ(count(AlertKind::kEventStarted), 2u);
  EXPECT_EQ(monitor.total_events(), 2u);
  EXPECT_EQ(monitor.active_events(), 1u);

  // All traffic towards the reborn event drops: no low-drop alert may fire
  // off the pre-eviction forwarded packets.
  for (int i = 0; i < 20; ++i) {
    monitor.on_flow(
        sample(util::kHour + util::minutes(3.0) + i * 100, victim, true));
  }
  EXPECT_EQ(count(AlertKind::kLowDropRate), 1u) << "stale drop counters";
}

TEST_F(MonitorTest, WithdrawAfterEvictionThenReannounceStartsFreshEvent) {
  auto cfg = default_config();
  cfg.max_destinations = 2;
  auto monitor = make_monitor(cfg);
  const net::Ipv4 victim(24, 0, 0, 11);
  monitor.on_update(announce(util::kHour, victim));
  monitor.on_flow(sample(util::kHour + 1000, net::Ipv4(24, 4, 0, 1), false));
  monitor.on_flow(sample(util::kHour + 2000, net::Ipv4(24, 4, 0, 2), false));
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);  // evicted

  // The route's own withdraw arrives after the eviction: it refers to the
  // already-closed event, so it must neither alert nor resurrect anything.
  monitor.on_update(withdraw(util::kHour + util::minutes(2.0), victim));
  EXPECT_EQ(count(AlertKind::kEventEnded), 1u);
  EXPECT_EQ(monitor.active_events(), 0u);

  // Re-announce within the merge delta of that withdraw: the eviction cut
  // the event's history, so this is a new event, not a merge.
  monitor.on_update(announce(util::kHour + util::minutes(5.0), victim));
  EXPECT_EQ(count(AlertKind::kEventStarted), 2u);
  EXPECT_EQ(monitor.total_events(), 2u);
  EXPECT_EQ(monitor.active_events(), 1u);

  // And the reborn event still closes normally.
  monitor.on_update(withdraw(util::kHour + util::minutes(10.0), victim));
  monitor.advance(util::kHour + util::minutes(40.0));
  EXPECT_EQ(count(AlertKind::kEventEnded), 2u);
}

TEST_F(MonitorTest, AgreesWithOfflinePipelineOnScenario) {
  // Replay a small scenario chronologically through the monitor and check
  // that its event count matches the offline merge.
  gen::ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 5;
  const ScenarioRun run = run_scenario(cfg, std::string{});
  const auto offline = merge_events(run.dataset.blackhole_updates(),
                                    run.dataset.period().end);

  MonitorConfig mcfg;  // paper defaults (288-slot window)
  auto monitor = make_monitor(mcfg);
  // Merge-sort the two feeds by timestamp.
  const auto& updates = run.dataset.blackhole_updates();
  const auto& flows = run.dataset.flows();
  std::size_t ui = 0;
  std::size_t fi = 0;
  while (ui < updates.size() || fi < flows.size()) {
    const bool take_update =
        fi >= flows.size() ||
        (ui < updates.size() && updates[ui].time <= flows[fi].time);
    if (take_update) monitor.on_update(updates[ui++]);
    else monitor.on_flow(flows[fi++]);
  }
  monitor.finish(run.dataset.period().end);

  // The monitor's online event segmentation must track the offline one.
  const double ratio = static_cast<double>(monitor.total_events()) /
                       static_cast<double>(offline.size());
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
  EXPECT_GT(count(AlertKind::kAttackCorrelated), offline.size() / 10);
  EXPECT_GT(count(AlertKind::kZombieSuspect), 10u);
  EXPECT_GT(count(AlertKind::kLowDropRate), 10u);
}

TEST(MonitorNamesTest, AlertKindStrings) {
  EXPECT_EQ(to_string(AlertKind::kEventStarted), "event-started");
  EXPECT_EQ(to_string(AlertKind::kEventEnded), "event-ended");
  EXPECT_EQ(to_string(AlertKind::kAttackCorrelated), "attack-correlated");
  EXPECT_EQ(to_string(AlertKind::kLowDropRate), "low-drop-rate");
  EXPECT_EQ(to_string(AlertKind::kZombieSuspect), "zombie-suspect");
}

}  // namespace
}  // namespace bw::core
