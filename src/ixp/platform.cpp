#include "ixp/platform.hpp"

#include <stdexcept>

namespace bw::ixp {

Platform::Platform(PlatformConfig cfg)
    : cfg_(cfg),
      rs_(cfg.rs_asn),
      service_(cfg.rs_asn),
      internal_mac_(net::Mac(0x02'42'FF'00'00'01ULL)) {
  macs_.register_internal(internal_mac_);
}

flow::MemberId Platform::add_member(bgp::Asn asn, bgp::PeerPolicy policy,
                                    std::vector<net::Prefix> owned) {
  if (prepared_) {
    throw std::logic_error("Platform: cannot add members after run()");
  }
  if (asn_to_member_.contains(asn)) {
    throw std::invalid_argument("Platform: duplicate member ASN");
  }
  const auto id = static_cast<flow::MemberId>(members_.size());
  Member m;
  m.id = id;
  m.asn = asn;
  m.port_mac = net::Mac::for_member_port(id);
  m.owned = std::move(owned);
  m.policy = policy;
  for (const auto& p : m.owned) ownership_.insert(p, id);
  macs_.register_member(id, m.port_mac);
  rs_.add_peer(asn, policy);
  asn_to_member_[asn] = id;
  members_.push_back(std::move(m));
  return id;
}

void Platform::register_origin(const net::Prefix& src_prefix, bgp::Asn origin,
                               flow::MemberId handover) {
  origin_table_.insert(src_prefix, origin);
  origin_handover_.emplace(origin, handover);
}

void Platform::announce_prefix(flow::MemberId member,
                               const net::Prefix& prefix) {
  Member& m = members_.at(member);
  m.owned.push_back(prefix);
  ownership_.insert(prefix, member);
}

const Member& Platform::member(flow::MemberId id) const {
  return members_.at(id);
}

std::optional<flow::MemberId> Platform::member_by_asn(bgp::Asn asn) const {
  const auto it = asn_to_member_.find(asn);
  if (it == asn_to_member_.end()) return std::nullopt;
  return it->second;
}

std::optional<flow::MemberId> Platform::owner_of(net::Ipv4 addr) const {
  const flow::MemberId* id = ownership_.match(addr);
  if (id == nullptr) return std::nullopt;
  return *id;
}

std::optional<bgp::Asn> Platform::origin_of(net::Ipv4 addr) const {
  const bgp::Asn* asn = origin_table_.match(addr);
  if (asn == nullptr) return std::nullopt;
  return *asn;
}

std::vector<std::pair<net::Prefix, bgp::Asn>> Platform::origin_prefix_table()
    const {
  std::vector<std::pair<net::Prefix, bgp::Asn>> out;
  out.reserve(origin_handover_.size());
  origin_table_.for_each([&](const net::Prefix& p, const bgp::Asn& asn) {
    out.emplace_back(p, asn);
  });
  return out;
}

std::optional<flow::MemberId> Platform::handover_of(bgp::Asn origin) const {
  const auto it = origin_handover_.find(origin);
  if (it == origin_handover_.end()) return std::nullopt;
  return it->second;
}

RunResult Platform::run(bgp::UpdateLog control, const TrafficSource& traffic) {
  prepare(std::move(control));
  std::vector<SliceResult> slices;
  slices.push_back(run_slice(traffic));
  return finish(std::move(slices));
}

void Platform::prepare(bgp::UpdateLog control) {
  if (prepared_) throw std::logic_error("Platform: run() already called");
  prepared_ = true;

  // Control plane: replay every update through the route server. Once
  // finalized, every query run_slice() issues (blackhole intervals, peer
  // policies, ownership/origin tries, MAC table) is const and cache-free —
  // the invariant that makes concurrent slices race-free.
  rs_.process_all(std::move(control));
  rs_.finalize(cfg_.period.end);
}

Platform::SliceResult Platform::run_slice(const TrafficSource& traffic) const {
  if (!prepared_) {
    throw std::logic_error("Platform: run_slice() before prepare()");
  }

  // Identical seeds for every slice: the per-burst substreams are keyed by
  // burst id (see Fabric::carry), not by draw order, so slice membership
  // cannot change what a burst samples.
  util::Rng rng(cfg_.seed);
  flow::Collector collector(macs_, cfg_.clock, rng.fork(1));
  flow::IpfixSampler sampler(cfg_.sampling_rate, rng.fork(2));
  Fabric fabric(
      macs_, rs_, service_, ownership_,
      [this](flow::MemberId id) { return members_.at(id).asn; },
      std::move(sampler), collector);

  traffic([&fabric](const flow::TrafficBurst& b) { fabric.carry(b); });

  collector.finalize();

  SliceResult slice;
  slice.accounting = fabric.accounting();
  slice.internal_flows_removed = collector.internal_flows_removed();
  slice.flows = collector.take_flows();
  return slice;
}

RunResult Platform::finish(std::vector<SliceResult> slices) {
  if (!prepared_) throw std::logic_error("Platform: finish() before prepare()");
  if (finished_) throw std::logic_error("Platform: finish() already called");
  finished_ = true;

  RunResult result;
  std::vector<flow::FlowLog> parts;
  parts.reserve(slices.size());
  for (SliceResult& s : slices) {
    parts.push_back(std::move(s.flows));
    result.internal_flows_removed += s.internal_flows_removed;
    result.accounting.bursts += s.accounting.bursts;
    result.accounting.true_packets += s.accounting.true_packets;
    result.accounting.sampled_packets += s.accounting.sampled_packets;
    result.accounting.sampled_dropped += s.accounting.sampled_dropped;
    result.accounting.sampled_dropped_private +=
        s.accounting.sampled_dropped_private;
    result.accounting.unroutable_bursts += s.accounting.unroutable_bursts;
  }
  result.data = flow::merge_sorted_flows(std::move(parts));

  // IXP-internal monitoring records (Section 3.1's 0.01%) never survive
  // preprocessing — the collector filters and counts them — so the merged
  // corpus only needs the bookkeeping, sized from the final record count.
  if (cfg_.internal_flow_fraction > 0.0 && !members_.empty()) {
    result.internal_flows_removed += static_cast<std::uint64_t>(
        static_cast<double>(result.data.size()) * cfg_.internal_flow_fraction);
  }

  result.control = rs_.log();
  return result;
}

}  // namespace bw::ixp
