#include "gen/scenario.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace bw::gen {

namespace {

// Rng fork tags — one independent stream per concern so adding draws to one
// generator never perturbs another.
enum : std::uint64_t {
  kTagMembers = 1,
  kTagOrigins,
  kTagHosts,
  kTagRemotes,
  kTagAmplifiers,
  kTagRegistry,
  kTagEvents,
  kTagLegit,
  kTagScan,
  kTagAttackBase = 1000000,
};

constexpr std::uint32_t kMemberSpaceBase = 0x10000000;  // 16.0.0.0
constexpr std::uint32_t kVictimSpaceBase = 0x18000000;  // 24.0.0.0
constexpr std::uint32_t kSquatSpaceBase = 0x1C000000;   // 28.0.0.0

}  // namespace

std::string_view to_string(UseCase u) {
  switch (u) {
    case UseCase::kInfrastructureProtection: return "infrastructure-protection";
    case UseCase::kOtherSteady: return "other-steady";
    case UseCase::kOtherIdle: return "other-idle";
    case UseCase::kZombie: return "zombie";
    case UseCase::kSquattingProtection: return "squatting-protection";
    case UseCase::kContentBlocking: return "content-blocking";
  }
  return "unknown";
}

std::size_t ScenarioConfig::scaled(std::size_t n) const {
  if (n == 0) return 0;
  const double s = std::max(scale, 0.0);
  return std::max<std::size_t>(
      static_cast<std::size_t>(std::llround(static_cast<double>(n) * s)), 1);
}

ixp::PlatformConfig Scenario::platform_config(const ScenarioConfig& cfg) {
  ixp::PlatformConfig p;
  p.period = cfg.period;
  p.sampling_rate = cfg.sampling_rate;
  p.clock.offset_ms = -40;  // the paper's estimated control/data skew
  p.clock.jitter_sd_ms = 10.0;
  p.seed = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
  return p;
}

void Scenario::install(ixp::Platform& platform) {
  if (installed_) throw std::logic_error("Scenario: install() called twice");
  installed_ = true;
  build_members(platform);
  build_victim_origins(platform);
  build_hosts();
  build_remotes(platform);
  build_amplifiers(platform);
  build_registry();
  build_events(platform);
  bgp::sort_updates(control_);
}

// ---------------------------------------------------------------------------
// Population
// ---------------------------------------------------------------------------

void Scenario::build_members(ixp::Platform& platform) {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagMembers));
  const std::size_t n = cfg_.scaled(cfg_.members);
  const std::array<double, 5> policy_weights{
      cfg_.policy_accept_all, cfg_.policy_whitelist_host,
      cfg_.policy_classful_only, cfg_.policy_reject_all,
      cfg_.policy_inconsistent};
  constexpr std::array<bgp::BlackholeAcceptance, 5> kPolicies{
      bgp::BlackholeAcceptance::kAcceptAll,
      bgp::BlackholeAcceptance::kWhitelistHost,
      bgp::BlackholeAcceptance::kClassfulOnly,
      bgp::BlackholeAcceptance::kRejectAll,
      bgp::BlackholeAcceptance::kInconsistent};

  // Stratified assignment: exact policy proportions at every scale, in a
  // shuffled order, so small populations still carry the calibrated mix.
  double weight_total = 0.0;
  for (const double w : policy_weights) weight_total += w;
  std::vector<bgp::BlackholeAcceptance> assignment;
  assignment.reserve(n);
  std::array<double, 5> owed{};
  while (assignment.size() < n) {
    // Largest-remainder: give the next slot to the most underfed policy.
    std::size_t best = 0;
    double best_deficit = -1e300;
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      const double deficit =
          policy_weights[k] / weight_total * (static_cast<double>(n)) -
          owed[k];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = k;
      }
    }
    owed[best] += 1.0;
    assignment.push_back(kPolicies[best]);
  }
  std::shuffle(assignment.begin(), assignment.end(), rng.engine());

  for (std::size_t i = 0; i < n; ++i) {
    bgp::PeerPolicy policy;
    policy.blackhole = assignment[i];
    policy.inconsistent_accept_fraction = rng.uniform(0.2, 0.8);
    policy.salt = rng.fork(i).seed();
    const auto asn = static_cast<bgp::Asn>(1000 + i);
    const net::Prefix space(
        net::Ipv4(kMemberSpaceBase + (static_cast<std::uint32_t>(i) << 16)), 16);
    const flow::MemberId id = platform.add_member(asn, policy, {space});
    all_members_.push_back(id);
    member_asns_.push_back(asn);
  }

  // Blackholers: the first scaled(78) members trigger RTBHs.
  const std::size_t nb = std::min(cfg_.scaled(cfg_.blackholer_members), n);
  blackholers_.assign(all_members_.begin(),
                      all_members_.begin() + static_cast<std::ptrdiff_t>(nb));

  // Handover-eligible members (carry amplifier origins / attack ingress).
  // Stratified per policy class so the handover population preserves the
  // calibrated import-policy mix at every scale.
  std::array<std::vector<flow::MemberId>, 5> by_policy;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      if (assignment[i] == kPolicies[k]) {
        by_policy[k].push_back(all_members_[i]);
        break;
      }
    }
  }
  for (auto& group : by_policy) {
    std::shuffle(group.begin(), group.end(), rng.engine());
    const auto take = static_cast<std::size_t>(std::llround(
        cfg_.handover_member_fraction * static_cast<double>(group.size())));
    for (std::size_t i = 0; i < take; ++i) {
      handover_members_.push_back(group[i]);
    }
  }
  std::shuffle(handover_members_.begin(), handover_members_.end(),
               rng.engine());
  if (handover_members_.empty()) handover_members_.push_back(all_members_.front());
}

void Scenario::build_victim_origins(ixp::Platform& platform) {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagOrigins));
  const std::size_t n = cfg_.scaled(cfg_.victim_origin_as);
  victim_origins_.reserve(n);
  // PeeringDB class pools among victim origins (drives Table 4).
  for (std::size_t j = 0; j < n; ++j) {
    VictimOrigin vo;
    vo.asn = static_cast<bgp::Asn>(50000 + j);
    vo.prefix = net::Prefix(
        net::Ipv4(kVictimSpaceBase + (static_cast<std::uint32_t>(j) << 16)), 16);
    vo.home = blackholers_[j % blackholers_.size()];
    victim_origins_.push_back(vo);

    const double u = rng.uniform();
    if (u < 0.40) dsl_origin_idx_.push_back(j);
    else if (u < 0.60) content_origin_idx_.push_back(j);
    else if (u < 0.78) nsp_origin_idx_.push_back(j);
    else if (u < 0.83) enterprise_origin_idx_.push_back(j);
    else absent_origin_idx_.push_back(j);

    // The home member announces the origin's space into the IXP.
    platform.announce_prefix(vo.home, vo.prefix);
    platform.register_origin(vo.prefix, vo.asn, vo.home);
  }
  // Guarantee non-empty pools at tiny scales.
  if (dsl_origin_idx_.empty()) dsl_origin_idx_.push_back(0);
  if (content_origin_idx_.empty()) content_origin_idx_.push_back(0);
  if (nsp_origin_idx_.empty()) nsp_origin_idx_.push_back(0);
  if (enterprise_origin_idx_.empty()) enterprise_origin_idx_.push_back(0);
  if (absent_origin_idx_.empty()) absent_origin_idx_.push_back(0);
}

net::Ipv4 Scenario::next_host_ip(std::size_t origin_index) {
  VictimOrigin& vo = victim_origins_[origin_index];
  // Spread hosts across the /16 (stride coprime to 2^16) so a /24 RTBH
  // around one victim covers only a few other active hosts — keeping the
  // Fig. 5 traffic distribution dominated by /32 blackholes.
  const net::Ipv4 ip = vo.prefix.address_at((vo.next_host * 257u) % 65536u);
  ++vo.next_host;
  return ip;
}

void Scenario::build_hosts() {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagHosts));

  auto pick_origin = [&](HostRole role) -> std::size_t {
    // Table 4 marginals: clients 60% Cable/DSL, 14% NSP, 2% Content, 1%
    // Enterprise, 23% Unknown; servers 34% Content, 14% DSL, 13% NSP, 1%
    // Enterprise, 38% Unknown.
    const double u = rng.uniform();
    const std::vector<std::size_t>* pool = nullptr;
    if (role == HostRole::kClient) {
      if (u < 0.60) pool = &dsl_origin_idx_;
      else if (u < 0.74) pool = &nsp_origin_idx_;
      else if (u < 0.76) pool = &content_origin_idx_;
      else if (u < 0.77) pool = &enterprise_origin_idx_;
      else pool = &absent_origin_idx_;
    } else {
      if (u < 0.34) pool = &content_origin_idx_;
      else if (u < 0.48) pool = &dsl_origin_idx_;
      else if (u < 0.61) pool = &nsp_origin_idx_;
      else if (u < 0.62) pool = &enterprise_origin_idx_;
      else pool = &absent_origin_idx_;
    }
    return (*pool)[rng.index(pool->size())];
  };

  auto draw_services = [&]() {
    std::vector<net::ProtoPort> services;
    const double u = rng.uniform();
    if (u < 0.40) services.push_back({net::Proto::kTcp, net::kHttps});
    else if (u < 0.65) services.push_back({net::Proto::kTcp, net::kHttp});
    else if (u < 0.75) services.push_back({net::Proto::kUdp, net::kDns});
    else if (u < 0.82) services.push_back({net::Proto::kTcp, net::kSsh});
    else if (u < 0.89) services.push_back({net::Proto::kTcp, net::kSmtp});
    else if (u < 0.95) services.push_back({net::Proto::kUdp, 27015});  // game
    else services.push_back({net::Proto::kTcp, net::kRdp});
    if (rng.chance(0.5)) services.push_back({net::Proto::kTcp, net::kHttp});
    if (rng.chance(0.2)) services.push_back({net::Proto::kTcp, net::kImap});
    return services;
  };

  const std::size_t n_servers = cfg_.scaled(cfg_.server_hosts);
  const std::size_t n_clients = cfg_.scaled(cfg_.client_hosts);
  const std::size_t n_idle = cfg_.scaled(cfg_.idle_victims);

  for (std::size_t i = 0; i < n_servers; ++i) {
    const std::size_t oi = pick_origin(HostRole::kServer);
    HostProfile h;
    h.ip = next_host_ip(oi);
    h.role = HostRole::kServer;
    h.home_member = victim_origins_[oi].home;
    h.origin_asn = victim_origins_[oi].asn;
    h.services = draw_services();
    h.daily_activity = rng.uniform(0.55, 0.98);
    h.mean_daily_packets = cfg_.server_daily_packets * rng.lognormal(0.0, 0.7);
    server_host_idx_.push_back(truth_.hosts.size());
    truth_.hosts.push_back(std::move(h));
  }
  for (std::size_t i = 0; i < n_clients; ++i) {
    const std::size_t oi = pick_origin(HostRole::kClient);
    HostProfile h;
    h.ip = next_host_ip(oi);
    h.role = HostRole::kClient;
    h.home_member = victim_origins_[oi].home;
    h.origin_asn = victim_origins_[oi].asn;
    h.daily_activity = rng.uniform(0.45, 0.95);
    h.mean_daily_packets = cfg_.client_daily_packets * rng.lognormal(0.0, 0.6);
    client_host_idx_.push_back(truth_.hosts.size());
    truth_.hosts.push_back(std::move(h));
  }
  for (std::size_t i = 0; i < n_idle; ++i) {
    const std::size_t oi = rng.index(victim_origins_.size());
    HostProfile h;
    h.ip = next_host_ip(oi);
    h.role = HostRole::kIdle;
    h.home_member = victim_origins_[oi].home;
    h.origin_asn = victim_origins_[oi].asn;
    h.daily_activity = 0.0;
    h.mean_daily_packets = 0.0;
    idle_host_idx_.push_back(truth_.hosts.size());
    truth_.hosts.push_back(std::move(h));
  }
  truth_.client_count = n_clients;
  truth_.server_count = n_servers;
}

void Scenario::build_remotes(ixp::Platform& platform) {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagRemotes));
  const auto& members = platform.members();
  auto add_remote = [&](std::vector<net::Ipv4>& ips,
                        std::vector<flow::MemberId>& ingress) {
    const auto& m = members[rng.index(members.size())];
    // Remote endpoints live in the member's own /16 space.
    ips.push_back(m.owned.front().address_at(
        static_cast<std::uint64_t>(rng.uniform_int(1, 65534))));
    ingress.push_back(m.id);
  };
  const std::size_t nc = cfg_.scaled(cfg_.remote_clients);
  const std::size_t ns = cfg_.scaled(cfg_.remote_servers);
  for (std::size_t i = 0; i < nc; ++i) {
    add_remote(remotes_.client_ips, remotes_.client_ingress);
  }
  for (std::size_t i = 0; i < ns; ++i) {
    add_remote(remotes_.server_ips, remotes_.server_ingress);
  }
}

void Scenario::build_amplifiers(ixp::Platform& platform) {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagAmplifiers));
  AmplifierPoolConfig pc;
  pc.origin_as_count = cfg_.scaled(cfg_.amplifier_origins);
  pc.amplifier_count = cfg_.scaled(cfg_.amplifiers);
  // The dominant origin's amplifier share is tuned so that, with ~60
  // reflectors per attack, it participates in ~60% of events (Fig. 15)
  // while carrying only a few percent of the traffic.
  pc.dominant_origin_share = 0.015;
  pool_ = std::make_unique<AmplifierPool>(pc, handover_members_, rng.fork(1));
  for (const auto& origin : pool_->origins()) {
    platform.register_origin(origin.prefix, origin.asn, origin.handover);
  }
}

void Scenario::build_registry() {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagRegistry));
  // Victim origins: typed per the pools drawn in build_victim_origins.
  auto add_pool = [&](const std::vector<std::size_t>& pool, pdb::OrgType type) {
    for (const std::size_t j : pool) {
      pdb::OrgRecord rec;
      rec.asn = victim_origins_[j].asn;
      rec.type = type;
      rec.scope = type == pdb::OrgType::kCableDslIsp ? pdb::Scope::kRegional
                                                     : pdb::Scope::kEurope;
      registry_.upsert(rec);
    }
  };
  add_pool(dsl_origin_idx_, pdb::OrgType::kCableDslIsp);
  add_pool(content_origin_idx_, pdb::OrgType::kContent);
  add_pool(nsp_origin_idx_, pdb::OrgType::kNsp);
  add_pool(enterprise_origin_idx_, pdb::OrgType::kEnterprise);
  // absent pool: intentionally not registered (Table 4 "Unknown").

  // Member ASes: NSP-heavy, as the Fig. 8 top-100 source mix shows.
  for (const bgp::Asn asn : member_asns_) {
    const double u = rng.uniform();
    if (u > 0.85) continue;  // not in PeeringDB
    pdb::OrgRecord rec;
    rec.asn = asn;
    if (u < 0.40) {
      rec.type = pdb::OrgType::kNsp;
      rec.scope = rng.chance(0.5) ? pdb::Scope::kGlobal : pdb::Scope::kEurope;
    } else if (u < 0.60) {
      rec.type = pdb::OrgType::kCableDslIsp;
      rec.scope = pdb::Scope::kRegional;
    } else if (u < 0.75) {
      rec.type = pdb::OrgType::kContent;
      rec.scope = rng.chance(0.3) ? pdb::Scope::kGlobal : pdb::Scope::kEurope;
    } else if (u < 0.80) {
      rec.type = pdb::OrgType::kEnterprise;
      rec.scope = pdb::Scope::kEurope;
    } else {
      rec.type = pdb::OrgType::kEducational;
      rec.scope = pdb::Scope::kEurope;
    }
    registry_.upsert(rec);
  }
  // Amplifier origins: mostly access/NSP networks hosting open services.
  for (const auto& origin : pool_->origins()) {
    if (!rng.chance(0.7)) continue;
    pdb::OrgRecord rec;
    rec.asn = origin.asn;
    rec.type = rng.chance(0.55) ? pdb::OrgType::kCableDslIsp : pdb::OrgType::kNsp;
    rec.scope = rng.chance(0.25) ? pdb::Scope::kGlobal : pdb::Scope::kRegional;
    registry_.upsert(rec);
  }
}

// ---------------------------------------------------------------------------
// Event schedule
// ---------------------------------------------------------------------------

std::uint8_t Scenario::draw_event_prefix_len(util::Rng& rng) const {
  const std::array<double, 4> w{cfg_.event_len32, cfg_.event_len24,
                                cfg_.event_len25_31, cfg_.event_len22_23};
  switch (rng.weighted_index(w)) {
    case 0: return 32;
    case 1: return 24;
    case 2: return static_cast<std::uint8_t>(rng.uniform_int(25, 31));
    default: return static_cast<std::uint8_t>(rng.uniform_int(22, 23));
  }
}

std::vector<bgp::Community> Scenario::draw_targeted_communities(
    util::TimeMs at, util::Rng& rng) const {
  const double p = cfg_.targeted_phase.contains(at)
                       ? cfg_.targeted_probability_phase
                       : cfg_.targeted_probability_base;
  if (!rng.chance(p)) return {};
  // Exclude a random subset of peers from distribution.
  std::vector<std::uint16_t> excluded;
  const double exclude_share = rng.uniform(0.2, 0.7);
  for (const bgp::Asn asn : member_asns_) {
    if (rng.chance(exclude_share)) {
      excluded.push_back(static_cast<std::uint16_t>(asn & 0xFFFF));
    }
  }
  bgp::TargetedAnnouncement targeted(platform_config(cfg_).rs_asn);
  return targeted.exclude(excluded);
}

void Scenario::build_events(ixp::Platform& platform) {
  util::Rng rng(util::Rng(cfg_.seed).fork(kTagEvents));
  OperatorModel op(platform.service(), rng.fork(1));

  const auto protocols = net::amplification_protocols();
  // Per-event amplification-vector count (generates Table 3's columns).
  const std::array<double, 5> vector_count_w{0.47, 0.43, 0.08, 0.015, 0.005};
  // Per-protocol popularity: cLDAP, NTP, DNS dominate (Section 5.4).
  std::vector<double> proto_w;
  proto_w.reserve(protocols.size());
  for (const auto& p : protocols) {
    double w = 0.015;
    if (p.name == "cLDAP") w = 0.30;
    else if (p.name == "NTP") w = 0.26;
    else if (p.name == "DNS") w = 0.22;
    else if (p.name == "Memcache") w = 0.05;
    else if (p.name == "SSDP") w = 0.04;
    else if (p.name == "Fragmentation") w = 0.0;
    proto_w.push_back(w);
  }

  const std::size_t n_events = cfg_.scaled(cfg_.rtbh_events);
  truth_.events.reserve(n_events + cfg_.scaled(cfg_.zombies) + 64);

  // Partition the idle pool: zombie prefixes are announced once and never
  // withdrawn, so they must not collide with other events on the same
  // prefix (a later withdraw would close the forgotten blackhole).
  const std::size_t n_zombies = cfg_.scaled(cfg_.zombies);
  const std::size_t zombie_cut = std::min(n_zombies, idle_host_idx_.size() / 2);
  const std::vector<std::size_t> zombie_pool(
      idle_host_idx_.begin(),
      idle_host_idx_.begin() + static_cast<std::ptrdiff_t>(zombie_cut));
  const std::vector<std::size_t> idle_pool(
      idle_host_idx_.begin() + static_cast<std::ptrdiff_t>(zombie_cut),
      idle_host_idx_.end());

  for (std::size_t i = 0; i < n_events; ++i) {
    EventTruth ev;
    ev.id = truth_.events.size();

    const double cls = rng.uniform();
    const bool is_attack = cls < cfg_.attack_fraction;
    const bool is_steady =
        !is_attack && cls < cfg_.attack_fraction + cfg_.steady_fraction;

    // --- victim selection ---
    const HostProfile* victim = nullptr;
    if (is_attack) {
      const double v = rng.uniform();
      if (v < 0.60 && !client_host_idx_.empty()) {
        victim = &truth_.hosts[client_host_idx_[rng.index(client_host_idx_.size())]];
      } else if (v < 0.85 && !server_host_idx_.empty()) {
        victim = &truth_.hosts[server_host_idx_[rng.index(server_host_idx_.size())]];
      } else {
        victim = &truth_.hosts[idle_pool[rng.index(idle_pool.size())]];
      }
    } else if (is_steady) {
      const double v = rng.uniform();
      if (v < 0.78 && !client_host_idx_.empty()) {
        victim = &truth_.hosts[client_host_idx_[rng.index(client_host_idx_.size())]];
      } else {
        victim = &truth_.hosts[server_host_idx_[rng.index(server_host_idx_.size())]];
      }
    } else {
      victim = &truth_.hosts[idle_pool[rng.index(idle_pool.size())]];
    }

    const std::uint8_t len = draw_event_prefix_len(rng);
    ev.prefix = net::Prefix(victim->ip, len);
    ev.sender = platform.member(victim->home_member).asn;
    ev.origin = victim->origin_asn;

    // --- timing ---
    const util::TimeMs start = cfg_.period.begin + rng.uniform_int(
        util::kHour, cfg_.period.length() - util::kHour);

    if (is_attack) {
      ev.use_case = UseCase::kInfrastructureProtection;
      ev.has_attack = true;
      ev.manual_reaction = rng.chance(cfg_.manual_reaction_fraction);
      ev.attack_stops_at_rtbh = rng.chance(cfg_.attack_stops_fraction);

      const double duration_s = rng.lognormal(cfg_.attack_duration_log_mean,
                                              cfg_.attack_duration_log_sd);
      ev.attack_window.begin = start;
      ev.attack_window.end =
          std::min(start + util::seconds(std::max(duration_s, 120.0)),
                   cfg_.period.end);
      ev.attack_packets = static_cast<std::int64_t>(rng.lognormal(
          cfg_.attack_packets_log_mean, cfg_.attack_packets_log_sd));

      // --- attack vectors ---
      if (rng.chance(cfg_.attack_non_amp_fraction)) {
        ev.has_carpet_vector = true;  // SYN or carpet; no amp protocols
      } else {
        const std::size_t k = 1 + rng.weighted_index(vector_count_w);
        std::vector<double> w = proto_w;
        for (std::size_t v = 0; v < k; ++v) {
          const std::size_t pi = rng.weighted_index(w);
          ev.amp_ports.push_back(protocols[pi].udp_port);
          w[pi] = 0.0;  // no duplicate protocol per event
        }
        ev.has_carpet_vector = rng.chance(cfg_.attack_carpet_mix_fraction);
      }

      // Some victims mitigate exclusively via bilateral blackholing: the
      // route server never hears about it, but the fabric still drops.
      if (rng.chance(cfg_.private_only_fraction)) {
        ev.private_only = true;
        ev.privately_blackholed = true;
        const util::TimeMs from =
            ev.attack_window.begin + util::minutes(rng.uniform(1.0, 5.0));
        platform.service().add_private_blackhole(
            net::Prefix::host(victim->ip),
            {from, ev.attack_window.end + util::kHour});
        ev.rtbh_span = {from, ev.attack_window.end};
        truth_.events.push_back(std::move(ev));
        continue;
      }

      // --- mitigation schedule ---
      MitigationBehavior behavior = cfg_.mitigation;
      if (ev.manual_reaction) {
        behavior.latency_log_mean = 7.1;  // ~20 min median, manual trigger
        behavior.latency_log_sd = 0.45;
      }
      auto extra = draw_targeted_communities(start, rng);
      auto mit = op.mitigate(ev.prefix, ev.sender, ev.origin,
                             ev.attack_window.begin,
                             ev.attack_window.length(), cfg_.period.end,
                             behavior, std::move(extra));
      control_.insert(control_.end(), mit.updates.begin(), mit.updates.end());
      ev.rtbh_span = mit.span;
      ev.announcements = mit.announcements;
      if (ev.attack_stops_at_rtbh) {
        // Very short attack or upstream scrubbing: traffic fades right as
        // the blackhole goes up.
        ev.attack_window.end =
            std::min(ev.attack_window.end,
                     ev.rtbh_span.begin + util::minutes(rng.uniform(0.0, 2.0)));
      }
      if (rng.chance(cfg_.private_blackhole_fraction)) {
        ev.privately_blackholed = true;
        platform.service().add_private_blackhole(
            net::Prefix::host(victim->ip),
            {ev.rtbh_span.begin, ev.attack_window.end + util::kHour});
      }
    } else {
      ev.use_case = is_steady ? UseCase::kOtherSteady : UseCase::kOtherIdle;
      MitigationBehavior behavior = cfg_.mitigation;
      behavior.mean_cycles = is_steady ? 6.0 : 10.0;
      behavior.hold_log_mean = is_steady ? 7.5 : 8.3;
      behavior.hold_log_sd = is_steady ? 1.5 : 1.6;
      const double span_s =
          rng.lognormal(is_steady ? 9.3 : 10.2, is_steady ? 1.5 : 1.6);
      auto extra = draw_targeted_communities(start, rng);
      auto mit = op.mitigate(ev.prefix, ev.sender, ev.origin, start,
                             util::seconds(span_s), cfg_.period.end, behavior,
                             std::move(extra));
      control_.insert(control_.end(), mit.updates.begin(), mit.updates.end());
      ev.rtbh_span = mit.span;
      ev.announcements = mit.announcements;
    }
    truth_.events.push_back(std::move(ev));
  }

  // --- zombies: announced once, never withdrawn (Section 7.3) ---
  for (std::size_t i = 0; i < zombie_pool.size(); ++i) {
    const HostProfile& victim = truth_.hosts[zombie_pool[i]];
    EventTruth ev;
    ev.id = truth_.events.size();
    ev.use_case = UseCase::kZombie;
    ev.prefix = net::Prefix::host(victim.ip);
    ev.sender = platform.member(victim.home_member).asn;
    ev.origin = victim.origin_asn;
    const util::TimeMs at =
        cfg_.period.begin + rng.uniform_int(0, util::days(18));
    ev.rtbh_span = {at, cfg_.period.end};
    ev.announcements = 1;
    auto log = op.long_lived(ev.prefix, ev.sender, ev.origin, ev.rtbh_span,
                             /*withdraw=*/false);
    control_.insert(control_.end(), log.begin(), log.end());
    truth_.zombie_addresses.push_back(victim.ip);
    truth_.events.push_back(std::move(ev));
  }

  // --- prefix-squatting protection: <= /24, months, 4 origin ASes ---
  const std::size_t n_squat = cfg_.scale >= 0.999
                                  ? cfg_.squatting_prefixes
                                  : cfg_.scaled(cfg_.squatting_prefixes);
  const std::size_t n_squat_as = std::max<std::size_t>(
      std::min(cfg_.squatting_as, n_squat), 1);
  for (std::size_t i = 0; i < n_squat; ++i) {
    EventTruth ev;
    ev.id = truth_.events.size();
    ev.use_case = UseCase::kSquattingProtection;
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(20, 24));
    ev.prefix = net::Prefix(
        net::Ipv4(kSquatSpaceBase + (static_cast<std::uint32_t>(i) << 12)), len);
    const std::size_t as_idx = i % n_squat_as;
    ev.origin = static_cast<bgp::Asn>(51000 + as_idx);
    ev.sender =
        platform.member(blackholers_[as_idx % blackholers_.size()]).asn;
    const util::TimeMs at =
        cfg_.period.begin + rng.uniform_int(0, util::days(10));
    ev.rtbh_span = {at, cfg_.period.end};
    ev.announcements = 1;
    auto log = op.long_lived(ev.prefix, ev.sender, ev.origin, ev.rtbh_span,
                             /*withdraw=*/false);
    control_.insert(control_.end(), log.begin(), log.end());
    truth_.squatting_prefixes.push_back(ev.prefix);
    truth_.events.push_back(std::move(ev));
  }

  // --- content blocking: /32, weeks-months, normal traffic patterns ---
  const std::size_t n_content = cfg_.scaled(cfg_.content_blocking);
  for (std::size_t i = 0; i < n_content && !server_host_idx_.empty(); ++i) {
    const HostProfile& victim =
        truth_.hosts[server_host_idx_[rng.index(server_host_idx_.size())]];
    EventTruth ev;
    ev.id = truth_.events.size();
    ev.use_case = UseCase::kContentBlocking;
    ev.prefix = net::Prefix::host(victim.ip);
    // Blocked by some *other* member (not the victim's home).
    ev.sender = platform
                    .member(blackholers_[rng.index(blackholers_.size())])
                    .asn;
    ev.origin = victim.origin_asn;
    const util::TimeMs at =
        cfg_.period.begin + rng.uniform_int(0, util::days(40));
    const util::TimeMs until =
        std::min(at + util::days(rng.uniform(20.0, 70.0)), cfg_.period.end);
    ev.rtbh_span = {at, until};
    ev.announcements = 1;
    auto log = op.long_lived(ev.prefix, ev.sender, ev.origin, ev.rtbh_span,
                             /*withdraw=*/until < cfg_.period.end);
    control_.insert(control_.end(), log.begin(), log.end());
    truth_.events.push_back(std::move(ev));
  }

  // --- the early-October targeted-announcement experiment (Fig. 4) ---
  // One member runs ~120 long-lived blackholes with per-peer exclusions
  // during the targeted phase, producing the visibility dip.
  const std::size_t n_targeted = cfg_.scaled(120);
  bgp::TargetedAnnouncement targeted(platform_config(cfg_).rs_asn);
  for (std::size_t i = 0; i < n_targeted; ++i) {
    const HostProfile& victim =
        truth_.hosts[idle_pool[rng.index(idle_pool.size())]];
    EventTruth ev;
    ev.id = truth_.events.size();
    ev.use_case = UseCase::kOtherIdle;
    ev.prefix = net::Prefix::host(victim.ip);
    ev.sender = platform.member(victim.home_member).asn;
    ev.origin = victim.origin_asn;
    const util::TimeMs at = cfg_.targeted_phase.begin +
                            rng.uniform_int(0, util::days(2));
    const util::TimeMs until = cfg_.targeted_phase.end -
                               rng.uniform_int(0, util::days(2));
    ev.rtbh_span = {at, std::max(until, at + util::kHour)};
    ev.announcements = 1;
    std::vector<std::uint16_t> excluded;
    for (const bgp::Asn asn : member_asns_) {
      if (rng.chance(0.55)) {
        excluded.push_back(static_cast<std::uint16_t>(asn & 0xFFFF));
      }
    }
    auto extra = targeted.exclude(excluded);
    control_.push_back(platform.service().make_announce(
        ev.rtbh_span.begin, ev.sender, ev.origin, ev.prefix, extra));
    control_.push_back(platform.service().make_withdraw(
        ev.rtbh_span.end, ev.sender, ev.origin, ev.prefix, std::move(extra)));
    truth_.events.push_back(std::move(ev));
  }

  // Scan targets: idle victims, zombies, squatting space, some active hosts.
  for (const std::size_t hi : idle_host_idx_) {
    scan_targets_.push_back(truth_.hosts[hi].ip);
  }
  for (const auto& p : truth_.squatting_prefixes) {
    for (int k = 1; k <= 3; ++k) {
      scan_targets_.push_back(p.address_at(static_cast<std::uint64_t>(k)));
    }
  }
  for (const std::size_t hi : server_host_idx_) {
    if (rng.chance(0.10)) scan_targets_.push_back(truth_.hosts[hi].ip);
  }
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

std::vector<EmissionUnit> Scenario::emission_plan() const {
  if (!installed_) {
    throw std::logic_error("Scenario: emission_plan() before install()");
  }
  const int total_days = static_cast<int>(cfg_.period.length() / util::kDay);
  const double sampling = std::max<double>(cfg_.sampling_rate, 1.0);
  std::vector<EmissionUnit> plan;

  // --- legitimate daily traffic: one unit per active (host, day) ---
  std::size_t active_hosts = 0;
  for (const HostProfile& host : truth_.hosts) {
    if (host.role != HostRole::kIdle) ++active_hosts;
  }
  plan.reserve(active_hosts * static_cast<std::size_t>(total_days) +
               truth_.events.size() + static_cast<std::size_t>(total_days));
  for (std::size_t hi = 0; hi < truth_.hosts.size(); ++hi) {
    const HostProfile& host = truth_.hosts[hi];
    if (host.role == HostRole::kIdle) continue;  // emit_day is a no-op
    const auto cost = static_cast<std::uint64_t>(
        20.0 + host.mean_daily_packets / sampling);
    for (int day = 0; day < total_days; ++day) {
      EmissionUnit u;
      u.anchor = static_cast<util::TimeMs>(day) * util::kDay;
      u.kind = EmissionUnit::Kind::kLegit;
      u.index = static_cast<std::uint32_t>(hi);
      u.day = static_cast<std::uint32_t>(day);
      u.cost = cost;
      plan.push_back(u);
    }
  }

  // --- attacks: one unit per event carrying traffic ---
  for (const EventTruth& ev : truth_.events) {
    if (!ev.has_attack || ev.attack_packets <= 0) continue;
    EmissionUnit u;
    u.anchor = ev.attack_window.begin;
    u.kind = EmissionUnit::Kind::kAttack;
    u.index = static_cast<std::uint32_t>(ev.id);
    u.cost = static_cast<std::uint64_t>(
        2.0 * static_cast<double>(cfg_.amplifiers_per_attack) +
        static_cast<double>(ev.attack_packets) / sampling);
    plan.push_back(u);
  }

  // --- scans / background radiation: one unit per day ---
  const auto scan_cost = static_cast<std::uint64_t>(std::max(
      1.0, static_cast<double>(scan_targets_.size()) *
               cfg_.scan.bursts_per_ip_day *
               (1.0 + static_cast<double>(cfg_.scan.packets_per_burst) /
                          sampling)));
  for (int day = 0; day < total_days; ++day) {
    EmissionUnit u;
    u.anchor = cfg_.period.begin + static_cast<util::TimeMs>(day) * util::kDay;
    u.kind = EmissionUnit::Kind::kScan;
    u.day = static_cast<std::uint32_t>(day);
    u.cost = scan_cost;
    plan.push_back(u);
  }

  // Anchor-time order with a unique (kind, index, day) tie-break: shards cut
  // this list into contiguous time slices, and the ordering — hence the
  // merged corpus — is a pure function of the installed scenario.
  std::sort(plan.begin(), plan.end(),
            [](const EmissionUnit& a, const EmissionUnit& b) {
              return std::tie(a.anchor, a.kind, a.index, a.day) <
                     std::tie(b.anchor, b.kind, b.index, b.day);
            });
  return plan;
}

void Scenario::emit_unit(const EmissionUnit& unit, LegitGenerator& legit,
                         ScanGenerator& scans,
                         const ixp::Platform::BurstSink& sink) const {
  // The unit's substream seed extends the named fork-tag discipline: legit
  // forks (kTagLegit, host, day), attacks keep their per-event fork, scans
  // fork (kTagScan, day). Position in the plan never enters the derivation.
  std::uint64_t unit_seed = 0;
  switch (unit.kind) {
    case EmissionUnit::Kind::kLegit:
      unit_seed = util::Rng::derive_seed(
          util::Rng::derive_seed(util::Rng::derive_seed(cfg_.seed, kTagLegit),
                                 unit.index),
          unit.day);
      break;
    case EmissionUnit::Kind::kAttack:
      unit_seed = util::Rng::derive_seed(cfg_.seed, kTagAttackBase + unit.index);
      break;
    case EmissionUnit::Kind::kScan:
      unit_seed = util::Rng::derive_seed(
          util::Rng::derive_seed(cfg_.seed, kTagScan), unit.day);
      break;
  }

  // Key every burst leaving this unit by (unit seed, emission index): the
  // fabric forks its sampling/jitter substreams per id, which is what makes
  // the sampled corpus independent of the shard partition.
  std::uint64_t emitted = 0;
  const ixp::Platform::BurstSink keyed = [&](const flow::TrafficBurst& burst) {
    flow::TrafficBurst b = burst;
    const std::uint64_t id = util::Rng::derive_seed(unit_seed, ++emitted);
    b.id = id != 0 ? id : 1;
    sink(b);
  };

  switch (unit.kind) {
    case EmissionUnit::Kind::kLegit:
      legit.reseed(util::Rng(unit_seed));
      legit.emit_day(truth_.hosts[unit.index], static_cast<int>(unit.day),
                     keyed);
      break;
    case EmissionUnit::Kind::kAttack:
      emit_attack(truth_.events[unit.index], keyed);
      break;
    case EmissionUnit::Kind::kScan:
      scans.reseed(util::Rng(unit_seed));
      scans.emit_day(scan_targets_, handover_members_, cfg_.period,
                     static_cast<int>(unit.day), keyed);
      break;
  }
}

void Scenario::emit_attack(const EventTruth& ev,
                           const ixp::Platform::BurstSink& sink) const {
  if (!ev.has_attack || ev.attack_packets <= 0) return;
  util::Rng ev_rng(util::Rng(cfg_.seed).fork(kTagAttackBase + ev.id));
  DdosGenerator ddos(*pool_, ev_rng.fork(1));

  AttackSpec spec;
  spec.victim = ev.prefix.network();  // host events use the host address
  spec.window = ev.attack_window;
  spec.total_packets = ev.attack_packets;
  spec.amplifier_count = static_cast<std::size_t>(std::max<std::int64_t>(
      ev_rng.uniform_int(
          static_cast<std::int64_t>(cfg_.amplifiers_per_attack / 2),
          static_cast<std::int64_t>(cfg_.amplifiers_per_attack * 2)),
      4));

  if (ev.amp_ports.empty()) {
    // Non-amplification attack: mostly UDP carpets, occasionally a SYN
    // flood (TCP stays a sliver of attack traffic, as in Table 3).
    AttackVector v;
    v.kind = ev_rng.chance(0.25) ? VectorKind::kSynFlood
             : ev_rng.chance(0.5) ? VectorKind::kUdpRandomPorts
                                  : VectorKind::kUdpIncreasingPorts;
    v.volume_share = 1.0;
    spec.vectors.push_back(v);
  } else {
    double remaining = 1.0;
    for (std::size_t i = 0; i < ev.amp_ports.size(); ++i) {
      AttackVector v;
      v.kind = VectorKind::kUdpAmplification;
      v.amp_port = ev.amp_ports[i];
      const bool last = i + 1 == ev.amp_ports.size();
      v.volume_share =
          last ? remaining : remaining * ev_rng.uniform(0.35, 0.75);
      remaining -= last ? 0.0 : v.volume_share;
      spec.vectors.push_back(v);
    }
    if (ev.has_carpet_vector) {
      AttackVector v;
      v.kind = ev_rng.chance(0.5) ? VectorKind::kUdpRandomPorts
                                  : VectorKind::kUdpIncreasingPorts;
      v.volume_share = ev_rng.uniform(0.15, 0.45);
      spec.vectors.push_back(v);
    }
  }
  ddos.emit(spec, handover_members_, sink);
}

ixp::Platform::TrafficSource Scenario::traffic_source() const {
  return traffic_source(emission_plan());
}

ixp::Platform::TrafficSource Scenario::traffic_source(
    std::vector<EmissionUnit> units, const util::Deadline* deadline) const {
  if (!installed_) {
    throw std::logic_error("Scenario: traffic_source() before install()");
  }
  return [this, units = std::move(units),
          deadline](const ixp::Platform::BurstSink& sink) {
    // One generator pair per source invocation, reseeded per unit: avoids
    // copying the remote-endpoint pool for every (host, day).
    LegitGenerator legit(remotes_, util::Rng(cfg_.seed));
    ScanGenerator scans(cfg_.scan, util::Rng(cfg_.seed));
    for (const EmissionUnit& u : units) {
      // Per-unit watchdog checkpoint: a supervised generation run can be
      // cancelled between units, never mid-burst.
      if (deadline != nullptr) deadline->check("traffic_source");
      emit_unit(u, legit, scans, sink);
    }
  };
}

}  // namespace bw::gen
