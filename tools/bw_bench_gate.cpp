// bench-gate: the CI perf-regression tripwire.
//
// Compares a freshly measured bench JSON (unified schema v2, written by the
// micro_* benches) against the committed baseline and fails when the
// single-thread throughput regressed by more than the allowed fraction.
//
//   bench-gate --baseline BENCH_pipeline.json --current bench_out/BENCH_pipeline.json \
//              [--max-regression 0.10] [--threads 1]
//
// Exit codes:
//   0  within budget (improvements always pass)
//   1  regression beyond --max-regression, or schema/metric mismatch —
//      the failure message names the offending metric
//   2  usage error
//   3  a JSON file was missing or malformed
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/bench_gate.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitGateFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitData = 3;

void usage(std::ostream& os) {
  os << "usage: bench-gate --baseline FILE --current FILE\n"
     << "                  [--max-regression FRACTION] [--threads N]\n"
     << "\n"
     << "Fails (exit 1) when flows_per_s_by_threads.N in --current is more\n"
     << "than FRACTION below --baseline (default 0.10 = 10%).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double max_regression = 0.10;
  std::string threads = "1";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--max-regression" && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return kExitOk;
    } else {
      std::cerr << "bench-gate: unknown or incomplete argument: " << arg
                << "\n";
      usage(std::cerr);
      return kExitUsage;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "bench-gate: --baseline and --current are required\n";
    usage(std::cerr);
    return kExitUsage;
  }
  if (max_regression < 0.0 || max_regression >= 1.0) {
    std::cerr << "bench-gate: --max-regression must be in [0, 1)\n";
    return kExitUsage;
  }

  auto baseline = bw::testing::load_bench_json(baseline_path);
  if (!baseline.ok()) {
    std::cerr << "bench-gate: " << baseline.status().to_string() << "\n";
    return kExitData;
  }
  auto current = bw::testing::load_bench_json(current_path);
  if (!current.ok()) {
    std::cerr << "bench-gate: " << current.status().to_string() << "\n";
    return kExitData;
  }

  const bw::testing::GateResult result = bw::testing::check_regression(
      baseline.value(), current.value(), max_regression, threads);
  std::cout << result.message << "\n";
  return result.pass ? kExitOk : kExitGateFailed;
}
