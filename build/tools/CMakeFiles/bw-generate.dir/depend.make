# Empty dependencies file for bw-generate.
# This may be replaced when dependencies are built.
