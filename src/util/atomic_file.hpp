// Crash-safe file replacement: write temp → flush → fsync → rename.
//
// A dataset save or report emission interrupted half-way must never leave a
// half-written file under the final name — a later run would ingest it.
// atomic_write_file stages everything in `<path>.tmp` in the same
// directory, fsyncs, and renames over the target, so at every instant the
// target is either the complete old file or the complete new file. A stale
// `.tmp` from a crashed run is simply overwritten by the next attempt.
//
// Test hooks expose the two interesting kill points (temp written but not
// renamed; about to rename) so crash-point tests can assert the invariant
// without actually killing the process.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "util/status.hpp"
#include "util/time.hpp"

namespace bw::util {

/// Kill-point hooks for crash simulation (tests only). A hook that throws
/// models the process dying at that instant: the temp file is left behind
/// exactly as a real crash would leave it.
struct AtomicWriteHooks {
  std::function<void()> after_temp_write;  ///< temp complete, fsync'd
  std::function<void()> before_rename;     ///< last instant before commit
};

/// The temp path atomic_write_file stages under (target + ".tmp").
[[nodiscard]] std::string atomic_temp_path(const std::string& path);

/// Write `path` atomically: `writer` streams the content into a temp file,
/// which is fsync'd and renamed over `path` only if `writer` returns OK and
/// every write stuck. On any failure the temp file is removed and `path`
/// is untouched. Open/rename failures are reported as kUnavailable
/// (transient — safe to retry); writer failures pass through.
[[nodiscard]] Status atomic_write_file(
    const std::string& path,
    const std::function<Status(std::ostream&)>& writer,
    const AtomicWriteHooks* hooks = nullptr);

/// Convenience: atomically replace `path` with `content`.
[[nodiscard]] Status atomic_write_file(const std::string& path,
                                       std::string_view content);

/// Run `op` up to `attempts` times, sleeping `backoff` (doubling each try)
/// between attempts. Retries only transient failures (kUnavailable);
/// anything else — including corruption — returns immediately.
[[nodiscard]] Status retry_with_backoff(std::size_t attempts,
                                        DurationMs backoff,
                                        const std::function<Status()>& op);

}  // namespace bw::util
