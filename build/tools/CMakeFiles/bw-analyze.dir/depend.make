# Empty dependencies file for bw-analyze.
# This may be replaced when dependencies are built.
