// The complete IXP vantage point: members, route server, RTBH service,
// MAC table, ownership/origin attribution, and the switching fabric.
//
// `Platform::run` replays a control-plane update log and a traffic source
// against this state and produces the two measurement corpora of the paper:
// the route-server BGP log and the sampled, clock-skewed flow log.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/route_server.hpp"
#include "flow/collector.hpp"
#include "flow/mac_table.hpp"
#include "ixp/blackhole_service.hpp"
#include "ixp/fabric.hpp"
#include "ixp/member.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace bw::ixp {

struct PlatformConfig {
  std::uint16_t rs_asn{64600};
  std::uint32_t sampling_rate{10000};  ///< 1 out of N packets (paper: 10,000)
  flow::Collector::ClockModel clock{};
  util::TimeRange period{0, util::days(104)};  ///< measurement period
  /// Fraction of internal (IXP system) records injected into the collector,
  /// which preprocessing must remove again (paper: 0.01%).
  double internal_flow_fraction{0.0001};
  std::uint64_t seed{0x5eed};
};

/// The two measurement corpora plus bookkeeping from one replay.
struct RunResult {
  bgp::UpdateLog control;
  flow::FlowLog data;
  std::uint64_t internal_flows_removed{0};
  Fabric::Accounting accounting;
};

class Platform {
 public:
  using BurstSink = std::function<void(const flow::TrafficBurst&)>;
  using TrafficSource = std::function<void(const BurstSink&)>;

  explicit Platform(PlatformConfig cfg);

  /// Register a member with its import policy and announced prefixes.
  flow::MemberId add_member(bgp::Asn asn, bgp::PeerPolicy policy,
                            std::vector<net::Prefix> owned);

  /// Attribute a source prefix to its origin AS, entering the fabric at
  /// `handover` (the ingress member carrying that origin).
  void register_origin(const net::Prefix& src_prefix, bgp::Asn origin,
                       flow::MemberId handover);

  /// Announce an additional prefix from an existing member (e.g. customer
  /// space the member carries into the IXP). Affects destination ownership.
  void announce_prefix(flow::MemberId member, const net::Prefix& prefix);

  [[nodiscard]] const Member& member(flow::MemberId id) const;
  [[nodiscard]] std::optional<flow::MemberId> member_by_asn(bgp::Asn asn) const;
  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }

  /// Member that announced the longest prefix covering `addr`, if any.
  [[nodiscard]] std::optional<flow::MemberId> owner_of(net::Ipv4 addr) const;
  /// Origin AS of a source address, if registered.
  [[nodiscard]] std::optional<bgp::Asn> origin_of(net::Ipv4 addr) const;
  /// The full (prefix -> origin AS) attribution table.
  [[nodiscard]] std::vector<std::pair<net::Prefix, bgp::Asn>>
  origin_prefix_table() const;
  /// Ingress member for traffic sourced by `origin`, if registered.
  [[nodiscard]] std::optional<flow::MemberId> handover_of(bgp::Asn origin) const;

  [[nodiscard]] BlackholeService& service() noexcept { return service_; }
  [[nodiscard]] const BlackholeService& service() const noexcept {
    return service_;
  }
  [[nodiscard]] const bgp::RouteServer& route_server() const noexcept {
    return rs_;
  }
  [[nodiscard]] const flow::MacTable& mac_table() const noexcept { return macs_; }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return cfg_; }

  /// Replay: process all control-plane updates, then carry the generated
  /// traffic across the fabric. Can be called once per Platform instance.
  /// Equivalent to prepare() + one run_slice() + finish().
  RunResult run(bgp::UpdateLog control, const TrafficSource& traffic);

  /// What one traffic slice produced: its time-sorted flow log plus the
  /// slice's share of the ground-truth accounting.
  struct SliceResult {
    flow::FlowLog flows;
    Fabric::Accounting accounting;
    std::uint64_t internal_flows_removed{0};
  };

  /// Phase 1 of a (possibly sharded) replay: process the whole control
  /// plane and freeze the platform. Afterwards every forwarding-relevant
  /// query is immutable, so any number of run_slice() calls may execute
  /// concurrently.
  void prepare(bgp::UpdateLog control);

  /// Phase 2: carry one slice of the traffic schedule across the fabric.
  /// Uses slice-local sampler/collector/fabric state seeded identically for
  /// every slice; per-burst draws are keyed by TrafficBurst::id, so the
  /// records a burst produces do not depend on which slice carries it.
  [[nodiscard]] SliceResult run_slice(const TrafficSource& traffic) const;

  /// Phase 3: stitch slice outputs (in slice order) into the corpus with a
  /// stable ordered merge, sum the accounting, and add the IXP-internal
  /// flow bookkeeping. Byte-identical for any partition of the same burst
  /// stream into slices.
  [[nodiscard]] RunResult finish(std::vector<SliceResult> slices);

 private:
  PlatformConfig cfg_;
  bgp::RouteServer rs_;
  flow::MacTable macs_;
  BlackholeService service_;
  std::vector<Member> members_;
  std::unordered_map<bgp::Asn, flow::MemberId> asn_to_member_;
  net::PrefixTrie<flow::MemberId> ownership_;
  net::PrefixTrie<bgp::Asn> origin_table_;
  std::unordered_map<bgp::Asn, flow::MemberId> origin_handover_;
  net::Mac internal_mac_;
  bool prepared_{false};
  bool finished_{false};
};

}  // namespace bw::ixp
