#include "core/event_merge.hpp"

#include <algorithm>
#include <unordered_map>

namespace bw::core {

namespace {

struct PrefixTimeline {
  bgp::Asn sender{0};
  bgp::Asn origin{0};
  /// (announce, withdraw) pairs in time order; withdraw == period_end for
  /// never-withdrawn blackholes.
  std::vector<util::TimeRange> intervals;
  std::size_t announcements{0};
};

std::unordered_map<net::Prefix, PrefixTimeline> build_timelines(
    const bgp::UpdateLog& updates, util::TimeMs period_end) {
  // Updates are expected sorted; enforce locally to stay robust.
  bgp::UpdateLog sorted = updates;
  bgp::sort_updates(sorted);

  std::unordered_map<net::Prefix, PrefixTimeline> timelines;
  std::unordered_map<net::Prefix, util::TimeMs> open;
  for (const auto& u : sorted) {
    auto& tl = timelines[u.prefix];
    if (tl.announcements == 0) {
      tl.sender = u.sender_asn;
      tl.origin = u.origin_asn;
    }
    if (u.type == bgp::UpdateType::kAnnounce) {
      ++tl.announcements;
      open.emplace(u.prefix, u.time);  // ignore re-announce while open
    } else {
      const auto it = open.find(u.prefix);
      if (it == open.end()) continue;  // withdraw without announce
      tl.intervals.push_back({it->second, std::max(u.time, it->second)});
      open.erase(it);
    }
  }
  for (const auto& [prefix, begin] : open) {
    timelines[prefix].intervals.push_back({begin, period_end});
  }
  for (auto& [prefix, tl] : timelines) {
    std::sort(tl.intervals.begin(), tl.intervals.end(),
              [](const util::TimeRange& a, const util::TimeRange& b) {
                return a.begin < b.begin;
              });
  }
  return timelines;
}

}  // namespace

std::vector<RtbhEvent> merge_events(const bgp::UpdateLog& blackhole_updates,
                                    util::TimeMs period_end,
                                    util::DurationMs delta) {
  const auto timelines = build_timelines(blackhole_updates, period_end);

  std::vector<RtbhEvent> events;
  for (const auto& [prefix, tl] : timelines) {
    RtbhEvent current;
    bool has_current = false;
    for (const auto& iv : tl.intervals) {
      if (has_current && iv.begin - current.span.end <= delta) {
        current.active.push_back(iv);
        current.span.end = std::max(current.span.end, iv.end);
        ++current.announcements;
        continue;
      }
      if (has_current) events.push_back(std::move(current));
      current = RtbhEvent{};
      current.prefix = prefix;
      current.sender = tl.sender;
      current.origin = tl.origin;
      current.span = iv;
      current.active = {iv};
      current.announcements = 1;
      has_current = true;
    }
    if (has_current) events.push_back(std::move(current));
  }
  std::sort(events.begin(), events.end(),
            [](const RtbhEvent& a, const RtbhEvent& b) {
              if (a.span.begin != b.span.begin) {
                return a.span.begin < b.span.begin;
              }
              return a.prefix < b.prefix;
            });
  return events;
}

std::vector<MergeSweepPoint> merge_sweep(
    const bgp::UpdateLog& blackhole_updates, util::TimeMs period_end,
    const std::vector<util::DurationMs>& deltas) {
  std::size_t announcements = 0;
  for (const auto& u : blackhole_updates) {
    if (u.type == bgp::UpdateType::kAnnounce) ++announcements;
  }
  const double denom =
      announcements > 0 ? static_cast<double>(announcements) : 1.0;

  std::vector<MergeSweepPoint> out;
  out.reserve(deltas.size() + 1);
  for (const util::DurationMs d : deltas) {
    MergeSweepPoint p;
    p.delta = d;
    p.events = merge_events(blackhole_updates, period_end, d).size();
    p.event_fraction = static_cast<double>(p.events) / denom;
    out.push_back(p);
  }
  // Δ = infinity: one event per unique prefix.
  const auto timelines = build_timelines(blackhole_updates, period_end);
  MergeSweepPoint inf;
  inf.delta = -1;
  inf.events = timelines.size();
  inf.event_fraction = static_cast<double>(inf.events) / denom;
  out.push_back(inf);
  return out;
}

}  // namespace bw::core
