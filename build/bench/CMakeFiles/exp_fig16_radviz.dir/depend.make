# Empty dependencies file for exp_fig16_radviz.
# This may be replaced when dependencies are built.
