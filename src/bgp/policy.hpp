// Per-peer BGP import policy models.
//
// Section 4.2 / Section 7.1 of the paper: virtually all default router
// configurations reject prefixes longer than /24 — including blackhole
// routes — unless the operator explicitly whitelists them. The observed
// population therefore mixes peers that (a) reject all RTBH routes,
// (b) accept only classful-or-shorter (≤ /24) RTBHs, (c) whitelist exactly
// /32 in addition, (d) accept everything, and (e) behave *inconsistently*
// (Fig. 7 shows 13 of the top-100 source ASes dropping only part of the
// traffic; e.g. RTBH accepted on some edge routers only).
#pragma once

#include <cstdint>
#include <string_view>

#include "bgp/route.hpp"

namespace bw::bgp {

enum class BlackholeAcceptance : std::uint8_t {
  kRejectAll,      ///< never accepts an RTBH route
  kClassfulOnly,   ///< accepts RTBH only up to /24 (stock configuration)
  kWhitelistHost,  ///< accepts ≤ /24 and exactly /32, but not /25../31
  kAcceptAll,      ///< accepts every RTBH length (fully configured)
  kInconsistent,   ///< accepts a deterministic per-prefix subset
};

[[nodiscard]] std::string_view to_string(BlackholeAcceptance a);

struct PeerPolicy {
  BlackholeAcceptance blackhole{BlackholeAcceptance::kClassfulOnly};
  /// Regular (non-RTBH) routes longer than this are rejected.
  std::uint8_t max_regular_len{24};
  /// For kInconsistent: fraction of RTBH prefixes accepted.
  double inconsistent_accept_fraction{0.5};
  /// Salt for the deterministic inconsistent-acceptance hash, so different
  /// peers accept different subsets.
  std::uint64_t salt{0};

  /// Import decision for a route received from the route server.
  [[nodiscard]] bool accepts(const Route& route) const;

  /// Import decision for an RTBH route of the given prefix.
  [[nodiscard]] bool accepts_blackhole(const net::Prefix& prefix) const;
};

}  // namespace bw::bgp
