// Transport-layer protocol and port definitions, including the paper's
// Table 3 list of UDP amplification protocols used both by the attack
// generator and by the fine-grained-filtering analysis (Section 5.5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace bw::net {

using Port = std::uint16_t;

/// IP protocol numbers used at the vantage point.
enum class Proto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kOther = 255,
};

[[nodiscard]] std::string_view to_string(Proto p);

/// A transport endpoint class identified by (protocol, port); the paper's
/// Section 6.2 "top port" analysis keys on exactly this tuple.
struct ProtoPort {
  Proto proto{Proto::kUdp};
  Port port{0};

  friend constexpr auto operator<=>(const ProtoPort&, const ProtoPort&) = default;
};

[[nodiscard]] std::string to_string(const ProtoPort& pp);

/// One UDP amplification protocol from the paper's Table 3 footnote.
struct AmplificationProtocol {
  std::string_view name;
  Port udp_port;
  /// Typical bandwidth amplification factor (used by the DDoS generator to
  /// shape reflected volumes; values follow Rossow's amplification survey).
  double amplification_factor;
};

/// The full Table 3 list: QOTD/17, CharGEN/19, DNS/53, TFTP/69, NTP/123,
/// NetBIOS/138, SNMPv2/161, LDAP/389 (cLDAP), RIPv1/520, SSDP/1900,
/// Game/3659, Game/3478, SIP/5060, BitTorrent/6881, Memcache/11211,
/// Game/27005, Game/28960, plus port 0 as the fragmentation marker.
[[nodiscard]] std::span<const AmplificationProtocol> amplification_protocols();

/// True when `port` is one of the known UDP amplification source ports.
[[nodiscard]] bool is_amplification_port(Port port);

/// Sentinel returned by amplification_port_index for non-amplification ports.
inline constexpr std::size_t kNoAmplificationPort = ~std::size_t{0};

/// O(1) dense index of `port` into amplification_protocols(), or
/// kNoAmplificationPort when the port is not in Table 3. The columnar
/// kernels use this to accumulate per-protocol counters in flat arrays.
[[nodiscard]] std::size_t amplification_port_index(Port port);

/// Name of the amplification protocol for a UDP source port, if known.
[[nodiscard]] std::optional<std::string_view> amplification_name(Port port);

/// Well-known service ports used by the legitimate-traffic generator.
inline constexpr Port kHttp = 80;
inline constexpr Port kHttps = 443;
inline constexpr Port kDns = 53;
inline constexpr Port kSsh = 22;
inline constexpr Port kSmtp = 25;
inline constexpr Port kImap = 993;
inline constexpr Port kRdp = 3389;
inline constexpr Port kQuic = 443;

/// First port of the OS ephemeral range used for synthetic client flows.
inline constexpr Port kEphemeralBase = 32768;

}  // namespace bw::net
