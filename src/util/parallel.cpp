#include "util/parallel.hpp"

#include <cstdlib>
#include <string>

namespace bw::util {

namespace detail {

obs::Counter& parallel_for_calls() {
  // "sched.": parallel_sort only reaches parallel_for on its threaded
  // path, so the call count legitimately varies with BW_THREADS.
  static obs::Counter& c =
      obs::Registry::global().counter("sched.parallel.for_calls");
  return c;
}

obs::Counter& parallel_chunk_count() {
  static obs::Counter& c =
      obs::Registry::global().counter("sched.parallel.chunks");
  return c;
}

}  // namespace detail

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::configured_concurrency() {
  if (const char* env = std::getenv("BW_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_concurrency() - 1);
  return pool;
}

}  // namespace bw::util
