#include "common.hpp"

#include <filesystem>

namespace bw::bench {

std::unique_ptr<util::CsvWriter> open_csv(
    const std::string& name, const std::vector<std::string>& header) {
  std::filesystem::create_directories(csv_dir());
  return std::make_unique<util::CsvWriter>(
      std::string(csv_dir()) + "/" + name + ".csv", header);
}

Experiment load_experiment(const char* title) {
  gen::ScenarioConfig config = core::default_benchmark_scenario();
  std::cout << "[" << title << "] corpus: scale " << config.scale << " ("
            << config.scaled(config.members) << " members, "
            << config.scaled(config.rtbh_events)
            << " scheduled events, 104 days)\n";
  core::ScenarioRun run = core::run_scenario(config);
  const auto s = run.dataset.summary();
  std::cout << "[" << title << "] "
            << util::fmt_count(static_cast<std::int64_t>(s.control_updates))
            << " BGP updates, "
            << util::fmt_count(static_cast<std::int64_t>(s.flow_records))
            << " sampled records, "
            << util::fmt_count(static_cast<std::int64_t>(s.blackholed_prefixes))
            << " blackholed prefixes\n";
  core::AnalysisReport report = core::run_pipeline(run.dataset);
  return Experiment{std::move(config), std::move(run), std::move(report)};
}

void print_header(const char* id, const char* caption) {
  std::cout << "\n=== " << id << ": " << caption << " ===\n";
}

void print_paper_row(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured "
            << measured << "\n";
}

}  // namespace bw::bench
