#include "flow/record.hpp"

#include <algorithm>

namespace bw::flow {

void sort_flows(FlowLog& flows) {
  std::sort(flows.begin(), flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.time < b.time;
            });
}

}  // namespace bw::flow
