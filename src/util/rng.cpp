#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace bw::util {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (weights.empty() || total <= 0.0) return 0;
  double target = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(uniform_int(
                0, static_cast<std::int64_t>(n - i) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace bw::util
