# Empty compiler generated dependencies file for exp_fig19_classification.
# This may be replaced when dependencies are built.
