// BGP community attribute (RFC 1997) plus the well-known BLACKHOLE
// community (RFC 7999) and the IXP route-server action communities that
// implement *targeted* RTBH announcements (Section 4.1 of the paper).
//
// Route-server action convention (as deployed at large European IXPs):
//   (0, peer-as)      do NOT announce this route to peer-as
//   (rs-as, peer-as)  announce this route to peer-as
//   (0, rs-as)        announce to none of the peers
//   (rs-as, rs-as)    announce to all peers (default when no action present)
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bw::bgp {

using Asn = std::uint32_t;

struct Community {
  std::uint16_t global{0};  ///< upper 16 bits (conventionally an ASN)
  std::uint16_t local{0};   ///< lower 16 bits (operator-defined value)

  [[nodiscard]] std::string to_string() const;
  static std::optional<Community> parse(std::string_view text);

  friend constexpr auto operator<=>(const Community&, const Community&) = default;
};

/// RFC 7999 BLACKHOLE community (65535:666).
inline constexpr Community kBlackhole{65535, 666};
/// RFC 1997 NO_EXPORT (65535:65281), commonly attached to RTBH routes.
inline constexpr Community kNoExport{65535, 65281};

[[nodiscard]] bool has_community(std::span<const Community> communities,
                                 Community c);

/// Decodes route-server distribution actions from a community list.
class TargetedAnnouncement {
 public:
  explicit TargetedAnnouncement(std::uint16_t route_server_asn)
      : rs_asn_(route_server_asn) {}

  /// Decide whether the route server forwards a route carrying
  /// `communities` to `peer`. Announce-actions beat the default; an explicit
  /// do-not-announce for the peer always wins.
  [[nodiscard]] bool should_announce(std::span<const Community> communities,
                                     std::uint16_t peer_asn) const;

  /// Build a community list that restricts distribution to `peers` only.
  [[nodiscard]] std::vector<Community> restrict_to(
      std::span<const std::uint16_t> peer_asns) const;

  /// Build a community list that excludes `peers` from distribution.
  [[nodiscard]] std::vector<Community> exclude(
      std::span<const std::uint16_t> peer_asns) const;

  [[nodiscard]] std::uint16_t route_server_asn() const noexcept { return rs_asn_; }

 private:
  std::uint16_t rs_asn_;
};

}  // namespace bw::bgp
