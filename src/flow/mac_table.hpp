// MAC → member attribution table.
//
// Section 3.1: "To identify the ASes that exchange the packets at the IXP,
// we map source and destination MAC addresses of the sampled packets to the
// router interface addresses of the ASes connected to the IXP switching
// fabric." This table is that mapping, including the special non-forwarding
// blackhole MAC and the IXP's internal system MACs (whose flows the paper
// removes from the data set before analysis).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "flow/record.hpp"
#include "net/mac.hpp"

namespace bw::flow {

class MacTable {
 public:
  /// Register a member's router port MAC. Later registrations overwrite.
  void register_member(MemberId member, net::Mac port_mac);

  /// Register an IXP-internal system device (route server, monitoring, ...).
  void register_internal(net::Mac mac);

  [[nodiscard]] std::optional<MemberId> member_of(net::Mac mac) const;
  [[nodiscard]] bool is_internal(net::Mac mac) const;
  [[nodiscard]] bool is_blackhole(net::Mac mac) const {
    return mac == net::Mac::blackhole();
  }

  [[nodiscard]] net::Mac mac_of(MemberId member) const;
  [[nodiscard]] std::size_t member_count() const noexcept {
    return member_to_mac_.size();
  }

 private:
  std::unordered_map<net::Mac, MemberId> mac_to_member_;
  std::unordered_map<MemberId, net::Mac> member_to_mac_;
  std::unordered_map<net::Mac, bool> internal_;
};

}  // namespace bw::flow
