#include "core/whatif.hpp"

#include <algorithm>
#include <unordered_set>

#include "net/ports.hpp"

namespace bw::core {

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::kRtbhObserved: return "rtbh-observed";
    case Strategy::kRtbhPerfect: return "rtbh-perfect";
    case Strategy::kRtbhTargeted: return "rtbh-targeted";
    case Strategy::kFlowspecAmpPorts: return "flowspec-amp-ports";
    case Strategy::kAdvancedBlackholing: return "advanced-blackholing";
  }
  return "unknown";
}

namespace {

bool is_attack_packet(const flow::FlowRecord& rec) {
  if (rec.proto != net::Proto::kUdp) return false;
  if (net::is_amplification_port(rec.src_port)) return true;
  // UDP towards an ephemeral destination port during an attack event:
  // reflection lands on the port the attacker spoofed, carpet floods sweep
  // high ports. Gaming clients also live here — that ambiguity is exactly
  // the whitelisting problem Section 7.2 describes.
  return rec.dst_port >= 1024;
}

bool in_active_span(const RtbhEvent& ev, util::TimeMs t) {
  auto it = std::upper_bound(ev.active.begin(), ev.active.end(), t,
                             [](util::TimeMs v, const util::TimeRange& r) {
                               return v < r.begin;
                             });
  if (it == ev.active.begin()) return false;
  --it;
  return it->contains(t);
}

}  // namespace

WhatIfReport compute_whatif(const Dataset& dataset,
                            const std::vector<RtbhEvent>& events,
                            const PreRtbhReport& pre) {
  WhatIfReport report;
  for (std::size_t s = 0; s < kStrategyCount; ++s) {
    report.outcomes[s].strategy = static_cast<Strategy>(s);
  }

  for (std::size_t e = 0; e < events.size(); ++e) {
    if (e >= pre.per_event.size() || !pre.per_event[e].anomaly_within_10min) {
      continue;
    }
    const auto& ev = events[e];
    const auto indices = dataset.flows_to(ev.prefix, ev.span);
    if (indices.empty()) continue;
    ++report.events_considered;

    // Pass 1: which handover ASes carry attack traffic in this event?
    std::unordered_set<bgp::Asn> attack_peers;
    for (const std::size_t idx : indices) {
      const auto& rec = dataset.flows()[idx];
      if (!is_attack_packet(rec)) continue;
      if (const auto asn = dataset.member_asn(rec.src_mac)) {
        attack_peers.insert(*asn);
      }
    }

    // Pass 2: evaluate every strategy per sampled packet.
    for (const std::size_t idx : indices) {
      const auto& rec = dataset.flows()[idx];
      const bool attack = is_attack_packet(rec);
      const bool active = in_active_span(ev, rec.time);
      const auto handover = dataset.member_asn(rec.src_mac);

      const bool amp_match = rec.proto == net::Proto::kUdp &&
                             net::is_amplification_port(rec.src_port);
      const bool advanced_match =
          amp_match ||
          (rec.proto == net::Proto::kUdp && rec.dst_port >= 1024);

      const std::array<bool, kStrategyCount> dropped{
          rec.dropped(),                                      // observed
          active,                                             // perfect RTBH
          active && handover && attack_peers.contains(*handover),  // targeted
          amp_match,                                          // FlowSpec
          advanced_match,                                     // advanced BH
      };
      for (std::size_t s = 0; s < kStrategyCount; ++s) {
        auto& o = report.outcomes[s];
        if (attack) {
          o.attack_packets += rec.packets;
          if (dropped[s]) o.attack_dropped += rec.packets;
        } else {
          o.legit_packets += rec.packets;
          if (dropped[s]) o.legit_dropped += rec.packets;
        }
      }
    }
  }
  return report;
}

}  // namespace bw::core
