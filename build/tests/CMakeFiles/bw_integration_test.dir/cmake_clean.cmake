file(REMOVE_RECURSE
  "CMakeFiles/bw_integration_test.dir/core/pipeline_integration_test.cpp.o"
  "CMakeFiles/bw_integration_test.dir/core/pipeline_integration_test.cpp.o.d"
  "bw_integration_test"
  "bw_integration_test.pdb"
  "bw_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
