file(REMOVE_RECURSE
  "CMakeFiles/exp_tab01_use_cases.dir/exp_tab01_use_cases.cpp.o"
  "CMakeFiles/exp_tab01_use_cases.dir/exp_tab01_use_cases.cpp.o.d"
  "exp_tab01_use_cases"
  "exp_tab01_use_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab01_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
