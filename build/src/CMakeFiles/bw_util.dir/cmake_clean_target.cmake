file(REMOVE_RECURSE
  "libbw_util.a"
)
