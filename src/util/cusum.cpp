#include "util/cusum.hpp"

#include <algorithm>

namespace bw::util {

CusumDetector::CusumDetector(CusumConfig config)
    : cfg_(config),
      baseline_(EwmaConfig{.window = config.window,
                           .threshold_sd = 1e12,  // baseline only, no alarms
                           .min_sd = config.min_sd}) {}

bool CusumDetector::push(double x) {
  if (!baseline_.window_full()) {
    baseline_.push(x);
    return false;
  }
  const double mu = baseline_.current_average();
  const double sd = std::max(baseline_.current_stddev(), cfg_.min_sd);
  s_ = std::max(0.0, s_ + (x - mu - cfg_.slack_k * sd));

  const bool alarm = s_ > cfg_.threshold_h * sd;
  if (alarm) {
    s_ = 0.0;  // restart accumulation after reporting
  }
  // Freeze the baseline while a potential burst is accumulating, so the
  // anomaly does not inflate its own reference. Updates resume once calm.
  if (s_ == 0.0 && !alarm) baseline_.push(x);
  return alarm;
}

void CusumDetector::reset() {
  baseline_.reset();
  s_ = 0.0;
}

}  // namespace bw::util
