#include "net/mac.hpp"

#include <cctype>
#include <cstdio>

namespace bw::net {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<Mac> Mac::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::uint64_t bits = 0;
  for (int group = 0; group < 6; ++group) {
    const std::size_t base = static_cast<std::size_t>(group) * 3;
    const int hi = hex_digit(text[base]);
    const int lo = hex_digit(text[base + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (group < 5 && text[base + 2] != ':') return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint64_t>(hi * 16 + lo);
  }
  return Mac(bits);
}

std::string Mac::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buf;
}

}  // namespace bw::net
