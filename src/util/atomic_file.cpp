#include "util/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bw::util {

namespace {

/// Flush `path`'s bytes to stable storage. Best-effort on platforms
/// without fsync; failure is reported so callers can retry.
Status sync_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::error(StatusCode::kUnavailable,
                         "atomic_write_file: cannot reopen for fsync: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::error(StatusCode::kUnavailable,
                         "atomic_write_file: fsync failed: " + path);
  }
#else
  (void)path;
#endif
  return ok_status();
}

void remove_quietly(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

std::string atomic_temp_path(const std::string& path) { return path + ".tmp"; }

Status atomic_write_file(const std::string& path,
                         const std::function<Status(std::ostream&)>& writer,
                         const AtomicWriteHooks* hooks) {
  const std::string tmp = atomic_temp_path(path);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      return Status::error(StatusCode::kUnavailable,
                           "atomic_write_file: cannot open temp file " + tmp);
    }
    Status st = writer(os);
    if (st.ok()) {
      os.flush();
      if (!os) st = data_loss("atomic_write_file: flush failed: " + tmp);
    }
    if (!st.ok()) {
      os.close();
      remove_quietly(tmp);
      return st;
    }
  }
  if (Status st = sync_file(tmp); !st.ok()) {
    remove_quietly(tmp);
    return st;
  }
  if (hooks != nullptr && hooks->after_temp_write) hooks->after_temp_write();
  if (hooks != nullptr && hooks->before_rename) hooks->before_rename();

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    return Status::error(StatusCode::kUnavailable,
                         "atomic_write_file: rename to " + path +
                             " failed: " + ec.message());
  }
  // Make the rename itself durable (directory entry). Best-effort: the
  // data is already safe under the final name on any POSIX filesystem.
#if defined(__unix__) || defined(__APPLE__)
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return ok_status();
}

Status atomic_write_file(const std::string& path, std::string_view content) {
  return atomic_write_file(path, [&](std::ostream& os) {
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
    return ok_status();
  });
}

Status retry_with_backoff(std::size_t attempts, DurationMs backoff,
                          const std::function<Status()>& op) {
  static obs::Counter& attempt_count =
      obs::Registry::global().counter("retry.attempts");
  static obs::Counter& backoff_count =
      obs::Registry::global().counter("retry.backoffs");
  Status st = internal_error("retry_with_backoff: zero attempts");
  for (std::size_t i = 0; i < attempts; ++i) {
    attempt_count.add();
    st = op();
    if (st.ok() || st.code() != StatusCode::kUnavailable) return st;
    if (i + 1 < attempts && backoff > 0) {
      backoff_count.add();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
  }
  return st;
}

}  // namespace bw::util
