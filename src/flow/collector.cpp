#include "flow/collector.hpp"

#include <cmath>

namespace bw::flow {

void Collector::ingest(FlowRecord record) { ingest(record, rng_); }

void Collector::ingest(FlowRecord record, util::Rng& jitter_rng) {
  if (macs_->is_internal(record.src_mac) || macs_->is_internal(record.dst_mac)) {
    ++internal_removed_;
    return;
  }
  const double jitter = clock_.jitter_sd_ms > 0.0
                            ? jitter_rng.normal(0.0, clock_.jitter_sd_ms)
                            : 0.0;
  record.time += clock_.offset_ms + static_cast<util::DurationMs>(std::lround(jitter));
  flows_.push_back(record);
}

void Collector::finalize() { sort_flows(flows_); }

}  // namespace bw::flow
