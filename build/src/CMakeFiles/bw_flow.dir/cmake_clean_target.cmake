file(REMOVE_RECURSE
  "libbw_flow.a"
)
