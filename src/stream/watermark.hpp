// Watermark-based event-time merge of the feed rings.
//
// The batch pipeline assumes a finished, timestamp-ordered corpus. A live
// tap gives neither: the BGP and flow feeds progress independently, and
// records inside one feed can arrive slightly out of order (collector
// jitter, export batching). The WatermarkMux restores the monitor's
// ordering contract without unbounded buffering:
//
//   - every producer publishes a *watermark* alongside its ring: the
//     largest event time it has pushed, minus a configured out-of-orderness
//     allowance L. By publishing time T the producer promises "no future
//     event of this feed is earlier than T".
//   - the consumer drains all rings into a reorder heap and releases, in
//     (time, kind, seq) order, exactly the events strictly older than the
//     minimum watermark over the still-open feeds. Closed-and-drained
//     feeds stop gating.
//   - a record that arrives later than its feed's promise (more than L
//     behind the feed maximum) would have to be emitted behind an event
//     already released; it is dropped and counted as stream.late_dropped —
//     admitted or counted, never silently reordered.
//
// The heap is bounded by `max_buffer`: at the cap, drain_feeds refuses to
// pop from any feed other than the gating one, so the racing feeds' rings
// fill and their producers feel backpressure instead of the heap growing.
// Only when the gating feed itself overruns the cap (open but dead
// producer) is the oldest event force-released and counted
// (stream.forced_release) — memory stays bounded even against a
// pathological producer, and the violation is loud.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "stream/event.hpp"
#include "stream/ring.hpp"

namespace bw::stream {

/// One feed: an SPSC ring plus the producer's published progress. The
/// producer owns push/watermark/close; the consumer only pops and reads.
struct FeedRing {
  FeedRing(std::size_t capacity, util::DurationMs allowance_ms)
      : ring(capacity), allowance(allowance_ms) {}

  SpscRing<StreamEvent> ring;
  /// Bounded out-of-orderness of this feed: no event is earlier than the
  /// feed's maximum time so far minus this. Immutable after construction.
  const util::DurationMs allowance;
  /// Largest pushed event time minus the allowance; kMinTime until the
  /// first push. Monotone non-decreasing. Published out-of-band, so the
  /// consumer must clamp it by the oldest undrained ring event (see
  /// WatermarkMux::release_threshold) — a raw side-channel watermark would
  /// overtake the records still buffered in the ring.
  std::atomic<util::TimeMs> watermark{std::numeric_limits<util::TimeMs>::min()};
  /// Set (release order) after the last push; the consumer treats a closed
  /// feed with an empty ring as infinitely far ahead.
  std::atomic<bool> closed{false};

  /// Producer-side watermark publication for an event of time `t`; called
  /// before the push so the promise always covers the event in flight.
  void advance_watermark(util::TimeMs t) {
    const util::TimeMs mark =
        t > std::numeric_limits<util::TimeMs>::min() + allowance
            ? t - allowance
            : std::numeric_limits<util::TimeMs>::min();
    if (mark > watermark.load(std::memory_order_relaxed)) {
      watermark.store(mark, std::memory_order_release);
    }
  }
  void close() { closed.store(true, std::memory_order_release); }
};

struct MuxStats {
  std::uint64_t released{0};
  std::uint64_t late_dropped{0};
  std::uint64_t forced_releases{0};
};

class WatermarkMux {
 public:
  /// `feeds` outlive the mux. `max_buffer` bounds the reorder heap.
  WatermarkMux(std::vector<FeedRing*> feeds, std::size_t max_buffer);

  /// Pop up to `budget` events from the feed rings into the reorder heap,
  /// lowest-watermark (gating) feed first. Returns the number popped.
  std::size_t drain_feeds(std::size_t budget);

  /// True when every feed is closed, every ring drained, and the heap is
  /// empty — the stream is finished.
  [[nodiscard]] bool exhausted() const;

  /// Deliver every ready event (strictly older than the release threshold,
  /// or all of them once every feed is closed and drained) to `fn`, in
  /// (time, kind, seq) order. Returns the number delivered.
  template <typename Fn>
  std::size_t release_ready(Fn&& fn) {
    const util::TimeMs threshold = release_threshold();
    std::size_t n = 0;
    while (!heap_.empty() &&
           (heap_.top().time < threshold || feeds_spent())) {
      deliver(fn);
      ++n;
    }
    // Bounded memory against a stalled-but-open gating feed: force the
    // oldest events out rather than growing without limit.
    while (heap_.size() > max_buffer_) {
      deliver(fn);
      ++stats_.forced_releases;
      note_forced_release();
      ++n;
    }
    return n;
  }

  [[nodiscard]] const MuxStats& stats() const noexcept { return stats_; }

  /// min over open feeds of the *effective* watermark: the published one,
  /// clamped so it never passes the oldest event still sitting undrained
  /// in the feed's ring (in-band semantics — a watermark must not overtake
  /// buffered records). Closed+drained feeds are excluded; kMaxTime when
  /// nothing gates.
  [[nodiscard]] util::TimeMs release_threshold();

 private:
  struct After {
    bool operator()(const StreamEvent& a, const StreamEvent& b) const {
      return b.before(a);  // min-heap on the delivery order
    }
  };

  /// True when no feed can produce again: all closed with drained rings.
  [[nodiscard]] bool feeds_spent() const;
  void note_forced_release();

  template <typename Fn>
  void deliver(Fn&& fn) {
    // released_floor_ advances to the delivered time: anything arriving
    // behind it can no longer be emitted in order.
    released_floor_ = heap_.top().time;
    ++stats_.released;
    fn(heap_.top());
    heap_.pop();
  }

  std::vector<FeedRing*> feeds_;
  std::size_t max_buffer_;
  std::priority_queue<StreamEvent, std::vector<StreamEvent>, After> heap_;
  util::TimeMs released_floor_{std::numeric_limits<util::TimeMs>::min()};
  MuxStats stats_;
};

}  // namespace bw::stream
