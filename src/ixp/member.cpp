#include "ixp/member.hpp"

#include <sstream>

namespace bw::ixp {

std::string Member::to_string() const {
  std::ostringstream os;
  os << "member#" << id << " AS" << asn << " mac " << port_mac.to_string()
     << " prefixes " << owned.size() << " policy "
     << bgp::to_string(policy.blackhole);
  return os.str();
}

}  // namespace bw::ixp
