// bw-faultgen: corrupt a measurement corpus in controlled, seeded ways.
//
//   bw-faultgen --in DIR|FILE.bwds --out DIR [--seed N] [--faults SPEC]
//   bw-faultgen --in FILE.bwds --out FILE.bwds --binary KIND [--seed N]
//
// Text mode: the input is either a CSV corpus directory (as written by
// `bw-generate --csv` / export_dataset_csv) or a .bwds dataset, which is
// exported to CSV first. Faults are applied at the text level and the
// corrupted corpus is written under --out, with a ground-truth log of what
// was damaged printed to stdout. Without --faults the default mix runs:
// every fault kind once, at small magnitudes.
//
// SPEC is comma-separated `kind[:file[:arg]]`, e.g.
//   --faults truncate:flows.csv:0.05,byteflip:control.csv:4,dropmacs::3
//
// Binary mode (--binary): the input .bwds container is copied to --out and
// corrupted at the byte level with KIND: truncate | bitflip | torn | swap.
// The checksummed container must turn every one of these into a precise
// load error — the persistence fault suite drives this mode.
#include <filesystem>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "core/dataset.hpp"
#include "core/io_text.hpp"
#include "testing/fault.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-faultgen --in DIR|FILE.bwds --out DIR"
               " [--seed N] [--faults SPEC]\n"
               "       bw-faultgen --in FILE.bwds --out FILE.bwds"
               " --binary KIND [--seed N]\n"
               "  SPEC: comma-separated kind[:file[:arg]] with kinds\n"
               "        truncate(arg: fraction), byteflip, dup, reorder,\n"
               "        mangle, dropmacs (arg: count), skew (arg: ms)\n"
               "  KIND: truncate | bitflip | torn | swap (byte-level faults\n"
               "        on the .bwds container)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string in;
  std::string out;
  std::string spec;
  std::string binary_kind;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(tools::kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--out") out = value();
    else if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--faults") spec = value();
    else if (arg == "--binary") binary_kind = value();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return tools::kExitUsage;
    }
  }
  if (in.empty() || out.empty()) {
    usage();
    return tools::kExitUsage;
  }

  try {
    if (!binary_kind.empty()) {
      if (!spec.empty()) {
        std::cerr << "bw-faultgen: --binary and --faults are exclusive\n";
        usage();
        return tools::kExitUsage;
      }
      auto kind = testing::parse_binary_fault_kind(binary_kind);
      if (!kind.ok()) {
        std::cerr << "bw-faultgen: " << kind.status().to_string() << "\n";
        return tools::kExitUsage;
      }
      if (std::filesystem::is_directory(in)) {
        std::cerr << "bw-faultgen: --binary needs a .bwds file, not a "
                     "directory\n";
        return tools::kExitUsage;
      }
      std::error_code ec;
      std::filesystem::copy_file(
          in, out, std::filesystem::copy_options::overwrite_existing, ec);
      if (ec) {
        std::cerr << "bw-faultgen: cannot copy " << in << " -> " << out
                  << ": " << ec.message() << "\n";
        return tools::kExitData;
      }
      auto applied = testing::apply_binary_fault(out, *kind, seed);
      if (!applied.ok()) {
        std::cerr << "bw-faultgen: " << applied.status().to_string() << "\n";
        return tools::kExitData;
      }
      std::cout << "Applied binary fault " << testing::to_string(*kind)
                << " (seed " << seed << ") to " << out << ": "
                << applied->detail << "\n";
      return tools::kExitOk;
    }

    testing::FaultPlan plan = testing::FaultPlan::default_mix(seed);
    if (!spec.empty()) {
      auto parsed = testing::parse_fault_spec(spec, seed);
      if (!parsed.ok()) {
        std::cerr << "bw-faultgen: " << parsed.status().to_string() << "\n";
        return tools::kExitUsage;
      }
      plan = std::move(parsed).value();
    }

    std::string csv_dir = in;
    if (!std::filesystem::is_directory(in)) {
      // .bwds input: materialise the CSV corpus under --out, corrupt there.
      auto dataset = core::Dataset::try_load(in);
      if (!dataset.ok()) {
        std::cerr << "bw-faultgen: " << dataset.status().to_string() << "\n";
        return tools::kExitData;
      }
      core::export_dataset_csv(dataset.value(), out);
      csv_dir = out;
    }

    auto corpus = testing::CsvCorpus::load(csv_dir);
    if (!corpus.ok()) {
      std::cerr << "bw-faultgen: " << corpus.status().to_string() << "\n";
      return tools::kExitData;
    }

    const testing::FaultLog log = testing::apply_faults(corpus.value(), plan);
    if (const auto st = corpus.value().save(out); !st.ok()) {
      std::cerr << "bw-faultgen: " << st.to_string() << "\n";
      return tools::kExitData;
    }
    std::cout << "Applied " << plan.faults.size() << " fault(s) (seed " << seed
              << ") to " << out << ":\n"
              << log.summary();
    return tools::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "bw-faultgen: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
