// Online RTBH monitor.
//
// The paper's pipeline is offline: it replays a finished 104-day corpus.
// Operators need the same signals *live*. This monitor consumes the two
// streams incrementally — BGP updates and sampled flow records, in
// timestamp order — and maintains per-prefix event state, emitting alerts
// as the paper's pathologies appear:
//
//   kEventStarted       first announcement of a new RTBH event
//   kEventEnded         event closed (withdrawn and merge-delta expired)
//   kAttackCorrelated   traffic anomaly within the reaction window of the
//                       event start (Section 5.3's DDoS indication)
//   kLowDropRate        an active blackhole leaks: < 50% of the observed
//                       traffic towards it is being dropped (Section 4.2)
//   kZombieSuspect      active for days with (almost) no traffic —
//                       probably forgotten (Section 7.3)
//
// Per-destination history lives in fixed-size detector windows; the state
// map grows with the number of *observed destinations*, so long-running
// deployments bound it with MonitorConfig::max_destinations: least-recently
// touched destinations are evicted first, and an eviction that drops an
// open event emits a final kEventEnded alert — state is shed loudly, never
// silently.
#pragma once

#include <limits>
#include <functional>
#include <list>
#include <unordered_set>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/message.hpp"
#include "core/anomaly.hpp"
#include "flow/record.hpp"
#include "util/ewma.hpp"

namespace bw::core {

enum class AlertKind : std::uint8_t {
  kEventStarted,
  kEventEnded,
  kAttackCorrelated,
  kLowDropRate,
  kZombieSuspect,
};

[[nodiscard]] std::string_view to_string(AlertKind k);

struct Alert {
  AlertKind kind{AlertKind::kEventStarted};
  util::TimeMs time{0};
  net::Prefix prefix;
  bgp::Asn origin{0};
  /// kLowDropRate: observed drop share; kAttackCorrelated: anomaly level.
  double value{0.0};
  std::string message;
};

struct MonitorConfig {
  util::DurationMs merge_delta{10 * util::kMinute};
  util::DurationMs slot{5 * util::kMinute};
  util::EwmaConfig ewma{};
  /// Alert when an active event's drop share sits below this after at
  /// least `min_drop_samples` packets.
  double low_drop_threshold{0.5};
  std::uint64_t min_drop_samples{50};
  /// Zombie suspicion: active at least this long with fewer than
  /// `zombie_max_packets` sampled packets.
  util::DurationMs zombie_after{2 * util::kDay};
  std::uint64_t zombie_max_packets{10};
  /// Bound on tracked destinations; 0 means unbounded. Past the cap the
  /// least-recently-touched destination is evicted; if its event is still
  /// open a final kEventEnded alert is emitted first.
  std::size_t max_destinations{0};
};

class RtbhMonitor {
 public:
  using AlertSink = std::function<void(const Alert&)>;

  RtbhMonitor(MonitorConfig config, AlertSink sink);

  /// Feed the next BGP update (timestamps must be non-decreasing across
  /// both feeds; out-of-order input within one slot is tolerated).
  void on_update(const bgp::Update& update);

  /// Feed the next sampled flow record.
  void on_flow(const flow::FlowRecord& record);

  /// Advance the clock (fires end-of-event and zombie checks even when no
  /// input arrives). Called implicitly by both feeds.
  void advance(util::TimeMs now);

  /// Flush all open state (end of feed).
  void finish(util::TimeMs now);

  // --- live counters ---
  [[nodiscard]] std::size_t active_events() const;
  [[nodiscard]] std::size_t total_events() const noexcept {
    return total_events_;
  }
  [[nodiscard]] std::size_t alerts_emitted() const noexcept {
    return alerts_emitted_;
  }

 private:
  struct PrefixState {
    bool announced{false};
    util::TimeMs event_start{0};
    util::TimeMs last_withdraw{0};
    bool in_event{false};
    bgp::Asn origin{0};
    std::uint64_t packets_total{0};
    std::uint64_t packets_dropped{0};
    bool attack_alerted{false};
    bool low_drop_alerted{false};
    bool zombie_alerted{false};
    /// Per-feature detectors over the slotted history of this destination.
    std::vector<util::EwmaDetector> detectors;
    /// Current (open) slot accumulation.
    std::int64_t slot_index{-1};
    std::int64_t last_closed_slot{std::numeric_limits<std::int64_t>::min()};
    double slot_packets{0};
    double slot_flows{0};
    std::unordered_map<std::uint32_t, bool> slot_sources;
    std::unordered_map<std::uint16_t, bool> slot_ports;
    double slot_non_tcp{0};
    int last_anomaly_level{0};
    util::TimeMs last_anomaly_at{std::numeric_limits<util::TimeMs>::min()};
    /// Position in lru_ (most-recently-touched first).
    std::list<net::Prefix>::iterator lru_it;
  };

  void emit(AlertKind kind, util::TimeMs t, const net::Prefix& prefix,
            const PrefixState& st, double value, std::string message);
  void close_slot(const net::Prefix& prefix, PrefixState& st);
  void maybe_close_event(const net::Prefix& prefix, PrefixState& st,
                         util::TimeMs now);
  void maybe_end_event(const net::Prefix& prefix, PrefixState& st,
                       util::TimeMs now);
  PrefixState& state_for(const net::Prefix& prefix);
  void touch(PrefixState& st);
  void evict_over_cap();

  MonitorConfig cfg_;
  AlertSink sink_;
  std::unordered_map<net::Prefix, PrefixState> prefixes_;
  /// Recency order over prefixes_ keys; front = most recently touched.
  std::list<net::Prefix> lru_;
  /// Tracked non-/32 prefixes (rare), so flow attribution stays O(1)+small.
  std::vector<net::Prefix> wide_prefixes_;
  /// Prefixes with an open event — the only ones advance() must sweep.
  std::unordered_set<net::Prefix> active_;
  util::TimeMs last_sweep_{std::numeric_limits<util::TimeMs>::min()};
  util::TimeMs now_{std::numeric_limits<util::TimeMs>::min()};
  std::size_t total_events_{0};
  std::size_t alerts_emitted_{0};
};

}  // namespace bw::core
