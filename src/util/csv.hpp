// Minimal CSV writer so every experiment can dump its series for external
// plotting, mirroring how the paper's figures would be regenerated.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace bw::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header line. Throws
  /// std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a row; fields containing separators/quotes are quoted per
  /// RFC 4180. Row width is not enforced (callers own their schema).
  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t rows_{0};
};

}  // namespace bw::util
