file(REMOVE_RECURSE
  "CMakeFiles/bw_peeringdb.dir/peeringdb/registry.cpp.o"
  "CMakeFiles/bw_peeringdb.dir/peeringdb/registry.cpp.o.d"
  "libbw_peeringdb.a"
  "libbw_peeringdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_peeringdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
