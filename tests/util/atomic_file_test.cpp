// Kill-point tests for the atomic temp-then-rename commit: at every crash
// instant the target path holds either the complete old file or the
// complete new file — never a torn mix.
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bw::util {
namespace {

namespace fs = std::filesystem;

struct SimulatedCrash : std::runtime_error {
  SimulatedCrash() : std::runtime_error("simulated crash") {}
};

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bw_atomic_file_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    target_ = (dir_ / "report.md").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::optional<std::string> read(const std::string& path) const {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  }

  fs::path dir_;
  std::string target_;
};

TEST_F(AtomicFileTest, WritesContentAndCleansTemp) {
  ASSERT_TRUE(atomic_write_file(target_, "hello\n").ok());
  EXPECT_EQ(read(target_), "hello\n");
  EXPECT_FALSE(fs::exists(atomic_temp_path(target_)));
}

TEST_F(AtomicFileTest, ReplacesExistingContent) {
  ASSERT_TRUE(atomic_write_file(target_, "old").ok());
  ASSERT_TRUE(atomic_write_file(target_, "new and longer").ok());
  EXPECT_EQ(read(target_), "new and longer");
}

TEST_F(AtomicFileTest, CrashAfterTempWriteLeavesOldFileIntact) {
  ASSERT_TRUE(atomic_write_file(target_, "old contents").ok());
  AtomicWriteHooks hooks;
  hooks.after_temp_write = [] { throw SimulatedCrash(); };
  EXPECT_THROW(
      (void)atomic_write_file(
          target_,
          [](std::ostream& os) -> Status {
            os << "new contents";
            return ok_status();
          },
          &hooks),
      SimulatedCrash);
  // The crash happened with the temp staged but not committed: the target
  // is the complete old file and the temp is the complete new file — the
  // exact debris a real kill would leave.
  EXPECT_EQ(read(target_), "old contents");
  EXPECT_EQ(read(atomic_temp_path(target_)), "new contents");
  // The next attempt simply overwrites the stale temp.
  ASSERT_TRUE(atomic_write_file(target_, "recovered").ok());
  EXPECT_EQ(read(target_), "recovered");
  EXPECT_FALSE(fs::exists(atomic_temp_path(target_)));
}

TEST_F(AtomicFileTest, CrashBeforeRenameLeavesOldFileIntact) {
  ASSERT_TRUE(atomic_write_file(target_, "old contents").ok());
  AtomicWriteHooks hooks;
  hooks.before_rename = [] { throw SimulatedCrash(); };
  EXPECT_THROW(
      (void)atomic_write_file(
          target_,
          [](std::ostream& os) -> Status {
            os << "new contents";
            return ok_status();
          },
          &hooks),
      SimulatedCrash);
  EXPECT_EQ(read(target_), "old contents");
}

TEST_F(AtomicFileTest, WriterFailureRemovesTempAndKeepsTarget) {
  ASSERT_TRUE(atomic_write_file(target_, "old contents").ok());
  const Status st = atomic_write_file(target_, [](std::ostream& os) -> Status {
    os << "partial";
    return data_loss("writer gave up half-way");
  });
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(read(target_), "old contents");
  EXPECT_FALSE(fs::exists(atomic_temp_path(target_)));
}

TEST_F(AtomicFileTest, MissingDirectoryIsUnavailable) {
  const std::string bad = (dir_ / "no_such_dir" / "x.md").string();
  const Status st = atomic_write_file(bad, "content");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(fs::exists(bad));
}

TEST(RetryWithBackoffTest, RetriesOnlyUnavailable) {
  int calls = 0;
  // Transient failure, then success: retried.
  Status st = retry_with_backoff(3, 0, [&]() -> Status {
    ++calls;
    if (calls < 3) return Status::error(StatusCode::kUnavailable, "busy");
    return ok_status();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);

  // Corruption is never retried: one call, error passed through.
  calls = 0;
  st = retry_with_backoff(3, 0, [&]() -> Status {
    ++calls;
    return data_loss("bad checksum");
  });
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);

  // Exhausted attempts report the last transient error.
  calls = 0;
  st = retry_with_backoff(2, 0, [&]() -> Status {
    ++calls;
    return Status::error(StatusCode::kUnavailable, "still busy");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace bw::util
