// BGP update messages as observed at the IXP route server. The sequence of
// these messages *is* the control-plane trace of the paper (Section 3.1):
// it tells us when blackholing starts/stops, which AS triggered it, which
// peers should receive it, and the origin AS of the blackholed prefix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/community.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "util/time.hpp"

namespace bw::bgp {

enum class UpdateType : std::uint8_t { kAnnounce, kWithdraw };

[[nodiscard]] std::string_view to_string(UpdateType t);

/// One BGP update received by the route server from a member session.
struct Update {
  util::TimeMs time{0};
  UpdateType type{UpdateType::kAnnounce};
  Asn sender_asn{0};              ///< IXP member that sent the update
  Asn origin_asn{0};              ///< origin of the prefix (may differ)
  net::Prefix prefix;
  net::Ipv4 next_hop;             ///< blackhole next hop for RTBH routes
  std::vector<Community> communities;

  /// An RTBH route carries the RFC 7999 BLACKHOLE community.
  [[nodiscard]] bool is_blackhole() const {
    return has_community(communities, kBlackhole);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Chronologically ordered control-plane trace.
using UpdateLog = std::vector<Update>;

/// Stable ordering for replay: by time, withdraw-before-announce at
/// identical timestamps, so a same-instant re-announcement leaves the
/// blackhole active rather than withdrawn.
void sort_updates(UpdateLog& log);

}  // namespace bw::bgp
