// Structure-of-arrays view of a sorted flow log — the columnar hot path.
//
// The analysis kernels read 4-16 bytes per record but the AoS FlowRecord is
// 44+ bytes wide: every kernel pass drags the whole record through the cache
// to use a field or two. FlowColumns materialises the fields kernels touch
// as parallel dense vectors permuted into the Dataset's by_dst order (plus a
// by_src-ordered subset for source-side scans), so a kernel becomes a
// branch-light linear walk over contiguous uint32/uint64 columns that the
// compiler can auto-vectorize.
//
// Invariants (what makes columnar results byte-identical to the AoS path):
//   - Row k of the dst-ordered columns is flows[by_dst[k]], where by_dst is
//     sorted by (dst_ip, time, flow index). Scanning rows [lo, hi) ascending
//     therefore visits records in exactly the order
//     Dataset::for_each_flow_to delivers them — all accumulation orders,
//     including non-associative double sums, are preserved.
//   - A single-address (/32) run is time-sorted, so a half-open time window
//     is a contiguous sub-run: resolve_dst binary-searches it and the time
//     predicate disappears from the inner loop.
//   - The dropped flag is a packed bitmap (one bit per row, 64 rows per
//     word); src_member is a dense member id resolved at build time, so
//     per-source kernels index flat arrays instead of hashing MACs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flow/record.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "util/time.hpp"

namespace bw::util {
class ThreadPool;
}

namespace bw::flow {

class FlowColumns {
 public:
  /// src_member value for records whose handover MAC has no member mapping.
  static constexpr std::uint32_t kNoMember = ~std::uint32_t{0};

  /// A contiguous row range [begin, end) of one of the column orders.
  struct Range {
    std::size_t begin{0};
    std::size_t end{0};

    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  };

  /// A resolved destination scan. When `time_filtered` is false the time
  /// window has already been narrowed away by binary search (host runs);
  /// otherwise the caller must still test range.contains(time[i]).
  struct DstScan {
    std::size_t begin{0};
    std::size_t end{0};
    bool time_filtered{false};

    [[nodiscard]] std::size_t rows() const noexcept { return end - begin; }
  };

  FlowColumns() = default;

  /// Materialise the columns from `flows` under the two permutations.
  /// `member_ids` maps a handover MAC to its dense member id (records with
  /// unmapped MACs get kNoMember). The fill shards over `pool` and the
  /// result is identical at any thread count.
  [[nodiscard]] static FlowColumns build(
      const FlowLog& flows, const std::vector<std::size_t>& by_dst,
      const std::vector<std::size_t>& by_src,
      const std::unordered_map<net::Mac, std::uint32_t>& member_ids,
      util::ThreadPool& pool);

  [[nodiscard]] std::size_t size() const noexcept { return time.size(); }
  [[nodiscard]] bool empty() const noexcept { return time.empty(); }

  /// Dropped flag of dst-ordered row `i` (bit i of the packed bitmap).
  [[nodiscard]] bool dropped(std::size_t i) const noexcept {
    return ((dropped_words[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  /// Rows destined to `prefix`: binary search on the dst_ip column, with
  /// the time window resolved once for host prefixes (see DstScan).
  [[nodiscard]] DstScan resolve_dst(const net::Prefix& prefix,
                                    util::TimeRange range) const;

  /// Full (all-time) run of rows destined to / sourced from one address.
  [[nodiscard]] Range dst_run(net::Ipv4 addr) const;
  [[nodiscard]] Range src_run(net::Ipv4 addr) const;

  /// Invoke `fn(row)` for every dst-ordered row destined to `prefix`
  /// within `range`, in ascending row order — the exact visit order of
  /// Dataset::for_each_flow_to. Returns the number of rows scanned (the
  /// resolved range size, before any time predicate).
  template <typename Fn>
  std::uint64_t for_each_dst_row(const net::Prefix& prefix,
                                 util::TimeRange range, Fn&& fn) const {
    const DstScan s = resolve_dst(prefix, range);
    if (!s.time_filtered) {
      for (std::size_t i = s.begin; i < s.end; ++i) fn(i);
    } else {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        if (range.contains(time[i])) fn(i);
      }
    }
    return s.rows();
  }

  // --- columns in by_dst order: row k is flows[by_dst[k]] ---
  std::vector<util::TimeMs> time;
  std::vector<std::uint32_t> src_ip;
  std::vector<std::uint32_t> dst_ip;
  std::vector<std::uint8_t> proto;
  std::vector<std::uint16_t> src_port;
  std::vector<std::uint16_t> dst_port;
  std::vector<std::uint32_t> packets;
  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> dropped_words;  ///< packed dropped() bitmap
  std::vector<std::uint32_t> src_member;     ///< dense member id or kNoMember

  // --- columns in by_src order: row k is flows[by_src[k]] ---
  std::vector<std::uint32_t> s_src_ip;
  std::vector<util::TimeMs> s_time;
  std::vector<std::uint16_t> s_src_port;
  std::vector<std::uint16_t> s_dst_port;
};

}  // namespace bw::flow
