#include "peeringdb/registry.hpp"

#include <array>

namespace bw::pdb {

std::string_view to_string(OrgType t) {
  switch (t) {
    case OrgType::kContent: return "Content";
    case OrgType::kCableDslIsp: return "Cable/DSL/ISP";
    case OrgType::kNsp: return "NSP";
    case OrgType::kEnterprise: return "Enterprise";
    case OrgType::kEducational: return "Educational/Research";
    case OrgType::kNonProfit: return "Non-Profit";
    case OrgType::kRouteServer: return "Route Server";
    case OrgType::kUnknown: return "Unknown";
  }
  return "Unknown";
}

std::string_view to_string(Scope s) {
  switch (s) {
    case Scope::kGlobal: return "Global";
    case Scope::kEurope: return "Europe";
    case Scope::kNorthAmerica: return "North America";
    case Scope::kAsiaPacific: return "Asia Pacific";
    case Scope::kRegional: return "Regional";
    case Scope::kUnknown: return "Unknown";
  }
  return "Unknown";
}

void Registry::upsert(const OrgRecord& record) { records_[record.asn] = record; }

std::optional<OrgRecord> Registry::find(Asn asn) const {
  const auto it = records_.find(asn);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

OrgType Registry::type_of(Asn asn) const {
  const auto rec = find(asn);
  return rec ? rec->type : OrgType::kUnknown;
}

Scope Registry::scope_of(Asn asn) const {
  const auto rec = find(asn);
  return rec ? rec->scope : Scope::kUnknown;
}

Registry Registry::synthesize(std::span<const Asn> asns,
                              const Marginals& m, util::Rng& rng) {
  Registry registry;
  const std::array<double, 7> weights{m.content,    m.cable_dsl_isp, m.nsp,
                                      m.enterprise, m.educational,   m.non_profit,
                                      m.absent};
  constexpr std::array<OrgType, 6> types{
      OrgType::kContent,    OrgType::kCableDslIsp, OrgType::kNsp,
      OrgType::kEnterprise, OrgType::kEducational, OrgType::kNonProfit};
  constexpr std::array<Scope, 5> scopes{Scope::kGlobal, Scope::kEurope,
                                        Scope::kNorthAmerica,
                                        Scope::kAsiaPacific, Scope::kRegional};
  // NSPs lean global, access ISPs lean regional; the exact split only has to
  // produce a plausible Fig. 8 style mix.
  for (const Asn asn : asns) {
    const std::size_t pick = rng.weighted_index(weights);
    if (pick == 6) continue;  // absent from the registry
    OrgRecord rec;
    rec.asn = asn;
    rec.type = types[pick];
    if (rec.type == OrgType::kNsp) {
      rec.scope = rng.chance(0.45) ? Scope::kGlobal
                                   : scopes[1 + rng.index(scopes.size() - 1)];
    } else if (rec.type == OrgType::kCableDslIsp) {
      rec.scope = rng.chance(0.8) ? Scope::kRegional : Scope::kEurope;
    } else {
      rec.scope = scopes[rng.index(scopes.size())];
    }
    registry.upsert(rec);
  }
  return registry;
}

}  // namespace bw::pdb
