// Persistence fault suite: every byte-level corruption of a .bwds container
// must be *detected* at load — never silently ingested — and a corrupt
// scenario cache must heal itself (quarantine + regenerate), never crash.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/pipeline.hpp"
#include "corpus.hpp"
#include "testing/fault.hpp"

namespace bw::core {
namespace {

namespace fs = std::filesystem;
using testutil::World;

std::string read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

class PersistenceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("bw_persistence_fault_" + std::string(::testing::UnitTest::
                                                      GetInstance()
                                                          ->current_test_info()
                                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    // A small but fully populated dataset: all five container sections
    // carry payload, so section-swap has material to work with.
    World world;
    const net::Ipv4 victim(24, 0, 0, 1);
    bgp::UpdateLog control;
    control.push_back(world.platform->service().make_announce(
        util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    control.push_back(world.platform->service().make_withdraw(
        2 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    std::vector<flow::TrafficBurst> bursts;
    bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                                 net::Proto::kUdp, 123, 4444,
                                 {util::kHour, 2 * util::kHour}, 100,
                                 world.acceptor));
    Dataset dataset = world.run(std::move(control), bursts);
    clean_path_ = (dir_ / "clean.bwds").string();
    ASSERT_TRUE(dataset.try_save(clean_path_).ok());
    clean_bytes_ = read_bytes(clean_path_);
    ASSERT_GT(clean_bytes_.size(), 100u);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string clean_path_;
  std::string clean_bytes_;
};

// The acceptance gate: 4 fault kinds x >= 20 seeds each; a corrupted file
// either fails to load with a non-OK status, or — in the rare no-op draw —
// is byte-identical to the clean file. No third outcome exists.
TEST_F(PersistenceFaultTest, EveryBinaryFaultIsDetectedAcrossSeeds) {
  const testing::BinaryFaultKind kinds[] = {
      testing::BinaryFaultKind::kTruncate,
      testing::BinaryFaultKind::kBitFlip,
      testing::BinaryFaultKind::kTornRename,
      testing::BinaryFaultKind::kSectionSwap,
  };
  const std::string victim_path = (dir_ / "victim.bwds").string();
  for (const auto kind : kinds) {
    std::size_t detected = 0;
    std::size_t noop = 0;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      {
        std::ofstream os(victim_path, std::ios::binary | std::ios::trunc);
        os << clean_bytes_;
      }
      auto applied = bw::testing::apply_binary_fault(victim_path, kind, seed);
      ASSERT_TRUE(applied.ok())
          << bw::testing::to_string(kind) << " seed " << seed << ": "
          << applied.status().to_string();
      const auto loaded = Dataset::try_load(victim_path);
      if (loaded.ok()) {
        // Loading succeeded: only acceptable when the fault was a no-op.
        EXPECT_FALSE(applied->bytes_changed)
            << bw::testing::to_string(kind) << " seed " << seed
            << " changed bytes (" << applied->detail
            << ") yet the file still loaded";
        EXPECT_EQ(read_bytes(victim_path), clean_bytes_);
        ++noop;
      } else {
        EXPECT_TRUE(applied->bytes_changed);
        EXPECT_FALSE(loaded.status().to_string().empty());
        ++detected;
      }
    }
    // The draws must overwhelmingly produce real corruption; a kind whose
    // faults mostly no-op would not be testing anything.
    EXPECT_GE(detected, 20u) << bw::testing::to_string(kind) << " detected "
                             << detected << ", no-op " << noop;
  }
}

TEST_F(PersistenceFaultTest, TruncatedFileReportsTruncation) {
  const std::string path = (dir_ / "trunc.bwds").string();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << clean_bytes_.substr(0, clean_bytes_.size() / 2);
  }
  const auto loaded = Dataset::try_load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().to_string().find("truncated"), std::string::npos)
      << loaded.status().to_string();
}

// Regression: a corrupt cache used to crash run_scenario with an uncaught
// exception from Dataset::load. It must now be treated as a cache miss:
// quarantined, recorded, regenerated.
TEST_F(PersistenceFaultTest, CorruptScenarioCacheSelfHeals) {
  const std::string cache_dir = (dir_ / "cache").string();
  gen::ScenarioConfig cfg;
  cfg.scale = 0.01;
  cfg.seed = 7;
  cfg.period = {0, util::days(2)};

  // Cold run populates the cache.
  const ScenarioRun cold = run_scenario(cfg, cache_dir);
  EXPECT_TRUE(cold.cache_incidents.empty());
  std::string cache_path;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    cache_path = entry.path().string();
  }
  ASSERT_FALSE(cache_path.empty()) << "cold run left no cache file";
  const std::string good_cache = read_bytes(cache_path);

  // Truncate the cache to a torn half-file, as a crashed writer would.
  {
    std::ofstream os(cache_path, std::ios::binary | std::ios::trunc);
    os << good_cache.substr(0, good_cache.size() / 3);
  }

  // The warm run must not crash, must produce the same corpus, and must
  // report exactly one incident with the bad bytes quarantined.
  const ScenarioRun healed = run_scenario(cfg, cache_dir);
  const auto s1 = cold.dataset.summary();
  const auto s2 = healed.dataset.summary();
  EXPECT_EQ(s1.control_updates, s2.control_updates);
  EXPECT_EQ(s1.flow_records, s2.flow_records);
  EXPECT_EQ(s1.dropped_packets, s2.dropped_packets);
  ASSERT_EQ(healed.cache_incidents.size(), 1u);
  const CacheIncident& incident = healed.cache_incidents[0];
  EXPECT_EQ(incident.path, cache_path);
  EXPECT_EQ(incident.quarantined_to, cache_path + ".corrupt");
  EXPECT_FALSE(incident.error.empty());
  EXPECT_TRUE(fs::exists(cache_path + ".corrupt"));

  // The regenerated cache is valid again: a third run is a clean hit.
  ASSERT_TRUE(fs::exists(cache_path));
  EXPECT_TRUE(Dataset::try_load(cache_path).ok());
  const ScenarioRun warm = run_scenario(cfg, cache_dir);
  EXPECT_TRUE(warm.cache_incidents.empty());
  EXPECT_EQ(warm.dataset.summary().flow_records, s1.flow_records);
}

// A cache directory that cannot be written records a save incident instead
// of failing the run — caching is an optimisation, not a requirement.
TEST_F(PersistenceFaultTest, UnwritableCacheRecordsSaveIncident) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "POSIX directory permissions required";
#else
  if (::geteuid() == 0) {
    GTEST_SKIP() << "running as root: directory permissions are not enforced";
  }
  const std::string cache_dir = (dir_ / "ro_cache").string();
  fs::create_directories(cache_dir);
  gen::ScenarioConfig cfg;
  cfg.scale = 0.01;
  cfg.seed = 9;
  cfg.period = {0, util::days(1)};
  fs::permissions(fs::path(cache_dir), fs::perms::owner_read | fs::perms::owner_exec,
                  fs::perm_options::replace);
  const ScenarioRun run = run_scenario(cfg, cache_dir);
  fs::permissions(fs::path(cache_dir), fs::perms::owner_all,
                  fs::perm_options::replace);
  EXPECT_GT(run.dataset.summary().control_updates, 0u);
  ASSERT_EQ(run.cache_incidents.size(), 1u);
  EXPECT_TRUE(run.cache_incidents[0].quarantined_to.empty());
  EXPECT_FALSE(run.cache_incidents[0].error.empty());
#endif
}

}  // namespace
}  // namespace bw::core
