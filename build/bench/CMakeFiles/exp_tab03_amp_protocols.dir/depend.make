# Empty dependencies file for exp_tab03_amp_protocols.
# This may be replaced when dependencies are built.
