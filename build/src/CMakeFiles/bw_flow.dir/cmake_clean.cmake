file(REMOVE_RECURSE
  "CMakeFiles/bw_flow.dir/flow/collector.cpp.o"
  "CMakeFiles/bw_flow.dir/flow/collector.cpp.o.d"
  "CMakeFiles/bw_flow.dir/flow/mac_table.cpp.o"
  "CMakeFiles/bw_flow.dir/flow/mac_table.cpp.o.d"
  "CMakeFiles/bw_flow.dir/flow/record.cpp.o"
  "CMakeFiles/bw_flow.dir/flow/record.cpp.o.d"
  "CMakeFiles/bw_flow.dir/flow/sampler.cpp.o"
  "CMakeFiles/bw_flow.dir/flow/sampler.cpp.o.d"
  "libbw_flow.a"
  "libbw_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
