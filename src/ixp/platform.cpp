#include "ixp/platform.hpp"

#include <stdexcept>

namespace bw::ixp {

Platform::Platform(PlatformConfig cfg)
    : cfg_(cfg),
      rs_(cfg.rs_asn),
      service_(cfg.rs_asn),
      internal_mac_(net::Mac(0x02'42'FF'00'00'01ULL)) {
  macs_.register_internal(internal_mac_);
}

flow::MemberId Platform::add_member(bgp::Asn asn, bgp::PeerPolicy policy,
                                    std::vector<net::Prefix> owned) {
  if (ran_) throw std::logic_error("Platform: cannot add members after run()");
  if (asn_to_member_.contains(asn)) {
    throw std::invalid_argument("Platform: duplicate member ASN");
  }
  const auto id = static_cast<flow::MemberId>(members_.size());
  Member m;
  m.id = id;
  m.asn = asn;
  m.port_mac = net::Mac::for_member_port(id);
  m.owned = std::move(owned);
  m.policy = policy;
  for (const auto& p : m.owned) ownership_.insert(p, id);
  macs_.register_member(id, m.port_mac);
  rs_.add_peer(asn, policy);
  asn_to_member_[asn] = id;
  members_.push_back(std::move(m));
  return id;
}

void Platform::register_origin(const net::Prefix& src_prefix, bgp::Asn origin,
                               flow::MemberId handover) {
  origin_table_.insert(src_prefix, origin);
  origin_handover_.emplace(origin, handover);
}

void Platform::announce_prefix(flow::MemberId member,
                               const net::Prefix& prefix) {
  Member& m = members_.at(member);
  m.owned.push_back(prefix);
  ownership_.insert(prefix, member);
}

const Member& Platform::member(flow::MemberId id) const {
  return members_.at(id);
}

std::optional<flow::MemberId> Platform::member_by_asn(bgp::Asn asn) const {
  const auto it = asn_to_member_.find(asn);
  if (it == asn_to_member_.end()) return std::nullopt;
  return it->second;
}

std::optional<flow::MemberId> Platform::owner_of(net::Ipv4 addr) const {
  const flow::MemberId* id = ownership_.match(addr);
  if (id == nullptr) return std::nullopt;
  return *id;
}

std::optional<bgp::Asn> Platform::origin_of(net::Ipv4 addr) const {
  const bgp::Asn* asn = origin_table_.match(addr);
  if (asn == nullptr) return std::nullopt;
  return *asn;
}

std::vector<std::pair<net::Prefix, bgp::Asn>> Platform::origin_prefix_table()
    const {
  std::vector<std::pair<net::Prefix, bgp::Asn>> out;
  out.reserve(origin_handover_.size());
  origin_table_.for_each([&](const net::Prefix& p, const bgp::Asn& asn) {
    out.emplace_back(p, asn);
  });
  return out;
}

std::optional<flow::MemberId> Platform::handover_of(bgp::Asn origin) const {
  const auto it = origin_handover_.find(origin);
  if (it == origin_handover_.end()) return std::nullopt;
  return it->second;
}

RunResult Platform::run(bgp::UpdateLog control, const TrafficSource& traffic) {
  if (ran_) throw std::logic_error("Platform: run() already called");
  ran_ = true;

  util::Rng rng(cfg_.seed);

  // --- Control plane: replay every update through the route server. ---
  rs_.process_all(std::move(control));
  rs_.finalize(cfg_.period.end);

  // --- Data plane: carry traffic across the fabric into the collector. ---
  flow::Collector collector(macs_, cfg_.clock, rng.fork(1));
  flow::IpfixSampler sampler(cfg_.sampling_rate, rng.fork(2));
  Fabric fabric(
      macs_, rs_, service_, ownership_,
      [this](flow::MemberId id) { return members_.at(id).asn; },
      std::move(sampler), collector);

  traffic([&fabric](const flow::TrafficBurst& b) { fabric.carry(b); });

  // Inject IXP-internal monitoring flows that preprocessing must strip
  // (Section 3.1 removes 0.01% internal records before analysis).
  if (cfg_.internal_flow_fraction > 0.0 && !members_.empty()) {
    const auto n = static_cast<std::uint64_t>(
        static_cast<double>(collector.flows().size()) *
        cfg_.internal_flow_fraction);
    util::Rng irng = rng.fork(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      flow::FlowRecord rec;
      rec.time = cfg_.period.begin +
                 irng.uniform_int(0, cfg_.period.length() - 1);
      rec.src_mac = internal_mac_;
      rec.dst_mac = members_[irng.index(members_.size())].port_mac;
      rec.src_ip = net::Ipv4(10, 0, 0, 1);
      rec.dst_ip = net::Ipv4(10, 0, 0, 2);
      rec.proto = net::Proto::kTcp;
      rec.bytes = 64;
      collector.ingest(rec);
    }
  }

  collector.finalize();

  RunResult result;
  result.control = rs_.log();
  result.internal_flows_removed = collector.internal_flows_removed();
  result.accounting = fabric.accounting();
  result.data = collector.take_flows();
  return result;
}

}  // namespace bw::ixp
