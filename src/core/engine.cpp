#include "core/engine.hpp"

namespace bw::core {

std::string_view to_string(KernelEngine engine) {
  switch (engine) {
    case KernelEngine::kColumnar: return "columnar";
    case KernelEngine::kRecords: return "records";
  }
  return "unknown";
}

KernelScanMetrics make_kernel_scan_metrics(std::string_view kernel) {
  auto& reg = obs::Registry::global();
  const std::string base = "kernel." + std::string(kernel);
  return KernelScanMetrics{&reg.counter(base + ".scan_rows"),
                           &reg.counter(base + ".scan_ns")};
}

}  // namespace bw::core
