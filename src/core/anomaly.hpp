// Multi-feature traffic anomaly detection (Section 5.3).
//
// Five features are observed per 5-minute slot for a destination prefix:
// (i) packets, (ii) flows, (iii) unique source IPs, (iv) unique destination
// ports, (v) non-TCP flows. Each feature series runs through the EWMA
// detector (24 h window, 2.5 SD); the per-slot *anomaly level* is the
// number of features anomalous in that slot (0..5).
#pragma once

#include <array>
#include <vector>

#include "core/dataset.hpp"
#include "util/cusum.hpp"
#include "util/ewma.hpp"

namespace bw::core {

inline constexpr std::size_t kFeatureCount = 5;
inline constexpr util::DurationMs kFeatureSlot = 5 * util::kMinute;

enum class Feature : std::uint8_t {
  kPackets = 0,
  kFlows,
  kUniqueSources,
  kUniqueDstPorts,
  kNonTcpFlows,
};

[[nodiscard]] std::string_view to_string(Feature f);

struct FeatureMatrix {
  util::TimeMs start{0};
  util::DurationMs slot{kFeatureSlot};
  /// series[f][s] = value of feature f in slot s.
  std::array<std::vector<double>, kFeatureCount> series;

  [[nodiscard]] std::size_t slot_count() const { return series[0].size(); }
  /// Number of slots with any packet.
  [[nodiscard]] std::size_t slots_with_data() const;
};

/// Build the feature matrix for traffic addressed to `prefix` in `range`.
[[nodiscard]] FeatureMatrix compute_features(
    const Dataset& dataset, const net::Prefix& prefix, util::TimeRange range,
    util::DurationMs slot = kFeatureSlot,
    KernelEngine engine = KernelEngine::kColumnar);

/// Build the matrix from pre-fetched record indices (avoids re-querying).
[[nodiscard]] FeatureMatrix compute_features(
    const flow::FlowLog& flows, const std::vector<std::size_t>& indices,
    util::TimeRange range, util::DurationMs slot = kFeatureSlot);

struct AnomalyScan {
  std::vector<int> level;  ///< per slot: number of anomalous features (0..5)

  [[nodiscard]] int max_level() const;
  /// First slot (from the back) with level >= 1 within the last `n` slots;
  /// -1 when none.
  [[nodiscard]] bool any_anomaly_in_last(std::size_t n) const;
};

/// Run the five EWMA detectors over the matrix. The paper's parameters are
/// the EwmaConfig defaults (window 288, threshold 2.5 SD).
[[nodiscard]] AnomalyScan detect_anomalies(const FeatureMatrix& features,
                                           util::EwmaConfig config = {});

/// Alternative detector for the sensitivity ablation: one-sided CUSUM per
/// feature (accumulates small sustained exceedances the EWMA threshold
/// misses; slightly laggier on sharp bursts).
[[nodiscard]] AnomalyScan detect_anomalies_cusum(const FeatureMatrix& features,
                                                 util::CusumConfig config = {});

}  // namespace bw::core
