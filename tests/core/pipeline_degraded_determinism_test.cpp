// Determinism under degradation: a corpus corrupted by the default fault
// mix, loaded tolerantly, must still produce a byte-identical report at
// every thread count — including the data-quality section and a degraded
// stage — and the sections unaffected by a failing stage must match the
// healthy run exactly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "core/io_text.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "testing/fault.hpp"
#include "util/parallel.hpp"

namespace bw::core {
namespace {

namespace bt = bw::testing;

class DegradedDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::ScenarioConfig cfg;
    cfg.scale = 0.04;
    cfg.seed = 20191021;
    const ScenarioRun run = run_scenario(cfg, std::string{});

    // Per-process path: ctest runs each TEST of this suite as its own
    // process, so concurrent SetUpTestSuite calls must not share a
    // directory (one process's remove_all races another's load, the ASSERT
    // fires, dataset_ stays null, and the test body segfaults).
    const std::string dir = ::testing::TempDir() + "/bw_degraded_corpus_" +
                            std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    export_dataset_csv(run.dataset, dir);
    auto corpus = bt::CsvCorpus::load(dir);
    ASSERT_TRUE(corpus.ok()) << corpus.status().to_string();
    bt::apply_faults(corpus.value(), bt::FaultPlan::default_mix(7));
    ASSERT_TRUE(corpus.value().save(dir).ok());

    LoadOptions options;
    options.strictness = Strictness::kSkip;
    ingest_ = new IngestReport;
    auto loaded = load_dataset_csv(dir, options, ingest_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    dataset_ = new Dataset(std::move(loaded).value());
    std::filesystem::remove_all(dir);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete ingest_;
    ingest_ = nullptr;
  }

  static AnalysisReport run_with_pool(std::size_t workers,
                                      std::vector<std::string> stage_faults) {
    util::ThreadPool pool(workers);
    AnalysisConfig cfg;
    cfg.pool = &pool;
    cfg.inject_stage_faults = std::move(stage_faults);
    AnalysisReport report = run_pipeline(*dataset_, cfg);
    report.data_quality.files = ingest_->files;
    return report;
  }

  static Dataset* dataset_;
  static IngestReport* ingest_;
};

Dataset* DegradedDeterminismTest::dataset_ = nullptr;
IngestReport* DegradedDeterminismTest::ingest_ = nullptr;

TEST_F(DegradedDeterminismTest, DirtyCorpusReportIsThreadCountIndependent) {
  const AnalysisReport serial = run_with_pool(0, {});
  const AnalysisReport wide = run_with_pool(7, {});

  EXPECT_FALSE(serial.data_quality.clean());
  EXPECT_FALSE(serial.data_quality.degraded());
  EXPECT_EQ(serial.data_quality.dataset, wide.data_quality.dataset);
  ASSERT_EQ(serial.data_quality.stages.size(),
            wide.data_quality.stages.size());
  for (std::size_t i = 0; i < serial.data_quality.stages.size(); ++i) {
    EXPECT_EQ(serial.data_quality.stages[i], wide.data_quality.stages[i]);
  }

  const std::string serial_md = render_markdown(*dataset_, serial, nullptr);
  const std::string wide_md = render_markdown(*dataset_, wide, nullptr);
  EXPECT_EQ(serial_md, wide_md);
  EXPECT_NE(serial_md.find("## Data quality"), std::string::npos);
}

TEST_F(DegradedDeterminismTest, StageFaultIsThreadCountIndependent) {
  const AnalysisReport serial = run_with_pool(0, {"filtering"});
  const AnalysisReport wide = run_with_pool(7, {"filtering"});
  const AnalysisReport healthy = run_with_pool(3, {});

  EXPECT_TRUE(serial.data_quality.degraded());
  const std::string serial_md = render_markdown(*dataset_, serial, nullptr);
  const std::string wide_md = render_markdown(*dataset_, wide, nullptr);
  EXPECT_EQ(serial_md, wide_md);
  EXPECT_NE(serial_md.find("`filtering`"), std::string::npos);

  // Sections the failed stage does not own match the healthy run.
  EXPECT_EQ(serial.events.size(), healthy.events.size());
  EXPECT_EQ(serial.pre.no_data, healthy.pre.no_data);
  EXPECT_EQ(serial.protocols.udp_share, healthy.protocols.udp_share);
  EXPECT_EQ(serial.classes.infrastructure, healthy.classes.infrastructure);
  EXPECT_EQ(serial.ports.clients, healthy.ports.clients);
  EXPECT_EQ(serial.filtering.events_considered, 0u);
}

}  // namespace
}  // namespace bw::core
