// Figure 3: number of active parallel RTBHs over time plus BGP message
// rate (Section 3.2).
//
// Paper: on average 1,107 parallel RTBHs from 78 peers for 170 origin
// ASes; at most 1,400 parallel prefixes; message rate below 500/min with
// spikes up to 793/min. Counts scale with BW_SCALE.
#include "common.hpp"
#include "core/load.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig03");
  const auto load = core::compute_load(exp.run.dataset, util::kMinute);

  bench::print_header("Fig. 3", "active parallel RTBHs over time");
  util::TextTable table({"day", "active prefixes", "messages/min (max in day)"});
  auto csv = bench::open_csv("fig03_rtbh_load",
                             {"minute", "active_prefixes", "messages"});
  for (std::size_t i = 0; i < load.series.size(); ++i) {
    const auto& p = load.series[i];
    csv->write_row({std::to_string(i), std::to_string(p.active_prefixes),
                    std::to_string(p.messages)});
  }
  // Daily digest for the text table.
  const std::size_t mins_per_day = 24 * 60;
  for (std::size_t day = 0; day * mins_per_day < load.series.size(); ++day) {
    if (day % 7 != 0) continue;  // weekly rows keep the table short
    std::size_t max_msgs = 0;
    std::size_t active = 0;
    for (std::size_t m = day * mins_per_day;
         m < std::min((day + 1) * mins_per_day, load.series.size()); ++m) {
      max_msgs = std::max(max_msgs, load.series[m].messages);
      active = std::max(active, load.series[m].active_prefixes);
    }
    table.add_row({std::to_string(day), std::to_string(active),
                   std::to_string(max_msgs)});
  }
  std::cout << table;

  const double scale = exp.config.scale;
  bench::print_paper_row(
      "mean parallel RTBHs", "1,107 (x scale = " +
          util::fmt_double(1107 * scale, 0) + ")",
      util::fmt_double(load.mean_active, 0));
  bench::print_paper_row(
      "max parallel RTBHs", "1,400 (x scale = " +
          util::fmt_double(1400 * scale, 0) + ")",
      std::to_string(load.max_active));
  bench::print_paper_row("announcing peers", "78 (x scale = " +
                             util::fmt_double(78 * scale, 0) + ")",
                         std::to_string(load.announcing_peers));
  bench::print_paper_row("RTBH origin ASes", "170 (x scale = " +
                             util::fmt_double(170 * scale, 0) + ")",
                         std::to_string(load.origin_ases));
  bench::print_paper_row("max messages/min", "793 (x scale)",
                         std::to_string(load.max_messages_per_slot));
  return 0;
}
