#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bw::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

struct TraceEvent {
  std::string name;
  const char* category;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  std::uint32_t tid;
};

/// One buffer per thread, owned by the collector so events survive thread
/// exit (pool teardown happens before a tool renders the trace). Only the
/// owning thread appends; the mutex makes the render-while-idle-threads-
/// still-exist case safe rather than fast.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::size_t dropped{0};
  std::uint32_t tid{0};
};

struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid{1};
};

Collector& collector() {
  static Collector* c = new Collector();  // intentionally leaked: spans may
  return *c;                              // fire during static destruction
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    raw->tid = c.next_tid++;
    c.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

std::uint64_t process_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 1;
#endif
}

/// All spans share one epoch so cross-thread timelines line up.
std::uint64_t trace_epoch_us() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

}  // namespace

std::uint64_t trace_now_us() noexcept {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - trace_epoch_us();
}

void record_span(std::string name, const char* category, std::uint64_t ts_us,
                 std::uint64_t dur_us) noexcept {
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      {std::move(name), category, ts_us, dur_us, buffer.tid});
}

}  // namespace detail

void trace_enable(bool on) noexcept {
  (void)detail::trace_epoch_us();  // pin the epoch before the first span
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void trace_reset() {
  auto& c = detail::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::size_t trace_event_count() {
  auto& c = detail::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = 0;
  for (auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::size_t trace_dropped_count() {
  auto& c = detail::collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = 0;
  for (auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->dropped;
  }
  return n;
}

std::string render_chrome_trace() {
  std::vector<detail::TraceEvent> events;
  {
    auto& c = detail::collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    for (auto& buffer : c.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Deterministic order regardless of which buffer drained first.
  std::stable_sort(events.begin(), events.end(),
                   [](const detail::TraceEvent& a, const detail::TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.name < b.name;
                   });

  const std::uint64_t pid = detail::process_pid();
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"";
    for (const char ch : e.name) {
      if (ch == '"' || ch == '\\') os << '\\';
      os << ch;
    }
    os << "\", \"cat\": \"" << e.category << "\", \"ph\": \"X\", \"pid\": "
       << pid << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << "}";
  }
  os << (events.empty() ? "]}" : "\n]}");
  os << "\n";
  return os.str();
}

}  // namespace bw::obs
