# Empty compiler generated dependencies file for exp_fig11_pre_slots.
# This may be replaced when dependencies are built.
