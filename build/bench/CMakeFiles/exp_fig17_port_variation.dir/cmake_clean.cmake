file(REMOVE_RECURSE
  "CMakeFiles/exp_fig17_port_variation.dir/exp_fig17_port_variation.cpp.o"
  "CMakeFiles/exp_fig17_port_variation.dir/exp_fig17_port_variation.cpp.o.d"
  "exp_fig17_port_variation"
  "exp_fig17_port_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig17_port_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
