// Figure 19: classification of RTBH events according to the use cases of
// Table 1 (Section 7.3), with per-class duration distributions.
//
// Paper: ~27% infrastructure protection (DDoS-like anomalies), squatting
// protection for 21 prefixes of 4 ASes, 13% of total events are /32
// "other" with fewer than 10 packets (RTBH-zombie suspects), and ~60%
// cannot be matched to any well-known use case.
#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig19");
  const auto& cls = exp.report.classes;

  bench::print_header("Fig. 19", "RTBH event use-case classification");
  // Duration distribution per class.
  std::map<core::EventClass, std::vector<double>> durations;
  for (const auto& e : cls.events) {
    durations[e.cls].push_back(static_cast<double>(e.duration) /
                               static_cast<double>(util::kHour));
  }
  util::TextTable table({"class", "events", "share", "median duration",
                         "p90 duration"});
  auto csv = bench::open_csv("fig19_classification",
                             {"class", "events", "share",
                              "median_duration_h", "p90_duration_h"});
  const double total = static_cast<double>(cls.total());
  for (const auto& [c, d] : durations) {
    const auto name = std::string(core::to_string(c));
    const double share = static_cast<double>(d.size()) / total;
    table.add_row({name, util::fmt_count(static_cast<std::int64_t>(d.size())),
                   util::fmt_percent(share, 1),
                   util::format_duration(util::hours(util::quantile(d, 0.5))),
                   util::format_duration(util::hours(util::quantile(d, 0.9)))});
    csv->write_row({name, std::to_string(d.size()),
                    util::fmt_double(share, 4),
                    util::fmt_double(util::quantile(d, 0.5), 2),
                    util::fmt_double(util::quantile(d, 0.9), 2)});
  }
  std::cout << table;

  bench::print_paper_row(
      "infrastructure-protection share", "~27%",
      util::fmt_percent(static_cast<double>(cls.infrastructure) / total, 1));
  bench::print_paper_row(
      "squatting candidates", "21 prefixes / 4 ASes (x scale)",
      std::to_string(cls.squatting_prefixes) + " prefixes / " +
          std::to_string(cls.squatting_origin_as) + " ASes");
  bench::print_paper_row(
      "long-lived low-traffic /32 (zombie suspects)", "13% of total",
      util::fmt_percent(static_cast<double>(cls.zombies) / total, 1));
  bench::print_paper_row(
      "... of which active through the period end", "(subset)",
      util::fmt_count(
          static_cast<std::int64_t>(cls.zombies_until_period_end)));
  bench::print_paper_row(
      "'other' share", "~60%",
      util::fmt_percent(static_cast<double>(cls.other) / total, 1));
  return 0;
}
