// Full 104-day scenario driver.
//
// Assembles the complete synthetic vantage point of DESIGN.md Section 5:
// the member population with its import-policy pathology, the victim host
// population (servers, DSL clients, idle space), the amplifier ecosystem,
// the RTBH event schedule across all use cases of Table 1, and the traffic
// that goes with each. Every knob defaults to a value taken from (or
// calibrated against) a number the paper reports; `scale` shrinks the
// population/event counts proportionally without touching the time axis or
// any per-event distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gen/amplification.hpp"
#include "gen/ddos.hpp"
#include "gen/legit.hpp"
#include "gen/operator_model.hpp"
#include "gen/scan.hpp"
#include "gen/shard.hpp"
#include "ixp/platform.hpp"
#include "peeringdb/registry.hpp"
#include "util/deadline.hpp"

namespace bw::gen {

/// Ground-truth use case of one RTBH event (what the generator intended;
/// the analysis pipeline never sees this — it is used only for validation).
enum class UseCase : std::uint8_t {
  kInfrastructureProtection,  ///< DDoS mitigation (attack present)
  kOtherSteady,               ///< no attack; victim has steady traffic
  kOtherIdle,                 ///< no attack; victim has (almost) no traffic
  kZombie,                    ///< forgotten blackhole, active to period end
  kSquattingProtection,       ///< <= /24, months, unannounced address space
  kContentBlocking,           ///< /32, weeks-months, normal traffic
};

[[nodiscard]] std::string_view to_string(UseCase u);

struct EventTruth {
  std::size_t id{0};
  net::Prefix prefix;
  UseCase use_case{UseCase::kOtherIdle};
  bool has_attack{false};
  bool attack_stops_at_rtbh{false};  ///< short-lived / scrubbed upstream
  bool manual_reaction{false};       ///< slow (manual) trigger, 10-60 min
  util::TimeRange attack_window{};   ///< true time; empty when no attack
  util::TimeRange rtbh_span{};       ///< first announce .. last withdraw
  std::int64_t attack_packets{0};    ///< true packet volume of the attack
  std::size_t announcements{0};
  std::vector<net::Port> amp_ports;  ///< amplification vectors used
  bool has_carpet_vector{false};     ///< random/increasing-port component
  bool privately_blackholed{false};  ///< additional non-RS drop source
  bool private_only{false};          ///< mitigated bilaterally, no RS record
  bgp::Asn sender{0};
  bgp::Asn origin{0};
};

struct GroundTruth {
  std::vector<EventTruth> events;
  std::vector<HostProfile> hosts;  ///< all victim hosts (incl. idle)
  std::size_t client_count{0};
  std::size_t server_count{0};
  std::vector<net::Prefix> squatting_prefixes;
  std::vector<net::Ipv4> zombie_addresses;
};

struct ScenarioConfig {
  double scale{0.35};
  std::uint64_t seed{20191021};
  util::TimeRange period{0, util::days(104)};
  /// IPFIX sampling: 1 out of N packets (paper: 10,000). Exposed for the
  /// sampling-sensitivity ablation.
  std::uint32_t sampling_rate{10000};

  // --- population (counts at scale = 1.0) ---
  std::size_t members{830};
  std::size_t blackholer_members{78};
  std::size_t victim_origin_as{170};
  std::size_t amplifier_origins{1100};
  std::size_t amplifiers{18000};
  std::size_t server_hosts{1036};
  std::size_t client_hosts{4057};
  std::size_t idle_victims{10000};
  std::size_t remote_clients{4000};
  std::size_t remote_servers{1500};
  /// Fraction of members eligible to carry amplifier origins (paper: 55%
  /// of members handed over attack traffic at least once).
  double handover_member_fraction{0.58};

  // --- member import-policy mix (Fig. 7 calibration) ---
  double policy_accept_all{0.12};
  double policy_whitelist_host{0.30};
  double policy_classful_only{0.40};
  double policy_reject_all{0.05};
  double policy_inconsistent{0.13};

  // --- RTBH event schedule (counts at scale = 1.0) ---
  std::size_t rtbh_events{33000};  ///< short/mid-term events
  double attack_fraction{0.33};    ///< infra-protection (w/ DDoS traffic)
  double steady_fraction{0.21};    ///< active victim, no attack
  double manual_reaction_fraction{0.18};  ///< of attacks: slow trigger
  double attack_stops_fraction{0.33};     ///< of attacks: no traffic in RTBH
  std::size_t zombies{1050};
  std::size_t squatting_prefixes{21};
  std::size_t squatting_as{4};
  std::size_t content_blocking{8};

  // --- RTBH prefix-length mix for host events (Fig. 5) ---
  double event_len32{0.988};
  double event_len24{0.007};
  double event_len25_31{0.003};
  double event_len22_23{0.002};

  // --- attack shape ---
  double attack_packets_log_mean{15.4};  ///< ln(true packets); ~4.9M median
  double attack_packets_log_sd{1.3};
  double attack_duration_log_mean{8.4};  ///< ln(seconds); ~74 min median
  double attack_duration_log_sd{1.1};
  std::size_t amplifiers_per_attack{60};
  /// Of attack events: share with no amplification vector at all (SYN or
  /// carpet only) — the Table 3 "0 protocols" column.
  double attack_non_amp_fraction{0.06};
  /// Of amplification attacks: share that mixes in a carpet vector
  /// (Fig. 14's hard-to-filter tail).
  double attack_carpet_mix_fraction{0.045};

  // --- legitimate traffic ---
  double server_daily_packets{8e4};
  double client_daily_packets{3e4};

  // --- targeted announcements (Fig. 4) ---
  util::TimeRange targeted_phase{util::days(8), util::days(20)};
  double targeted_probability_base{0.002};
  double targeted_probability_phase{0.06};

  /// Fraction of attack events that are *additionally* dropped by a
  /// bilateral (non route-server) blackhole — Section 3.1's 5% of dropped
  /// bytes from other RTBH sources. Private drops only apply at peers whose
  /// policies honour host blackholes (see ixp::Fabric).
  double private_blackhole_fraction{0.06};
  /// Fraction of attacks mitigated *exclusively* via bilateral blackholing:
  /// the drops appear on the data plane with no route-server announcement
  /// at all (the rest of Section 3.1's "other RTBH sources").
  double private_only_fraction{0.03};

  MitigationBehavior mitigation{};
  ScanConfig scan{};

  /// Scaled count helper (at least 1 when `n` > 0).
  [[nodiscard]] std::size_t scaled(std::size_t n) const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config) : cfg_(std::move(config)) {}

  /// Platform configuration matching this scenario (period, clock skew of
  /// -40 ms as estimated in Fig. 2, paper sampling rate).
  [[nodiscard]] static ixp::PlatformConfig platform_config(
      const ScenarioConfig& cfg);

  /// Register the population with the platform and generate the full event
  /// schedule + control-plane log. Must be called exactly once, before
  /// control()/traffic_source()/truth().
  void install(ixp::Platform& platform);

  [[nodiscard]] const bgp::UpdateLog& control() const noexcept {
    return control_;
  }

  /// Streaming traffic source for Platform::run. Valid only after
  /// install(); regenerates the identical burst stream on every call.
  /// Equivalent to traffic_source(emission_plan()).
  [[nodiscard]] ixp::Platform::TrafficSource traffic_source() const;

  /// The full traffic schedule as anchor-time-ordered emission units (one
  /// per active (host, day), per attack event, per scan day). Each unit's
  /// draws — and the burst ids that key the fabric's sampling — depend only
  /// on the scenario seed and the unit's identity, so any contiguous
  /// partition (see gen::plan_shards) emits the identical burst stream.
  [[nodiscard]] std::vector<EmissionUnit> emission_plan() const;

  /// Traffic source emitting just `units` (a shard of the plan), in order.
  /// A non-null `deadline` is polled before each unit; expiry raises
  /// util::DeadlineExceeded out of the emitting thread — cooperative
  /// supervision of the generator (`deadline` must outlive the source).
  [[nodiscard]] ixp::Platform::TrafficSource traffic_source(
      std::vector<EmissionUnit> units,
      const util::Deadline* deadline = nullptr) const;

  [[nodiscard]] const GroundTruth& truth() const noexcept { return truth_; }
  [[nodiscard]] const pdb::Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const ScenarioConfig& config() const noexcept { return cfg_; }

 private:
  struct VictimOrigin {
    bgp::Asn asn{0};
    net::Prefix prefix;       ///< /16 victim space
    flow::MemberId home{0};   ///< blackholer member announcing it
    std::uint32_t next_host{1};
  };

  void build_members(ixp::Platform& platform);
  void build_victim_origins(ixp::Platform& platform);
  void build_hosts();
  void build_remotes(ixp::Platform& platform);
  void build_amplifiers(ixp::Platform& platform);
  void build_registry();
  void build_events(ixp::Platform& platform);

  [[nodiscard]] net::Ipv4 next_host_ip(std::size_t origin_index);
  void emit_unit(const EmissionUnit& unit, LegitGenerator& legit,
                 ScanGenerator& scans,
                 const ixp::Platform::BurstSink& sink) const;
  void emit_attack(const EventTruth& ev,
                   const ixp::Platform::BurstSink& sink) const;
  [[nodiscard]] std::uint8_t draw_event_prefix_len(util::Rng& rng) const;
  [[nodiscard]] std::vector<bgp::Community> draw_targeted_communities(
      util::TimeMs at, util::Rng& rng) const;

  ScenarioConfig cfg_;
  GroundTruth truth_;
  bgp::UpdateLog control_;
  pdb::Registry registry_;

  // Population state (filled by install()).
  std::vector<flow::MemberId> all_members_;
  std::vector<flow::MemberId> blackholers_;
  std::vector<flow::MemberId> handover_members_;
  std::vector<bgp::Asn> member_asns_;
  std::vector<VictimOrigin> victim_origins_;
  std::vector<std::size_t> dsl_origin_idx_;
  std::vector<std::size_t> content_origin_idx_;
  std::vector<std::size_t> nsp_origin_idx_;
  std::vector<std::size_t> enterprise_origin_idx_;
  std::vector<std::size_t> absent_origin_idx_;
  std::vector<std::size_t> client_host_idx_;
  std::vector<std::size_t> server_host_idx_;
  std::vector<std::size_t> idle_host_idx_;
  std::unique_ptr<AmplifierPool> pool_;
  RemoteEndpoints remotes_;
  std::vector<net::Ipv4> scan_targets_;
  bool installed_{false};
};

}  // namespace bw::gen
