// Thread-scaling benchmarks for the parallel analysis engine.
//
// Three families:
//   BM_PipelineThreads/N   full run_pipeline over the default benchmark
//                          corpus with an N-way pool (N = 1 is the exact
//                          serial fallback)
//   BM_ParallelForOverhead parallel_for dispatch cost on trivial bodies
//   BM_FlowsTo*            legacy allocating flows_to() vs the
//                          zero-allocation for_each_flow_to() iteration
//
// After the google-benchmark run, main() times run_pipeline once per
// thread count and writes machine-readable $BW_CSV_DIR/BENCH_pipeline.json
// (default bench_out/) so the perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "testing/bench_gate.hpp"
#include "util/parallel.hpp"

namespace {

using namespace bw;

const core::ScenarioRun& corpus() {
  static const core::ScenarioRun run =
      core::run_scenario(core::default_benchmark_scenario());
  return run;
}

void BM_PipelineThreads(benchmark::State& state) {
  const core::Dataset& dataset = corpus().dataset;
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)) - 1);
  core::AnalysisConfig config;
  config.pool = &pool;
  for (auto _ : state) {
    core::AnalysisReport report = core::run_pipeline(dataset, config);
    benchmark::DoNotOptimize(report);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["events"] = static_cast<double>(
      core::merge_events(dataset.blackhole_updates(), dataset.period().end)
          .size());
}
BENCHMARK(BM_PipelineThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelForOverhead(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> out(1 << 16);
  for (auto _ : state) {
    util::parallel_for(pool, out.size(),
                       [&](std::size_t i) { out[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_FlowsToLegacy(benchmark::State& state) {
  const core::Dataset& dataset = corpus().dataset;
  const auto events = core::merge_events(dataset.blackhole_updates(),
                                         dataset.period().end);
  std::size_t e = 0;
  for (auto _ : state) {
    const auto& ev = events[e++ % events.size()];
    std::uint64_t packets = 0;
    for (const std::size_t idx : dataset.flows_to(ev.prefix, ev.span)) {
      packets += dataset.flows()[idx].packets;
    }
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowsToLegacy);

void BM_ForEachFlowTo(benchmark::State& state) {
  const core::Dataset& dataset = corpus().dataset;
  const auto events = core::merge_events(dataset.blackhole_updates(),
                                         dataset.period().end);
  std::size_t e = 0;
  for (auto _ : state) {
    const auto& ev = events[e++ % events.size()];
    std::uint64_t packets = 0;
    dataset.for_each_flow_to(
        ev.prefix, ev.span,
        [&](const flow::FlowRecord& rec) { packets += rec.packets; });
    benchmark::DoNotOptimize(packets);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForEachFlowTo);

double time_pipeline_ms(const core::Dataset& dataset, std::size_t threads,
                        int repetitions) {
  util::ThreadPool pool(threads - 1);
  core::AnalysisConfig config;
  config.pool = &pool;
  return bench::time_best_ms(repetitions, [&] {
    core::AnalysisReport report = core::run_pipeline(dataset, config);
    benchmark::DoNotOptimize(report);
  });
}

/// bench_out/BENCH_pipeline.json: the cross-PR perf-tracking record, in the
/// unified bench schema (v2) consumed by tools/bench-gate.
void write_pipeline_json() {
  const char* dir_env = std::getenv("BW_CSV_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "bench_out";
  std::filesystem::create_directories(dir);

  const core::Dataset& dataset = corpus().dataset;
  const auto summary = dataset.summary();
  const double flow_records = static_cast<double>(summary.flow_records);

  std::ofstream os(dir + "/BENCH_pipeline.json", std::ios::trunc);
  os << "{\n";
  os << "  \"bench_schema_version\": " << testing::kBenchSchemaVersion
     << ",\n";
  os << "  \"benchmark\": \"run_pipeline\",\n";
  os << "  \"scale\": " << core::default_benchmark_scenario().scale << ",\n";
  os << "  \"flow_records\": " << summary.flow_records << ",\n";
  os << "  \"blackhole_updates\": " << summary.blackhole_updates << ",\n";
  os << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n";
  double serial_ms = 0.0;
  const std::size_t counts[] = {1, 2, 4, 8};
  double wall_ms[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < 4; ++i) {
    wall_ms[i] = time_pipeline_ms(dataset, counts[i], 3);
    if (counts[i] == 1) serial_ms = wall_ms[i];
    std::cerr << "pipeline threads=" << counts[i] << " wall_ms=" << wall_ms[i]
              << "\n";
  }
  os << "  \"wall_ms_by_threads\": {\n";
  for (std::size_t i = 0; i < 4; ++i) {
    os << "    \"" << counts[i] << "\": " << wall_ms[i]
       << (i + 1 < 4 ? ",\n" : "\n");
  }
  os << "  },\n";
  os << "  \"flows_per_s_by_threads\": {\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const double fps =
        wall_ms[i] > 0.0 ? flow_records / (wall_ms[i] / 1000.0) : 0.0;
    os << "    \"" << counts[i] << "\": " << fps << (i + 1 < 4 ? ",\n" : "\n");
  }
  os << "  },\n";
  const double t8 = time_pipeline_ms(dataset, 8, 1);
  os << "  \"speedup_8_vs_1\": " << (t8 > 0.0 ? serial_ms / t8 : 0.0) << "\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_pipeline_json();
  return 0;
}
