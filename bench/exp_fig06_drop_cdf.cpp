// Figure 6: CDF of per-event dropped-traffic shares for /24 and /32 RTBH
// prefixes (Section 4.2).
//
// Paper: /24 drop rates range 82-100% with a median of 97% (predictable);
// /32 spans almost 0-100% with quartiles 30% / 53% / 88% (unpredictable).
#include "common.hpp"
#include "util/bootstrap.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig06");
  const auto& drop = exp.report.drop;

  bench::print_header("Fig. 6", "per-event drop-rate CDF, /24 vs /32");
  auto csv =
      bench::open_csv("fig06_drop_cdf", {"length", "drop_rate", "cdf"});
  util::TextTable table({"quantile", "/24 drop rate", "/32 drop rate"});
  for (const double q : {0.05, 0.25, 0.50, 0.75, 0.95}) {
    table.add_row({util::fmt_percent(q, 0),
                   util::fmt_percent(util::quantile(drop.event_rates_len24, q), 1),
                   util::fmt_percent(util::quantile(drop.event_rates_len32, q), 1)});
  }
  std::cout << table;
  for (const auto& p : util::empirical_cdf(drop.event_rates_len24)) {
    csv->write_row({"24", util::fmt_double(p.value, 4),
                    util::fmt_double(p.cumulative_fraction, 4)});
  }
  for (const auto& p : util::empirical_cdf(drop.event_rates_len32)) {
    csv->write_row({"32", util::fmt_double(p.value, 4),
                    util::fmt_double(p.cumulative_fraction, 4)});
  }

  bench::print_paper_row(
      "/32 quartiles (q1/median/q3)", "30% / 53% / 88%",
      util::fmt_percent(util::quantile(drop.event_rates_len32, 0.25), 0) +
          " / " +
          util::fmt_percent(util::quantile(drop.event_rates_len32, 0.50), 0) +
          " / " +
          util::fmt_percent(util::quantile(drop.event_rates_len32, 0.75), 0));
  bench::print_paper_row(
      "/24 median (range)", "97% (82-100%)",
      util::fmt_percent(util::quantile(drop.event_rates_len24, 0.50), 0) +
          " (" + util::fmt_percent(util::quantile(drop.event_rates_len24, 0.0), 0) +
          "-" +
          util::fmt_percent(util::quantile(drop.event_rates_len24, 1.0), 0) +
          ")");
  bench::print_paper_row(
      "events in the CDFs (/24, /32)", "(all /24, /32 events with traffic)",
      std::to_string(drop.event_rates_len24.size()) + ", " +
          std::to_string(drop.event_rates_len32.size()));
  const auto median_ci =
      util::bootstrap_quantile_ci(drop.event_rates_len32, 0.5);
  bench::print_paper_row(
      "/32 median, 95% bootstrap CI", "53%",
      util::fmt_percent(median_ci.estimate, 1) + " [" +
          util::fmt_percent(median_ci.lo, 1) + ", " +
          util::fmt_percent(median_ci.hi, 1) + "]");
  return 0;
}
