// RTBH signalling load (Section 3.2, Fig. 3): number of concurrently
// active blackhole prefixes over time, BGP message rate, and the number of
// distinct announcing peers and origin ASes. (The Rtbh* prefix keeps these
// distinct from the ingest-accounting core::LoadReport in core/ingest.hpp.)
#pragma once

#include <vector>

#include "core/dataset.hpp"

namespace bw::core {

struct RtbhLoadPoint {
  util::TimeMs time{0};
  std::size_t active_prefixes{0};
  std::size_t messages{0};  ///< RTBH-related BGP messages in this slot
};

struct RtbhLoadReport {
  util::DurationMs slot{util::kMinute};
  std::vector<RtbhLoadPoint> series;
  double mean_active{0.0};
  std::size_t max_active{0};
  std::size_t max_messages_per_slot{0};
  std::size_t announcing_peers{0};  ///< members that ever announced RTBH
  std::size_t origin_ases{0};       ///< origin ASes ever blackholed
};

[[nodiscard]] RtbhLoadReport compute_load(const Dataset& dataset,
                                      util::DurationMs slot = util::kMinute);

}  // namespace bw::core
