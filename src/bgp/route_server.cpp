#include "bgp/route_server.hpp"

#include <stdexcept>

namespace bw::bgp {

void RouteServer::add_peer(Asn asn, PeerPolicy policy) {
  if (peer_index_.contains(asn)) {
    throw std::invalid_argument("RouteServer: duplicate peer ASN");
  }
  peer_index_[asn] = peers_.size();
  peers_.push_back({asn, policy});
  if (materialize_ribs_) ribs_.emplace_back(asn, policy);
}

void RouteServer::process(const Update& update) {
  log_.push_back(update);

  const bool blackhole = update.is_blackhole();
  if (blackhole) {
    if (update.type == UpdateType::kAnnounce) {
      index_.open(update.prefix, update.time, update.communities,
                  update.sender_asn);
    } else {
      index_.close(update.prefix, update.time);
    }
  }

  if (!materialize_ribs_) return;

  Route route;
  route.prefix = update.prefix;
  route.next_hop = update.next_hop;
  route.sender_asn = update.sender_asn;
  route.origin_asn = update.origin_asn;
  route.communities = update.communities;
  route.learned_at = update.time;

  for (Rib& peer : ribs_) {
    if (peer.peer_asn() == update.sender_asn) continue;
    const auto peer16 = static_cast<std::uint16_t>(peer.peer_asn() & 0xFFFF);
    if (!targeted_.should_announce(update.communities, peer16)) continue;
    if (update.type == UpdateType::kAnnounce) {
      peer.offer(route, update.time);
    } else {
      peer.withdraw(update.prefix, blackhole, update.time);
    }
  }
}

void RouteServer::process_all(UpdateLog updates) {
  sort_updates(updates);
  for (const Update& u : updates) process(u);
}

void RouteServer::finalize(util::TimeMs end_time) {
  index_.finalize(end_time);
  for (Rib& peer : ribs_) peer.finalize(end_time);
}

bool RouteServer::blackholed_for_peer(Asn peer, net::Ipv4 addr,
                                      util::TimeMs t) const {
  const PeerState& state = peers_.at(peer_index_.at(peer));
  return index_.dropped_for_peer(state.policy, state.asn, addr, t);
}

const PeerPolicy& RouteServer::policy_of(Asn peer) const {
  return peers_.at(peer_index_.at(peer)).policy;
}

const Rib& RouteServer::rib(Asn peer) const {
  if (!materialize_ribs_) {
    throw std::logic_error("RouteServer: RIBs were not materialised");
  }
  return ribs_.at(peer_index_.at(peer));
}

std::vector<Asn> RouteServer::peer_asns() const {
  std::vector<Asn> out;
  out.reserve(peers_.size());
  for (const PeerState& p : peers_) out.push_back(p.asn);
  return out;
}

}  // namespace bw::bgp
