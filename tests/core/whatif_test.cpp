#include "core/whatif.hpp"

#include <gtest/gtest.h>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

class WhatIfTest : public ::testing::Test {
 protected:
  WhatIfTest() : world_({0, util::days(8)}, 0) {}

  // One attack event: NTP reflection via the acceptor (dropped by the
  // observed RTBH) and rejector (leaks through), plus legitimate HTTPS to
  // the victim during the event via the rejector.
  Dataset make_dataset() {
    const net::Ipv4 victim(24, 0, 0, 1);
    const util::TimeMs t0 = util::days(5);
    bgp::UpdateLog control;
    control.push_back(world_.platform->service().make_announce(
        t0, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    control.push_back(world_.platform->service().make_withdraw(
        t0 + util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));

    std::vector<flow::TrafficBurst> bursts;
    const util::TimeRange attack{t0 - 8 * util::kMinute, t0 + util::kHour};
    for (int a = 0; a < 10; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 2, static_cast<std::uint8_t>(a)), victim,
          net::Proto::kUdp, 123, 40000, attack, 1000, world_.acceptor));
      bursts.push_back(world_.burst(
          net::Ipv4(64, 1, 2, static_cast<std::uint8_t>(a)), victim,
          net::Proto::kUdp, 123, 40001, attack, 1000, world_.rejector));
    }
    // Legit HTTPS during the event, entering via a peer that carries no
    // attack traffic (the victim's home member).
    bursts.push_back(world_.burst(net::Ipv4(24, 0, 5, 5), victim,
                                  net::Proto::kTcp, 50000, 443,
                                  {t0, t0 + util::kHour}, 400,
                                  world_.victim_member));
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(WhatIfTest, StrategyOrdering) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto report = compute_whatif(dataset, events, pre);
  ASSERT_EQ(report.events_considered, 1u);

  const auto& observed =
      report.outcomes[static_cast<std::size_t>(Strategy::kRtbhObserved)];
  const auto& perfect =
      report.outcomes[static_cast<std::size_t>(Strategy::kRtbhPerfect)];
  const auto& targeted =
      report.outcomes[static_cast<std::size_t>(Strategy::kRtbhTargeted)];
  const auto& flowspec =
      report.outcomes[static_cast<std::size_t>(Strategy::kFlowspecAmpPorts)];
  const auto& advanced = report.outcomes[static_cast<std::size_t>(
      Strategy::kAdvancedBlackholing)];

  // Observed RTBH: acceptor's half of the attack dies, rejector's half
  // leaks (plus the pre-announcement minutes leak for everyone).
  EXPECT_GT(observed.efficacy(), 0.3);
  EXPECT_LT(observed.efficacy(), 0.6);

  // Perfect RTBH kills everything during the blackhole — including the
  // legitimate HTTPS (full collateral).
  EXPECT_GT(perfect.efficacy(), observed.efficacy());
  EXPECT_GT(perfect.collateral(), 0.9);

  // Targeted RTBH: same attack efficacy as perfect (both attack peers are
  // targeted) but the HTTPS entering via a clean peer survives.
  EXPECT_NEAR(targeted.efficacy(), perfect.efficacy(), 1e-9);
  EXPECT_EQ(targeted.legit_dropped, 0u);

  // FlowSpec on amplification ports: full attack coverage (it also covers
  // the pre-RTBH minutes), zero collateral.
  EXPECT_NEAR(flowspec.efficacy(), 1.0, 1e-9);
  EXPECT_EQ(flowspec.legit_dropped, 0u);
  EXPECT_GE(advanced.efficacy(), flowspec.efficacy());
  EXPECT_EQ(advanced.legit_dropped, 0u);  // legit here is TCP only
}

TEST_F(WhatIfTest, NamesAreStable) {
  EXPECT_EQ(to_string(Strategy::kRtbhObserved), "rtbh-observed");
  EXPECT_EQ(to_string(Strategy::kRtbhPerfect), "rtbh-perfect");
  EXPECT_EQ(to_string(Strategy::kRtbhTargeted), "rtbh-targeted");
  EXPECT_EQ(to_string(Strategy::kFlowspecAmpPorts), "flowspec-amp-ports");
  EXPECT_EQ(to_string(Strategy::kAdvancedBlackholing),
            "advanced-blackholing");
}

TEST(WhatIfEmptyTest, NoAttackEventsMeansEmptyReport) {
  World world({0, util::days(8)}, 0);
  const net::Ipv4 victim(24, 0, 0, 9);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      util::days(5), World::kVictimAsn, 50000, net::Prefix::host(victim)));
  const Dataset dataset = world.run(std::move(control), {});
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto report = compute_whatif(dataset, events, pre);
  EXPECT_EQ(report.events_considered, 0u);
  for (const auto& o : report.outcomes) {
    EXPECT_EQ(o.attack_packets, 0u);
    EXPECT_EQ(o.legit_packets, 0u);
  }
}

}  // namespace
}  // namespace bw::core
