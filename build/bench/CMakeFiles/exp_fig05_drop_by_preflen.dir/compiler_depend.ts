# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_fig05_drop_by_preflen.
