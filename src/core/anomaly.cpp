#include "core/anomaly.hpp"

#include <algorithm>
#include <unordered_set>

namespace bw::core {

std::string_view to_string(Feature f) {
  switch (f) {
    case Feature::kPackets: return "packets";
    case Feature::kFlows: return "flows";
    case Feature::kUniqueSources: return "unique-sources";
    case Feature::kUniqueDstPorts: return "unique-dst-ports";
    case Feature::kNonTcpFlows: return "non-tcp-flows";
  }
  return "unknown";
}

std::size_t FeatureMatrix::slots_with_data() const {
  std::size_t n = 0;
  for (const double v : series[static_cast<std::size_t>(Feature::kPackets)]) {
    if (v > 0.0) ++n;
  }
  return n;
}

namespace {

// Core of compute_features over any record source: `for_each_record`
// invokes its callback once per candidate FlowRecord.
template <typename ForEachRecord>
FeatureMatrix compute_features_impl(util::TimeRange range,
                                    util::DurationMs slot,
                                    ForEachRecord&& for_each_record) {
  FeatureMatrix m;
  m.start = range.begin;
  m.slot = std::max<util::DurationMs>(slot, 1);
  const auto slots = static_cast<std::size_t>(
      std::max<util::TimeMs>((range.length() + m.slot - 1) / m.slot, 0));
  for (auto& s : m.series) s.assign(slots, 0.0);
  if (slots == 0) return m;

  struct SlotSets {
    std::unordered_set<std::uint32_t> sources;
    std::unordered_set<std::uint32_t> dst_ports;
  };
  std::vector<SlotSets> sets(slots);

  auto& packets = m.series[static_cast<std::size_t>(Feature::kPackets)];
  auto& flows_f = m.series[static_cast<std::size_t>(Feature::kFlows)];
  auto& non_tcp = m.series[static_cast<std::size_t>(Feature::kNonTcpFlows)];

  for_each_record([&](const flow::FlowRecord& rec) {
    if (!range.contains(rec.time)) return;
    const auto s = static_cast<std::size_t>((rec.time - range.begin) / m.slot);
    if (s >= slots) return;
    packets[s] += static_cast<double>(rec.packets);
    flows_f[s] += 1.0;
    if (rec.proto != net::Proto::kTcp) non_tcp[s] += 1.0;
    sets[s].sources.insert(rec.src_ip.value());
    sets[s].dst_ports.insert(rec.dst_port);
  });
  auto& sources = m.series[static_cast<std::size_t>(Feature::kUniqueSources)];
  auto& ports = m.series[static_cast<std::size_t>(Feature::kUniqueDstPorts)];
  for (std::size_t s = 0; s < slots; ++s) {
    sources[s] = static_cast<double>(sets[s].sources.size());
    ports[s] = static_cast<double>(sets[s].dst_ports.size());
  }
  return m;
}

}  // namespace

FeatureMatrix compute_features(const Dataset& dataset,
                               const net::Prefix& prefix,
                               util::TimeRange range, util::DurationMs slot,
                               KernelEngine engine) {
  if (engine == KernelEngine::kRecords) {
    // Stream matching records straight off the sorted destination index
    // (the seed path, kept as the equivalence oracle).
    return compute_features_impl(range, slot, [&](auto&& visit) {
      dataset.for_each_flow_to(prefix, range, visit);
    });
  }

  // Columnar engine. Sums accumulate in the exact row order the records
  // engine visits, so the doubles are bit-identical; unique counts are done
  // by sort-unique over (slot << 32) | value keys instead of per-slot hash
  // sets, which is both faster and order-independent.
  static const KernelScanMetrics metrics = make_kernel_scan_metrics("anomaly");
  const obs::StopWatch watch;
  const flow::FlowColumns& cols = dataset.columns();

  FeatureMatrix m;
  m.start = range.begin;
  m.slot = std::max<util::DurationMs>(slot, 1);
  const auto slots = static_cast<std::size_t>(
      std::max<util::TimeMs>((range.length() + m.slot - 1) / m.slot, 0));
  for (auto& s : m.series) s.assign(slots, 0.0);
  if (slots == 0) return m;

  auto& packets = m.series[static_cast<std::size_t>(Feature::kPackets)];
  auto& flows_f = m.series[static_cast<std::size_t>(Feature::kFlows)];
  auto& non_tcp = m.series[static_cast<std::size_t>(Feature::kNonTcpFlows)];
  constexpr auto kTcp = static_cast<std::uint8_t>(net::Proto::kTcp);

  std::vector<std::uint64_t> src_keys;
  std::vector<std::uint64_t> port_keys;
  const std::size_t rows =
      cols.for_each_dst_row(prefix, range, [&](std::size_t i) {
        const auto s =
            static_cast<std::size_t>((cols.time[i] - range.begin) / m.slot);
        if (s >= slots) return;
        packets[s] += static_cast<double>(cols.packets[i]);
        flows_f[s] += 1.0;
        if (cols.proto[i] != kTcp) non_tcp[s] += 1.0;
        src_keys.push_back((std::uint64_t{s} << 32) | cols.src_ip[i]);
        port_keys.push_back((std::uint64_t{s} << 32) | cols.dst_port[i]);
      });

  auto tally_unique = [](std::vector<std::uint64_t>& keys,
                         std::vector<double>& out) {
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) {
        out[static_cast<std::size_t>(keys[i] >> 32)] += 1.0;
      }
    }
  };
  tally_unique(src_keys,
               m.series[static_cast<std::size_t>(Feature::kUniqueSources)]);
  tally_unique(port_keys,
               m.series[static_cast<std::size_t>(Feature::kUniqueDstPorts)]);

  metrics.rows->add(rows);
  metrics.ns->add(watch.elapsed_ns());
  return m;
}

FeatureMatrix compute_features(const flow::FlowLog& flows,
                               const std::vector<std::size_t>& indices,
                               util::TimeRange range, util::DurationMs slot) {
  return compute_features_impl(range, slot, [&](auto&& visit) {
    for (const std::size_t idx : indices) visit(flows[idx]);
  });
}

int AnomalyScan::max_level() const {
  int best = 0;
  for (const int l : level) best = std::max(best, l);
  return best;
}

bool AnomalyScan::any_anomaly_in_last(std::size_t n) const {
  const std::size_t count = std::min(n, level.size());
  for (std::size_t i = 0; i < count; ++i) {
    if (level[level.size() - 1 - i] >= 1) return true;
  }
  return false;
}

AnomalyScan detect_anomalies(const FeatureMatrix& features,
                             util::EwmaConfig config) {
  AnomalyScan scan;
  scan.level.assign(features.slot_count(), 0);
  for (const auto& series : features.series) {
    util::EwmaDetector det(config);
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (det.push(series[s])) ++scan.level[s];
    }
  }
  return scan;
}

AnomalyScan detect_anomalies_cusum(const FeatureMatrix& features,
                                   util::CusumConfig config) {
  AnomalyScan scan;
  scan.level.assign(features.slot_count(), 0);
  for (const auto& series : features.series) {
    util::CusumDetector det(config);
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (det.push(series[s])) ++scan.level[s];
    }
  }
  return scan;
}

}  // namespace bw::core
