// A route as installed in a peer's RIB after route-server distribution and
// local policy evaluation.
#pragma once

#include <string>
#include <vector>

#include "bgp/community.hpp"
#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "util/time.hpp"

namespace bw::bgp {

struct Route {
  net::Prefix prefix;
  net::Ipv4 next_hop;
  Asn sender_asn{0};  ///< member the route server learned the route from
  Asn origin_asn{0};
  std::vector<Community> communities;
  util::TimeMs learned_at{0};

  [[nodiscard]] bool is_blackhole() const {
    return has_community(communities, kBlackhole);
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace bw::bgp
