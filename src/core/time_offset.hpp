// Control/data plane clock-offset estimation (Section 3.1, Fig. 2).
//
// All measurement devices sync via NTP, but residual skew between the BGP
// collector and the IPFIX exporters must be quantified before any time-
// series correlation. Following the paper, we take every sampled packet
// that was *marked dropped* on the data plane and ask, for a candidate
// offset δ: "was a blackhole covering its destination announced at
// (data_time + δ) according to the control plane?" The maximum-likelihood
// offset is the δ maximising that overlap (the paper finds 99.36% overlap
// at δ = -0.04 s).
#pragma once

#include <vector>

#include "core/dataset.hpp"

namespace bw::core {

struct OffsetPoint {
  util::DurationMs offset{0};
  double overlap{0.0};  ///< share of dropped samples explained by control plane
};

struct OffsetEstimate {
  util::DurationMs best_offset{0};
  double best_overlap{0.0};
  std::size_t dropped_samples{0};
  std::vector<OffsetPoint> curve;  ///< full likelihood curve (Fig. 2)
};

struct OffsetConfig {
  util::DurationMs min_offset{-2 * util::kSecond};
  util::DurationMs max_offset{2 * util::kSecond};
  util::DurationMs step{20};  ///< grid resolution
  /// Cap on evaluated dropped samples (uniform subsample keeps the curve
  /// shape while bounding cost); 0 = use all.
  std::size_t max_samples{200000};
};

/// Estimate the offset δ to *add to data-plane timestamps* to best align
/// them with the control plane. A negative best_offset means the data
/// plane clock runs ahead; the data-plane-relative skew reported in the
/// paper's convention is -best_offset.
[[nodiscard]] OffsetEstimate estimate_offset(const Dataset& dataset,
                                             const OffsetConfig& config = {});

}  // namespace bw::core
