// Table 4: PeeringDB ASN types for detected client and server victim
// addresses (Section 6.2).
//
// Paper:                clients    servers
//   hosts               4,057      1,036
//   Content             2%         34%
//   Cable/DSL/ISP       60%        14%
//   NSP                 14%        13%
//   Enterprise          1%         1%
//   Unknown             23%        38%
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("tab04");
  const auto rows = core::asn_type_table(exp.report.ports, exp.run.registry);
  const auto& ports = exp.report.ports;

  bench::print_header("Tab. 4", "ASN types of detected clients and servers");
  util::TextTable table({"type", "clients", "clients %", "servers",
                         "servers %"});
  auto csv = bench::open_csv("tab04_asn_types",
                             {"type", "clients", "servers"});
  const double c_total = std::max<double>(static_cast<double>(ports.clients), 1);
  const double s_total = std::max<double>(static_cast<double>(ports.servers), 1);
  for (const auto& r : rows) {
    table.add_row({std::string(pdb::to_string(r.type)),
                   util::fmt_count(static_cast<std::int64_t>(r.clients)),
                   util::fmt_percent(static_cast<double>(r.clients) / c_total, 0),
                   util::fmt_count(static_cast<std::int64_t>(r.servers)),
                   util::fmt_percent(static_cast<double>(r.servers) / s_total, 0)});
    csv->write_row({std::string(pdb::to_string(r.type)),
                    std::to_string(r.clients), std::to_string(r.servers)});
  }
  std::cout << table;

  bench::print_paper_row(
      "# hosts (clients / servers)", "4,057 / 1,036 (x scale)",
      util::fmt_count(static_cast<std::int64_t>(ports.clients)) + " / " +
          util::fmt_count(static_cast<std::int64_t>(ports.servers)));
  double c_dsl = 0.0;
  double s_content = 0.0;
  for (const auto& r : rows) {
    if (r.type == pdb::OrgType::kCableDslIsp) {
      c_dsl = static_cast<double>(r.clients) / c_total;
    }
    if (r.type == pdb::OrgType::kContent) {
      s_content = static_cast<double>(r.servers) / s_total;
    }
  }
  bench::print_paper_row("clients in Cable/DSL/ISP networks", "60%",
                         util::fmt_percent(c_dsl, 0));
  bench::print_paper_row("servers in Content networks", "34%",
                         util::fmt_percent(s_content, 0));
  return 0;
}
