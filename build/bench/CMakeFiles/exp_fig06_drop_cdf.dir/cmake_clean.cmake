file(REMOVE_RECURSE
  "CMakeFiles/exp_fig06_drop_cdf.dir/exp_fig06_drop_cdf.cpp.o"
  "CMakeFiles/exp_fig06_drop_cdf.dir/exp_fig06_drop_cdf.cpp.o.d"
  "exp_fig06_drop_cdf"
  "exp_fig06_drop_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig06_drop_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
