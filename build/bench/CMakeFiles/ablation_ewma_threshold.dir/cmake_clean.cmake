file(REMOVE_RECURSE
  "CMakeFiles/ablation_ewma_threshold.dir/ablation_ewma_threshold.cpp.o"
  "CMakeFiles/ablation_ewma_threshold.dir/ablation_ewma_threshold.cpp.o.d"
  "ablation_ewma_threshold"
  "ablation_ewma_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ewma_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
