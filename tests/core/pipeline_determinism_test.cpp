// Determinism of the parallel analysis engine: run_pipeline must produce a
// byte-identical AnalysisReport at every thread count. We run the default
// pipeline over one generated corpus with a serial pool (the BW_THREADS=1
// fallback) and with an 8-way pool, and compare the reports field by field
// (exact integer and bit-exact double equality) plus via the rendered
// markdown document.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/parallel.hpp"

namespace bw::core {
namespace {

gen::ScenarioConfig test_config() {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.04;
  cfg.seed = 20191021;
  return cfg;
}

class PipelineDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new ScenarioRun(run_scenario(test_config(), std::string{}));

    util::ThreadPool serial(0);
    AnalysisConfig serial_cfg;
    serial_cfg.pool = &serial;
    serial_report_ = new AnalysisReport(run_pipeline(run_->dataset, serial_cfg));

    util::ThreadPool wide(7);  // 8-way: 7 workers + the calling thread
    AnalysisConfig wide_cfg;
    wide_cfg.pool = &wide;
    wide_report_ = new AnalysisReport(run_pipeline(run_->dataset, wide_cfg));
  }
  static void TearDownTestSuite() {
    delete wide_report_;
    delete serial_report_;
    wide_report_ = nullptr;
    serial_report_ = nullptr;
    delete run_;
    run_ = nullptr;
  }

  static ScenarioRun* run_;
  static AnalysisReport* serial_report_;
  static AnalysisReport* wide_report_;
};

ScenarioRun* PipelineDeterminismTest::run_ = nullptr;
AnalysisReport* PipelineDeterminismTest::serial_report_ = nullptr;
AnalysisReport* PipelineDeterminismTest::wide_report_ = nullptr;

TEST_F(PipelineDeterminismTest, SummaryIdentical) {
  const auto& a = serial_report_->summary;
  const auto& b = wide_report_->summary;
  EXPECT_EQ(a.control_updates, b.control_updates);
  EXPECT_EQ(a.blackhole_updates, b.blackhole_updates);
  EXPECT_EQ(a.blackholed_prefixes, b.blackholed_prefixes);
  EXPECT_EQ(a.flow_records, b.flow_records);
  EXPECT_EQ(a.sampled_packets, b.sampled_packets);
  EXPECT_EQ(a.sampled_bytes, b.sampled_bytes);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.dropped_bytes, b.dropped_bytes);
}

TEST_F(PipelineDeterminismTest, EventsIdentical) {
  const auto& a = serial_report_->events;
  const auto& b = wide_report_->events;
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prefix, b[i].prefix);
    EXPECT_EQ(a[i].sender, b[i].sender);
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_EQ(a[i].span.begin, b[i].span.begin);
    EXPECT_EQ(a[i].span.end, b[i].span.end);
    EXPECT_EQ(a[i].announcements, b[i].announcements);
  }
}

TEST_F(PipelineDeterminismTest, PreRtbhIdentical) {
  const auto& a = serial_report_->pre;
  const auto& b = wide_report_->pre;
  EXPECT_EQ(a.no_data, b.no_data);
  EXPECT_EQ(a.data_no_anomaly, b.data_no_anomaly);
  EXPECT_EQ(a.data_anomaly_10m, b.data_anomaly_10m);
  EXPECT_EQ(a.anomaly_1h, b.anomaly_1h);
  ASSERT_EQ(a.per_event.size(), b.per_event.size());
  for (std::size_t i = 0; i < a.per_event.size(); ++i) {
    const auto& x = a.per_event[i];
    const auto& y = b.per_event[i];
    EXPECT_EQ(x.event_index, y.event_index);
    EXPECT_EQ(x.has_data, y.has_data);
    EXPECT_EQ(x.slots_with_data, y.slots_with_data);
    EXPECT_EQ(x.anomaly_within_10min, y.anomaly_within_10min);
    EXPECT_EQ(x.anomaly_within_1h, y.anomaly_within_1h);
    EXPECT_EQ(x.max_level, y.max_level);
    EXPECT_EQ(x.anomalies, y.anomalies);
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      EXPECT_EQ(x.amplification[f], y.amplification[f]);  // bit-exact
    }
  }
}

TEST_F(PipelineDeterminismTest, DropRatesIdentical) {
  const auto& a = serial_report_->drop;
  const auto& b = wide_report_->drop;
  EXPECT_EQ(a.packets_all_lengths, b.packets_all_lengths);
  EXPECT_EQ(a.bytes_all_lengths, b.bytes_all_lengths);
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  for (std::size_t i = 0; i < a.by_length.size(); ++i) {
    EXPECT_EQ(a.by_length[i].length, b.by_length[i].length);
    EXPECT_EQ(a.by_length[i].packets_total, b.by_length[i].packets_total);
    EXPECT_EQ(a.by_length[i].packets_dropped, b.by_length[i].packets_dropped);
    EXPECT_EQ(a.by_length[i].bytes_total, b.by_length[i].bytes_total);
    EXPECT_EQ(a.by_length[i].bytes_dropped, b.by_length[i].bytes_dropped);
  }
  EXPECT_EQ(a.event_rates_len32, b.event_rates_len32);  // bit-exact doubles
  EXPECT_EQ(a.event_rates_len24, b.event_rates_len24);
  ASSERT_EQ(a.sources_to_len32.size(), b.sources_to_len32.size());
  ASSERT_GT(a.sources_to_len32.size(), 10u);
  for (std::size_t i = 0; i < a.sources_to_len32.size(); ++i) {
    EXPECT_EQ(a.sources_to_len32[i].asn, b.sources_to_len32[i].asn);
    EXPECT_EQ(a.sources_to_len32[i].packets_total,
              b.sources_to_len32[i].packets_total);
    EXPECT_EQ(a.sources_to_len32[i].packets_dropped,
              b.sources_to_len32[i].packets_dropped);
  }
}

TEST_F(PipelineDeterminismTest, AttackMixIdentical) {
  const auto& a = serial_report_->protocols;
  const auto& b = wide_report_->protocols;
  EXPECT_EQ(a.events_considered, b.events_considered);
  EXPECT_EQ(a.packets_total, b.packets_total);
  EXPECT_EQ(a.udp_share, b.udp_share);
  EXPECT_EQ(a.tcp_share, b.tcp_share);
  EXPECT_EQ(a.icmp_share, b.icmp_share);
  EXPECT_EQ(a.other_share, b.other_share);
  EXPECT_EQ(a.protocol_event_counts, b.protocol_event_counts);
  EXPECT_EQ(a.amp_protocol_events, b.amp_protocol_events);

  EXPECT_EQ(serial_report_->filtering.events_considered,
            wide_report_->filtering.events_considered);
  EXPECT_EQ(serial_report_->filtering.coverage,
            wide_report_->filtering.coverage);
  EXPECT_EQ(serial_report_->filtering.fully_filterable_fraction,
            wide_report_->filtering.fully_filterable_fraction);

  const auto& pa = serial_report_->participation;
  const auto& pb = wide_report_->participation;
  EXPECT_EQ(pa.attacks, pb.attacks);
  EXPECT_EQ(pa.avg_amplifiers_per_attack, pb.avg_amplifiers_per_attack);
  ASSERT_EQ(pa.handover.size(), pb.handover.size());
  ASSERT_EQ(pa.origins.size(), pb.origins.size());
}

TEST_F(PipelineDeterminismTest, VictimAnalysisIdentical) {
  const auto& a = serial_report_->ports;
  const auto& b = wide_report_->ports;
  EXPECT_EQ(a.eligible_hosts, b.eligible_hosts);
  EXPECT_EQ(a.clients, b.clients);
  EXPECT_EQ(a.servers, b.servers);
  EXPECT_EQ(a.blackholed_hosts_total, b.blackholed_hosts_total);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  ASSERT_GT(a.hosts.size(), 50u);
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    const auto& x = a.hosts[i];
    const auto& y = b.hosts[i];
    EXPECT_EQ(x.ip, y.ip);
    EXPECT_EQ(x.origin, y.origin);
    EXPECT_EQ(x.unique_src_ports_in, y.unique_src_ports_in);
    EXPECT_EQ(x.unique_dst_ports_in, y.unique_dst_ports_in);
    EXPECT_EQ(x.unique_src_ports_out, y.unique_src_ports_out);
    EXPECT_EQ(x.unique_dst_ports_out, y.unique_dst_ports_out);
    EXPECT_EQ(x.days_with_inbound, y.days_with_inbound);
    EXPECT_EQ(x.days_with_outbound, y.days_with_outbound);
    EXPECT_EQ(x.days_bidirectional, y.days_bidirectional);
    EXPECT_EQ(x.top_ports, y.top_ports);
    EXPECT_EQ(x.port_variation, y.port_variation);
    EXPECT_EQ(x.classification, y.classification);
  }

  const auto& ra = serial_report_->radviz;
  const auto& rb = wide_report_->radviz;
  ASSERT_EQ(ra.points.size(), rb.points.size());
  for (std::size_t i = 0; i < ra.points.size(); ++i) {
    EXPECT_EQ(ra.points[i].ip, rb.points[i].ip);
    EXPECT_EQ(ra.points[i].x, rb.points[i].x);
    EXPECT_EQ(ra.points[i].y, rb.points[i].y);
    EXPECT_EQ(ra.points[i].client_side, rb.points[i].client_side);
  }

  const auto& ca = serial_report_->collateral;
  const auto& cb = wide_report_->collateral;
  EXPECT_EQ(ca.servers_considered, cb.servers_considered);
  EXPECT_EQ(ca.total_top_port_packets, cb.total_top_port_packets);
  EXPECT_EQ(ca.total_dropped_packets, cb.total_dropped_packets);
  ASSERT_EQ(ca.events.size(), cb.events.size());
  for (std::size_t i = 0; i < ca.events.size(); ++i) {
    EXPECT_EQ(ca.events[i].server, cb.events[i].server);
    EXPECT_EQ(ca.events[i].event_index, cb.events[i].event_index);
    EXPECT_EQ(ca.events[i].packets_to_top_ports,
              cb.events[i].packets_to_top_ports);
    EXPECT_EQ(ca.events[i].packets_actually_dropped,
              cb.events[i].packets_actually_dropped);
  }
}

TEST_F(PipelineDeterminismTest, ClassificationIdentical) {
  const auto& a = serial_report_->classes;
  const auto& b = wide_report_->classes;
  EXPECT_EQ(a.infrastructure, b.infrastructure);
  EXPECT_EQ(a.squatting, b.squatting);
  EXPECT_EQ(a.squatting_prefixes, b.squatting_prefixes);
  EXPECT_EQ(a.zombies, b.zombies);
  EXPECT_EQ(a.zombies_until_period_end, b.zombies_until_period_end);
  EXPECT_EQ(a.other, b.other);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].cls, b.events[i].cls);
    EXPECT_EQ(a.events[i].sampled_packets, b.events[i].sampled_packets);
  }
}

TEST_F(PipelineDeterminismTest, RenderedMarkdownIsByteIdentical) {
  const std::string serial_md =
      render_markdown(run_->dataset, *serial_report_, nullptr);
  const std::string wide_md =
      render_markdown(run_->dataset, *wide_report_, nullptr);
  EXPECT_EQ(serial_md, wide_md);
  EXPECT_GT(serial_md.size(), 1000u);
}

}  // namespace
}  // namespace bw::core
