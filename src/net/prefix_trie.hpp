// Binary radix trie over IPv4 prefixes with longest-prefix-match lookup.
// Used by the per-peer RIBs (best-route selection per destination) and by
// the analysis pipeline to attribute sampled packets to blackholed prefixes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace bw::net {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns true when the
  /// prefix was newly inserted, false when an existing value was replaced.
  bool insert(const Prefix& prefix, V value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the value at exactly `prefix`. Returns true when removed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const V* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return node != nullptr && node->value.has_value() ? &*node->value : nullptr;
  }
  [[nodiscard]] V* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return node != nullptr && node->value.has_value() ? &*node->value : nullptr;
  }

  /// Longest-prefix match for a single address; nullptr when nothing covers
  /// the address.
  [[nodiscard]] const V* match(Ipv4 addr) const {
    const Node* node = root_.get();
    const V* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Longest matching prefix (with its value) for an address.
  [[nodiscard]] std::optional<std::pair<Prefix, V>> match_entry(Ipv4 addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, V>> best;
    if (node->value) best = {Prefix(addr, 0), *node->value};
    std::uint32_t bits = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      bits = (bits << 1) | static_cast<std::uint32_t>(bit);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        const auto len = static_cast<std::uint8_t>(depth + 1);
        const std::uint32_t network = bits << (32 - len);
        best = {Prefix(Ipv4(network), len), *node->value};
      }
    }
    return best;
  }

  /// All (prefix, value) pairs that cover `addr`, shortest first.
  [[nodiscard]] std::vector<std::pair<Prefix, const V*>> matches(Ipv4 addr) const {
    std::vector<std::pair<Prefix, const V*>> out;
    const Node* node = root_.get();
    if (node->value) out.emplace_back(Prefix(Ipv4(0), 0), &*node->value);
    std::uint32_t bits = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      bits = (bits << 1) | static_cast<std::uint32_t>(bit);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        const auto len = static_cast<std::uint8_t>(depth + 1);
        out.emplace_back(Prefix(Ipv4(bits << (32 - len)), len), &*node->value);
      }
    }
    return out;
  }

  /// Visit every stored (prefix, value) pair in trie (lexicographic) order.
  void for_each(const std::function<void(const Prefix&, const V&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }
  [[nodiscard]] Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend(prefix));
  }

  static void walk(const Node* node, std::uint32_t bits, int depth,
                   const std::function<void(const Prefix&, const V&)>& fn) {
    if (node == nullptr) return;
    if (node->value) {
      const std::uint32_t network = depth == 0 ? 0u : bits << (32 - depth);
      fn(Prefix(Ipv4(network), static_cast<std::uint8_t>(depth)), *node->value);
    }
    if (depth == 32) return;
    walk(node->child[0].get(), bits << 1, depth + 1, fn);
    walk(node->child[1].get(), (bits << 1) | 1u, depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_{0};
};

}  // namespace bw::net
