file(REMOVE_RECURSE
  "CMakeFiles/bw_property_test.dir/property/index_property_test.cpp.o"
  "CMakeFiles/bw_property_test.dir/property/index_property_test.cpp.o.d"
  "CMakeFiles/bw_property_test.dir/property/scenario_property_test.cpp.o"
  "CMakeFiles/bw_property_test.dir/property/scenario_property_test.cpp.o.d"
  "CMakeFiles/bw_property_test.dir/property/wire_property_test.cpp.o"
  "CMakeFiles/bw_property_test.dir/property/wire_property_test.cpp.o.d"
  "bw_property_test"
  "bw_property_test.pdb"
  "bw_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
