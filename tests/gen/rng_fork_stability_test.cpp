// Golden test for RNG fork stability: the scenario keys every substream
// off util::Rng::derive_seed with fixed named tags, and sharded generation
// depends on those streams never moving. If any of these numbers change,
// every previously generated corpus (and the serial-vs-sharded determinism
// contract) silently changes with it — bump the dataset cache fingerprint
// and regenerate the goldens deliberately, never casually.
//
// mt19937_64 and splitmix64 are fully specified, so these values are
// platform-independent.
#include <gtest/gtest.h>

#include <cstdint>

#include "util/rng.hpp"

namespace bw {
namespace {

// The named fork tags used by gen::Scenario (see src/gen/scenario.cpp).
constexpr std::uint64_t kScenarioTags[] = {
    1,  // members
    2,  // origins
    3,  // hosts
    4,  // remotes
    5,  // amplifiers
    6,  // registry
    7,  // events
    8,  // legit
    9,  // scan
    1000000,  // attack stream base (+ event id)
};
constexpr std::uint64_t kSeed = 20191021;  // the documented corpus seed
constexpr int kDraws = 4;

TEST(RngForkStabilityTest, DeriveSeedGolden) {
  // First layer of the substream tree: derive_seed(seed, tag).
  constexpr std::uint64_t kExpected[] = {
      0xce9ada18f46e1d33ULL,  // tag 1
      0xf3fd90f079cf8a8cULL,  // tag 2
      0xf903bb400085ccbbULL,  // tag 3
      0xa05357d5f123e63eULL,  // tag 4
      0x3c0a6cb0e5ba5fc2ULL,  // tag 5
      0xe73a3079be8fcb98ULL,  // tag 6
      0xe39e7f5756e7f42bULL,  // tag 7
      0xa97e96430a66f41bULL,  // tag 8
      0xd8c008903671a28bULL,  // tag 9
      0x3caaa2c5548799d2ULL,  // tag 1000000
  };
  for (std::size_t i = 0; i < std::size(kScenarioTags); ++i) {
    EXPECT_EQ(util::Rng::derive_seed(kSeed, kScenarioTags[i]), kExpected[i])
        << "tag " << kScenarioTags[i];
  }
}

TEST(RngForkStabilityTest, ForkedStreamGolden) {
  // First kDraws raw engine outputs of each named fork.
  constexpr std::uint64_t kExpected[std::size(kScenarioTags)][kDraws] = {
      {0xbb46b771b9cebbf6ULL, 0xdacebee62128417bULL, 0x6092e8a1b10c1a35ULL,
       0x0095a5ee8e723aa3ULL},
      {0x0a93a66997634d0dULL, 0x8d35ffb505486c35ULL, 0x7e0e11a259c5a26aULL,
       0xd5d37d19f66ddf86ULL},
      {0x81997a8628d0a1ddULL, 0xdf9bd49c03e5c37eULL, 0xc1cfc6f21de1244dULL,
       0xa56b40509957ba29ULL},
      {0x4970955276dab4f7ULL, 0x3b0caa51f7f82a17ULL, 0xeea5e0c0f57a79a1ULL,
       0xa6988d730c6613a3ULL},
      {0x7ea6c40b00f847b5ULL, 0x3d3498508148f147ULL, 0xd52d340d68a9018fULL,
       0x87b81b39504228e4ULL},
      {0x8250cccd871efaaaULL, 0x3d9859e4ac413394ULL, 0x9957651512e493b9ULL,
       0x8177708b7bc2885eULL},
      {0xd9d7bcded20f6707ULL, 0x77ee2449b2c4c7dbULL, 0x3584ea152350517fULL,
       0xd10a786bf931b8d2ULL},
      {0x2900a74b1e30e8f9ULL, 0xf6b8fbd8a6558c51ULL, 0x08316eb4bbdb9b92ULL,
       0xd1841fa49b48faceULL},
      {0xd5eb7455f8fc6e75ULL, 0xf41c84e20c5f889aULL, 0xbbc3ac5932e610a7ULL,
       0x14c30509aea1e28bULL},
      {0x04fc0f02bdc3ee10ULL, 0xa32f82059cae5301ULL, 0x6ca0d17fff205720ULL,
       0x55d9189ad0e0f916ULL},
  };
  for (std::size_t i = 0; i < std::size(kScenarioTags); ++i) {
    util::Rng stream = util::Rng(kSeed).fork(kScenarioTags[i]);
    for (int d = 0; d < kDraws; ++d) {
      EXPECT_EQ(stream.engine()(), kExpected[i][d])
          << "tag " << kScenarioTags[i] << " draw " << d;
    }
  }
}

TEST(RngForkStabilityTest, ChainedDerivationGolden) {
  // The per-unit seed chains used by sharded emission: legit
  // derive(derive(derive(seed, 8), host), day) and scan
  // derive(derive(seed, 9), day) — plus a burst id one level deeper.
  const std::uint64_t legit =
      util::Rng::derive_seed(util::Rng::derive_seed(
                                 util::Rng::derive_seed(kSeed, 8), 17),
                             42);
  const std::uint64_t scan =
      util::Rng::derive_seed(util::Rng::derive_seed(kSeed, 9), 42);
  EXPECT_EQ(legit, 0xc560d4a67acb811aULL);
  EXPECT_EQ(scan, 0xf97bfa468c94e0ebULL);
  EXPECT_EQ(util::Rng::derive_seed(legit, 1), 0x47e40b8a8d1bebcfULL);
}

TEST(RngForkStabilityTest, ForkMatchesDeriveSeed) {
  // fork(tag) is defined as reseeding with derive_seed — the property the
  // sharded driver relies on to reconstruct streams without a parent Rng.
  for (const std::uint64_t tag : kScenarioTags) {
    util::Rng forked = util::Rng(kSeed).fork(tag);
    util::Rng derived(util::Rng::derive_seed(kSeed, tag));
    for (int d = 0; d < kDraws; ++d) {
      EXPECT_EQ(forked.engine()(), derived.engine()());
    }
  }
}

}  // namespace
}  // namespace bw
