file(REMOVE_RECURSE
  "CMakeFiles/bw_ixp_test.dir/ixp/platform_test.cpp.o"
  "CMakeFiles/bw_ixp_test.dir/ixp/platform_test.cpp.o.d"
  "bw_ixp_test"
  "bw_ixp_test.pdb"
  "bw_ixp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_ixp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
