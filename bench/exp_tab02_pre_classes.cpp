// Table 2: class distribution of pre-RTBH events (Section 5.3).
//
// Paper:   no data                          46%
//          data, no anomaly <= 10 min       27%
//          data + anomaly <= 10 min         27%
// and 33% of all events show an anomaly within one hour.
#include "common.hpp"
#include "util/bootstrap.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("tab02");
  const auto& pre = exp.report.pre;
  const double total = static_cast<double>(pre.total());

  bench::print_header("Tab. 2", "pre-RTBH event class distribution");
  util::TextTable table({"data", "anomaly <= 10 min", "% events (paper)",
                         "% events (measured)"});
  table.add_row({"x", "-", "46%",
                 util::fmt_percent(static_cast<double>(pre.no_data) / total, 1)});
  table.add_row(
      {"ok", "x", "27%",
       util::fmt_percent(static_cast<double>(pre.data_no_anomaly) / total, 1)});
  table.add_row(
      {"ok", "ok", "27%",
       util::fmt_percent(static_cast<double>(pre.data_anomaly_10m) / total, 1)});
  std::cout << table;

  auto csv = bench::open_csv("tab02_pre_classes",
                             {"class", "events", "share"});
  csv->write_row({"no_data", std::to_string(pre.no_data),
                  util::fmt_double(static_cast<double>(pre.no_data) / total, 4)});
  csv->write_row({"data_no_anomaly", std::to_string(pre.data_no_anomaly),
                  util::fmt_double(
                      static_cast<double>(pre.data_no_anomaly) / total, 4)});
  csv->write_row({"data_anomaly_10m", std::to_string(pre.data_anomaly_10m),
                  util::fmt_double(
                      static_cast<double>(pre.data_anomaly_10m) / total, 4)});

  bench::print_paper_row(
      "events with anomaly within 1 hour", "33%",
      util::fmt_percent(static_cast<double>(pre.anomaly_1h) / total, 1));
  bench::print_paper_row(
      "total RTBH events", "34k (x scale)",
      util::fmt_count(static_cast<std::int64_t>(pre.total())));
  const auto ci = util::bootstrap_share_ci(pre.data_anomaly_10m, pre.total());
  bench::print_paper_row(
      "DDoS-correlated share, 95% bootstrap CI", "27%",
      util::fmt_percent(ci.estimate, 1) + " [" + util::fmt_percent(ci.lo, 1) +
          ", " + util::fmt_percent(ci.hi, 1) + "]");
  return 0;
}
