// bw-analyze: run the complete IMC'19 analysis pipeline over a corpus and
// print the full operational report — the command-line face of the library.
// The corpus is either a .bwds dataset from bw-generate or a CSV directory
// (as written by `bw-generate --csv` or bw-faultgen).
//
//   bw-analyze CORPUS [--delta MINUTES] [--markdown OUT.md]
//              [--strict | --skip-bad-rows | --repair]
//              [--stage-timeout-s S] [--inject-hang STAGE]
//              [--metrics-out FILE] [--trace-out FILE]
//
// Exit codes: 0 ok, 2 usage, 3 data error, 4 internal (see tools/cli.hpp).
// A stage cancelled by --stage-timeout-s degrades that stage and the run
// still exits 0: degraded-but-complete is the success path, and the report
// (and stderr) say exactly which stages timed out.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cli.hpp"
#include "core/io_text.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/whatif.hpp"
#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-analyze CORPUS [--delta MINUTES] [--markdown OUT.md]\n"
               "                  [--strict | --skip-bad-rows | --repair]\n"
               "                  [--stage-timeout-s S] [--inject-hang STAGE]\n"
               "                  [--metrics-out FILE] [--trace-out FILE]\n"
               "  CORPUS is a .bwds file or a CSV corpus directory.\n"
               "  --strict        fail on the first malformed CSV row (default)\n"
               "  --skip-bad-rows drop malformed rows; account in data quality\n"
               "  --repair        like --skip-bad-rows, salvaging rows whose\n"
               "                  damage is confined to recoverable fields\n"
               "  --stage-timeout-s S  cancel any stage running past S seconds\n"
               "                  (cooperative watchdog; the stage degrades,\n"
               "                  the run completes)\n"
               "  --inject-hang STAGE  wedge STAGE until its timeout fires\n"
               "                  (testing only; requires --stage-timeout-s)\n"
            << bw::tools::kObsUsage;
}

std::string pct(double f, int p = 1) { return bw::util::fmt_percent(f, p); }

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string path;
  std::string markdown_out;
  core::AnalysisConfig acfg;
  tools::StrictnessOptions strictness;  // default: Strictness::kStrict
  tools::ObsOptions obs_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_options.parse(argc, argv, i)) {
      continue;
    } else if (arg == "--delta" && i + 1 < argc) {
      acfg.merge_delta = util::minutes(std::atof(argv[++i]));
    } else if (arg == "--markdown" && i + 1 < argc) {
      markdown_out = argv[++i];
    } else if (arg == "--stage-timeout-s" && i + 1 < argc) {
      const double s = std::atof(argv[++i]);
      if (s <= 0.0) {
        std::cerr << "bw-analyze: --stage-timeout-s must be > 0\n";
        usage();
        return tools::kExitUsage;
      }
      acfg.stage_timeout = static_cast<util::DurationMs>(s * 1000.0);
    } else if (arg == "--inject-hang" && i + 1 < argc) {
      acfg.inject_stage_hangs.emplace_back(argv[++i]);
    } else if (strictness.parse(arg)) {
      continue;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      usage();
      return tools::kExitUsage;
    }
  }
  if (path.empty()) {
    usage();
    return tools::kExitUsage;
  }
  if (!acfg.inject_stage_hangs.empty() && acfg.stage_timeout <= 0) {
    std::cerr << "bw-analyze: --inject-hang requires --stage-timeout-s\n";
    usage();
    return tools::kExitUsage;
  }
  obs_options.arm();

  try {
    std::cout << "Loading " << path << "...\n";
    std::optional<core::Dataset> dataset;
    core::IngestReport ingest;
    {
      auto loaded = tools::load_corpus(path, strictness.load_options, &ingest);
      if (!loaded.ok()) {
        std::cerr << "bw-analyze: " << loaded.status().to_string() << "\n";
        return tools::kExitData;
      }
      dataset.emplace(std::move(loaded).value());
    }

    const auto s = dataset->summary();
    std::cout << "Corpus: "
              << util::fmt_count(static_cast<std::int64_t>(s.control_updates))
              << " BGP updates, "
              << util::fmt_count(static_cast<std::int64_t>(s.flow_records))
              << " flow records over "
              << util::format_duration(dataset->period().length()) << "\n";

    core::AnalysisReport r = core::run_pipeline(*dataset, acfg);
    r.data_quality.files = ingest.files;
    for (const auto& stage : r.data_quality.stages) {
      if (stage.degraded) {
        std::cerr << "bw-analyze: stage '" << stage.name
                  << (stage.timed_out ? "' timed out: " : "' degraded: ")
                  << stage.error << "\n";
      }
    }
    const double total_events =
        std::max<double>(static_cast<double>(r.events.size()), 1.0);

    std::cout << "\n--- RTBH events (delta = "
              << util::format_duration(acfg.merge_delta) << ") ---\n";
    std::cout << util::fmt_count(static_cast<std::int64_t>(s.blackhole_updates))
              << " RTBH updates -> "
              << util::fmt_count(static_cast<std::int64_t>(r.events.size()))
              << " events over "
              << util::fmt_count(
                     static_cast<std::int64_t>(s.blackholed_prefixes))
              << " prefixes\n";

    std::cout << "\n--- Pre-RTBH classification (Table 2) ---\n";
    util::TextTable t2({"class", "events", "share"});
    t2.add_row({"no sampled traffic",
                util::fmt_count(static_cast<std::int64_t>(r.pre.no_data)),
                pct(static_cast<double>(r.pre.no_data) / total_events)});
    t2.add_row(
        {"traffic, no anomaly <=10min",
         util::fmt_count(static_cast<std::int64_t>(r.pre.data_no_anomaly)),
         pct(static_cast<double>(r.pre.data_no_anomaly) / total_events)});
    t2.add_row(
        {"traffic + anomaly <=10min (DDoS-like)",
         util::fmt_count(static_cast<std::int64_t>(r.pre.data_anomaly_10m)),
         pct(static_cast<double>(r.pre.data_anomaly_10m) / total_events)});
    std::cout << t2;

    std::cout << "\n--- Acceptance / drop rates (Figs. 5-7) ---\n";
    util::TextTable t5({"prefix len", "traffic share", "dropped"});
    for (const auto& len : r.drop.by_length) {
      t5.add_row({"/" + std::to_string(len.length),
                  pct(r.drop.traffic_share(len.length), 2),
                  pct(len.packet_drop_rate())});
    }
    std::cout << t5;
    const auto top = core::summarize_top_sources(r.drop, 100);
    std::cout << "top-100 sources towards /32 blackholes: " << top.full_droppers
              << " drop >99%, " << top.full_forwarders
              << " forward >99%, " << top.inconsistent << " inconsistent\n";

    std::cout << "\n--- Attack traffic (Tables 3, Figs. 14-15) ---\n";
    std::cout << "transport mix during attack events: "
              << pct(r.protocols.udp_share) << " UDP / "
              << pct(r.protocols.tcp_share) << " TCP\n";
    std::cout << "events fully coverable by amplification-port filters: "
              << pct(r.filtering.fully_filterable_fraction) << " of "
              << r.filtering.events_considered << "\n";
    if (!r.participation.origins.empty()) {
      std::cout << "top reflector origin AS" << r.participation.origins[0].asn
                << ": in " << pct(r.participation.origins[0].event_share, 0)
                << " of attacks, "
                << pct(r.participation.origins[0].traffic_share, 1)
                << " of attack traffic\n";
    }

    std::cout << "\n--- Victims (Figs. 16-18, Table 4) ---\n";
    std::cout << r.ports.clients << " client-like and " << r.ports.servers
              << " server-like blackholed hosts ("
              << pct(r.ports.blackholed_hosts_total > 0
                         ? static_cast<double>(r.ports.eligible_hosts) /
                               static_cast<double>(
                                   r.ports.blackholed_hosts_total)
                         : 0.0,
                     0)
              << " of blackholed addresses meet the 20-day criterion)\n";
    std::cout << r.collateral.events.size()
              << " (server,event) pairs with service-port traffic during an "
                 "active blackhole\n";

    std::cout << "\n--- Use-case classification (Fig. 19) ---\n";
    util::TextTable t19({"class", "events", "share"});
    t19.add_row(
        {"infrastructure protection",
         util::fmt_count(static_cast<std::int64_t>(r.classes.infrastructure)),
         pct(static_cast<double>(r.classes.infrastructure) / total_events)});
    t19.add_row(
        {"squatting candidates",
         util::fmt_count(static_cast<std::int64_t>(r.classes.squatting)),
         pct(static_cast<double>(r.classes.squatting) / total_events)});
    t19.add_row({"zombie candidates",
                 util::fmt_count(static_cast<std::int64_t>(r.classes.zombies)),
                 pct(static_cast<double>(r.classes.zombies) / total_events)});
    t19.add_row({"other",
                 util::fmt_count(static_cast<std::int64_t>(r.classes.other)),
                 pct(static_cast<double>(r.classes.other) / total_events)});
    std::cout << t19;

    std::cout << "\n--- Mitigation what-if (extension) ---\n";
    const auto whatif = core::compute_whatif(*dataset, r.events, r.pre);
    util::TextTable tw({"strategy", "attack dropped", "legit dropped"});
    for (const auto& o : whatif.outcomes) {
      tw.add_row({std::string(core::to_string(o.strategy)), pct(o.efficacy()),
                  pct(o.collateral())});
    }
    std::cout << tw;

    if (!r.data_quality.clean()) {
      std::cout << "\n--- Data quality ---\n";
      for (const auto& f : r.data_quality.files) {
        if (!f.clean()) std::cout << f.summary() << "\n";
      }
      const auto& q = r.data_quality.dataset;
      if (!q.clean()) {
        std::cout << "sanitation: " << q.reordered_updates + q.reordered_flows
                  << " re-sorted, "
                  << q.out_of_period_updates + q.out_of_period_flows
                  << " out-of-period, " << q.duplicate_flows
                  << " duplicate flows, " << q.unknown_mac_flows
                  << " unattributable-MAC flows\n";
      }
    }

    if (!markdown_out.empty()) {
      // Atomic emission: a crash mid-write must never leave a torn report
      // under the final name for a consumer to pick up.
      const util::Status st = util::atomic_write_file(
          markdown_out, core::render_markdown(*dataset, r, &whatif));
      if (!st.ok()) {
        std::cerr << "bw-analyze: " << st.to_string() << "\n";
        return tools::kExitData;
      }
      std::cout << "\nWrote markdown report to " << markdown_out << "\n";
    }

    obs::Manifest manifest;
    manifest.tool = "bw-analyze";
    manifest.corpus = path;
    manifest.threads = util::ThreadPool::configured_concurrency();
    for (const auto& stage : r.data_quality.stages) {
      manifest.stages.push_back(
          {stage.name, 0, 0, stage.degraded, stage.timed_out});
    }
    manifest.populate_from_metrics(obs::Registry::global().snapshot());
    if (!obs_options.emit("bw-analyze", manifest)) return tools::kExitData;

    return tools::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "bw-analyze: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
