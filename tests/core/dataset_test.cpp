#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    World world;
    const net::Ipv4 victim(24, 0, 0, 1);
    bgp::UpdateLog control;
    control.push_back(world.platform->service().make_announce(
        util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    control.push_back(world.platform->service().make_withdraw(
        2 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));

    std::vector<flow::TrafficBurst> bursts;
    // 100 packets during the blackhole from the acceptor (dropped),
    // 50 before it (forwarded).
    bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                                 net::Proto::kUdp, 123, 4444,
                                 {util::kHour, 2 * util::kHour}, 100,
                                 world.acceptor));
    bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 2), victim,
                                 net::Proto::kUdp, 123, 4444,
                                 {0, util::kHour}, 50, world.acceptor));
    dataset_ = std::make_unique<Dataset>(world.run(std::move(control), bursts));
    macs_acceptor_ = world.platform->member(world.acceptor).port_mac;
  }

  std::unique_ptr<Dataset> dataset_;
  net::Mac macs_acceptor_;
};

TEST_F(DatasetTest, SummaryCountsDrops) {
  const auto s = dataset_->summary();
  EXPECT_EQ(s.control_updates, 2u);
  EXPECT_EQ(s.blackhole_updates, 2u);
  EXPECT_EQ(s.blackholed_prefixes, 1u);
  EXPECT_EQ(s.flow_records, 150u);
  EXPECT_EQ(s.sampled_packets, 150u);
  EXPECT_EQ(s.dropped_packets, 100u);
}

TEST_F(DatasetTest, RsIndexRebuiltFromControl) {
  EXPECT_TRUE(dataset_->rs_index().announced_at(net::Ipv4(24, 0, 0, 1),
                                                90 * util::kMinute));
  EXPECT_FALSE(dataset_->rs_index().announced_at(net::Ipv4(24, 0, 0, 1),
                                                 3 * util::kHour));
}

TEST_F(DatasetTest, FlowsToFiltersPrefixAndRange) {
  const auto all = dataset_->flows_to(net::Ipv4(24, 0, 0, 1));
  EXPECT_EQ(all.size(), 150u);
  const auto during = dataset_->flows_to(
      net::Prefix::host(net::Ipv4(24, 0, 0, 1)), {util::kHour, 2 * util::kHour});
  EXPECT_EQ(during.size(), 100u);
  const auto none = dataset_->flows_to(
      net::Prefix::host(net::Ipv4(24, 0, 0, 99)), dataset_->period());
  EXPECT_TRUE(none.empty());
}

TEST_F(DatasetTest, HostScanHonorsTimeSubrangeBoundaries) {
  // Host (/32) runs are time-sorted, so the scan binary-searches the time
  // window instead of filtering per record; boundary behaviour must stay
  // exactly half-open [begin, end).
  const net::Ipv4 victim(24, 0, 0, 1);
  const net::Prefix host = net::Prefix::host(victim);
  const util::TimeRange windows[] = {
      {0, util::kHour},
      {util::kHour, 2 * util::kHour},
      {30 * util::kMinute, 90 * util::kMinute},
      {util::kHour, util::kHour},  // empty window
      {util::kHour, util::kHour + 1},
      {-util::kHour, 4 * util::kHour},  // wider than the data
  };
  for (const auto& range : windows) {
    std::size_t scanned = 0;
    std::uint64_t packets = 0;
    dataset_->for_each_flow_to(host, range, [&](const flow::FlowRecord& rec) {
      EXPECT_TRUE(range.contains(rec.time));
      ++scanned;
      packets += rec.packets;
    });
    std::size_t expected = 0;
    std::uint64_t expected_packets = 0;
    for (const auto& rec : dataset_->flows()) {
      if (rec.dst_ip == victim && range.contains(rec.time)) {
        ++expected;
        expected_packets += rec.packets;
      }
    }
    EXPECT_EQ(scanned, expected)
        << "[" << range.begin << ", " << range.end << ")";
    EXPECT_EQ(packets, expected_packets);
  }
}

TEST_F(DatasetTest, ColumnsMirrorDestinationOrder) {
  const auto& cols = dataset_->columns();
  ASSERT_EQ(cols.size(), dataset_->flows().size());
  // Rows ascend by (dst_ip, time) and the dropped bitmap agrees with the
  // record flags in aggregate.
  std::uint64_t dropped_rows = 0;
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (k > 0) {
      EXPECT_GE(cols.dst_ip[k], cols.dst_ip[k - 1]);
      if (cols.dst_ip[k] == cols.dst_ip[k - 1]) {
        EXPECT_GE(cols.time[k], cols.time[k - 1]);
      }
    }
    if (cols.dropped(k)) ++dropped_rows;
  }
  std::uint64_t dropped_records = 0;
  for (const auto& rec : dataset_->flows()) {
    if (rec.dropped()) ++dropped_records;
  }
  EXPECT_EQ(dropped_rows, dropped_records);
}

TEST_F(DatasetTest, SummaryEnginesAgree) {
  const auto columnar = dataset_->summary(nullptr, KernelEngine::kColumnar);
  const auto records = dataset_->summary(nullptr, KernelEngine::kRecords);
  EXPECT_EQ(columnar.control_updates, records.control_updates);
  EXPECT_EQ(columnar.blackhole_updates, records.blackhole_updates);
  EXPECT_EQ(columnar.blackholed_prefixes, records.blackholed_prefixes);
  EXPECT_EQ(columnar.flow_records, records.flow_records);
  EXPECT_EQ(columnar.sampled_packets, records.sampled_packets);
  EXPECT_EQ(columnar.sampled_bytes, records.sampled_bytes);
  EXPECT_EQ(columnar.dropped_packets, records.dropped_packets);
  EXPECT_EQ(columnar.dropped_bytes, records.dropped_bytes);
}

TEST_F(DatasetTest, FlowsFromSourcePrefix) {
  const auto from = dataset_->flows_from(*net::Prefix::parse("64.0.0.0/16"),
                                         dataset_->period());
  EXPECT_EQ(from.size(), 150u);
  const auto one = dataset_->flows_from(
      net::Prefix::host(net::Ipv4(64, 0, 0, 2)), dataset_->period());
  EXPECT_EQ(one.size(), 50u);
}

TEST_F(DatasetTest, Attribution) {
  EXPECT_EQ(dataset_->member_asn(macs_acceptor_), World::kAcceptorAsn);
  EXPECT_FALSE(dataset_->member_asn(net::Mac(0xDEADBEEFULL)));
  EXPECT_EQ(dataset_->origin_asn(net::Ipv4(64, 0, 0, 1)), 210000u);
  EXPECT_FALSE(dataset_->origin_asn(net::Ipv4(65, 0, 0, 1)));
}

TEST_F(DatasetTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/bw_dataset_rt.bwds";
  dataset_->save(path);
  const Dataset loaded = Dataset::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.control().size(), dataset_->control().size());
  ASSERT_EQ(loaded.flows().size(), dataset_->flows().size());
  for (std::size_t i = 0; i < loaded.flows().size(); ++i) {
    const auto& a = loaded.flows()[i];
    const auto& b = dataset_->flows()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.proto, b.proto);
    EXPECT_EQ(a.src_port, b.src_port);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.src_mac, b.src_mac);
    EXPECT_EQ(a.dst_mac, b.dst_mac);
    EXPECT_EQ(a.bytes, b.bytes);
  }
  EXPECT_EQ(loaded.period(), dataset_->period());
  EXPECT_EQ(loaded.mac_table().size(), dataset_->mac_table().size());
  EXPECT_EQ(loaded.origin_asn(net::Ipv4(64, 0, 0, 1)), 210000u);
  const auto s1 = loaded.summary();
  const auto s2 = dataset_->summary();
  EXPECT_EQ(s1.dropped_packets, s2.dropped_packets);
  // Control log round-trips communities.
  EXPECT_TRUE(loaded.control()[0].is_blackhole());
}

TEST_F(DatasetTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/bw_dataset_bad.bwds";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a dataset";
  }
  EXPECT_THROW((void)Dataset::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)Dataset::load("/nonexistent/nope.bwds"),
               std::runtime_error);
}

}  // namespace
}  // namespace bw::core
