file(REMOVE_RECURSE
  "CMakeFiles/bw_flow_test.dir/flow/flow_test.cpp.o"
  "CMakeFiles/bw_flow_test.dir/flow/flow_test.cpp.o.d"
  "bw_flow_test"
  "bw_flow_test.pdb"
  "bw_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
