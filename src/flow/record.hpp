// Data-plane record types.
//
// `TrafficBurst` is the generator-side ground truth: a homogeneous run of
// packets between two endpoints inside a time window. The fabric samples
// bursts 1:10,000 (Section 3.1) into `FlowRecord`s — the only data the
// analysis pipeline is allowed to see, mirroring the paper's IPFIX corpus:
// packet sizes, src/dst MAC, IP addresses, and transport ports. Payload is
// never modelled (the paper has none either, for privacy reasons).
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "net/ports.hpp"
#include "util/time.hpp"

namespace bw::flow {

/// Identifier of an IXP member (dense index assigned by the platform).
using MemberId = std::uint32_t;

/// Generator-side ground truth, pre-sampling.
struct TrafficBurst {
  util::TimeRange window;
  net::Ipv4 src_ip;
  net::Ipv4 dst_ip;
  net::Proto proto{net::Proto::kUdp};
  net::Port src_port{0};
  net::Port dst_port{0};
  std::int64_t packets{0};
  std::int32_t avg_packet_bytes{500};
  MemberId handover{0};  ///< member port where the traffic enters the fabric
  /// Content key for the fabric's per-burst RNG substreams (sampling count,
  /// sample times, collector jitter). Keying by burst identity instead of
  /// arrival order makes the sampled corpus independent of how the burst
  /// stream is partitioned across generation shards. 0 = unkeyed; the
  /// fabric then falls back to an arrival-order counter (serial-replay
  /// sources only — unkeyed streams are not shard-invariant).
  std::uint64_t id{0};
};

/// One sampled IPFIX record as exported by the IXP monitoring system.
struct FlowRecord {
  util::TimeMs time{0};  ///< export timestamp (data-plane clock!)
  net::Ipv4 src_ip;
  net::Ipv4 dst_ip;
  net::Proto proto{net::Proto::kUdp};
  net::Port src_port{0};
  net::Port dst_port{0};
  net::Mac src_mac;  ///< handover member router port
  net::Mac dst_mac;  ///< egress member port, or the blackhole MAC
  std::uint32_t packets{1};
  std::uint64_t bytes{0};

  /// True when the packet was redirected to the non-forwarding blackhole
  /// MAC, i.e. dropped by the RTBH service (Section 3.1).
  [[nodiscard]] bool dropped() const { return dst_mac == net::Mac::blackhole(); }
};

using FlowLog = std::vector<FlowRecord>;

/// Chronological sort by data-plane timestamp. Stable: records with equal
/// timestamps keep their input order, so sorting per-shard slices and
/// stitching them with merge_sorted_flows is equivalent to sorting the
/// concatenated log in one pass.
void sort_flows(FlowLog& flows);

/// Stable ordered merge of individually time-sorted logs: equal timestamps
/// resolve in favour of the earlier part, i.e. the result is byte-identical
/// to concatenating `parts` in order and calling sort_flows once.
[[nodiscard]] FlowLog merge_sorted_flows(std::vector<FlowLog> parts);

}  // namespace bw::flow
