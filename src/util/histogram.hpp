// Fixed-bin and categorical histograms used by the report generators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace bw::util {

/// Equal-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Fraction of total weight in bin i (0 when empty).
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_{0.0};
};

/// Counter keyed by label; iteration order is sorted by key.
class CategoricalHistogram {
 public:
  void add(const std::string& key, double weight = 1.0);

  [[nodiscard]] double count(const std::string& key) const;
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double fraction(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, double>& counts() const noexcept {
    return counts_;
  }
  /// Keys sorted by descending count (ties broken by key).
  [[nodiscard]] std::vector<std::string> keys_by_count() const;

 private:
  std::map<std::string, double> counts_;
  double total_{0.0};
};

}  // namespace bw::util
