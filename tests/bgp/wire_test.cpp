#include "bgp/wire.hpp"

#include <gtest/gtest.h>

#include "ixp/blackhole_service.hpp"
#include "util/rng.hpp"

namespace bw::bgp::wire {
namespace {

Update sample_announce() {
  Update u;
  u.time = 123456789;
  u.type = UpdateType::kAnnounce;
  u.sender_asn = 64500;
  u.origin_asn = 210001;
  u.prefix = *net::Prefix::parse("10.1.2.3/32");
  u.next_hop = net::Ipv4(10, 66, 6, 6);
  u.communities = {kBlackhole, kNoExport, Community{64600, 777}};
  return u;
}

void expect_equal_sans_time(const Update& a, const Update& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.sender_asn, b.sender_asn);
  EXPECT_EQ(a.origin_asn, b.origin_asn);
  EXPECT_EQ(a.prefix, b.prefix);
  if (a.type == UpdateType::kAnnounce) {
    EXPECT_EQ(a.next_hop, b.next_hop);
  }
  EXPECT_EQ(a.communities, b.communities);
}

TEST(WireTest, AnnounceRoundTrip) {
  const Update u = sample_announce();
  const auto bytes = encode_update(u);
  ASSERT_GE(bytes.size(), 19u);
  // Header: marker + length + type.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(bytes[static_cast<std::size_t>(i)], 0xFF);
  EXPECT_EQ((bytes[16] << 8) | bytes[17], static_cast<int>(bytes.size()));
  EXPECT_EQ(bytes[18], 2);  // UPDATE

  const auto decoded = decode_update(bytes);
  ASSERT_TRUE(decoded);
  expect_equal_sans_time(u, *decoded);
  EXPECT_TRUE(decoded->is_blackhole());
}

TEST(WireTest, WithdrawRoundTrip) {
  Update u = sample_announce();
  u.type = UpdateType::kWithdraw;
  const auto decoded = decode_update(encode_update(u));
  ASSERT_TRUE(decoded);
  expect_equal_sans_time(u, *decoded);
}

TEST(WireTest, SenderEqualsOriginPath) {
  Update u = sample_announce();
  u.origin_asn = u.sender_asn;  // single-AS path
  const auto decoded = decode_update(encode_update(u));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->sender_asn, u.sender_asn);
  EXPECT_EQ(decoded->origin_asn, u.sender_asn);
}

TEST(WireTest, VariousPrefixLengths) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/15",
                           "10.1.0.0/16", "10.1.2.0/23", "10.1.2.0/24",
                           "10.1.2.128/25", "10.1.2.3/32"}) {
    Update u = sample_announce();
    u.prefix = *net::Prefix::parse(text);
    const auto decoded = decode_update(encode_update(u));
    ASSERT_TRUE(decoded) << text;
    EXPECT_EQ(decoded->prefix, u.prefix) << text;
  }
}

TEST(WireTest, NoCommunities) {
  Update u = sample_announce();
  u.communities.clear();
  const auto decoded = decode_update(encode_update(u));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->communities.empty());
  EXPECT_FALSE(decoded->is_blackhole());
}

TEST(WireTest, RejectsGarbage) {
  EXPECT_FALSE(decode_update({}));
  std::vector<std::uint8_t> junk(25, 0x00);
  EXPECT_FALSE(decode_update(junk));  // bad marker
  auto bytes = encode_update(sample_announce());
  bytes[17] ^= 0xFF;  // corrupt length
  EXPECT_FALSE(decode_update(bytes));
  auto truncated = encode_update(sample_announce());
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(decode_update(truncated));
}

TEST(WireTest, RejectsOversize) {
  std::vector<std::uint8_t> big(kMaxMessageSize + 1, 0xFF);
  EXPECT_FALSE(decode_update(big));
}

TEST(WireTest, StreamRoundTripWithTimestamps) {
  ixp::BlackholeService svc(64600);
  util::Rng rng(1);
  UpdateLog log;
  for (int i = 0; i < 200; ++i) {
    const net::Prefix p(
        net::Ipv4(0x18000000u + static_cast<std::uint32_t>(i)), 32);
    const util::TimeMs t = rng.uniform_int(0, util::days(104));
    if (rng.chance(0.5)) {
      log.push_back(svc.make_announce(t, 100 + static_cast<Asn>(i % 7),
                                      50000, p));
    } else {
      log.push_back(svc.make_withdraw(t, 100 + static_cast<Asn>(i % 7),
                                      50000, p));
    }
  }
  const auto bytes = encode_stream(log);
  const auto decoded = decode_stream(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*decoded)[i].time, log[i].time) << i;
    expect_equal_sans_time(log[i], (*decoded)[i]);
  }
}

TEST(WireTest, StreamRejectsTruncation) {
  const auto bytes = encode_stream({sample_announce()});
  for (const std::size_t cut : {1u, 8u, 20u}) {
    const auto truncated =
        std::span<const std::uint8_t>(bytes).subspan(0, bytes.size() - cut);
    EXPECT_FALSE(decode_stream(truncated)) << "cut " << cut;
  }
}

}  // namespace
}  // namespace bw::bgp::wire
