#include "net/ports.hpp"

#include <array>

namespace bw::net {

std::string_view to_string(Proto p) {
  switch (p) {
    case Proto::kIcmp: return "ICMP";
    case Proto::kTcp: return "TCP";
    case Proto::kUdp: return "UDP";
    case Proto::kOther: return "OTHER";
  }
  return "UNKNOWN";
}

std::string to_string(const ProtoPort& pp) {
  return std::string(to_string(pp.proto)) + "/" + std::to_string(pp.port);
}

namespace {

// Paper Table 3 footnote. Port 0 stands in for non-initial fragments, which
// carry no transport header and are classified as "Fragmentation" traffic.
constexpr std::array<AmplificationProtocol, 18> kAmpProtocols{{
    {"QOTD", 17, 140.3},
    {"CharGEN", 19, 358.8},
    {"DNS", 53, 54.6},
    {"TFTP", 69, 60.0},
    {"NTP", 123, 556.9},
    {"NetBIOS", 138, 3.8},
    {"SNMPv2", 161, 6.3},
    {"cLDAP", 389, 56.9},
    {"RIPv1", 520, 131.2},
    {"SSDP", 1900, 30.8},
    {"Game/3478", 3478, 4.6},
    {"Game/3659", 3659, 10.0},
    {"SIP", 5060, 3.8},
    {"BitTorrent", 6881, 3.8},
    {"Memcache", 11211, 10000.0},
    {"Game/27005", 27005, 5.0},
    {"Game/28960", 28960, 7.0},
    {"Fragmentation", 0, 1.0},
}};

// Full port-indexed table mapping every possible port to its dense index in
// kAmpProtocols (or kNoAmplificationPort). 512 KiB of static data buys an
// O(1) branch-free classification on the per-flow hot path.
const std::array<std::size_t, 65536>& amp_index_table() {
  static const std::array<std::size_t, 65536> table = [] {
    std::array<std::size_t, 65536> t{};
    t.fill(kNoAmplificationPort);
    for (std::size_t i = 0; i < kAmpProtocols.size(); ++i) {
      t[kAmpProtocols[i].udp_port] = i;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::span<const AmplificationProtocol> amplification_protocols() {
  return kAmpProtocols;
}

std::size_t amplification_port_index(Port port) {
  return amp_index_table()[port];
}

bool is_amplification_port(Port port) {
  return amplification_port_index(port) != kNoAmplificationPort;
}

std::optional<std::string_view> amplification_name(Port port) {
  const std::size_t i = amplification_port_index(port);
  if (i == kNoAmplificationPort) return std::nullopt;
  return kAmpProtocols[i].name;
}

}  // namespace bw::net
