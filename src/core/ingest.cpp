#include "core/ingest.hpp"

#include <sstream>

namespace bw::core {

std::string_view to_string(Strictness s) {
  switch (s) {
    case Strictness::kStrict: return "strict";
    case Strictness::kSkip: return "skip";
    case Strictness::kRepair: return "repair";
  }
  return "unknown";
}

void LoadReport::note(std::size_t line, std::string message, std::size_t cap) {
  ++diagnostics_total;
  if (diagnostics.size() < cap) {
    diagnostics.push_back({line, std::move(message)});
  }
}

std::string LoadReport::summary() const {
  std::ostringstream os;
  os << file << ": " << rows_read << " rows";
  if (!clean()) {
    os << " (" << rows_skipped << " skipped, " << rows_repaired
       << " repaired)";
    for (const auto& d : diagnostics) {
      os << "; line " << d.line << ": " << d.message;
    }
    if (diagnostics_total > diagnostics.size()) {
      os << "; ... " << (diagnostics_total - diagnostics.size())
         << " more fault(s)";
    }
  }
  return os.str();
}

bool IngestReport::clean() const {
  for (const auto& f : files) {
    if (!f.clean()) return false;
  }
  return true;
}

std::size_t IngestReport::rows_skipped() const {
  std::size_t n = 0;
  for (const auto& f : files) n += f.rows_skipped;
  return n;
}

std::size_t IngestReport::rows_repaired() const {
  std::size_t n = 0;
  for (const auto& f : files) n += f.rows_repaired;
  return n;
}

std::string IngestReport::summary() const {
  std::string out;
  for (const auto& f : files) {
    out += f.summary();
    out += '\n';
  }
  return out;
}

}  // namespace bw::core
