// Shard planning for parallel corpus generation.
//
// The scenario's traffic schedule decomposes into independently-seeded
// emission units — one per (host, day), per attack event, per scan day —
// ordered by anchor time. A shard is a contiguous range of that ordered
// list, so carrying the shards concurrently and stitching their outputs in
// shard order reproduces the serial burst stream exactly; the planner only
// chooses where to cut, balancing the per-unit cost estimates so no worker
// drags the wall clock.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace bw::gen {

/// One independently-seeded slice of the traffic schedule. Every unit's
/// RNG substream is derived from scenario seed + (kind, index, day) alone,
/// never from its position in the plan, so any contiguous partition of the
/// plan emits the identical burst stream.
struct EmissionUnit {
  enum class Kind : std::uint8_t {
    kLegit,   ///< one host's legitimate traffic for one day (index = host)
    kAttack,  ///< one DDoS event, whole window (index = event id)
    kScan,    ///< background radiation towards all targets for one day
  };

  util::TimeMs anchor{0};  ///< earliest time the unit can emit at
  Kind kind{Kind::kLegit};
  std::uint32_t index{0};
  std::uint32_t day{0};
  std::uint64_t cost{1};  ///< relative work estimate (for balancing only)
};

/// A shard: units [begin, end) of the anchor-ordered plan.
struct ShardRange {
  std::size_t begin{0};
  std::size_t end{0};
};

/// Cut the anchor-ordered plan into at most `shard_count` contiguous,
/// non-empty ranges of roughly equal total cost. The cuts affect wall-clock
/// balance only — any partition yields the same merged corpus.
[[nodiscard]] std::vector<ShardRange> plan_shards(
    std::span<const EmissionUnit> plan, std::size_t shard_count);

}  // namespace bw::gen
