#include "net/ports.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bw::net {
namespace {

TEST(ProtoTest, Names) {
  EXPECT_EQ(to_string(Proto::kUdp), "UDP");
  EXPECT_EQ(to_string(Proto::kTcp), "TCP");
  EXPECT_EQ(to_string(Proto::kIcmp), "ICMP");
  EXPECT_EQ(to_string(Proto::kOther), "OTHER");
}

TEST(ProtoPortTest, OrderingAndFormat) {
  const ProtoPort a{Proto::kTcp, 80};
  const ProtoPort b{Proto::kTcp, 443};
  const ProtoPort c{Proto::kUdp, 80};
  EXPECT_LT(a, b);
  EXPECT_NE(a, c);  // protocol distinguishes the tuple (Section 6.2)
  EXPECT_EQ(to_string(a), "TCP/80");
  EXPECT_EQ(to_string(c), "UDP/80");
}

TEST(AmplificationTest, Table3ListComplete) {
  // The paper's Table 3 footnote enumerates 17 protocols + fragmentation.
  const auto protocols = amplification_protocols();
  EXPECT_EQ(protocols.size(), 18u);
  std::set<Port> ports;
  for (const auto& p : protocols) ports.insert(p.udp_port);
  EXPECT_EQ(ports.size(), protocols.size()) << "duplicate ports in table";
  // Spot-check the paper's list.
  for (const Port p : {17, 19, 53, 69, 123, 138, 161, 389, 520, 1900, 3659,
                       3478, 5060, 6881, 11211, 27005, 28960, 0}) {
    EXPECT_TRUE(ports.contains(p)) << "missing port " << p;
  }
}

TEST(AmplificationTest, PortLookup) {
  EXPECT_TRUE(is_amplification_port(123));   // NTP
  EXPECT_TRUE(is_amplification_port(389));   // cLDAP
  EXPECT_TRUE(is_amplification_port(11211)); // memcached
  EXPECT_FALSE(is_amplification_port(80));
  EXPECT_FALSE(is_amplification_port(443));
  EXPECT_FALSE(is_amplification_port(22));
}

TEST(AmplificationTest, Names) {
  ASSERT_TRUE(amplification_name(123));
  EXPECT_EQ(*amplification_name(123), "NTP");
  ASSERT_TRUE(amplification_name(389));
  EXPECT_EQ(*amplification_name(389), "cLDAP");
  EXPECT_FALSE(amplification_name(8080));
}

TEST(AmplificationTest, FactorsArePositive) {
  for (const auto& p : amplification_protocols()) {
    EXPECT_GT(p.amplification_factor, 0.0) << p.name;
  }
}

}  // namespace
}  // namespace bw::net
