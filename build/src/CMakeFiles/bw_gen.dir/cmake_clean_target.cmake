file(REMOVE_RECURSE
  "libbw_gen.a"
)
