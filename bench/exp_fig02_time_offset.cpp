// Figure 2: maximum-likelihood estimate of the time offset between the
// control-plane (BGP) and data-plane (IPFIX) clocks.
//
// Paper result: maximum overlap of 99.36% at an offset of -0.04 s.
// Our collector injects a -40 ms skew plus 10 ms NTP jitter; the estimator
// must recover it from dropped-packet/blackhole-announcement consistency.
#include "common.hpp"
#include "core/time_offset.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig02");

  core::OffsetConfig cfg;
  cfg.min_offset = -util::kSecond;
  cfg.max_offset = util::kSecond;
  cfg.step = 10;
  const auto est = core::estimate_offset(exp.run.dataset, cfg);

  bench::print_header("Fig. 2", "control/data plane time-offset MLE");
  util::TextTable table({"offset [s]", "overlap"});
  auto csv = bench::open_csv("fig02_time_offset", {"offset_ms", "overlap"});
  for (const auto& p : est.curve) {
    csv->write_row({std::to_string(p.offset), util::fmt_double(p.overlap, 5)});
    if (p.offset % 100 == 0) {  // table shows a coarse slice of the curve
      table.add_row({util::fmt_double(static_cast<double>(p.offset) / 1000.0, 2),
                     util::fmt_percent(p.overlap, 2)});
    }
  }
  std::cout << table;

  // Report in the paper's sign convention (data-plane clock skew).
  const double skew_s = -static_cast<double>(est.best_offset) / 1000.0;
  bench::print_paper_row("estimated data-plane clock offset", "-0.04 s",
                         util::fmt_double(skew_s, 3) + " s");
  bench::print_paper_row("maximum overlap", "99.36%",
                         util::fmt_percent(est.best_overlap, 2));
  bench::print_paper_row(
      "dropped samples evaluated", "~50M (unsampled: 50M drops)",
      util::fmt_count(static_cast<std::int64_t>(est.dropped_samples)));
  return 0;
}
