file(REMOVE_RECURSE
  "CMakeFiles/exp_fig03_rtbh_load.dir/exp_fig03_rtbh_load.cpp.o"
  "CMakeFiles/exp_fig03_rtbh_load.dir/exp_fig03_rtbh_load.cpp.o.d"
  "exp_fig03_rtbh_load"
  "exp_fig03_rtbh_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig03_rtbh_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
