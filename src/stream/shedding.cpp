#include "stream/shedding.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace bw::stream {

namespace {

obs::Counter& stream_counter(const char* what) {
  return obs::Registry::global().counter(std::string("stream.") + what);
}

}  // namespace

std::string_view to_string(ShedMode mode) {
  switch (mode) {
    case ShedMode::kBlockWithDeadline: return "block";
    case ShedMode::kDropNewest: return "drop-newest";
    case ShedMode::kPriorityShed: return "priority";
  }
  return "unknown";
}

util::Result<ShedMode> parse_shed_mode(std::string_view name) {
  if (name == "block") return ShedMode::kBlockWithDeadline;
  if (name == "drop-newest") return ShedMode::kDropNewest;
  if (name == "priority") return ShedMode::kPriorityShed;
  return util::invalid_argument("unknown shed mode '" + std::string(name) +
                                "' (block | drop-newest | priority)");
}

std::string_view to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kBlockDeadline: return "block-deadline";
    case ShedReason::kLegitFirst: return "legit-first";
  }
  return "unknown";
}

std::string ShedRecord::to_line() const {
  std::ostringstream os;
  os << to_string(kind) << " " << time << " seq " << seq << " "
     << to_string(reason);
  return os.str();
}

Shedder::Shedder(ShedConfig config) : cfg_(std::move(config)) {}

void Shedder::shed(StreamEvent& ev, ShedReason reason) {
  ++stats_.shed_total;
  static obs::Counter& total = stream_counter("shed_total");
  total.add();
  if (ev.kind == EventKind::kBgpUpdate) {
    ++stats_.shed_bgp;
    static obs::Counter& bgp = stream_counter("shed_bgp");
    bgp.add();
  } else if (ev.flow.dropped()) {
    ++stats_.shed_flow_attack;
    static obs::Counter& attack = stream_counter("shed_flow_attack");
    attack.add();
  } else {
    ++stats_.shed_flow_legit;
    static obs::Counter& legit = stream_counter("shed_flow_legit");
    legit.add();
  }
  if (cfg_.shed_sink) {
    cfg_.shed_sink(ShedRecord{ev.kind, ev.time, ev.seq, reason});
  }
}

bool Shedder::offer(SpscRing<StreamEvent>& ring, StreamEvent&& ev,
                    const MakeRoom& make_room) {
  // Occupancy is sampled before the push so the histogram sees the queue
  // the event found, including the full ring a shed decision reacts to.
  {
    static obs::Gauge& depth = obs::Registry::global().gauge(
        "stream.queue_depth");
    static obs::Histogram& occupancy =
        obs::Registry::global().histogram("stream.queue_occupancy");
    const std::size_t size = ring.size();
    depth.set(static_cast<std::int64_t>(size));
    occupancy.record(size);
  }

  if (ring.try_push(ev)) {
    ++stats_.pushed;
    return true;
  }

  switch (cfg_.mode) {
    case ShedMode::kDropNewest:
      shed(ev, ShedReason::kQueueFull);
      return false;

    case ShedMode::kBlockWithDeadline:
      while (!ring.try_push(ev)) {
        if (!make_room || !make_room()) {
          shed(ev, ShedReason::kBlockDeadline);
          return false;
        }
      }
      ++stats_.pushed;
      return true;

    case ShedMode::kPriorityShed:
      if (ev.kind == EventKind::kFlow && !ev.flow.dropped()) {
        // Legit-looking traffic pays for the backlog first: its loss only
        // widens the statistics' confidence interval, never the event
        // segmentation or the attack evidence.
        shed(ev, ShedReason::kLegitFirst);
        return false;
      }
      // BGP updates and attack-looking flows wait for room; the caller's
      // make_room decides how long waiting can possibly help.
      while (!ring.try_push(ev)) {
        if (!make_room || !make_room()) {
          shed(ev, ShedReason::kBlockDeadline);
          return false;
        }
      }
      ++stats_.pushed;
      return true;
  }
  shed(ev, ShedReason::kQueueFull);  // unreachable; keeps -Wreturn-type calm
  return false;
}

}  // namespace bw::stream
