#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/whatif.hpp"

namespace bw::core {
namespace {

TEST(ReportTest, RendersAllSectionsOnSmallScenario) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 13;
  const ScenarioRun run = run_scenario(cfg, std::string{});
  const AnalysisReport report = run_pipeline(run.dataset);
  const auto whatif =
      compute_whatif(run.dataset, report.events, report.pre);

  const std::string md =
      render_markdown(run.dataset, report, &whatif, {.title = "Test report"});

  EXPECT_NE(md.find("# Test report"), std::string::npos);
  for (const char* heading :
       {"## Blackholing activity", "## DDoS correlation",
        "## Blackhole acceptance", "## Attack traffic", "## Victims",
        "## Use-case classification", "## Mitigation what-if"}) {
    EXPECT_NE(md.find(heading), std::string::npos) << heading;
  }
  EXPECT_NE(md.find("| /32 |"), std::string::npos);
  EXPECT_NE(md.find("rtbh-observed"), std::string::npos);
  EXPECT_NE(md.find("zombie candidates"), std::string::npos);
}

TEST(ReportTest, OptionsSuppressSections) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.01;
  cfg.seed = 14;
  const ScenarioRun run = run_scenario(cfg, std::string{});
  const AnalysisReport report = run_pipeline(run.dataset);

  ReportOptions options;
  options.drop_table = false;
  options.include_whatif = false;
  const std::string md =
      render_markdown(run.dataset, report, nullptr, options);
  EXPECT_EQ(md.find("## Blackhole acceptance"), std::string::npos);
  EXPECT_EQ(md.find("## Mitigation what-if"), std::string::npos);
  EXPECT_NE(md.find("## Use-case classification"), std::string::npos);
}

}  // namespace
}  // namespace bw::core
