# Empty compiler generated dependencies file for bw_integration_test.
# This may be replaced when dependencies are built.
