#include "util/ewma.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace bw::util {

EwmaDetector::EwmaDetector(EwmaConfig config) : cfg_(config) {
  if (cfg_.window == 0) cfg_.window = 1;
  ring_.assign(cfg_.window, 0.0);
  weights_.resize(cfg_.window);
  const double alpha = 2.0 / (static_cast<double>(cfg_.window) + 1.0);
  decay_ = 1.0 - alpha;
  double w = 1.0;
  for (std::size_t i = 0; i < cfg_.window; ++i) {
    weights_[i] = w;
    w *= decay_;
  }
  oldest_weight_ = weights_.back() * decay_;  // (1-alpha)^window
}

void EwmaDetector::window_values(std::vector<double>& values) const {
  values.clear();
  values.reserve(size_);
  // head_ points at the next write slot; the newest value sits just before it.
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t idx = (head_ + cfg_.window - 1 - i) % cfg_.window;
    values.push_back(ring_[idx]);
  }
}

void EwmaDetector::recompute_sums() {
  // Exact recomputation from the ring, killing accumulated float drift.
  std::vector<double> values;
  window_values(values);
  weighted_sum_ = 0.0;
  weighted_sq_sum_ = 0.0;
  weight_total_ = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted_sum_ += weights_[i] * values[i];
    weighted_sq_sum_ += weights_[i] * values[i] * values[i];
    weight_total_ += weights_[i];
  }
}

double EwmaDetector::current_average() const {
  return weight_total_ > 0.0 ? weighted_sum_ / weight_total_ : 0.0;
}

double EwmaDetector::current_stddev() const {
  if (weight_total_ <= 0.0) return 0.0;
  const double mean = weighted_sum_ / weight_total_;
  const double var = weighted_sq_sum_ / weight_total_ - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

bool EwmaDetector::push(double x) {
  bool anomalous = false;
  if (window_full()) {
    const double avg = current_average();
    const double sd = std::max(current_stddev(), cfg_.min_sd);
    anomalous = x > avg + cfg_.threshold_sd * sd;
  }

  // O(1) update: decay every retained weight by one step, add the new value
  // at weight 1, and drop the value that falls out of the window.
  const double evicted = size_ == cfg_.window ? ring_[head_] : 0.0;
  weighted_sum_ = x + decay_ * weighted_sum_ - oldest_weight_ * evicted;
  weighted_sq_sum_ =
      x * x + decay_ * weighted_sq_sum_ - oldest_weight_ * evicted * evicted;
  if (size_ < cfg_.window) {
    // Growing phase: total weight gains the next power of the decay.
    weight_total_ = weight_total_ * decay_ + 1.0;
  }

  ring_[head_] = x;
  head_ = (head_ + 1) % cfg_.window;
  size_ = std::min(size_ + 1, cfg_.window);
  ++seen_;

  if (seen_ % (cfg_.window * 4) == 0) recompute_sums();
  return anomalous;
}

void EwmaDetector::reset() {
  std::fill(ring_.begin(), ring_.end(), 0.0);
  head_ = 0;
  size_ = 0;
  seen_ = 0;
  weighted_sum_ = 0.0;
  weighted_sq_sum_ = 0.0;
  weight_total_ = 0.0;
}

EwmaSeries ewma_scan(std::span<const double> series, EwmaConfig config) {
  EwmaDetector det(config);
  EwmaSeries out;
  out.average.reserve(series.size());
  out.stddev.reserve(series.size());
  out.anomalous.reserve(series.size());
  for (double x : series) {
    const bool flag = det.push(x);
    out.anomalous.push_back(flag);
    out.average.push_back(det.current_average());
    out.stddev.push_back(det.current_stddev());
  }
  return out;
}

}  // namespace bw::util
