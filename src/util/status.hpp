// Structured error model: Status (code + chained context message) and
// Result<T> (value or Status).
//
// blackwatch ingests real-world telemetry that arrives truncated, duplicated
// and malformed; "throw std::runtime_error" loses where and why, and
// std::optional loses everything. Loaders and other fallible subsystems
// return Status/Result instead: a machine-readable code for control flow
// (usage vs. data vs. internal error -> distinct tool exit codes) plus a
// human-readable message that accumulates context as it propagates
// ("load_dataset_csv: flows.csv: line 17: bad src_ip").
//
// Conventions:
//   - Functions that cannot fail keep plain return types.
//   - Fallible leaf parsers return Result<T>; Status-only paths return
//     Status. Callers add context with with_context() before forwarding.
//   - Exceptions remain for programming errors and for legacy wrappers
//     (e.g. Dataset::load) that existing callers expect to throw.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace bw::util {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,      ///< malformed input value (bad row, bad flag)
  kNotFound,             ///< missing file/entry
  kDataLoss,             ///< corrupt or truncated data
  kFailedPrecondition,   ///< operation not valid in this state
  kInternal,             ///< bug or unexpected failure
  kUnavailable,          ///< transient environment failure; safe to retry
};

[[nodiscard]] std::string_view to_string(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  [[nodiscard]] static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code == StatusCode::kOk ? StatusCode::kInternal : code;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  /// The full message including every context frame, most recent first.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Prepend a context frame: "ctx: <message>". No-op on OK statuses.
  [[nodiscard]] Status with_context(std::string_view context) const& {
    Status s = *this;
    return std::move(s).with_context(context);
  }
  [[nodiscard]] Status with_context(std::string_view context) && {
    if (!ok()) {
      message_.insert(0, ": ");
      message_.insert(0, context);
    }
    return std::move(*this);
  }

  /// "DATA_LOSS: flows.csv: truncated row" (or "OK").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

// Shorthand constructors for the common codes.
[[nodiscard]] inline Status ok_status() { return Status(); }
[[nodiscard]] inline Status invalid_argument(std::string message) {
  return Status::error(StatusCode::kInvalidArgument, std::move(message));
}
[[nodiscard]] inline Status not_found(std::string message) {
  return Status::error(StatusCode::kNotFound, std::move(message));
}
[[nodiscard]] inline Status data_loss(std::string message) {
  return Status::error(StatusCode::kDataLoss, std::move(message));
}
[[nodiscard]] inline Status failed_precondition(std::string message) {
  return Status::error(StatusCode::kFailedPrecondition, std::move(message));
}
[[nodiscard]] inline Status internal_error(std::string message) {
  return Status::error(StatusCode::kInternal, std::move(message));
}
[[nodiscard]] inline Status unavailable(std::string message) {
  return Status::error(StatusCode::kUnavailable, std::move(message));
}

/// A value of type T, or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = internal_error("Result constructed from an OK status");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// OK when a value is present; the construction error otherwise.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace bw::util
