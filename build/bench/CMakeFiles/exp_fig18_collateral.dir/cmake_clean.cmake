file(REMOVE_RECURSE
  "CMakeFiles/exp_fig18_collateral.dir/exp_fig18_collateral.cpp.o"
  "CMakeFiles/exp_fig18_collateral.dir/exp_fig18_collateral.cpp.o.d"
  "exp_fig18_collateral"
  "exp_fig18_collateral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig18_collateral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
