// Auditable run manifests.
//
// Reproduction work in this space (Eumann et al.'s reproducibility study of
// inter-domain spoofing detection) shows that a measurement pipeline's
// numbers are only trustworthy when each run records what ran, on what
// corpus, with what parameters, and what the intermediate counts were. A
// Manifest is that record: one stable-key-ordered JSON document per run,
// combining run identity (tool, corpus, scenario fingerprint, seed, thread
// count), per-stage wall/CPU time, the self-healing counters (cache
// hit/miss/quarantine, fault retries), ingest row totals, monitor
// alert/eviction counts, and the full metrics snapshot.
//
// Two manifests from runs over the same corpus must agree on every
// deterministic field (see obs::is_deterministic_metric); only the timing
// entries may differ. That is what makes manifests comparable across runs,
// machines, and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace bw::obs {

struct Manifest {
  // --- run identity ---
  std::string tool;    ///< e.g. "bw-analyze"
  std::string corpus;  ///< input path (or cache file name for generation)
  std::string scenario_fingerprint;  ///< cache key; "" when not a scenario
  bool has_seed{false};
  std::uint64_t seed{0};
  std::size_t threads{0};  ///< configured pool concurrency

  // --- per-stage accounting (pipeline runs only, fixed stage order) ---
  struct StageTime {
    std::string name;
    std::uint64_t wall_us{0};
    std::uint64_t cpu_us{0};  ///< stage-guard thread CPU (see ThreadCpuTimer)
    bool degraded{false};
    bool timed_out{false};
  };
  std::vector<StageTime> stages;

  // --- headline counters, duplicated out of `metrics` for easy diffing ---
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t cache_quarantined{0};
  std::uint64_t cache_save_failures{0};
  std::uint64_t fault_retries{0};  ///< retry_with_backoff sleeps taken
  std::uint64_t rows_loaded{0};    ///< CSV rows accepted across all files
  std::uint64_t rows_skipped{0};
  std::uint64_t rows_repaired{0};
  std::uint64_t monitor_alerts{0};
  std::uint64_t monitor_evictions{0};

  // --- streaming ingest (bw-monitor --replay; all zero for batch runs) ---
  std::string stream_mode;  ///< shed-mode name, "" when not streaming
  std::uint64_t stream_ingested{0};   ///< events produced by the feeds
  std::uint64_t stream_delivered{0};  ///< events that reached the monitor
  std::uint64_t stream_shed{0};       ///< events shed by backpressure policy
  std::uint64_t stream_late_dropped{0};  ///< events behind their watermark

  /// Full registry snapshot embedded under "metrics".
  MetricsSnapshot metrics;

  /// Fill the headline counters and per-stage wall/cpu times from a
  /// snapshot (by the documented metric names). Stage entries must already
  /// be present (pushed in pipeline order by the caller); only their
  /// timings are filled in.
  void populate_from_metrics(const MetricsSnapshot& snapshot);

  /// Stable-key-ordered JSON document (fixed field order; maps inside the
  /// embedded snapshot are name-sorted).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace bw::obs
