file(REMOVE_RECURSE
  "CMakeFiles/bw-generate.dir/bw_generate.cpp.o"
  "CMakeFiles/bw-generate.dir/bw_generate.cpp.o.d"
  "bw-generate"
  "bw-generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw-generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
