// bw-analyze: run the complete IMC'19 analysis pipeline over a .bwds corpus
// and print the full operational report — the command-line face of the
// library for corpora produced by bw-generate (or converted real exports).
//
//   bw-analyze corpus.bwds [--delta MINUTES] [--no-portstats]
#include <cstdlib>
#include <iostream>
#include <string>

#include <fstream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/whatif.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-analyze FILE.bwds [--delta MINUTES] [--markdown OUT.md]\n";
}

std::string pct(double f, int p = 1) { return bw::util::fmt_percent(f, p); }

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string path;
  std::string markdown_out;
  core::AnalysisConfig acfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--delta" && i + 1 < argc) {
      acfg.merge_delta = util::minutes(std::atof(argv[++i]));
    } else if (arg == "--markdown" && i + 1 < argc) {
      markdown_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::cout << "Loading " << path << "...\n";
  const core::Dataset dataset = core::Dataset::load(path);
  const auto s = dataset.summary();
  std::cout << "Corpus: "
            << util::fmt_count(static_cast<std::int64_t>(s.control_updates))
            << " BGP updates, "
            << util::fmt_count(static_cast<std::int64_t>(s.flow_records))
            << " flow records over "
            << util::format_duration(dataset.period().length()) << "\n";

  const core::AnalysisReport r = core::run_pipeline(dataset, acfg);
  const double total_events = static_cast<double>(r.events.size());

  std::cout << "\n--- RTBH events (delta = "
            << util::format_duration(acfg.merge_delta) << ") ---\n";
  std::cout << util::fmt_count(static_cast<std::int64_t>(s.blackhole_updates))
            << " RTBH updates -> "
            << util::fmt_count(static_cast<std::int64_t>(r.events.size()))
            << " events over "
            << util::fmt_count(static_cast<std::int64_t>(
                   s.blackholed_prefixes))
            << " prefixes\n";

  std::cout << "\n--- Pre-RTBH classification (Table 2) ---\n";
  util::TextTable t2({"class", "events", "share"});
  t2.add_row({"no sampled traffic",
              util::fmt_count(static_cast<std::int64_t>(r.pre.no_data)),
              pct(static_cast<double>(r.pre.no_data) / total_events)});
  t2.add_row({"traffic, no anomaly <=10min",
              util::fmt_count(static_cast<std::int64_t>(r.pre.data_no_anomaly)),
              pct(static_cast<double>(r.pre.data_no_anomaly) / total_events)});
  t2.add_row({"traffic + anomaly <=10min (DDoS-like)",
              util::fmt_count(static_cast<std::int64_t>(r.pre.data_anomaly_10m)),
              pct(static_cast<double>(r.pre.data_anomaly_10m) / total_events)});
  std::cout << t2;

  std::cout << "\n--- Acceptance / drop rates (Figs. 5-7) ---\n";
  util::TextTable t5({"prefix len", "traffic share", "dropped"});
  for (const auto& len : r.drop.by_length) {
    t5.add_row({"/" + std::to_string(len.length),
                pct(r.drop.traffic_share(len.length), 2),
                pct(len.packet_drop_rate())});
  }
  std::cout << t5;
  const auto top = core::summarize_top_sources(r.drop, 100);
  std::cout << "top-100 sources towards /32 blackholes: "
            << top.full_droppers << " drop >99%, " << top.full_forwarders
            << " forward >99%, " << top.inconsistent << " inconsistent\n";

  std::cout << "\n--- Attack traffic (Tables 3, Figs. 14-15) ---\n";
  std::cout << "transport mix during attack events: "
            << pct(r.protocols.udp_share) << " UDP / "
            << pct(r.protocols.tcp_share) << " TCP\n";
  std::cout << "events fully coverable by amplification-port filters: "
            << pct(r.filtering.fully_filterable_fraction) << " of "
            << r.filtering.events_considered << "\n";
  if (!r.participation.origins.empty()) {
    std::cout << "top reflector origin AS" << r.participation.origins[0].asn
              << ": in " << pct(r.participation.origins[0].event_share, 0)
              << " of attacks, " << pct(r.participation.origins[0].traffic_share, 1)
              << " of attack traffic\n";
  }

  std::cout << "\n--- Victims (Figs. 16-18, Table 4) ---\n";
  std::cout << r.ports.clients << " client-like and " << r.ports.servers
            << " server-like blackholed hosts ("
            << pct(r.ports.blackholed_hosts_total > 0
                       ? static_cast<double>(r.ports.eligible_hosts) /
                             static_cast<double>(r.ports.blackholed_hosts_total)
                       : 0.0,
                   0)
            << " of blackholed addresses meet the 20-day criterion)\n";
  std::cout << r.collateral.events.size()
            << " (server,event) pairs with service-port traffic during an "
               "active blackhole\n";

  std::cout << "\n--- Use-case classification (Fig. 19) ---\n";
  util::TextTable t19({"class", "events", "share"});
  t19.add_row({"infrastructure protection",
               util::fmt_count(static_cast<std::int64_t>(
                   r.classes.infrastructure)),
               pct(static_cast<double>(r.classes.infrastructure) /
                   total_events)});
  t19.add_row({"squatting candidates",
               util::fmt_count(static_cast<std::int64_t>(r.classes.squatting)),
               pct(static_cast<double>(r.classes.squatting) / total_events)});
  t19.add_row({"zombie candidates",
               util::fmt_count(static_cast<std::int64_t>(r.classes.zombies)),
               pct(static_cast<double>(r.classes.zombies) / total_events)});
  t19.add_row({"other",
               util::fmt_count(static_cast<std::int64_t>(r.classes.other)),
               pct(static_cast<double>(r.classes.other) / total_events)});
  std::cout << t19;

  std::cout << "\n--- Mitigation what-if (extension) ---\n";
  const auto whatif = core::compute_whatif(dataset, r.events, r.pre);
  util::TextTable tw({"strategy", "attack dropped", "legit dropped"});
  for (const auto& o : whatif.outcomes) {
    tw.add_row({std::string(core::to_string(o.strategy)), pct(o.efficacy()),
                pct(o.collateral())});
  }
  std::cout << tw;

  if (!markdown_out.empty()) {
    std::ofstream md(markdown_out, std::ios::trunc);
    md << core::render_markdown(dataset, r, &whatif);
    std::cout << "\nWrote markdown report to " << markdown_out << "\n";
  }
  return 0;
}
