file(REMOVE_RECURSE
  "libbw_bgp.a"
)
