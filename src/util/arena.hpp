// Bump-pointer arena for kernel scratch memory.
//
// The hot analysis kernels need short-lived per-event scratch (source
// accumulators, port histograms, sort buffers). Allocating that through the
// general-purpose heap costs a malloc/free pair per container node per
// event — tens of millions of calls across a corpus pass. An Arena instead
// hands out memory by advancing a pointer through reusable blocks: reset()
// rewinds to empty while keeping every block, so after the first few events
// a kernel's scratch allocations touch the allocator never again.
//
// Contract:
//   - allocate() returns storage aligned to the requested power-of-two
//     alignment (alloc_array aligns to alignof(T)).
//   - Nothing is destroyed: the arena is for trivially-destructible
//     scratch only (alloc_array enforces this).
//   - reset() invalidates all outstanding allocations and reuses their
//     blocks; destruction frees everything.
//   - Not thread-safe; use one arena per thread (thread_local in kernel
//     bodies — pool workers live for the process, so the retained capacity
//     is bounded by the largest event each thread has seen).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace bw::util {

class Arena {
 public:
  /// Blocks grow geometrically from `first_block_bytes` (rounded up to at
  /// least one cache line) so small kernels stay small and large events
  /// amortise to O(log n) block allocations.
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage of `bytes` bytes aligned to `align` (a power of two).
  /// Never returns nullptr; zero-byte requests yield a unique valid pointer.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    // Alignment is on the absolute address: operator new only guarantees
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base, so aligning the
    // offset alone would under-align any stricter request.
    std::size_t offset = aligned_offset(align);
    if (block_ >= blocks_.size() || offset + bytes > blocks_[block_].size) {
      start_block(bytes + align);  // worst-case padding is < align
      offset = aligned_offset(align);
    }
    offset_ = offset + bytes;
    used_ = align_up(used_, align) + bytes;
    return blocks_[block_].data.get() + offset;
  }

  /// Uninitialised array of `n` trivially-destructible elements.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destroyed");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Zero-initialised array — the accumulator variant.
  template <typename T>
  [[nodiscard]] T* alloc_zeroed(std::size_t n) {
    T* p = alloc_array<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }

  /// Rewind to empty, keeping every block for reuse. All pointers handed
  /// out so far are invalidated.
  void reset() noexcept {
    block_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  /// Total bytes owned across all blocks (survives reset()).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  [[nodiscard]] static std::size_t align_up(std::size_t v,
                                            std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  /// offset_ adjusted so base + result is `align`-aligned in the current
  /// block (offset_ itself when no block is active yet).
  [[nodiscard]] std::size_t aligned_offset(std::size_t align) const noexcept {
    if (block_ >= blocks_.size()) return offset_;
    const auto base =
        reinterpret_cast<std::uintptr_t>(blocks_[block_].data.get());
    return static_cast<std::size_t>(align_up(base + offset_, align) - base);
  }

  /// Advance to the next block with room for `need` bytes, allocating a new
  /// one (>= the geometric schedule) when no retained block fits.
  void start_block(std::size_t need) {
    const std::size_t start = block_ >= blocks_.size() ? block_ : block_ + 1;
    for (std::size_t b = start; b < blocks_.size(); ++b) {
      if (blocks_[b].size >= need) {
        block_ = b;
        offset_ = 0;
        return;
      }
    }
    std::size_t size = next_block_bytes_;
    while (size < need) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_{0};   ///< current block index (may be == blocks_.size())
  std::size_t offset_{0};  ///< bump offset inside the current block
  std::size_t used_{0};
  std::size_t next_block_bytes_;
};

}  // namespace bw::util
