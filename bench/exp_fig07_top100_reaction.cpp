// Figure 7: reaction of the top-100 source ASes (by traffic share towards
// /32 RTBHs): dropped vs forwarded shares per AS.
//
// Paper: the top 100 carry >85% of the traffic to /32 blackholes; 32 drop
// more than 99%, 55 forward more than 99% (i.e. ignore host routes), and
// 13 behave inconsistently.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig07");
  const auto& drop = exp.report.drop;
  const auto summary = core::summarize_top_sources(drop, 100);

  bench::print_header("Fig. 7", "top-100 source-AS reaction to /32 RTBHs");
  util::TextTable table({"rank", "AS", "packets", "dropped share"});
  auto csv = bench::open_csv("fig07_top100_reaction",
                             {"rank", "asn", "packets", "drop_share"});
  const std::size_t n = std::min<std::size_t>(drop.sources_to_len32.size(), 100);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = drop.sources_to_len32[i];
    csv->write_row({std::to_string(i + 1), std::to_string(s.asn),
                    std::to_string(s.packets_total),
                    util::fmt_double(s.drop_share(), 4)});
    if (i < 10 || i % 10 == 9) {
      table.add_row({std::to_string(i + 1), "AS" + std::to_string(s.asn),
                     util::fmt_count(static_cast<std::int64_t>(s.packets_total)),
                     util::fmt_percent(s.drop_share(), 1)});
    }
  }
  std::cout << table;

  bench::print_paper_row("top-100 traffic share of total", "> 85%",
                         util::fmt_percent(summary.traffic_share_of_total, 1));
  bench::print_paper_row("ASes dropping > 99%", "32",
                         std::to_string(summary.full_droppers));
  bench::print_paper_row("ASes forwarding > 99%", "55",
                         std::to_string(summary.full_forwarders));
  bench::print_paper_row("inconsistent ASes", "13",
                         std::to_string(summary.inconsistent));
  bench::print_paper_row("(considered)", "100",
                         std::to_string(summary.considered));
  return 0;
}
