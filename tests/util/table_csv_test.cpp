#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace bw::util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string header;
  std::string rule;
  std::string r1;
  std::string r2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  EXPECT_EQ(r1.size(), r2.size());  // padded to equal width
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, PadsAndTruncatesRows) {
  TextTable t({"a", "b"});
  t.add_row({"only"});
  t.add_row({"x", "y", "overflow"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("overflow"), std::string::npos);
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
}

TEST(FormatTest, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.5), "50.0%");
  EXPECT_EQ(fmt_percent(0.123456, 2), "12.35%");
}

TEST(FormatTest, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "/bw_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row({"1", "2"});
    w.write_row({"x,y", "he said \"hi\""});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path_);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"he said \"\"hi\"\"\"");
}

TEST_F(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace bw::util
