// bw-faultgen: corrupt a CSV measurement corpus in controlled, seeded ways.
//
//   bw-faultgen --in DIR|FILE.bwds --out DIR [--seed N] [--faults SPEC]
//
// The input is either a CSV corpus directory (as written by
// `bw-generate --csv` / export_dataset_csv) or a .bwds dataset, which is
// exported to CSV first. Faults are applied at the text level and the
// corrupted corpus is written under --out, with a ground-truth log of what
// was damaged printed to stdout. Without --faults the default mix runs:
// every fault kind once, at small magnitudes.
//
// SPEC is comma-separated `kind[:file[:arg]]`, e.g.
//   --faults truncate:flows.csv:0.05,byteflip:control.csv:4,dropmacs::3
#include <filesystem>
#include <iostream>
#include <string>

#include "cli.hpp"
#include "core/dataset.hpp"
#include "core/io_text.hpp"
#include "testing/fault.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-faultgen --in DIR|FILE.bwds --out DIR"
               " [--seed N] [--faults SPEC]\n"
               "  SPEC: comma-separated kind[:file[:arg]] with kinds\n"
               "        truncate(arg: fraction), byteflip, dup, reorder,\n"
               "        mangle, dropmacs (arg: count), skew (arg: ms)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string in;
  std::string out;
  std::string spec;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(tools::kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--in") in = value();
    else if (arg == "--out") out = value();
    else if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--faults") spec = value();
    else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return tools::kExitUsage;
    }
  }
  if (in.empty() || out.empty()) {
    usage();
    return tools::kExitUsage;
  }

  try {
    testing::FaultPlan plan = testing::FaultPlan::default_mix(seed);
    if (!spec.empty()) {
      auto parsed = testing::parse_fault_spec(spec, seed);
      if (!parsed.ok()) {
        std::cerr << "bw-faultgen: " << parsed.status().to_string() << "\n";
        return tools::kExitUsage;
      }
      plan = std::move(parsed).value();
    }

    std::string csv_dir = in;
    if (!std::filesystem::is_directory(in)) {
      // .bwds input: materialise the CSV corpus under --out, corrupt there.
      auto dataset = core::Dataset::try_load(in);
      if (!dataset.ok()) {
        std::cerr << "bw-faultgen: " << dataset.status().to_string() << "\n";
        return tools::kExitData;
      }
      core::export_dataset_csv(dataset.value(), out);
      csv_dir = out;
    }

    auto corpus = testing::CsvCorpus::load(csv_dir);
    if (!corpus.ok()) {
      std::cerr << "bw-faultgen: " << corpus.status().to_string() << "\n";
      return tools::kExitData;
    }

    const testing::FaultLog log = testing::apply_faults(corpus.value(), plan);
    if (const auto st = corpus.value().save(out); !st.ok()) {
      std::cerr << "bw-faultgen: " << st.to_string() << "\n";
      return tools::kExitData;
    }
    std::cout << "Applied " << plan.faults.size() << " fault(s) (seed " << seed
              << ") to " << out << ":\n"
              << log.summary();
    return tools::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "bw-faultgen: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
