// Edge-case robustness: every analysis module must behave sanely on empty
// and degenerate corpora — no crashes, no division poison, empty reports.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/whatif.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

Dataset empty_dataset() {
  World world({0, util::kDay}, 0);
  return world.run({}, {});
}

TEST(EmptyDatasetTest, FullPipelineOnEmptyCorpus) {
  const Dataset ds = empty_dataset();
  const AnalysisReport report = run_pipeline(ds);
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(report.pre.total(), 0u);
  EXPECT_TRUE(report.drop.by_length.empty());
  EXPECT_EQ(report.protocols.events_considered, 0u);
  EXPECT_TRUE(report.filtering.coverage.empty());
  EXPECT_EQ(report.participation.attacks, 0u);
  EXPECT_TRUE(report.ports.hosts.empty());
  EXPECT_TRUE(report.radviz.points.empty());
  EXPECT_TRUE(report.collateral.events.empty());
  EXPECT_EQ(report.classes.total(), 0u);
  const auto s = report.summary;
  EXPECT_EQ(s.flow_records, 0u);
  EXPECT_EQ(s.blackhole_updates, 0u);
}

TEST(EmptyDatasetTest, AuxiliaryAnalysesOnEmptyCorpus) {
  const Dataset ds = empty_dataset();
  const auto offset = estimate_offset(ds);
  EXPECT_EQ(offset.dropped_samples, 0u);
  EXPECT_EQ(offset.best_overlap, 0.0);

  const auto load = compute_load(ds);
  EXPECT_EQ(load.max_active, 0u);

  const auto vis = compute_visibility(ds, {100, 200});
  for (const auto& p : vis.series) EXPECT_EQ(p.announced, 0u);

  const auto events = merge_events(ds.blackhole_updates(), ds.period().end);
  const auto pre = compute_pre_rtbh(ds, events);
  const auto whatif = compute_whatif(ds, events, pre);
  EXPECT_EQ(whatif.events_considered, 0u);

  const auto sweep =
      merge_sweep(ds.blackhole_updates(), ds.period().end, {0, util::kMinute});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].events, 0u);
}

TEST(EmptyDatasetTest, VisibilityWithNoPeers) {
  const Dataset ds = empty_dataset();
  const auto vis = compute_visibility(ds, {});
  EXPECT_TRUE(vis.series.empty());
}

TEST(DegenerateTest, ZeroLengthPeriod) {
  World world({util::kHour, util::kHour}, 0);
  const Dataset ds = world.run({}, {});
  const auto report = run_pipeline(ds);
  EXPECT_TRUE(report.events.empty());
  const auto load = compute_load(ds);
  EXPECT_TRUE(load.series.empty());
}

TEST(DegenerateTest, ControlOnlyCorpus) {
  // Announcements but zero data-plane traffic: everything classifies as
  // no-data / low-traffic, nothing divides by zero.
  World world({0, util::days(10)}, 0);
  bgp::UpdateLog control;
  for (int i = 0; i < 20; ++i) {
    const net::Ipv4 v(24, 0, 0, static_cast<std::uint8_t>(i + 1));
    control.push_back(world.platform->service().make_announce(
        i * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(v)));
  }
  const Dataset ds = world.run(std::move(control), {});
  const auto report = run_pipeline(ds);
  EXPECT_EQ(report.events.size(), 20u);
  EXPECT_EQ(report.pre.no_data, 20u);
  EXPECT_TRUE(report.drop.by_length.empty());
  EXPECT_EQ(report.classes.zombies + report.classes.other, 20u);
}

TEST(DegenerateTest, DataOnlyCorpus) {
  // Traffic but no blackhole updates: zero events, port stats still empty
  // because the host universe is defined by blackholed /32s.
  World world({0, util::days(2)}, 0);
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), net::Ipv4(24, 0, 0, 1),
                               net::Proto::kUdp, 123, 80,
                               {0, util::kHour}, 500, world.acceptor));
  const Dataset ds = world.run({}, bursts);
  const auto report = run_pipeline(ds);
  EXPECT_TRUE(report.events.empty());
  EXPECT_TRUE(report.ports.hosts.empty());
  EXPECT_EQ(report.summary.dropped_packets, 0u);
}

TEST(DegenerateTest, BurstWithZeroLengthWindow) {
  World world({0, util::kDay}, 0);
  std::vector<flow::TrafficBurst> bursts;
  auto b = world.burst(net::Ipv4(64, 0, 0, 1), net::Ipv4(24, 0, 0, 1),
                       net::Proto::kUdp, 123, 80, {500, 500}, 100,
                       world.acceptor);
  bursts.push_back(b);
  const Dataset ds = world.run({}, bursts);
  // All samples land at the single instant; nothing crashes.
  EXPECT_EQ(ds.flows().size(), 100u);
}

}  // namespace
}  // namespace bw::core
