file(REMOVE_RECURSE
  "libbw_peeringdb.a"
)
