#include "core/protocol_mix.hpp"

#include <algorithm>
#include <unordered_map>

#include "net/ports.hpp"

namespace bw::core {

ProtocolMixReport compute_protocol_mix(const Dataset& dataset,
                                       const std::vector<RtbhEvent>& events,
                                       const PreRtbhReport& pre,
                                       const ProtocolMixConfig& config,
                                       KernelEngine engine) {
  ProtocolMixReport report;
  std::uint64_t udp = 0;
  std::uint64_t tcp = 0;
  std::uint64_t icmp = 0;
  std::uint64_t other = 0;
  std::map<std::string, std::size_t> per_protocol_events;

  if (engine == KernelEngine::kColumnar) {
    // Columnar engine: per-amplification-protocol tallies live in a flat
    // array indexed by net::amplification_port_index instead of a hash map;
    // the "seen" flags reproduce map-entry creation for zero-packet records.
    static const KernelScanMetrics metrics =
        make_kernel_scan_metrics("protocol_mix");
    const obs::StopWatch watch;
    const flow::FlowColumns& cols = dataset.columns();
    const auto amp = net::amplification_protocols();
    constexpr auto kUdp = static_cast<std::uint8_t>(net::Proto::kUdp);
    constexpr auto kTcp = static_cast<std::uint8_t>(net::Proto::kTcp);
    constexpr auto kIcmp = static_cast<std::uint8_t>(net::Proto::kIcmp);
    constexpr auto kOther = static_cast<std::uint8_t>(net::Proto::kOther);
    std::vector<std::uint64_t> amp_pkts(amp.size());
    std::vector<std::uint8_t> amp_seen(amp.size());
    std::uint64_t rows = 0;

    for (std::size_t e = 0; e < events.size(); ++e) {
      if (e >= pre.per_event.size() || !pre.per_event[e].anomaly_within_10min) {
        continue;
      }
      const auto& ev = events[e];
      std::size_t matched_records = 0;
      std::uint64_t ev_packets = 0;
      std::fill(amp_pkts.begin(), amp_pkts.end(), 0);
      std::fill(amp_seen.begin(), amp_seen.end(), std::uint8_t{0});
      rows += cols.for_each_dst_row(ev.prefix, ev.span, [&](std::size_t i) {
        ++matched_records;
        const std::uint64_t pk = cols.packets[i];
        const std::uint8_t proto = cols.proto[i];
        ev_packets += pk;
        switch (proto) {
          case kUdp: udp += pk; break;
          case kTcp: tcp += pk; break;
          case kIcmp: icmp += pk; break;
          case kOther: other += pk; break;
          default: break;
        }
        if (proto == kUdp) {
          const std::size_t idx =
              net::amplification_port_index(cols.src_port[i]);
          if (idx != net::kNoAmplificationPort) {
            amp_seen[idx] = 1;
            amp_pkts[idx] += pk;
          }
        }
      });
      if (matched_records == 0) continue;
      ++report.events_considered;

      std::size_t protocols = 0;
      for (std::size_t k = 0; k < amp.size(); ++k) {
        if (amp_seen[k] == 0) continue;
        const std::uint64_t pkts = amp_pkts[k];
        if (pkts < config.min_packets) continue;
        if (static_cast<double>(pkts) <
            config.min_share * static_cast<double>(ev_packets)) {
          continue;
        }
        ++protocols;
        ++per_protocol_events[std::string(amp[k].name)];
      }
      ++report.amp_protocol_events[std::min<std::size_t>(protocols, 5)];
    }
    metrics.rows->add(rows);
    metrics.ns->add(watch.elapsed_ns());
  } else {
  for (std::size_t e = 0; e < events.size(); ++e) {
    if (e >= pre.per_event.size() || !pre.per_event[e].anomaly_within_10min) {
      continue;
    }
    const auto& ev = events[e];
    std::size_t matched_records = 0;
    std::uint64_t ev_packets = 0;
    std::unordered_map<net::Port, std::uint64_t> amp_packets;
    dataset.for_each_flow_to(ev.prefix, ev.span,
                             [&](const flow::FlowRecord& rec) {
      ++matched_records;
      ev_packets += rec.packets;
      switch (rec.proto) {
        case net::Proto::kUdp: udp += rec.packets; break;
        case net::Proto::kTcp: tcp += rec.packets; break;
        case net::Proto::kIcmp: icmp += rec.packets; break;
        case net::Proto::kOther: other += rec.packets; break;
      }
      if (rec.proto == net::Proto::kUdp &&
          net::is_amplification_port(rec.src_port)) {
        amp_packets[rec.src_port] += rec.packets;
      }
    });
    if (matched_records == 0) continue;
    ++report.events_considered;

    std::size_t protocols = 0;
    for (const auto& [port, pkts] : amp_packets) {
      if (pkts < config.min_packets) continue;
      if (static_cast<double>(pkts) <
          config.min_share * static_cast<double>(ev_packets)) {
        continue;
      }
      ++protocols;
      const auto name = net::amplification_name(port);
      if (name) ++per_protocol_events[std::string(*name)];
    }
    ++report.amp_protocol_events[std::min<std::size_t>(protocols, 5)];
  }
  }

  const std::uint64_t total = udp + tcp + icmp + other;
  report.packets_total = total;
  if (total > 0) {
    const auto d = static_cast<double>(total);
    report.udp_share = static_cast<double>(udp) / d;
    report.tcp_share = static_cast<double>(tcp) / d;
    report.icmp_share = static_cast<double>(icmp) / d;
    report.other_share = static_cast<double>(other) / d;
  }
  report.protocol_event_counts.assign(per_protocol_events.begin(),
                                      per_protocol_events.end());
  std::sort(report.protocol_event_counts.begin(),
            report.protocol_event_counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return report;
}

}  // namespace bw::core
