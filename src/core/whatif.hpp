// Mitigation-strategy what-if comparison.
//
// The paper's discussion (Sections 2, 5.5, 7) weighs RTBH against the
// finer-grained alternatives operators could deploy: targeted blackhole
// announcements, BGP FlowSpec-style transport filters, and "advanced
// blackholing" at the IXP platform (Stellar). This module replays each
// strategy over the attack-correlated RTBH events of a corpus and reports
// the efficacy/collateral trade-off per strategy:
//
//   rtbh-observed    what actually happened (per-peer acceptance as-is)
//   rtbh-perfect     every peer accepts: all traffic to the victim dies
//   rtbh-targeted    blackhole only towards peers carrying attack traffic
//   flowspec-ports   drop only UDP packets from known amplification ports
//   advanced-bh      IXP-side filter: amplification ports plus UDP to
//                    unserviced high ports (carpet floods), TCP untouched
//
// Packets are labelled attack/legitimate with a transport-layer heuristic
// (the analysis has no payloads and no ground truth, as in the paper):
// UDP from an amplification port, or UDP to an ephemeral (>= 1024) port
// during the event, counts as attack; the rest as legitimate.
#pragma once

#include <array>
#include <string_view>

#include "core/event_merge.hpp"
#include "core/pre_rtbh.hpp"

namespace bw::core {

enum class Strategy : std::uint8_t {
  kRtbhObserved = 0,
  kRtbhPerfect,
  kRtbhTargeted,
  kFlowspecAmpPorts,
  kAdvancedBlackholing,
};

inline constexpr std::size_t kStrategyCount = 5;

[[nodiscard]] std::string_view to_string(Strategy s);

struct StrategyOutcome {
  Strategy strategy{Strategy::kRtbhObserved};
  std::uint64_t attack_packets{0};
  std::uint64_t attack_dropped{0};
  std::uint64_t legit_packets{0};
  std::uint64_t legit_dropped{0};

  /// Share of attack packets removed.
  [[nodiscard]] double efficacy() const {
    return attack_packets > 0 ? static_cast<double>(attack_dropped) /
                                    static_cast<double>(attack_packets)
                              : 0.0;
  }
  /// Share of legitimate packets removed (collateral damage).
  [[nodiscard]] double collateral() const {
    return legit_packets > 0 ? static_cast<double>(legit_dropped) /
                                   static_cast<double>(legit_packets)
                             : 0.0;
  }
};

struct WhatIfReport {
  std::array<StrategyOutcome, kStrategyCount> outcomes{};
  std::size_t events_considered{0};
};

/// Evaluate all strategies over the attack-correlated events (preceding
/// anomaly within 10 minutes) of the corpus.
[[nodiscard]] WhatIfReport compute_whatif(const Dataset& dataset,
                                          const std::vector<RtbhEvent>& events,
                                          const PreRtbhReport& pre);

}  // namespace bw::core
