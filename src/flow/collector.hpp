// Flow collector: the IXP monitoring back-end that receives sampled
// records, stamps them with the *data-plane* clock (which may be skewed
// against the control plane, Section 3.1 "Accuracy of Timestamps"), and
// filters IXP-internal system flows before analysis (0.01% in the paper).
#pragma once

#include <cstdint>

#include "flow/mac_table.hpp"
#include "flow/record.hpp"
#include "util/rng.hpp"

namespace bw::flow {

class Collector {
 public:
  struct ClockModel {
    /// Constant offset of the data-plane clock relative to the control
    /// plane. The paper estimates -0.04 s at its vantage point.
    util::DurationMs offset_ms{0};
    /// Per-record NTP jitter (SD); ~10 ms per the paper's NTP reference.
    double jitter_sd_ms{10.0};
  };

  Collector(const MacTable& macs, ClockModel clock, util::Rng rng)
      : macs_(&macs), clock_(clock), rng_(rng) {}

  /// Ingest a record whose `time` field holds the *true* event time; the
  /// collector re-stamps it with the skewed data-plane clock. Internal
  /// flows are counted but not stored, as in the paper's preprocessing.
  /// Jitter draws from the collector's sequential stream (serial replay).
  void ingest(FlowRecord record);

  /// Same, drawing the NTP jitter from a caller-provided stream. Pass
  /// `jitter_stream(key)` with a content-derived key so the stamped time is
  /// independent of ingest order (required for sharded generation).
  void ingest(FlowRecord record, util::Rng& jitter_rng);

  /// Independent per-key jitter substream of this collector's seed.
  [[nodiscard]] util::Rng jitter_stream(std::uint64_t key) const {
    return rng_.fork(key);
  }

  /// Finish collection: chronologically sorts the stored records.
  void finalize();

  [[nodiscard]] const FlowLog& flows() const noexcept { return flows_; }
  [[nodiscard]] FlowLog take_flows() { return std::move(flows_); }
  [[nodiscard]] std::uint64_t internal_flows_removed() const noexcept {
    return internal_removed_;
  }
  [[nodiscard]] const ClockModel& clock() const noexcept { return clock_; }

 private:
  const MacTable* macs_;
  ClockModel clock_;
  util::Rng rng_;
  FlowLog flows_;
  std::uint64_t internal_removed_{0};
};

}  // namespace bw::flow
