#include "core/collateral.hpp"

#include <algorithm>

namespace bw::core {

CollateralReport compute_collateral(const Dataset& dataset,
                                    const std::vector<RtbhEvent>& events,
                                    const PortStatsReport& stats,
                                    std::uint32_t sampling_rate,
                                    util::ThreadPool* pool_opt,
                                    const util::Deadline* deadline,
                                    KernelEngine engine) {
  util::ThreadPool& pool = util::pool_or_global(pool_opt);
  CollateralReport report;

  // Detected servers with their stable top ports, in address order
  // (stats.hosts is already sorted by ip), so that the servers covered by
  // a non-/32 event can be found with one binary search.
  std::vector<const HostPortStats*> servers;
  for (const auto& h : stats.hosts) {
    if (h.classification == HostClass::kServer) servers.push_back(&h);
  }
  report.servers_considered = servers.size();
  if (servers.empty()) return report;

  // Per event, independently: the collateral rows of every covered server.
  const flow::FlowColumns& cols = dataset.columns();
  static const KernelScanMetrics metrics = make_kernel_scan_metrics("collateral");
  const obs::StopWatch watch;
  auto per_event = util::parallel_map(pool, events.size(), [&](std::size_t e) {
    const auto& ev = events[e];
    std::vector<CollateralEvent> rows;
    const net::Ipv4 lo = ev.prefix.network();
    const net::Ipv4 hi = ev.prefix.address_at(ev.prefix.size() - 1);
    auto begin = std::lower_bound(
        servers.begin(), servers.end(), lo,
        [](const HostPortStats* h, net::Ipv4 v) { return h->ip < v; });
    std::uint64_t scanned = 0;
    for (auto it = begin; it != servers.end() && (*it)->ip <= hi; ++it) {
      const HostPortStats* server = *it;
      CollateralEvent ce;
      ce.server = server->ip;
      ce.event_index = e;
      if (engine == KernelEngine::kColumnar) {
        scanned += cols.for_each_dst_row(
            net::Prefix::host(server->ip), ev.span, [&](std::size_t i) {
          const net::ProtoPort pp{static_cast<net::Proto>(cols.proto[i]),
                                  cols.dst_port[i]};
          const bool to_top_port =
              std::find(server->top_ports.begin(), server->top_ports.end(),
                        pp) != server->top_ports.end();
          if (!to_top_port) return;
          ce.packets_to_top_ports += cols.packets[i];
          if (cols.dropped(i)) ce.packets_actually_dropped += cols.packets[i];
        });
      } else {
        dataset.for_each_flow_to(net::Prefix::host(server->ip), ev.span,
                                 [&](const flow::FlowRecord& rec) {
          const net::ProtoPort pp{rec.proto, rec.dst_port};
          const bool to_top_port =
              std::find(server->top_ports.begin(), server->top_ports.end(),
                        pp) != server->top_ports.end();
          if (!to_top_port) return;
          ce.packets_to_top_ports += rec.packets;
          if (rec.dropped()) ce.packets_actually_dropped += rec.packets;
        });
      }
      if (ce.packets_to_top_ports == 0) continue;
      ce.est_original_packets = ce.packets_to_top_ports * sampling_rate;
      rows.push_back(ce);
    }
    if (engine == KernelEngine::kColumnar) metrics.rows->add(scanned);
    return rows;
  }, 0, deadline);
  if (engine == KernelEngine::kColumnar) metrics.ns->add(watch.elapsed_ns());

  for (const auto& rows : per_event) {
    for (const CollateralEvent& ce : rows) {
      report.total_top_port_packets += ce.packets_to_top_ports;
      report.total_dropped_packets += ce.packets_actually_dropped;
      report.events.push_back(ce);
    }
  }
  // Tie-break on (event, server) so the order is fully deterministic.
  std::sort(report.events.begin(), report.events.end(),
            [](const CollateralEvent& a, const CollateralEvent& b) {
              if (a.packets_to_top_ports != b.packets_to_top_ports) {
                return a.packets_to_top_ports < b.packets_to_top_ports;
              }
              if (a.event_index != b.event_index) {
                return a.event_index < b.event_index;
              }
              return a.server < b.server;
            });
  return report;
}

}  // namespace bw::core
