// CRC32C (Castagnoli) checksums for on-disk integrity frames.
//
// The binary dataset container and the scenario cache live on disk for the
// full length of a measurement campaign; truncation, torn writes, and bit
// rot must be *detected*, never decoded. CRC32C is the conventional storage
// checksum (iSCSI, ext4, LevelDB); this is the portable table-driven
// implementation — fast enough to be invisible next to the disk itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bw::util {

/// Incremental CRC32C accumulator.
class Crc32c {
 public:
  /// Fold `n` bytes into the running checksum.
  void update(const void* data, std::size_t n) noexcept;

  /// The checksum of everything folded in so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ kXorOut; }

  void reset() noexcept { state_ = kXorOut; }

 private:
  static constexpr std::uint32_t kXorOut = 0xFFFFFFFFu;
  std::uint32_t state_{kXorOut};
};

/// One-shot CRC32C of a byte range.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t n) noexcept;

[[nodiscard]] inline std::uint32_t crc32c(std::string_view bytes) noexcept {
  return crc32c(bytes.data(), bytes.size());
}

}  // namespace bw::util
