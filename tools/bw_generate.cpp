// bw-generate: produce a synthetic RTBH measurement corpus and write it to
// a self-contained .bwds file for later analysis with bw-analyze — or
// convert an existing CSV corpus directory into a .bwds dataset.
//
//   bw-generate --out corpus.bwds [--scale 0.25] [--seed 20191021]
//               [--days 104] [--sampling 10000] [--threads N] [--csv DIR]
//               [--stage-timeout-s S] [--metrics-out FILE] [--trace-out FILE]
//   bw-generate --out corpus.bwds --from-csv DIR
//               [--strict | --skip-bad-rows | --repair]
//
// Exit codes: 0 ok, 2 usage, 3 data error, 4 internal (see tools/cli.hpp).
// A generation run cancelled by --stage-timeout-s exits 3: unlike a
// degraded analysis stage there is no partial corpus worth keeping, so the
// timeout is a data error, not a success.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "util/parallel.hpp"

#include "cli.hpp"
#include "core/io_text.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr << "usage: bw-generate --out FILE [--scale S] [--seed N]\n"
               "                   [--days D] [--sampling N] [--threads N]\n"
               "                   [--csv DIR]\n"
               "       bw-generate --out FILE --from-csv DIR\n"
               "                   [--strict | --skip-bad-rows | --repair]\n"
               "\n"
               "Generates a 104-day (configurable) synthetic IXP corpus —\n"
               "route-server BGP log plus sampled flow records — calibrated\n"
               "to the IMC'19 blackholing study, and saves it as a .bwds\n"
               "dataset. With --from-csv, converts a CSV corpus directory\n"
               "into a .bwds dataset instead of generating one.\n"
               "\n"
               "  --scale S    population/event scale, 0 < S <= 4\n"
               "  --threads N  generation worker threads (default:\n"
               "               $BW_THREADS or hardware concurrency); the\n"
               "               corpus is byte-identical at any N\n"
               "  --stage-timeout-s S  cancel generation past S seconds\n"
               "               (cooperative watchdog; exits 3, no corpus)\n"
            << bw::tools::kObsUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string out;
  std::string csv_dir;
  std::string from_csv;
  std::optional<std::size_t> threads;
  util::DurationMs stage_timeout = 0;
  core::LoadOptions load_options;  // default: Strictness::kStrict
  tools::ObsOptions obs_options;
  gen::ScenarioConfig cfg;
  cfg.scale = 0.25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(tools::kExitUsage);
      }
      return argv[++i];
    };
    if (obs_options.parse(argc, argv, i)) continue;
    if (arg == "--out") out = value();
    else if (arg == "--csv") csv_dir = value();
    else if (arg == "--from-csv") from_csv = value();
    else if (arg == "--strict") load_options.strictness = core::Strictness::kStrict;
    else if (arg == "--skip-bad-rows") load_options.strictness = core::Strictness::kSkip;
    else if (arg == "--repair") load_options.strictness = core::Strictness::kRepair;
    else if (arg == "--scale") cfg.scale = std::atof(value());
    else if (arg == "--seed") cfg.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--threads") {
      const long n = std::atol(value());
      if (n < 1) {
        std::cerr << "bw-generate: --threads must be >= 1\n";
        usage();
        return tools::kExitUsage;
      }
      threads = static_cast<std::size_t>(n);
    } else if (arg == "--stage-timeout-s") {
      const double s = std::atof(value());
      if (s <= 0.0) {
        std::cerr << "bw-generate: --stage-timeout-s must be > 0\n";
        usage();
        return tools::kExitUsage;
      }
      stage_timeout = static_cast<util::DurationMs>(s * 1000.0);
    } else if (arg == "--days") {
      cfg.period = {0, util::days(std::atof(value()))};
    } else if (arg == "--sampling") {
      cfg.sampling_rate = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return tools::kExitUsage;
    }
  }
  if (out.empty()) {
    usage();
    return tools::kExitUsage;
  }
  // Scale is a population multiplier: non-positive generates nothing and
  // anything past 4x the paper's population is a typo, not a corpus.
  if (from_csv.empty() && !(cfg.scale > 0.0 && cfg.scale <= 4.0)) {
    std::cerr << "bw-generate: --scale must be in (0, 4], got " << cfg.scale
              << "\n";
    usage();
    return tools::kExitUsage;
  }
  obs_options.arm();

  auto emit_observability = [&](const std::string& corpus, bool generated) {
    obs::Manifest manifest;
    manifest.tool = "bw-generate";
    manifest.corpus = corpus;
    if (generated) {
      manifest.scenario_fingerprint = core::scenario_cache_name(cfg);
      manifest.has_seed = true;
      manifest.seed = cfg.seed;
    }
    manifest.threads =
        threads.value_or(util::ThreadPool::configured_concurrency());
    manifest.populate_from_metrics(obs::Registry::global().snapshot());
    return obs_options.emit("bw-generate", manifest);
  };

  try {
    if (!from_csv.empty()) {
      core::IngestReport ingest;
      auto loaded = core::load_dataset_csv(from_csv, load_options, &ingest);
      for (const auto& f : ingest.files) {
        if (!f.clean()) std::cerr << f.summary() << "\n";
      }
      if (!loaded.ok()) {
        std::cerr << "bw-generate: " << loaded.status().to_string() << "\n";
        return tools::kExitData;
      }
      if (const auto st = loaded.value().try_save(out); !st.ok()) {
        std::cerr << "bw-generate: " << st.to_string() << "\n";
        return tools::kExitData;
      }
      std::cout << "Converted " << from_csv << " -> " << out << "\n";
      if (!emit_observability(from_csv, false)) return tools::kExitData;
      return tools::kExitOk;
    }

    const std::size_t n_threads =
        threads.value_or(util::ThreadPool::configured_concurrency());
    std::cout << "Generating scenario: scale " << cfg.scale << ", seed "
              << cfg.seed << ", "
              << util::format_duration(cfg.period.length()) << ", 1:"
              << cfg.sampling_rate << " sampling, " << n_threads
              << " thread(s)...\n";
    util::ThreadPool pool(n_threads - 1);
    const util::Deadline deadline = stage_timeout > 0
                                        ? util::Deadline::after(stage_timeout)
                                        : util::Deadline::never();
    // One clock source for all tool timing: the obs StopWatch (the same
    // steady_clock the metrics and bench harnesses report from).
    const obs::StopWatch watch;
    const core::ScenarioRun run =
        core::run_scenario(cfg, std::string{}, &pool, &deadline);
    const double secs = watch.elapsed_seconds();
    if (const auto st = run.dataset.try_save(out); !st.ok()) {
      std::cerr << "bw-generate: " << st.to_string() << "\n";
      return tools::kExitData;
    }

    const auto s = run.dataset.summary();
    util::TextTable table({"corpus", "value"});
    table.add_row({"BGP updates", util::fmt_count(static_cast<std::int64_t>(
                                      s.control_updates))});
    table.add_row({"RTBH updates", util::fmt_count(static_cast<std::int64_t>(
                                       s.blackhole_updates))});
    table.add_row({"blackholed prefixes",
                   util::fmt_count(static_cast<std::int64_t>(
                       s.blackholed_prefixes))});
    table.add_row({"sampled flow records",
                   util::fmt_count(static_cast<std::int64_t>(s.flow_records))});
    table.add_row(
        {"sampled packets dropped",
         util::fmt_count(static_cast<std::int64_t>(s.dropped_packets))});
    std::cout << table << "Generated in " << secs << " s ("
              << (secs > 0.0 ? static_cast<double>(s.flow_records) / secs
                             : 0.0)
              << " flows/s)\nWrote " << out << "\n";
    if (!csv_dir.empty()) {
      core::export_dataset_csv(run.dataset, csv_dir);
      std::cout << "Exported CSV corpus to " << csv_dir << "/\n";
    }
    if (!emit_observability(out, true)) return tools::kExitData;
    return tools::kExitOk;
  } catch (const util::DeadlineExceeded& e) {
    std::cerr << "bw-generate: run exceeded --stage-timeout-s: " << e.what()
              << "\n";
    return tools::kExitData;
  } catch (const std::exception& e) {
    std::cerr << "bw-generate: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
