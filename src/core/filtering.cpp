#include "core/filtering.hpp"

#include "net/ports.hpp"

namespace bw::core {

FilteringReport compute_filtering(const Dataset& dataset,
                                  const std::vector<RtbhEvent>& events,
                                  const PreRtbhReport& pre,
                                  double full_threshold,
                                  KernelEngine engine) {
  FilteringReport report;
  report.threshold = full_threshold;

  const flow::FlowColumns& cols = dataset.columns();
  constexpr auto kUdp = static_cast<std::uint8_t>(net::Proto::kUdp);
  static const KernelScanMetrics metrics = make_kernel_scan_metrics("filtering");
  const obs::StopWatch watch;
  std::uint64_t rows = 0;

  for (std::size_t e = 0; e < events.size(); ++e) {
    if (e >= pre.per_event.size() || !pre.per_event[e].anomaly_within_10min) {
      continue;
    }
    const auto& ev = events[e];
    std::uint64_t total = 0;
    std::uint64_t matched = 0;
    if (engine == KernelEngine::kColumnar) {
      rows += cols.for_each_dst_row(ev.prefix, ev.span, [&](std::size_t i) {
        const std::uint64_t pk = cols.packets[i];
        total += pk;
        if (cols.proto[i] == kUdp &&
            net::amplification_port_index(cols.src_port[i]) !=
                net::kNoAmplificationPort) {
          matched += pk;
        }
      });
    } else {
      dataset.for_each_flow_to(ev.prefix, ev.span,
                               [&](const flow::FlowRecord& rec) {
        total += rec.packets;
        if (rec.proto == net::Proto::kUdp &&
            net::is_amplification_port(rec.src_port)) {
          matched += rec.packets;
        }
      });
    }
    if (total == 0) continue;
    ++report.events_considered;
    report.coverage.push_back(static_cast<double>(matched) /
                              static_cast<double>(total));
  }
  if (engine == KernelEngine::kColumnar) {
    metrics.rows->add(rows);
    metrics.ns->add(watch.elapsed_ns());
  }

  if (!report.coverage.empty()) {
    std::size_t full = 0;
    for (const double c : report.coverage) {
      if (c >= full_threshold) ++full;
    }
    report.fully_filterable_fraction =
        static_cast<double>(full) / static_cast<double>(report.coverage.size());
  }
  return report;
}

}  // namespace bw::core
