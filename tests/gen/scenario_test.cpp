#include "gen/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace bw::gen {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = 99;
  return cfg;
}

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = tiny_config();
    platform_ = std::make_unique<ixp::Platform>(
        Scenario::platform_config(cfg_));
    scenario_ = std::make_unique<Scenario>(cfg_);
    scenario_->install(*platform_);
  }

  ScenarioConfig cfg_;
  std::unique_ptr<ixp::Platform> platform_;
  std::unique_ptr<Scenario> scenario_;
};

TEST_F(ScenarioTest, ScaledHelper) {
  ScenarioConfig cfg;
  cfg.scale = 0.5;
  EXPECT_EQ(cfg.scaled(100), 50u);
  EXPECT_EQ(cfg.scaled(1), 1u);  // never drops to zero
  EXPECT_EQ(cfg.scaled(0), 0u);
  cfg.scale = 1.0;
  EXPECT_EQ(cfg.scaled(34000), 34000u);
}

TEST_F(ScenarioTest, InstallTwiceThrows) {
  EXPECT_THROW(scenario_->install(*platform_), std::logic_error);
}

TEST_F(ScenarioTest, PopulationCountsScale) {
  EXPECT_EQ(platform_->member_count(), cfg_.scaled(cfg_.members));
  EXPECT_EQ(scenario_->truth().client_count, cfg_.scaled(cfg_.client_hosts));
  EXPECT_EQ(scenario_->truth().server_count, cfg_.scaled(cfg_.server_hosts));
}

TEST_F(ScenarioTest, ControlLogIsSortedAndBlackholeOnly) {
  const auto& control = scenario_->control();
  ASSERT_FALSE(control.empty());
  util::TimeMs prev = control.front().time;
  for (const auto& u : control) {
    EXPECT_GE(u.time, prev);
    prev = u.time;
    EXPECT_TRUE(u.is_blackhole());
    EXPECT_TRUE(u.time >= cfg_.period.begin && u.time <= cfg_.period.end);
  }
}

TEST_F(ScenarioTest, EventTruthConsistency) {
  const auto& truth = scenario_->truth();
  ASSERT_FALSE(truth.events.empty());
  std::size_t attacks = 0;
  for (const auto& ev : truth.events) {
    EXPECT_LE(ev.rtbh_span.begin, ev.rtbh_span.end);
    if (ev.has_attack) {
      ++attacks;
      EXPECT_EQ(ev.use_case, UseCase::kInfrastructureProtection);
      EXPECT_GT(ev.attack_packets, 0);
      EXPECT_GT(ev.attack_window.length(), 0);
      EXPECT_FALSE(ev.amp_ports.empty() && !ev.has_carpet_vector)
          << "attack without any vector";
    }
    if (ev.use_case == UseCase::kZombie) {
      EXPECT_EQ(ev.rtbh_span.end, cfg_.period.end);
      EXPECT_EQ(ev.prefix.length(), 32);
    }
    if (ev.use_case == UseCase::kSquattingProtection) {
      EXPECT_LE(ev.prefix.length(), 24);
    }
  }
  const double attack_share = static_cast<double>(attacks) /
                              static_cast<double>(truth.events.size());
  EXPECT_NEAR(attack_share, cfg_.attack_fraction, 0.12);
}

TEST_F(ScenarioTest, ZombiePrefixesAreUnique) {
  std::set<net::Ipv4> zombies(scenario_->truth().zombie_addresses.begin(),
                              scenario_->truth().zombie_addresses.end());
  EXPECT_EQ(zombies.size(), scenario_->truth().zombie_addresses.size());
}

TEST_F(ScenarioTest, HostsLiveInRegisteredOriginSpace) {
  for (const auto& host : scenario_->truth().hosts) {
    EXPECT_EQ(platform_->origin_of(host.ip), host.origin_asn);
    EXPECT_EQ(platform_->owner_of(host.ip), host.home_member);
  }
}

TEST_F(ScenarioTest, RegistryCoversVictimOriginTypes) {
  const auto& truth = scenario_->truth();
  std::size_t known = 0;
  std::unordered_set<bgp::Asn> seen;
  for (const auto& host : truth.hosts) {
    if (!seen.insert(host.origin_asn).second) continue;
    if (scenario_->registry().find(host.origin_asn)) ++known;
  }
  EXPECT_GT(known, 0u);
  // At larger scales some origins stay out of the registry (Table 4's
  // "Unknown" row); at tiny scales the forced-non-empty pools may overlap.
  if (seen.size() > 20) {
    EXPECT_LT(known, seen.size());
  }
}

TEST_F(ScenarioTest, TrafficSourceIsDeterministic) {
  std::vector<flow::TrafficBurst> first;
  std::vector<flow::TrafficBurst> second;
  scenario_->traffic_source()([&](const flow::TrafficBurst& b) {
    first.push_back(b);
  });
  scenario_->traffic_source()([&](const flow::TrafficBurst& b) {
    second.push_back(b);
  });
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].src_ip, second[i].src_ip);
    EXPECT_EQ(first[i].dst_ip, second[i].dst_ip);
    EXPECT_EQ(first[i].packets, second[i].packets);
    EXPECT_EQ(first[i].window, second[i].window);
  }
}

TEST_F(ScenarioTest, AttackTrafficTargetsVictims) {
  std::unordered_set<std::uint32_t> victim_ips;
  for (const auto& ev : scenario_->truth().events) {
    if (ev.has_attack) victim_ips.insert(ev.prefix.network().value());
  }
  std::size_t amp_bursts_on_victims = 0;
  scenario_->traffic_source()([&](const flow::TrafficBurst& b) {
    if (b.proto == net::Proto::kUdp &&
        net::is_amplification_port(b.src_port) &&
        victim_ips.contains(b.dst_ip.value())) {
      ++amp_bursts_on_victims;
    }
  });
  EXPECT_GT(amp_bursts_on_victims, 100u);
}

TEST_F(ScenarioTest, EndToEndRunProducesBothCorpora) {
  auto result =
      platform_->run(scenario_->control(), scenario_->traffic_source());
  EXPECT_EQ(result.control.size(), scenario_->control().size());
  EXPECT_GT(result.data.size(), 1000u);
  EXPECT_GT(result.accounting.sampled_dropped, 0u);
  // Dropped records must carry the blackhole MAC.
  std::size_t dropped = 0;
  for (const auto& rec : result.data) {
    if (rec.dropped()) ++dropped;
  }
  EXPECT_EQ(dropped, result.accounting.sampled_dropped);
  EXPECT_GT(dropped, 0u);
}

TEST(ScenarioUseCaseTest, Names) {
  EXPECT_EQ(to_string(UseCase::kInfrastructureProtection),
            "infrastructure-protection");
  EXPECT_EQ(to_string(UseCase::kZombie), "zombie");
  EXPECT_EQ(to_string(UseCase::kSquattingProtection), "squatting-protection");
  EXPECT_EQ(to_string(UseCase::kContentBlocking), "content-blocking");
  EXPECT_EQ(to_string(UseCase::kOtherSteady), "other-steady");
  EXPECT_EQ(to_string(UseCase::kOtherIdle), "other-idle");
}

}  // namespace
}  // namespace bw::gen
