# Empty dependencies file for bw_gen_test.
# This may be replaced when dependencies are built.
