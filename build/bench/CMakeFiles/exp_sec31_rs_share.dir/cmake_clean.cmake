file(REMOVE_RECURSE
  "CMakeFiles/exp_sec31_rs_share.dir/exp_sec31_rs_share.cpp.o"
  "CMakeFiles/exp_sec31_rs_share.dir/exp_sec31_rs_share.cpp.o.d"
  "exp_sec31_rs_share"
  "exp_sec31_rs_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec31_rs_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
