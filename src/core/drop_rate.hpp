// RTBH acceptance analysis (Section 4.2, Figs. 5-8).
//
// How much of the traffic addressed to an active blackhole actually gets
// dropped? Broken down by RTBH prefix length (Fig. 5), as per-event
// drop-rate distributions for /24 vs /32 (Fig. 6), and by traffic source:
// the top source ASes' reactions to /32 blackholes (Fig. 7) and their
// PeeringDB organisation types (Fig. 8).
#pragma once

#include <map>
#include <vector>

#include "core/dataset.hpp"
#include "core/event_merge.hpp"
#include "peeringdb/registry.hpp"
#include "util/parallel.hpp"

namespace bw::core {

struct PrefixLenDropStats {
  std::uint8_t length{0};
  std::uint64_t packets_total{0};
  std::uint64_t packets_dropped{0};
  std::uint64_t bytes_total{0};
  std::uint64_t bytes_dropped{0};

  [[nodiscard]] double packet_drop_rate() const {
    return packets_total > 0
               ? static_cast<double>(packets_dropped) /
                     static_cast<double>(packets_total)
               : 0.0;
  }
  [[nodiscard]] double byte_drop_rate() const {
    return bytes_total > 0 ? static_cast<double>(bytes_dropped) /
                                 static_cast<double>(bytes_total)
                           : 0.0;
  }
};

struct SourceAsReaction {
  bgp::Asn asn{0};
  std::uint64_t packets_total{0};
  std::uint64_t packets_dropped{0};

  [[nodiscard]] double drop_share() const {
    return packets_total > 0
               ? static_cast<double>(packets_dropped) /
                     static_cast<double>(packets_total)
               : 0.0;
  }
};

struct DropRateReport {
  /// Per prefix length (only lengths with observed traffic).
  std::vector<PrefixLenDropStats> by_length;
  std::uint64_t packets_all_lengths{0};
  std::uint64_t bytes_all_lengths{0};

  /// Per-event packet drop rates for the Fig. 6 CDFs (events with >= the
  /// minimum sample count only).
  std::vector<double> event_rates_len32;
  std::vector<double> event_rates_len24;

  /// Source (handover) ASes of traffic towards active /32 blackholes,
  /// sorted by descending total volume (Fig. 7 takes the top 100).
  std::vector<SourceAsReaction> sources_to_len32;

  /// Traffic share of a length (opacity axis of Fig. 5).
  [[nodiscard]] double traffic_share(std::uint8_t length) const;
};

struct DropRateConfig {
  /// Minimum sampled packets addressed to an event for its drop rate to
  /// enter the Fig. 6 distributions (guards against 1-sample rates).
  std::uint64_t min_event_samples{5};
};

/// Events fan out over `pool` (null: the global pool); per-event deltas
/// are merged in event order and the source list is sorted with a full
/// tie-break, so the report is identical at any thread count.
/// A non-null `deadline` is polled per chunk (cooperative supervision).
[[nodiscard]] DropRateReport compute_drop_rates(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const DropRateConfig& config = {}, util::ThreadPool* pool = nullptr,
    const util::Deadline* deadline = nullptr,
    KernelEngine engine = KernelEngine::kColumnar);

/// Fig. 7 summary: of the top `top_n` sources, how many drop > 99%, how
/// many forward > 99%, and how many do both (inconsistent).
struct TopSourceSummary {
  std::size_t considered{0};
  std::size_t full_droppers{0};    ///< drop share > 0.99
  std::size_t full_forwarders{0};  ///< drop share < 0.01
  std::size_t inconsistent{0};     ///< everything in between
  double traffic_share_of_total{0.0};
};

[[nodiscard]] TopSourceSummary summarize_top_sources(
    const DropRateReport& report, std::size_t top_n = 100);

/// Fig. 8: PeeringDB org-type counts of the top `top_n` sources, split by
/// acceptance behaviour ("drops" vs "forwards or partial").
struct TypedReaction {
  pdb::OrgType type{pdb::OrgType::kUnknown};
  std::size_t droppers{0};
  std::size_t others{0};
};

[[nodiscard]] std::vector<TypedReaction> type_top_sources(
    const DropRateReport& report, const pdb::Registry& registry,
    std::size_t top_n = 100);

}  // namespace bw::core
