// Bounded lock-free single-producer/single-consumer ring buffer — the
// ingest primitive of the streaming monitor (DESIGN.md §12).
//
// A live IXP tap produces two independent feeds (route-server BGP updates
// and sampled flow records), each written by exactly one exporter thread
// and drained by exactly one consumer. That pairing is the cheapest
// possible concurrency contract: one atomic store per push, one per pop,
// no CAS loops, no locks, no allocation after construction. The streaming
// daemon gives each feed its own SpscRing and merges on the consumer side
// (stream/watermark.hpp), so the multi-producer case never needs a
// multi-producer queue.
//
// Layout notes:
//   - capacity is rounded up to a power of two so the slot index is a mask,
//     and head/tail are free-running counters (never wrapped), so the full
//     2^64 sequence space distinguishes full from empty without a spare
//     slot;
//   - head (consumer cursor) and tail (producer cursor) live on their own
//     cache lines, each next to the *opposing* cursor's cached copy: the
//     producer re-reads the consumer's head only when the ring looks full,
//     the consumer re-reads tail only when it looks empty. In steady state
//     both sides run on line-local data and never bounce a cache line.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace bw::stream {

/// Smallest power of two >= n (n = 0 maps to 1).
[[nodiscard]] constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; a capacity of 1 is legal
  /// (a single-slot handoff cell) and exercised by the edge-case tests.
  explicit SpscRing(std::size_t capacity)
      : mask_(ceil_pow2(capacity) - 1), slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (the element is
  /// left untouched so the caller's shedding policy can decide its fate).
  [[nodiscard]] bool try_push(T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  [[nodiscard]] bool try_push(T&& v) { return try_push(v); }

  /// Consumer side: peek at the oldest element without popping it (null
  /// when empty). The slot stays valid until the consumer pops — only the
  /// consumer moves head, so this is race-free on the consumer thread.
  [[nodiscard]] const T* front() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Occupancy snapshot. Exact when callers are quiescent; during
  /// concurrent operation it may lag either cursor by one update — good
  /// enough for the stream.queue_depth gauge, never for flow control.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  /// Consumer cache line: its own cursor plus the last tail it observed.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_{0};
  /// Producer cache line: its own cursor plus the last head it observed.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_{0};
};

}  // namespace bw::stream
