#include "stream/replay.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bw::stream {

namespace {

obs::Counter& stream_counter(const char* what) {
  return obs::Registry::global().counter(std::string("stream.") + what);
}

/// Consumer-side delivery into the monitor, with per-kind accounting.
/// Owned by the consumer (thread); counters read only after it finishes.
struct Deliverer {
  core::RtbhMonitor& monitor;
  std::uint64_t delivered_bgp{0};
  std::uint64_t delivered_flow{0};
  std::uint64_t delay_us{0};  ///< threaded slow-consumer fault

  void operator()(const StreamEvent& ev) {
    static obs::Counter& delivered = stream_counter("delivered");
    delivered.add();
    if (ev.kind == EventKind::kBgpUpdate) {
      ++delivered_bgp;
      monitor.on_update(ev.update);
    } else {
      ++delivered_flow;
      monitor.on_flow(ev.flow);
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
};

void count_produced(EventKind kind) {
  static obs::Counter& bgp = stream_counter("ingested_bgp");
  static obs::Counter& flow = stream_counter("ingested_flow");
  (kind == EventKind::kBgpUpdate ? bgp : flow).add();
}

// --------------------------------------------------------------------------
// Lockstep mode: one thread, deterministic interleave.
//
// The producer walks both logs in the batch merge order and, every
// `tick_events` pushes, hands the consumer a drain step of at most
// `drain_per_tick` ring pops (unbounded when no fault is armed). make_room
// force-drains one event past that budget — the deterministic analogue of
// "the consumer is pre-empted for control-plane traffic" — so kPriorityShed
// keeps its never-shed-BGP promise even against a slow-consumer fault.
// Everything is a plain function of (corpus, options): same inputs, same
// alerts, same shed log, byte for byte.
// --------------------------------------------------------------------------

ReplayStats run_lockstep(const core::Dataset& dataset,
                         core::RtbhMonitor& monitor,
                         const ReplayOptions& opt) {
  FeedRing upd_feed(opt.ring_capacity, opt.allowance);
  FeedRing flow_feed(opt.ring_capacity, opt.allowance);
  ShedConfig shed_cfg{opt.shed_mode, opt.shed_sink};
  Shedder upd_shed(shed_cfg);
  Shedder flow_shed(shed_cfg);
  WatermarkMux mux({&upd_feed, &flow_feed}, opt.max_reorder);
  Deliverer deliver{monitor};

  ReplayStats stats;
  const bool slow = opt.fault.tick_events > 0;
  const std::size_t tick = slow ? opt.fault.tick_events : 1;
  const std::size_t budget =
      slow ? opt.fault.drain_per_tick : std::numeric_limits<std::size_t>::max();
  const Shedder::MakeRoom force_drain = [&] { return mux.drain_feeds(1) > 0; };

  const auto& updates = dataset.blackhole_updates();
  const auto& flows = dataset.flows();
  // An empty feed must not gate releases with its never-advanced watermark.
  if (updates.empty()) upd_feed.close();
  if (flows.empty()) flow_feed.close();
  std::size_t ui = 0;
  std::size_t fi = 0;
  std::uint64_t useq = 0;
  std::uint64_t fseq = 0;
  std::size_t since_tick = 0;
  while (ui < updates.size() || fi < flows.size()) {
    const bool take_update =
        fi >= flows.size() ||
        (ui < updates.size() && updates[ui].time <= flows[fi].time);
    if (take_update) {
      StreamEvent ev = StreamEvent::from(updates[ui++], useq++);
      count_produced(ev.kind);
      ++stats.produced_bgp;
      upd_feed.advance_watermark(ev.time);
      upd_shed.offer(upd_feed.ring, std::move(ev), force_drain);
      if (ui == updates.size()) upd_feed.close();
    } else {
      StreamEvent ev = StreamEvent::from(flows[fi++], fseq++);
      count_produced(ev.kind);
      ++stats.produced_flow;
      flow_feed.advance_watermark(ev.time);
      flow_shed.offer(flow_feed.ring, std::move(ev), force_drain);
      if (fi == flows.size()) flow_feed.close();
    }
    if (++since_tick >= tick) {
      since_tick = 0;
      mux.drain_feeds(budget);
      mux.release_ready(deliver);
    }
  }
  upd_feed.close();  // also when the log was empty from the start
  flow_feed.close();
  while (!mux.exhausted()) {
    mux.drain_feeds(std::numeric_limits<std::size_t>::max());
    mux.release_ready(deliver);
  }

  stats.shed = upd_shed.stats();
  stats.shed += flow_shed.stats();
  stats.mux = mux.stats();
  stats.delivered_bgp = deliver.delivered_bgp;
  stats.delivered_flow = deliver.delivered_flow;
  return stats;
}

// --------------------------------------------------------------------------
// Threaded mode: one producer thread per feed, the consumer on the calling
// thread. The daemon shape — real rings under real concurrency, optional
// real-time pacing, wall-clock faults. The consumer cannot exit before
// both feeds close, and a producer waiting for room only waits on that
// same still-running consumer, so the only unbounded wait (kPriorityShed
// protecting BGP) is always serviced. A monitor-sink exception aborts the
// producers, joins, and rethrows.
// --------------------------------------------------------------------------

template <typename Log>
void run_producer(const Log& log, FeedRing& feed, Shedder& shedder,
                  std::uint64_t& produced, const ReplayOptions& opt,
                  const std::atomic<bool>& abort) {
  const std::uint64_t block_budget_us =
      static_cast<std::uint64_t>(opt.block_deadline) * 1000;
  obs::StopWatch pace_watch;
  obs::StopWatch wait_watch;
  std::uint64_t wait_budget_us = 0;
  const Shedder::MakeRoom make_room = [&] {
    if (abort.load(std::memory_order_relaxed)) return false;
    if (wait_budget_us != 0 && wait_watch.elapsed_us() > wait_budget_us) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return true;
  };

  const util::TimeMs t0 = log.empty() ? 0 : log.front().time;
  std::uint64_t seq = 0;
  std::size_t in_burst = 0;
  for (const auto& rec : log) {
    if (abort.load(std::memory_order_relaxed)) break;
    if (opt.speed > 0) {
      const auto target_us = static_cast<std::uint64_t>(
          static_cast<double>(rec.time - t0) * 1000.0 / opt.speed);
      while (pace_watch.elapsed_us() < target_us &&
             !abort.load(std::memory_order_relaxed)) {
        const std::uint64_t left = target_us - pace_watch.elapsed_us();
        std::this_thread::sleep_for(
            std::chrono::microseconds(left > 1000 ? 1000 : left));
      }
    }
    if (opt.fault.burst > 0 && ++in_burst > opt.fault.burst) {
      in_burst = 1;
      std::this_thread::sleep_for(
          std::chrono::microseconds(opt.fault.burst_pause_us));
    }
    StreamEvent ev = StreamEvent::from(rec, seq++);
    count_produced(ev.kind);
    ++produced;
    // Block mode honours the deadline; priority mode waits for room
    // without one (the consumer is guaranteed alive until we close).
    wait_budget_us =
        opt.shed_mode == ShedMode::kBlockWithDeadline ? block_budget_us : 0;
    wait_watch.restart();
    feed.advance_watermark(ev.time);
    shedder.offer(feed.ring, std::move(ev), make_room);
  }
  feed.close();
}

ReplayStats run_threaded(const core::Dataset& dataset,
                         core::RtbhMonitor& monitor,
                         const ReplayOptions& opt) {
  FeedRing upd_feed(opt.ring_capacity, opt.allowance);
  FeedRing flow_feed(opt.ring_capacity, opt.allowance);
  ShedConfig shed_cfg{opt.shed_mode, opt.shed_sink};
  Shedder upd_shed(shed_cfg);
  Shedder flow_shed(shed_cfg);
  WatermarkMux mux({&upd_feed, &flow_feed}, opt.max_reorder);
  Deliverer deliver{monitor};
  deliver.delay_us = opt.fault.consumer_delay_us;

  ReplayStats stats;
  std::atomic<bool> abort{false};
  std::thread upd_thread([&] {
    run_producer(dataset.blackhole_updates(), upd_feed, upd_shed,
                 stats.produced_bgp, opt, abort);
  });
  std::thread flow_thread([&] {
    run_producer(dataset.flows(), flow_feed, flow_shed, stats.produced_flow,
                 opt, abort);
  });

  std::exception_ptr failure;
  try {
    while (!mux.exhausted()) {
      const std::size_t got = mux.drain_feeds(1024);
      const std::size_t released = mux.release_ready(deliver);
      if (got == 0 && released == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  } catch (...) {
    failure = std::current_exception();
    abort.store(true, std::memory_order_relaxed);
  }
  upd_thread.join();
  flow_thread.join();
  if (failure) std::rethrow_exception(failure);

  stats.shed = upd_shed.stats();
  stats.shed += flow_shed.stats();
  stats.mux = mux.stats();
  stats.delivered_bgp = deliver.delivered_bgp;
  stats.delivered_flow = deliver.delivered_flow;
  return stats;
}

}  // namespace

ReplayStats replay_streaming(const core::Dataset& dataset,
                             core::RtbhMonitor& monitor,
                             const ReplayOptions& options) {
  const obs::TraceSpan span("stream.replay", "stream");
  ReplayStats stats = options.lockstep
                          ? run_lockstep(dataset, monitor, options)
                          : run_threaded(dataset, monitor, options);
  monitor.finish(dataset.period().end);
  return stats;
}

void replay_batch(const core::Dataset& dataset, core::RtbhMonitor& monitor) {
  const obs::TraceSpan span("monitor.replay", "monitor");
  const auto& updates = dataset.blackhole_updates();
  const auto& flows = dataset.flows();
  std::size_t ui = 0;
  std::size_t fi = 0;
  while (ui < updates.size() || fi < flows.size()) {
    const bool take_update =
        fi >= flows.size() ||
        (ui < updates.size() && updates[ui].time <= flows[fi].time);
    if (take_update) monitor.on_update(updates[ui++]);
    else monitor.on_flow(flows[fi++]);
  }
  monitor.finish(dataset.period().end);
}

}  // namespace bw::stream
