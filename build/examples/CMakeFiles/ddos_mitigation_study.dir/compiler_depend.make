# Empty compiler generated dependencies file for ddos_mitigation_study.
# This may be replaced when dependencies are built.
