
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/blackhole_index.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/blackhole_index.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/blackhole_index.cpp.o.d"
  "/root/repo/src/bgp/community.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/community.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/community.cpp.o.d"
  "/root/repo/src/bgp/message.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/message.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/message.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/policy.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/policy.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/rib.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/rib.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/route.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/route.cpp.o.d"
  "/root/repo/src/bgp/route_server.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/route_server.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/route_server.cpp.o.d"
  "/root/repo/src/bgp/wire.cpp" "src/CMakeFiles/bw_bgp.dir/bgp/wire.cpp.o" "gcc" "src/CMakeFiles/bw_bgp.dir/bgp/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
