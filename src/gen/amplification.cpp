#include "gen/amplification.hpp"

#include <algorithm>
#include <cmath>

namespace bw::gen {

AmplifierPool::AmplifierPool(const AmplifierPoolConfig& config,
                             std::vector<flow::MemberId> handover_members,
                             util::Rng rng) {
  const std::size_t origin_count = std::max<std::size_t>(config.origin_as_count, 1);
  const std::size_t amp_count = std::max<std::size_t>(config.amplifier_count, 1);

  // --- Origin ASes with heavy-tailed amplifier counts. ---
  origins_.reserve(origin_count);
  std::vector<double> origin_weight(origin_count);
  for (std::size_t i = 0; i < origin_count; ++i) {
    OriginInfo info;
    info.asn = config.first_origin_asn + static_cast<bgp::Asn>(i);
    // Source space: one /16 per origin under 64.0.0.0.
    info.prefix = net::Prefix(
        net::Ipv4(0x40000000u + (static_cast<std::uint32_t>(i) << 16)), 16);
    // Round-robin over the eligible members: amplifier origins spread
    // evenly across handover ASes (the paper's "highly distributed" usage).
    info.handover = handover_members.empty()
                        ? 0
                        : handover_members[i % handover_members.size()];
    origins_.push_back(info);
    origin_weight[i] = rng.pareto(1.0, config.origin_size_shape);
  }
  dominant_origin_ = origins_.front().asn;
  // Force the dominant origin's share of the total weight.
  double rest = 0.0;
  for (std::size_t i = 1; i < origin_count; ++i) rest += origin_weight[i];
  origin_weight[0] =
      rest * config.dominant_origin_share / (1.0 - config.dominant_origin_share);

  // --- Amplifiers: assign origin by weight and protocol by paper mix. ---
  // cLDAP, NTP and DNS are the most common per-event amplification
  // protocols (Section 5.4); the remaining Table 3 protocols share the tail.
  const auto protocols = net::amplification_protocols();
  std::vector<double> proto_weight;
  proto_weight.reserve(protocols.size());
  for (const auto& p : protocols) {
    double w = 0.02;
    if (p.name == "cLDAP") w = 0.28;
    else if (p.name == "NTP") w = 0.24;
    else if (p.name == "DNS") w = 0.20;
    else if (p.name == "Memcache") w = 0.04;
    else if (p.name == "SSDP") w = 0.04;
    else if (p.name == "CharGEN") w = 0.03;
    else if (p.name == "Fragmentation") w = 0.0;  // not a reflector service
    proto_weight.push_back(w);
  }

  amplifiers_.reserve(amp_count);
  for (std::size_t i = 0; i < amp_count; ++i) {
    const std::size_t oi = rng.weighted_index(origin_weight);
    const auto& origin = origins_[oi];
    Amplifier a;
    a.origin = origin.asn;
    a.handover = origin.handover;
    a.ip = origin.prefix.address_at(
        static_cast<std::uint64_t>(rng.uniform_int(1, 65534)));
    a.udp_port = protocols[rng.weighted_index(proto_weight)].udp_port;
    amplifiers_.push_back(a);
  }

  // --- Port index. ---
  for (const auto& p : protocols) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < amplifiers_.size(); ++i) {
      if (amplifiers_[i].udp_port == p.udp_port) idx.push_back(i);
    }
    if (!idx.empty()) by_port_.emplace_back(p.udp_port, std::move(idx));
  }
}

std::vector<const Amplifier*> AmplifierPool::draw(net::Port udp_port,
                                                  std::size_t count,
                                                  util::Rng& rng) const {
  std::vector<const Amplifier*> out;
  const std::vector<std::size_t>* pool = nullptr;
  for (const auto& [port, idx] : by_port_) {
    if (port == udp_port) {
      pool = &idx;
      break;
    }
  }
  if (pool == nullptr || pool->empty()) return out;
  const auto picks = rng.sample_indices(pool->size(), count);
  out.reserve(picks.size());
  for (const std::size_t pi : picks) out.push_back(&amplifiers_[(*pool)[pi]]);
  return out;
}

}  // namespace bw::gen
