// Corrupted-input regression corpus: every fault kind of the injection
// library is applied to a known-clean CSV export and the tolerant loaders'
// accounting (LoadReport + Dataset::Quality) is checked against the
// injector's ground-truth FaultLog.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/io_text.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "corpus.hpp"
#include "testing/fault.hpp"

namespace bw::core {
namespace {

using testutil::World;
namespace bt = bw::testing;

Dataset fault_world_dataset() {
  World world({0, util::days(2)}, 0);
  const net::Ipv4 victim(24, 0, 0, 1);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim),
      {bgp::Community{0, 300}}));
  control.push_back(world.platform->service().make_withdraw(
      2 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                               net::Proto::kUdp, 123, 4444,
                               {util::kHour, 2 * util::kHour}, 60,
                               world.acceptor));
  bursts.push_back(world.burst(net::Ipv4(64, 1, 0, 1), victim,
                               net::Proto::kTcp, 55555, 443,
                               {0, util::kHour}, 40, world.rejector));
  return world.run(std::move(control), bursts);
}

/// Shared clean CSV export plus baseline tolerant-load accounting.
class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process path: concurrent test processes of this suite must not
    // share the directory (remove_all below would race another process's
    // export/load).
    clean_dir_ = new std::string(::testing::TempDir() + "/bw_fault_clean_" +
                                 std::to_string(::getpid()));
    std::filesystem::remove_all(*clean_dir_);
    const Dataset ds = fault_world_dataset();
    export_dataset_csv(ds, *clean_dir_);

    LoadOptions options;
    options.strictness = Strictness::kSkip;
    IngestReport ingest;
    auto loaded = load_dataset_csv(*clean_dir_, options, &ingest);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    EXPECT_TRUE(ingest.clean());
    baseline_quality_ = new Dataset::Quality(loaded.value().quality());
    baseline_flows_ = loaded.value().flows().size();
    // Raw per-file row counts (pre-sanitation), for loader arithmetic.
    for (const auto& f : ingest.files) {
      if (f.file == "flows.csv") baseline_flow_rows_ = f.rows_read;
      if (f.file == "control.csv") baseline_control_rows_ = f.rows_read;
    }
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*clean_dir_);
    delete clean_dir_;
    clean_dir_ = nullptr;
    delete baseline_quality_;
    baseline_quality_ = nullptr;
  }

  /// Apply `plan` to a copy of the clean corpus; returns the faulty dir.
  static std::string corrupt(const bt::FaultPlan& plan, bt::FaultLog* log) {
    static int counter = 0;
    const std::string dir =
        ::testing::TempDir() + "/bw_faulty_" + std::to_string(counter++);
    std::filesystem::remove_all(dir);
    auto corpus = bt::CsvCorpus::load(*clean_dir_);
    EXPECT_TRUE(corpus.ok()) << corpus.status().to_string();
    *log = bt::apply_faults(corpus.value(), plan);
    EXPECT_TRUE(corpus.value().save(dir).ok());
    return dir;
  }

  static const LoadReport& file_report(const IngestReport& ingest,
                                       std::string_view name) {
    for (const auto& f : ingest.files) {
      if (f.file == name) return f;
    }
    ADD_FAILURE() << "no report for " << name;
    static LoadReport missing;
    return missing;
  }

  static std::string* clean_dir_;
  static Dataset::Quality* baseline_quality_;
  static std::size_t baseline_flows_;         ///< dataset size after sanitation
  static std::size_t baseline_flow_rows_;     ///< raw flows.csv body rows
  static std::size_t baseline_control_rows_;  ///< raw control.csv body rows
};

std::string* FaultInjectionTest::clean_dir_ = nullptr;
Dataset::Quality* FaultInjectionTest::baseline_quality_ = nullptr;
std::size_t FaultInjectionTest::baseline_flows_ = 0;
std::size_t FaultInjectionTest::baseline_flow_rows_ = 0;
std::size_t FaultInjectionTest::baseline_control_rows_ = 0;

TEST_F(FaultInjectionTest, CorpusRoundTripsLosslessly) {
  auto corpus = bt::CsvCorpus::load(*clean_dir_);
  ASSERT_TRUE(corpus.ok());
  const std::string dir = ::testing::TempDir() + "/bw_fault_roundtrip";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(corpus.value().save(dir).ok());
  for (const char* name :
       {"control.csv", "flows.csv", "macs.csv", "origins.csv", "period.csv"}) {
    std::ifstream a(*clean_dir_ + "/" + name), b(dir + "/" + name);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << name;
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, ByteFlipsCostOneRecordEach) {
  bt::FaultPlan plan;
  plan.seed = 11;
  plan.faults = {{bt::FaultKind::kByteFlip, "flows.csv", 5, 0.0, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  EXPECT_EQ(log.total(bt::FaultKind::kByteFlip), 5u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const LoadReport& flows = file_report(ingest, "flows.csv");
  EXPECT_EQ(flows.rows_skipped, 5u);
  EXPECT_EQ(flows.rows_read, baseline_flow_rows_ - 5);
  EXPECT_FALSE(flows.diagnostics.empty());
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, TruncationCostsTailPlusOnePartialRow) {
  bt::FaultPlan plan;
  plan.seed = 12;
  plan.faults = {{bt::FaultKind::kTruncate, "flows.csv", 0, 0.05, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  const std::size_t affected = log.total(bt::FaultKind::kTruncate);
  ASSERT_GT(affected, 1u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const LoadReport& flows = file_report(ingest, "flows.csv");
  // The cut rows are simply gone; the mid-row remnant costs one record.
  EXPECT_EQ(flows.rows_skipped, 1u);
  EXPECT_EQ(flows.rows_read, baseline_flow_rows_ - affected);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, DuplicatesAreDeduped) {
  bt::FaultPlan plan;
  plan.seed = 13;
  plan.faults = {{bt::FaultKind::kDuplicateRows, "flows.csv", 4, 0.0, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  EXPECT_EQ(log.total(bt::FaultKind::kDuplicateRows), 4u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().quality().duplicate_flows,
            baseline_quality_->duplicate_flows + 4);
  EXPECT_EQ(loaded.value().flows().size(), baseline_flows_);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, ClockSkewIsQuarantined) {
  bt::FaultPlan plan;
  plan.seed = 14;
  plan.faults = {
      {bt::FaultKind::kClockSkew, "flows.csv", 3, 0.0, util::days(3)}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  EXPECT_EQ(log.total(bt::FaultKind::kClockSkew), 3u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  // Quarantine runs before dedupe, so the count is exact even if a skewed
  // row was half of a duplicate pair.
  EXPECT_EQ(loaded.value().quality().out_of_period_flows,
            baseline_quality_->out_of_period_flows + 3);
  EXPECT_LT(loaded.value().flows().size(), baseline_flows_);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, ReorderedRowsAreCountedAndResorted) {
  bt::FaultPlan plan;
  plan.seed = 15;
  plan.faults = {{bt::FaultKind::kReorderRows, "flows.csv", 8, 0.0, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  EXPECT_EQ(log.total(bt::FaultKind::kReorderRows), 8u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_GT(loaded.value().quality().reordered_flows,
            baseline_quality_->reordered_flows);
  EXPECT_TRUE(std::is_sorted(
      loaded.value().flows().begin(), loaded.value().flows().end(),
      [](const auto& a, const auto& b) { return a.time < b.time; }));
  EXPECT_EQ(loaded.value().flows().size(), baseline_flows_);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, DroppedMacsLeaveUnattributableFlows) {
  bt::FaultPlan plan;
  plan.seed = 16;
  plan.faults = {{bt::FaultKind::kDropMacs, "macs.csv", 2, 0.0, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  EXPECT_EQ(log.total(bt::FaultKind::kDropMacs), 2u);

  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_GT(loaded.value().quality().unknown_mac_flows,
            baseline_quality_->unknown_mac_flows);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, MangledRowsAreSkippedOrRepaired) {
  bt::FaultPlan plan;
  plan.seed = 17;
  plan.faults = {{bt::FaultKind::kMangleField, "control.csv", 3, 0.0, 0}};
  bt::FaultLog log;
  const std::string dir = corrupt(plan, &log);
  // The tiny control log has only 2 rows; the injector clamps.
  const std::size_t affected = log.total(bt::FaultKind::kMangleField);
  ASSERT_GT(affected, 0u);

  LoadOptions options;
  options.strictness = Strictness::kRepair;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const LoadReport& control = file_report(ingest, "control.csv");
  EXPECT_EQ(control.rows_skipped + control.rows_repaired, affected);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, DefaultMixAccountsForEveryFault) {
  bt::FaultLog log;
  const std::string dir = corrupt(bt::FaultPlan::default_mix(20191021), &log);
  ASSERT_EQ(log.entries.size(), 7u);

  // Strict load must reject the corpus outright...
  EXPECT_FALSE(load_dataset_csv(dir, LoadOptions{}).ok());

  // ...while a tolerant load survives with full accounting.
  LoadOptions options;
  options.strictness = Strictness::kSkip;
  IngestReport ingest;
  auto loaded = load_dataset_csv(dir, options, &ingest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_FALSE(ingest.clean());

  const LoadReport& flows = file_report(ingest, "flows.csv");
  // Row arithmetic: truncation removes rows, duplication adds them; skew
  // and reordering keep counts; the partial tail costs one skip.
  EXPECT_EQ(flows.rows_read,
            baseline_flow_rows_ - log.total(bt::FaultKind::kTruncate) +
                log.total(bt::FaultKind::kDuplicateRows));
  EXPECT_EQ(flows.rows_skipped, 1u);

  // Every damaged control row is skipped (byteflip and mangle may overlap).
  const LoadReport& control = file_report(ingest, "control.csv");
  EXPECT_EQ(control.rows_read + control.rows_skipped, baseline_control_rows_);
  EXPECT_GE(control.rows_skipped, 1u);
  EXPECT_LE(control.rows_skipped, log.total(bt::FaultKind::kByteFlip) +
                                      log.total(bt::FaultKind::kMangleField));

  const Dataset::Quality& q = loaded.value().quality();
  EXPECT_GT(q.out_of_period_flows, baseline_quality_->out_of_period_flows);
  EXPECT_GT(q.duplicate_flows, baseline_quality_->duplicate_flows);
  EXPECT_GT(q.unknown_mac_flows, baseline_quality_->unknown_mac_flows);
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, FaultSubstreamsCompose) {
  // Appending a fault to a plan must not change what earlier faults did.
  bt::FaultPlan one;
  one.seed = 99;
  one.faults = {{bt::FaultKind::kByteFlip, "control.csv", 2, 0.0, 0}};
  bt::FaultPlan two = one;
  two.faults.push_back({bt::FaultKind::kDropMacs, "macs.csv", 1, 0.0, 0});

  bt::FaultLog log_one, log_two;
  const std::string dir_one = corrupt(one, &log_one);
  const std::string dir_two = corrupt(two, &log_two);
  EXPECT_EQ(log_one.entries[0].rows_affected, log_two.entries[0].rows_affected);

  std::ifstream a(dir_one + "/control.csv"), b(dir_two + "/control.csv");
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::filesystem::remove_all(dir_one);
  std::filesystem::remove_all(dir_two);
}

TEST(FaultSpecTest, ParsesCliSpecs) {
  auto plan = bt::parse_fault_spec(
      "truncate:flows.csv:0.05,byteflip:control.csv:4,skew::7200000", 42);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan.value().faults.size(), 3u);
  EXPECT_EQ(plan.value().seed, 42u);
  EXPECT_EQ(plan.value().faults[0].kind, bt::FaultKind::kTruncate);
  EXPECT_DOUBLE_EQ(plan.value().faults[0].fraction, 0.05);
  EXPECT_EQ(plan.value().faults[1].count, 4u);
  EXPECT_EQ(plan.value().faults[2].kind, bt::FaultKind::kClockSkew);
  EXPECT_EQ(plan.value().faults[2].skew_ms, 7200000);
  EXPECT_EQ(plan.value().faults[2].file, "flows.csv");  // default target
}

TEST(FaultSpecTest, RejectsUnknownKindAndBadArg) {
  EXPECT_FALSE(bt::parse_fault_spec("meteor", 1).ok());
  EXPECT_FALSE(bt::parse_fault_spec("truncate:flows.csv:2.5", 1).ok());
  EXPECT_FALSE(bt::parse_fault_spec("byteflip:flows.csv:xyz", 1).ok());
  EXPECT_FALSE(bt::parse_fault_spec("", 1).ok());
}

TEST(StageFaultTest, FailingStageDegradesOnlyItsSection) {
  const Dataset ds = fault_world_dataset();
  const AnalysisReport clean = run_pipeline(ds);

  AnalysisConfig faulty;
  faulty.inject_stage_faults = {"drop_rate"};
  const AnalysisReport degraded = run_pipeline(ds, faulty);

  // The failing stage is flagged, its section stays empty...
  bool found = false;
  for (const auto& stage : degraded.data_quality.stages) {
    if (stage.name == "drop_rate") {
      found = true;
      EXPECT_TRUE(stage.degraded);
      EXPECT_EQ(stage.error, "injected stage fault");
    } else {
      EXPECT_FALSE(stage.degraded) << stage.name;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(degraded.data_quality.degraded());
  EXPECT_TRUE(degraded.drop.by_length.empty());

  // ...and every other section matches the clean run exactly.
  EXPECT_EQ(degraded.events.size(), clean.events.size());
  EXPECT_EQ(degraded.pre.no_data, clean.pre.no_data);
  EXPECT_EQ(degraded.pre.data_anomaly_10m, clean.pre.data_anomaly_10m);
  EXPECT_EQ(degraded.protocols.udp_share, clean.protocols.udp_share);
  EXPECT_EQ(degraded.classes.infrastructure, clean.classes.infrastructure);
  EXPECT_EQ(degraded.classes.other, clean.classes.other);
  EXPECT_EQ(degraded.ports.clients, clean.ports.clients);
  EXPECT_EQ(degraded.ports.servers, clean.ports.servers);

  // The rendered document gains a data-quality section naming the stage.
  const std::string md = render_markdown(ds, degraded, nullptr);
  EXPECT_NE(md.find("## Data quality"), std::string::npos);
  EXPECT_NE(md.find("`drop_rate`"), std::string::npos);
  const std::string clean_md = render_markdown(ds, clean, nullptr);
  EXPECT_EQ(clean_md.find("## Data quality"), std::string::npos);
}

}  // namespace
}  // namespace bw::core
