file(REMOVE_RECURSE
  "CMakeFiles/bw_net_test.dir/net/ipv4_mac_test.cpp.o"
  "CMakeFiles/bw_net_test.dir/net/ipv4_mac_test.cpp.o.d"
  "CMakeFiles/bw_net_test.dir/net/ports_test.cpp.o"
  "CMakeFiles/bw_net_test.dir/net/ports_test.cpp.o.d"
  "CMakeFiles/bw_net_test.dir/net/prefix_test.cpp.o"
  "CMakeFiles/bw_net_test.dir/net/prefix_test.cpp.o.d"
  "CMakeFiles/bw_net_test.dir/net/prefix_trie_test.cpp.o"
  "CMakeFiles/bw_net_test.dir/net/prefix_trie_test.cpp.o.d"
  "bw_net_test"
  "bw_net_test.pdb"
  "bw_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
