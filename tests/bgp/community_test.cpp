#include "bgp/community.hpp"

#include <gtest/gtest.h>

namespace bw::bgp {
namespace {

TEST(CommunityTest, WellKnownValues) {
  EXPECT_EQ(kBlackhole.global, 65535);
  EXPECT_EQ(kBlackhole.local, 666);  // RFC 7999
  EXPECT_EQ(kNoExport.global, 65535);
  EXPECT_EQ(kNoExport.local, 65281);  // RFC 1997
}

TEST(CommunityTest, ToStringAndParse) {
  EXPECT_EQ(kBlackhole.to_string(), "65535:666");
  EXPECT_EQ(Community::parse("65535:666"), kBlackhole);
  EXPECT_EQ(Community::parse("0:0"), (Community{0, 0}));
}

TEST(CommunityTest, ParseInvalid) {
  EXPECT_FALSE(Community::parse(""));
  EXPECT_FALSE(Community::parse("65535"));
  EXPECT_FALSE(Community::parse("65536:1"));
  EXPECT_FALSE(Community::parse("1:65536"));
  EXPECT_FALSE(Community::parse("a:b"));
  EXPECT_FALSE(Community::parse("1:2:3"));
}

TEST(CommunityTest, HasCommunity) {
  const std::vector<Community> cs{kNoExport, kBlackhole};
  EXPECT_TRUE(has_community(cs, kBlackhole));
  EXPECT_TRUE(has_community(cs, kNoExport));
  EXPECT_FALSE(has_community(cs, {1, 2}));
  EXPECT_FALSE(has_community({}, kBlackhole));
}

class TargetedTest : public ::testing::Test {
 protected:
  TargetedAnnouncement targeted_{64600};
};

TEST_F(TargetedTest, DefaultIsAnnounceToAll) {
  EXPECT_TRUE(targeted_.should_announce({}, 100));
  const std::vector<Community> only_bh{kBlackhole};
  EXPECT_TRUE(targeted_.should_announce(only_bh, 100));
}

TEST_F(TargetedTest, ExcludeSinglePeer) {
  const std::vector<Community> cs{{0, 100}};
  EXPECT_FALSE(targeted_.should_announce(cs, 100));
  EXPECT_TRUE(targeted_.should_announce(cs, 101));
}

TEST_F(TargetedTest, AnnounceToNone) {
  const std::vector<Community> cs{{0, 64600}};
  EXPECT_FALSE(targeted_.should_announce(cs, 100));
  EXPECT_FALSE(targeted_.should_announce(cs, 101));
}

TEST_F(TargetedTest, RestrictToSubset) {
  const auto cs = targeted_.restrict_to(std::vector<std::uint16_t>{100, 200});
  EXPECT_TRUE(targeted_.should_announce(cs, 100));
  EXPECT_TRUE(targeted_.should_announce(cs, 200));
  EXPECT_FALSE(targeted_.should_announce(cs, 300));
}

TEST_F(TargetedTest, AnnounceToAllCommunity) {
  const std::vector<Community> cs{{64600, 64600}};
  EXPECT_TRUE(targeted_.should_announce(cs, 100));
}

TEST_F(TargetedTest, ExclusionBeatsPositiveAction) {
  std::vector<Community> cs =
      targeted_.restrict_to(std::vector<std::uint16_t>{100});
  cs.push_back({0, 100});
  EXPECT_FALSE(targeted_.should_announce(cs, 100));
}

TEST_F(TargetedTest, ExcludeBuilder) {
  const auto cs = targeted_.exclude(std::vector<std::uint16_t>{7, 8});
  EXPECT_FALSE(targeted_.should_announce(cs, 7));
  EXPECT_FALSE(targeted_.should_announce(cs, 8));
  EXPECT_TRUE(targeted_.should_announce(cs, 9));
}

}  // namespace
}  // namespace bw::bgp
