// Trace spans: RAII scopes collected into Chrome-trace-format JSON.
//
// Tracing is off by default and costs exactly one relaxed atomic load per
// span construction while off — cheap enough to leave TraceSpan in every
// pipeline stage guard, every parallel_for chunk, the sharded generator's
// run_slice, and dataset save/load. When a tool enables it (--trace-out),
// each thread appends complete spans to its own mutex-guarded buffer
// (uncontended: only the owning thread appends) and render_chrome_trace()
// merges the buffers into one deterministic-ordered JSON document that
// chrome://tracing and Perfetto open directly.
//
// Buffers are bounded (kMaxEventsPerThread); past the cap events are
// counted as dropped, never reallocated without bound — a 104-day corpus
// replay cannot OOM the tracer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bw::obs {

/// Per-thread span cap; overflow increments the dropped count.
inline constexpr std::size_t kMaxEventsPerThread = 1u << 20;

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void record_span(std::string name, const char* category,
                 std::uint64_t ts_us, std::uint64_t dur_us) noexcept;
[[nodiscard]] std::uint64_t trace_now_us() noexcept;
}  // namespace detail

/// One relaxed load; the cost of an inactive TraceSpan.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn collection on/off. Spans constructed while off record nothing.
void trace_enable(bool on) noexcept;

/// Drop every collected event and reset the dropped count (tests/tools).
void trace_reset();

/// Collected (and dropped) event counts across all threads.
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::size_t trace_dropped_count();

/// The full Chrome trace JSON document:
///   {"displayTimeUnit":"ms","traceEvents":[{"name":...,"cat":...,
///    "ph":"X","pid":...,"tid":...,"ts":...,"dur":...}, ...]}
/// Events are sorted by (ts, tid, name) so the document is independent of
/// buffer drain order.
[[nodiscard]] std::string render_chrome_trace();

/// RAII complete-event ("ph":"X") span. The name is only materialised when
/// tracing is on; an inactive span does no allocation.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     const char* category = "bw") noexcept
      : active_(trace_enabled()) {
    if (active_) {
      name_.assign(name);
      category_ = category;
      start_us_ = detail::trace_now_us();
    }
  }
  ~TraceSpan() {
    if (active_) {
      detail::record_span(std::move(name_), category_, start_us_,
                          detail::trace_now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  const char* category_{""};
  std::uint64_t start_us_{0};
};

}  // namespace bw::obs
