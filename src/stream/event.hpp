// The unified ingest event of the streaming monitor.
//
// The two live feeds — route-server BGP updates and sampled flow records —
// are merged into one timestamp-ordered stream before they reach the
// RtbhMonitor. A StreamEvent is one element of that stream: either kind,
// tagged with its event time and its position within its own feed.
//
// Ordering contract (the replay-convergence proof depends on it): events
// are delivered to the monitor sorted by (time, kind, seq) — BGP updates
// before flow records at equal timestamps, FIFO within a feed. This is
// exactly the order the batch replayer visits a finished corpus in
// (`updates[ui].time <= flows[fi].time` takes the update first), so a
// streaming run that sheds nothing feeds the monitor the identical
// sequence the batch call does.
#pragma once

#include <cstdint>

#include "bgp/message.hpp"
#include "flow/record.hpp"
#include "util/time.hpp"

namespace bw::stream {

enum class EventKind : std::uint8_t {
  kBgpUpdate = 0,  ///< sorts before flows at equal timestamps
  kFlow = 1,
};

[[nodiscard]] constexpr std::string_view to_string(EventKind k) noexcept {
  return k == EventKind::kBgpUpdate ? "bgp" : "flow";
}

struct StreamEvent {
  EventKind kind{EventKind::kFlow};
  util::TimeMs time{0};
  /// FIFO position within the originating feed (assigned by the producer);
  /// the final tie-break of the delivery order.
  std::uint64_t seq{0};
  // One of the two is meaningful, selected by `kind`. A struct (not a
  // variant) keeps the ring slots trivially reusable; the dead member of
  // each slot is simply overwritten by the next push.
  bgp::Update update;
  flow::FlowRecord flow;

  [[nodiscard]] static StreamEvent from(const bgp::Update& u,
                                        std::uint64_t seq) {
    StreamEvent ev;
    ev.kind = EventKind::kBgpUpdate;
    ev.time = u.time;
    ev.seq = seq;
    ev.update = u;
    return ev;
  }
  [[nodiscard]] static StreamEvent from(const flow::FlowRecord& f,
                                        std::uint64_t seq) {
    StreamEvent ev;
    ev.kind = EventKind::kFlow;
    ev.time = f.time;
    ev.seq = seq;
    ev.flow = f;
    return ev;
  }

  /// The delivery order: (time, kind, seq). Strict weak; total within one
  /// run because (kind, seq) is unique per feed.
  [[nodiscard]] bool before(const StreamEvent& other) const noexcept {
    if (time != other.time) return time < other.time;
    if (kind != other.kind) return kind < other.kind;
    return seq < other.seq;
  }
};

}  // namespace bw::stream
