#include "util/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace bw::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? counts_.at(i) / total_ : 0.0;
}

void CategoricalHistogram::add(const std::string& key, double weight) {
  counts_[key] += weight;
  total_ += weight;
}

double CategoricalHistogram::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it != counts_.end() ? it->second : 0.0;
}

double CategoricalHistogram::fraction(const std::string& key) const {
  return total_ > 0.0 ? count(key) / total_ : 0.0;
}

std::vector<std::string> CategoricalHistogram::keys_by_count() const {
  std::vector<std::string> keys;
  keys.reserve(counts_.size());
  for (const auto& [k, _] : counts_) keys.push_back(k);
  std::sort(keys.begin(), keys.end(), [this](const auto& a, const auto& b) {
    const double ca = count(a);
    const double cb = count(b);
    return ca != cb ? ca > cb : a < b;
  });
  return keys;
}

}  // namespace bw::util
