# Empty dependencies file for zombie_audit.
# This may be replaced when dependencies are built.
