#include "util/bootstrap.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace bw::util {
namespace {

TEST(BootstrapTest, EmptySampleDegenerates) {
  const auto ci = bootstrap_quantile_ci({}, 0.5);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

TEST(BootstrapTest, IntervalBracketsEstimate) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(10.0, 2.0));
  const auto ci = bootstrap_quantile_ci(sample, 0.5);
  EXPECT_LE(ci.lo, ci.estimate);
  EXPECT_GE(ci.hi, ci.estimate);
  EXPECT_NEAR(ci.estimate, 10.0, 0.5);
  EXPECT_LT(ci.hi - ci.lo, 1.0) << "median CI of n=500 should be tight";
}

TEST(BootstrapTest, WiderForSmallerSamples) {
  Rng rng(2);
  std::vector<double> big;
  std::vector<double> small;
  for (int i = 0; i < 2000; ++i) big.push_back(rng.normal(0.0, 1.0));
  small.assign(big.begin(), big.begin() + 40);
  const auto wide = bootstrap_quantile_ci(small, 0.5);
  const auto tight = bootstrap_quantile_ci(big, 0.5);
  EXPECT_GT(wide.hi - wide.lo, tight.hi - tight.lo);
}

TEST(BootstrapTest, CustomStatistic) {
  const std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto ci = bootstrap_ci(sample, [](std::span<const double> s) {
    double sum = 0.0;
    for (const double v : s) sum += v;
    return sum / static_cast<double>(s.size());
  });
  EXPECT_DOUBLE_EQ(ci.estimate, 5.5);
  EXPECT_GT(ci.lo, 3.0);
  EXPECT_LT(ci.hi, 8.0);
}

TEST(BootstrapTest, ShareCi) {
  const auto ci = bootstrap_share_ci(500, 1000);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.5);
  EXPECT_NEAR(ci.lo, 0.5 - 1.96 * 0.0158, 0.01);
  EXPECT_NEAR(ci.hi, 0.5 + 1.96 * 0.0158, 0.01);
  const auto degenerate = bootstrap_share_ci(0, 0);
  EXPECT_EQ(degenerate.estimate, 0.0);
}

TEST(BootstrapTest, DeterministicForSeed) {
  const std::vector<double> sample{1, 5, 2, 8, 3, 9, 4};
  const auto a = bootstrap_quantile_ci(sample, 0.5);
  const auto b = bootstrap_quantile_ci(sample, 0.5);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

// Property: coverage of the 95% CI for the mean is near nominal.
class BootstrapCoverageTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BootstrapCoverageTest, CoversTrueMeanMostOfTheTime) {
  Rng rng(GetParam());
  int covered = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 80; ++i) sample.push_back(rng.normal(3.0, 1.5));
    BootstrapConfig cfg;
    cfg.resamples = 400;
    cfg.seed = rng.fork(static_cast<std::uint64_t>(t)).seed();
    const auto ci = bootstrap_ci(
        sample,
        [](std::span<const double> s) {
          double sum = 0.0;
          for (const double v : s) sum += v;
          return sum / static_cast<double>(s.size());
        },
        cfg);
    if (ci.lo <= 3.0 && 3.0 <= ci.hi) ++covered;
  }
  // Nominal 95%; allow generous slack for 60 trials.
  EXPECT_GE(covered, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BootstrapCoverageTest,
                         ::testing::Values(101, 202));

}  // namespace
}  // namespace bw::util
