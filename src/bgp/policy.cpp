#include "bgp/policy.hpp"

namespace bw::bgp {

namespace {

// splitmix64 finalizer; deterministic per (prefix, salt) so an inconsistent
// peer always treats the same prefix the same way, as real split router
// fleets do.
std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view to_string(BlackholeAcceptance a) {
  switch (a) {
    case BlackholeAcceptance::kRejectAll: return "reject-all";
    case BlackholeAcceptance::kClassfulOnly: return "classful-only";
    case BlackholeAcceptance::kWhitelistHost: return "whitelist-host";
    case BlackholeAcceptance::kAcceptAll: return "accept-all";
    case BlackholeAcceptance::kInconsistent: return "inconsistent";
  }
  return "unknown";
}

bool PeerPolicy::accepts(const Route& route) const {
  if (route.is_blackhole()) return accepts_blackhole(route.prefix);
  return route.prefix.length() <= max_regular_len;
}

bool PeerPolicy::accepts_blackhole(const net::Prefix& prefix) const {
  const std::uint8_t len = prefix.length();
  switch (blackhole) {
    case BlackholeAcceptance::kRejectAll:
      return false;
    case BlackholeAcceptance::kClassfulOnly:
      return len <= 24;
    case BlackholeAcceptance::kWhitelistHost:
      return len <= 24 || len == 32;
    case BlackholeAcceptance::kAcceptAll:
      return true;
    case BlackholeAcceptance::kInconsistent: {
      if (len <= 24) return true;  // stock filters still pass short prefixes
      const std::uint64_t key =
          (std::uint64_t{prefix.network().value()} << 8) | len;
      const std::uint64_t h = mix(key ^ salt);
      const double u =
          static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
      return u < inconsistent_accept_fraction;
    }
  }
  return false;
}

}  // namespace bw::bgp
