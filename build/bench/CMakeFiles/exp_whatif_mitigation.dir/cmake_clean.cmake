file(REMOVE_RECURSE
  "CMakeFiles/exp_whatif_mitigation.dir/exp_whatif_mitigation.cpp.o"
  "CMakeFiles/exp_whatif_mitigation.dir/exp_whatif_mitigation.cpp.o.d"
  "exp_whatif_mitigation"
  "exp_whatif_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_whatif_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
