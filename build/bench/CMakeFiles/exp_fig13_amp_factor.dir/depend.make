# Empty dependencies file for exp_fig13_amp_factor.
# This may be replaced when dependencies are built.
