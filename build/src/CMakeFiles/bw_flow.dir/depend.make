# Empty dependencies file for bw_flow.
# This may be replaced when dependencies are built.
