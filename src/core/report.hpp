// Markdown report generation: renders a full AnalysisReport as a
// self-contained operator-facing document mirroring the paper's structure
// (corpus summary, Table 2, acceptance, attack mix, victims, Fig. 19).
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace bw::core {

struct ReportOptions {
  std::string title{"RTBH operational report"};
  /// Include the per-prefix-length drop table.
  bool drop_table{true};
  /// Include the top-N source-AS reaction list.
  std::size_t top_sources{10};
  /// Include the mitigation what-if section (requires whatif to be set).
  bool include_whatif{true};
};

/// Render the report as GitHub-flavoured markdown. `whatif` may be null.
[[nodiscard]] std::string render_markdown(const Dataset& dataset,
                                          const AnalysisReport& report,
                                          const struct WhatIfReport* whatif,
                                          const ReportOptions& options = {});

}  // namespace bw::core
