file(REMOVE_RECURSE
  "CMakeFiles/bw_util.dir/util/bootstrap.cpp.o"
  "CMakeFiles/bw_util.dir/util/bootstrap.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/csv.cpp.o"
  "CMakeFiles/bw_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/cusum.cpp.o"
  "CMakeFiles/bw_util.dir/util/cusum.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/ewma.cpp.o"
  "CMakeFiles/bw_util.dir/util/ewma.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/histogram.cpp.o"
  "CMakeFiles/bw_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/rng.cpp.o"
  "CMakeFiles/bw_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/stats.cpp.o"
  "CMakeFiles/bw_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/table.cpp.o"
  "CMakeFiles/bw_util.dir/util/table.cpp.o.d"
  "CMakeFiles/bw_util.dir/util/time.cpp.o"
  "CMakeFiles/bw_util.dir/util/time.cpp.o.d"
  "libbw_util.a"
  "libbw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
