// The joint measurement corpus (Section 3).
//
// A Dataset bundles exactly what the paper's analysts had: the route-server
// BGP log (control plane), the sampled flow log (data plane), the MAC ->
// member-AS mapping of the switching fabric, and a BGP-derived source-IP ->
// origin-AS resolver. It additionally builds the indices every analysis
// module needs: the route-server blackhole activity index and flow indices
// sorted by destination and by source address.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/blackhole_index.hpp"
#include "bgp/message.hpp"
#include "core/engine.hpp"
#include "flow/columns.hpp"
#include "flow/record.hpp"
#include "ixp/platform.hpp"
#include "net/mac.hpp"
#include "net/prefix_trie.hpp"
#include "util/status.hpp"

namespace bw::util {
class ThreadPool;
}

namespace bw::core {

class Dataset {
 public:
  using OriginResolver = std::function<std::optional<bgp::Asn>(net::Ipv4)>;

  /// Ingest sanitation policy. Defaults are pass-through (trust the
  /// corpus); tolerant loaders (load_dataset_csv under kSkip/kRepair)
  /// enable quarantine so dirty telemetry costs records, not the run.
  struct BuildOptions {
    /// Drop exact-duplicate flow records (all fields equal), keeping one.
    bool dedupe_flows{false};
    /// Drop control updates / flow records whose timestamp falls outside
    /// the measurement period by more than `period_slack`.
    bool quarantine_out_of_period{false};
    /// Clock-skew tolerance before a record counts as out-of-period: the
    /// control and data planes legitimately disagree by seconds (the paper
    /// estimates the offset in Section 3.2), not hours.
    util::DurationMs period_slack{5 * util::kMinute};
  };

  /// What sanitation saw and did. Reordered counts are input-order
  /// inversions (always measured — sorting repairs them); quarantine and
  /// dedupe counts are non-zero only when enabled in BuildOptions.
  struct Quality {
    std::size_t reordered_updates{0};   ///< control rows out of time order
    std::size_t reordered_flows{0};     ///< flow rows out of time order
    std::size_t out_of_period_updates{0};
    std::size_t out_of_period_flows{0};
    std::size_t duplicate_flows{0};
    std::size_t unknown_mac_flows{0};   ///< flows with an unattributable MAC

    [[nodiscard]] bool clean() const {
      return reordered_updates == 0 && reordered_flows == 0 &&
             out_of_period_updates == 0 && out_of_period_flows == 0 &&
             duplicate_flows == 0 && unknown_mac_flows == 0;
    }
    friend bool operator==(const Quality&, const Quality&) = default;
  };

  /// Build from a platform replay. Copies the MAC table and origin table
  /// out of the platform so the Dataset is self-contained afterwards.
  static Dataset from_run(ixp::RunResult run, const ixp::Platform& platform);

  /// Build from raw corpora (e.g. deserialised from disk). Sanitation is
  /// applied per `options` before the indices are built.
  Dataset(bgp::UpdateLog control, flow::FlowLog data,
          std::unordered_map<net::Mac, bgp::Asn> mac_to_asn,
          std::vector<std::pair<net::Prefix, bgp::Asn>> origin_prefixes,
          util::TimeRange period, const BuildOptions& options);
  /// Pass-through build (no sanitation) — the trusting default.
  Dataset(bgp::UpdateLog control, flow::FlowLog data,
          std::unordered_map<net::Mac, bgp::Asn> mac_to_asn,
          std::vector<std::pair<net::Prefix, bgp::Asn>> origin_prefixes,
          util::TimeRange period)
      : Dataset(std::move(control), std::move(data), std::move(mac_to_asn),
                std::move(origin_prefixes), period, BuildOptions()) {}

  // --- raw corpora ---
  [[nodiscard]] const bgp::UpdateLog& control() const noexcept {
    return control_;
  }
  [[nodiscard]] const flow::FlowLog& flows() const noexcept { return data_; }
  [[nodiscard]] util::TimeRange period() const noexcept { return period_; }

  /// Only the RTBH-related updates, in time order.
  [[nodiscard]] const bgp::UpdateLog& blackhole_updates() const noexcept {
    return blackhole_updates_;
  }

  /// Route-server blackhole activity rebuilt from the control log.
  [[nodiscard]] const bgp::BlackholeIndex& rs_index() const noexcept {
    return rs_index_;
  }

  /// Sanitation accounting from construction (see BuildOptions).
  [[nodiscard]] const Quality& quality() const noexcept { return quality_; }

  // --- attribution ---
  [[nodiscard]] std::optional<bgp::Asn> member_asn(net::Mac mac) const;
  [[nodiscard]] std::optional<bgp::Asn> origin_asn(net::Ipv4 src) const;
  [[nodiscard]] const std::unordered_map<net::Mac, bgp::Asn>& mac_table()
      const noexcept {
    return mac_to_asn_;
  }
  [[nodiscard]] const std::vector<std::pair<net::Prefix, bgp::Asn>>&
  origin_prefixes() const noexcept {
    return origin_prefixes_;
  }

  /// Member source ASes in ascending ASN order. The columnar src_member
  /// column stores indices into this table, so a flat-array accumulation
  /// iterated by dense id visits ASes in the same ascending order a
  /// std::map<Asn, ...> would — the key to byte-identical source reports.
  [[nodiscard]] std::size_t source_as_count() const noexcept {
    return source_as_.size();
  }
  [[nodiscard]] bgp::Asn source_as(std::uint32_t id) const {
    return source_as_[id];
  }

  /// The structure-of-arrays flow view, built by build_indices() alongside
  /// the sorted indices (see flow/columns.hpp for the layout invariants).
  [[nodiscard]] const flow::FlowColumns& columns() const noexcept {
    return columns_;
  }

  // --- flow indices ---
  /// Indices (into flows()) of records destined to `prefix` within `range`,
  /// ordered by (dst_ip, time).
  [[nodiscard]] std::vector<std::size_t> flows_to(const net::Prefix& prefix,
                                                  util::TimeRange range) const;
  /// Same for records *from* `prefix` (source-address match).
  [[nodiscard]] std::vector<std::size_t> flows_from(const net::Prefix& prefix,
                                                    util::TimeRange range) const;
  /// All records to an exact address over the whole period.
  [[nodiscard]] std::vector<std::size_t> flows_to(net::Ipv4 addr) const {
    return flows_to(net::Prefix::host(addr), period_);
  }

  /// Allocation-free variants of flows_to / flows_from: invoke
  /// `fn(const flow::FlowRecord&)` for every matching record, in the same
  /// (ip, time) order the vector-returning versions use, without
  /// materialising an index vector. This is the hot-kernel iteration API;
  /// prefer it anywhere the indices themselves are not needed.
  template <typename Fn>
  void for_each_flow_to(const net::Prefix& prefix, util::TimeRange range,
                        Fn&& fn) const {
    scan_sorted_index(
        by_dst_, prefix, range,
        [](const flow::FlowRecord& r) { return r.dst_ip; },
        [&](std::size_t, const flow::FlowRecord& rec) { fn(rec); });
  }
  template <typename Fn>
  void for_each_flow_from(const net::Prefix& prefix, util::TimeRange range,
                          Fn&& fn) const {
    scan_sorted_index(
        by_src_, prefix, range,
        [](const flow::FlowRecord& r) { return r.src_ip; },
        [&](std::size_t, const flow::FlowRecord& rec) { fn(rec); });
  }

  // --- persistence (binary, versioned) ---
  /// Structured-error variants: the Status carries what failed and where
  /// (path, magic, truncation point).
  [[nodiscard]] util::Status try_save(const std::string& path) const;
  [[nodiscard]] static util::Result<Dataset> try_load(const std::string& path);
  /// Legacy wrappers; throw std::runtime_error on failure.
  void save(const std::string& path) const;
  static Dataset load(const std::string& path);

  // --- summary ---
  struct Summary {
    std::size_t control_updates{0};
    std::size_t blackhole_updates{0};
    std::size_t blackholed_prefixes{0};
    std::size_t flow_records{0};
    std::uint64_t sampled_packets{0};
    std::uint64_t sampled_bytes{0};
    std::uint64_t dropped_packets{0};
    std::uint64_t dropped_bytes{0};
  };
  /// Corpus totals; the volume sums shard over `pool` (null: the global
  /// pool) and are exact at any thread count and under either engine.
  [[nodiscard]] Summary summary(
      util::ThreadPool* pool = nullptr,
      KernelEngine engine = KernelEngine::kColumnar) const;

 private:
  void sanitize(const BuildOptions& options);
  void build_indices();

  /// Range-scan an (ip, time)-sorted index: binary-search the address run
  /// covered by the prefix, then visit it in order. For a single-address
  /// prefix the run is time-sorted, so the half-open time window is itself
  /// located by binary search and the per-record time predicate disappears
  /// — hosts with long histories no longer pay a full-run scan per
  /// narrow-window event. Calls `fn(flow_index, record)`.
  template <typename GetIp, typename Fn>
  void scan_sorted_index(const std::vector<std::size_t>& index,
                         const net::Prefix& prefix, util::TimeRange range,
                         GetIp get_ip, Fn&& fn) const {
    const net::Ipv4 lo = prefix.network();
    const net::Ipv4 hi = prefix.address_at(prefix.size() - 1);
    auto begin = std::lower_bound(
        index.begin(), index.end(), lo,
        [&](std::size_t i, net::Ipv4 v) { return get_ip(data_[i]) < v; });
    auto end = std::upper_bound(
        begin, index.end(), hi,
        [&](net::Ipv4 v, std::size_t i) { return v < get_ip(data_[i]); });
    if (prefix.length() == 32) {
      const auto by_time = [&](std::size_t i, util::TimeMs t) {
        return data_[i].time < t;
      };
      begin = std::lower_bound(begin, end, range.begin, by_time);
      end = std::lower_bound(begin, end, range.end, by_time);
      for (auto it = begin; it != end; ++it) fn(*it, data_[*it]);
      return;
    }
    for (auto it = begin; it != end; ++it) {
      const flow::FlowRecord& rec = data_[*it];
      if (range.contains(rec.time)) fn(*it, rec);
    }
  }

  bgp::UpdateLog control_;
  flow::FlowLog data_;
  std::unordered_map<net::Mac, bgp::Asn> mac_to_asn_;
  std::vector<std::pair<net::Prefix, bgp::Asn>> origin_prefixes_;
  util::TimeRange period_;

  Quality quality_;
  bgp::UpdateLog blackhole_updates_;
  bgp::BlackholeIndex rs_index_;
  net::FlatLpm<bgp::Asn> origin_lpm_;
  std::vector<std::size_t> by_dst_;  ///< flow indices sorted by (dst, time)
  std::vector<std::size_t> by_src_;  ///< flow indices sorted by (src, time)
  std::vector<bgp::Asn> source_as_;  ///< ascending unique member source ASes
  flow::FlowColumns columns_;        ///< SoA view in by_dst_ / by_src_ order
};

}  // namespace bw::core
