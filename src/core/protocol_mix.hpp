// Attack-traffic protocol mix (Section 5.4, Table 3).
//
// For RTBH events with a preceding anomaly *and* sampled traffic during the
// event, this derives the transport-protocol distribution (99.5% UDP in the
// paper) and the number of distinct UDP amplification protocols per event.
// Per the paper, analysis keys on transport ports only — payload is never
// available.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/event_merge.hpp"
#include "core/pre_rtbh.hpp"

namespace bw::core {

struct ProtocolMixReport {
  std::size_t events_considered{0};  ///< anomaly + data during event
  std::uint64_t packets_total{0};
  double udp_share{0.0};
  double tcp_share{0.0};
  double icmp_share{0.0};
  double other_share{0.0};

  /// hist[k] = number of events with exactly k distinct amplification
  /// protocols (Table 3's columns; k capped at 5+).
  std::array<std::size_t, 6> amp_protocol_events{};

  /// Events per amplification protocol name, descending.
  std::vector<std::pair<std::string, std::size_t>> protocol_event_counts;

  [[nodiscard]] double amp_event_fraction(std::size_t k) const {
    return events_considered > 0 ? static_cast<double>(amp_protocol_events[k]) /
                                       static_cast<double>(events_considered)
                                 : 0.0;
  }
};

struct ProtocolMixConfig {
  /// A protocol counts for an event when it carries at least this share of
  /// the event's packets and at least `min_packets` samples (guards against
  /// single stray legitimate packets on service ports).
  double min_share{0.01};
  std::uint32_t min_packets{2};
};

[[nodiscard]] ProtocolMixReport compute_protocol_mix(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PreRtbhReport& pre, const ProtocolMixConfig& config = {},
    KernelEngine engine = KernelEngine::kColumnar);

}  // namespace bw::core
