// Fault injection for measurement corpora.
//
// Real IXP feeds fail in boring, specific ways: a transfer truncates a
// file, a disk flips bytes, an exporter re-emits or reorders records,
// clocks skew between planes, and the MAC table misses entries. This
// library applies exactly those corruptions — seeded and composable — to a
// CSV corpus written by export_dataset_csv, so tests and CI can prove every
// degradation path in the loaders, Dataset sanitation, and the pipeline.
// `tools/bw_faultgen` is the CLI face.
//
// Everything operates at the text level (lines and bytes), like the faults
// themselves do: the library never parses rows beyond what a fault needs
// (e.g. the time field for clock skew).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace bw::testing {

/// One CSV file as a header line plus body rows (newlines stripped). A
/// truncation fault may leave `partial_tail` — a final, unterminated
/// half-row appended verbatim on save.
struct CsvFile {
  std::string name;
  std::string header;
  std::vector<std::string> rows;
  std::string partial_tail;
};

/// The five files of a dataset directory, in canonical order.
struct CsvCorpus {
  std::vector<CsvFile> files;

  [[nodiscard]] CsvFile* find(std::string_view name);

  /// Read every *.csv of a directory written by export_dataset_csv.
  [[nodiscard]] static util::Result<CsvCorpus> load(
      const std::string& directory);
  /// Write the corpus under `directory` (created if absent).
  [[nodiscard]] util::Status save(const std::string& directory) const;
};

enum class FaultKind : std::uint8_t {
  kTruncate,       ///< cut the file's tail, ending mid-row
  kByteFlip,       ///< overwrite one byte in each of N rows
  kDuplicateRows,  ///< re-insert exact copies of N rows
  kReorderRows,    ///< permute N rows among themselves
  kMangleField,    ///< replace a random field of N rows with garbage
  kClockSkew,      ///< shift the time_ms field of N rows by a fixed offset
  kDropMacs,       ///< delete N entries from macs.csv
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct Fault {
  FaultKind kind{FaultKind::kByteFlip};
  std::string file{"flows.csv"};  ///< target (kDropMacs always hits macs.csv)
  std::size_t count{1};           ///< rows affected (kinds with a count)
  double fraction{0.0};           ///< kTruncate: fraction of body rows cut
  std::int64_t skew_ms{0};        ///< kClockSkew: offset added to time_ms
};

struct FaultPlan {
  std::uint64_t seed{1};
  std::vector<Fault> faults;

  /// The default mix: every fault kind once, at small magnitudes — a
  /// corpus that exercises skip, repair, quarantine, dedupe, and MAC
  /// attribution loss all at once.
  [[nodiscard]] static FaultPlan default_mix(std::uint64_t seed);
};

/// Ground truth of what was actually corrupted — what loader/sanitation
/// counts must account for.
struct FaultLog {
  struct Entry {
    FaultKind kind;
    std::string file;
    std::size_t rows_affected{0};
  };
  std::vector<Entry> entries;

  [[nodiscard]] std::size_t total(FaultKind kind) const;
  /// Human-readable one-line-per-entry summary.
  [[nodiscard]] std::string summary() const;
};

/// Apply every fault of `plan` to `corpus`, in order, each drawing from an
/// independent substream of plan.seed (composable: adding a fault never
/// changes what an earlier fault did).
FaultLog apply_faults(CsvCorpus& corpus, const FaultPlan& plan);

/// Parse a CLI fault spec: comma-separated `kind[:file[:arg]]` items, e.g.
///   "truncate:flows.csv:0.05,byteflip:control.csv:4,skew:flows.csv:7200000"
/// Kinds: truncate (arg: fraction), byteflip, dup, reorder, mangle
/// (arg: count), skew (arg: offset ms, applied to `count=8` rows),
/// dropmacs (arg: count).
[[nodiscard]] util::Result<FaultPlan> parse_fault_spec(std::string_view spec,
                                                       std::uint64_t seed);

// ---------------------------------------------------------------------------
// Binary container faults
//
// Byte-level corruptions of the checksummed .bwds container (the scenario
// cache and any Dataset save). These model what storage actually does to a
// binary file: a transfer cut short, a flipped bit, a crashed non-atomic
// overwrite, and block-level misplacement. The container's framing must
// turn every one of them into a section-precise load error — the
// persistence fault suite asserts exactly that.
// ---------------------------------------------------------------------------

enum class BinaryFaultKind : std::uint8_t {
  kTruncate,     ///< cut the file's tail (footer lost or payload short)
  kBitFlip,      ///< flip one bit anywhere in the file
  kTornRename,   ///< crashed in-place overwrite: new head + stale garbage tail
  kSectionSwap,  ///< swap two section payloads, leaving the TOC stale
};

[[nodiscard]] std::string_view to_string(BinaryFaultKind kind);

/// Parse a CLI binary fault kind: truncate | bitflip | torn | swap.
[[nodiscard]] util::Result<BinaryFaultKind> parse_binary_fault_kind(
    std::string_view name);

/// Ground truth of one applied binary fault.
struct BinaryFaultReport {
  BinaryFaultKind kind{BinaryFaultKind::kTruncate};
  std::string file;
  std::string detail;        ///< human summary of what was done
  bool bytes_changed{false}; ///< false only when the draw was a no-op swap
};

/// Apply `kind` to the container file at `path`, in place, with every draw
/// taken from `seed` (same seed, same corruption). kSectionSwap parses the
/// intact TOC to locate payload ranges, swaps two of them, and leaves the
/// TOC stale; it fails on files with fewer than two non-empty sections.
/// The write-back is deliberately non-atomic — the faults being modelled
/// are precisely what atomic commits prevent.
[[nodiscard]] util::Result<BinaryFaultReport> apply_binary_fault(
    const std::string& path, BinaryFaultKind kind, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Streaming-ingest faults
//
// The streaming monitor (src/stream) must shed load loudly when the feed
// outruns the kernels. Overload on a real box depends on scheduler whims;
// these faults force it on demand, in two flavours:
//
//   slow consumer  the consumer drains at most `drain_per_tick` ring events
//                  per `tick_events` produced (lockstep replay: exactly
//                  deterministic), or stalls `consumer_delay_us` per
//                  delivered event (threaded replay: wall-clock pressure);
//   bursty producer the producer pushes `burst` events back to back, then
//                  pauses `burst_pause_us` (threaded replay only) — the
//                  arrival pattern of an export batch hitting the tap.
// ---------------------------------------------------------------------------

struct StreamFaultPlan {
  /// Lockstep slow consumer: per `tick_events` pushed, the consumer pops at
  /// most `drain_per_tick` events from the rings. 0 tick = keep up.
  std::size_t tick_events{0};
  std::size_t drain_per_tick{0};
  /// Threaded slow consumer: busy-wait this long per delivered event.
  std::uint64_t consumer_delay_us{0};
  /// Threaded bursty producer: burst length and inter-burst pause.
  std::size_t burst{0};
  std::uint64_t burst_pause_us{0};

  [[nodiscard]] bool any() const {
    return tick_events > 0 || consumer_delay_us > 0 || burst > 0;
  }
  /// Human-readable one-liner for logs and manifests.
  [[nodiscard]] std::string summary() const;
};

/// Parse a CLI stream fault spec: comma-separated items
///   slow:TICK:DRAIN   lockstep slow consumer (e.g. "slow:8:2")
///   delay:US          threaded slow consumer, per-event stall in µs
///   burst:N[:PAUSE_US] threaded bursty producer
[[nodiscard]] util::Result<StreamFaultPlan> parse_stream_fault_spec(
    std::string_view spec);

}  // namespace bw::testing
