# Empty dependencies file for bw_gen.
# This may be replaced when dependencies are built.
