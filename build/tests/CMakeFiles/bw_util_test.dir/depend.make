# Empty dependencies file for bw_util_test.
# This may be replaced when dependencies are built.
