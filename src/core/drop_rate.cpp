#include "core/drop_rate.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/arena.hpp"

namespace bw::core {

double DropRateReport::traffic_share(std::uint8_t length) const {
  if (packets_all_lengths == 0) return 0.0;
  for (const auto& s : by_length) {
    if (s.length == length) {
      return static_cast<double>(s.packets_total) /
             static_cast<double>(packets_all_lengths);
    }
  }
  return 0.0;
}

namespace {

/// Everything one event contributes, computed independently per event and
/// merged in event order afterwards.
struct EventDelta {
  PrefixLenDropStats stats;
  std::uint64_t ev_total{0};
  std::uint64_t ev_dropped{0};
  /// Per handover AS of traffic towards a /32 event, sorted by ASN.
  std::vector<SourceAsReaction> sources;
};

}  // namespace

DropRateReport compute_drop_rates(const Dataset& dataset,
                                  const std::vector<RtbhEvent>& events,
                                  const DropRateConfig& config,
                                  util::ThreadPool* pool_opt,
                                  const util::Deadline* deadline,
                                  KernelEngine engine) {
  util::ThreadPool& pool = util::pool_or_global(pool_opt);
  DropRateReport report;

  // Records engine: walk the AoS log via the sorted index (the seed path).
  const auto records_delta = [&](std::size_t e) {
    const auto& ev = events[e];
    EventDelta d;
    // The prefix length is fixed per event: hoist the per-length stats slot
    // and the /32 check out of the per-record loop.
    const std::uint8_t len = ev.prefix.length();
    d.stats.length = len;
    const bool host_event = len == 32;
    std::map<bgp::Asn, SourceAsReaction> sources;
    for (const auto& active : ev.active) {
      dataset.for_each_flow_to(ev.prefix, active,
                               [&](const flow::FlowRecord& rec) {
        d.stats.packets_total += rec.packets;
        d.stats.bytes_total += rec.bytes;
        d.ev_total += rec.packets;
        if (rec.dropped()) {
          d.stats.packets_dropped += rec.packets;
          d.stats.bytes_dropped += rec.bytes;
          d.ev_dropped += rec.packets;
        }
        if (host_event) {
          if (const auto asn = dataset.member_asn(rec.src_mac)) {
            auto& src = sources[*asn];
            src.asn = *asn;
            src.packets_total += rec.packets;
            if (rec.dropped()) src.packets_dropped += rec.packets;
          }
        }
      });
    }
    d.sources.reserve(sources.size());
    for (const auto& [asn, src] : sources) d.sources.push_back(src);
    return d;
  };

  // Columnar engine: per-source accumulation over flat arena arrays indexed
  // by dense member id. Dense ids ascend with ASN (Dataset::source_as), so
  // the emitted source list matches the records engine's std::map order;
  // the "seen" bitset reproduces map-entry creation even for zero-packet
  // records.
  const flow::FlowColumns& cols = dataset.columns();
  const std::size_t n_src = dataset.source_as_count();
  static const KernelScanMetrics metrics = make_kernel_scan_metrics("drop_rate");
  const auto columnar_delta = [&](std::size_t e) {
    thread_local util::Arena arena;
    arena.reset();
    const auto& ev = events[e];
    EventDelta d;
    const std::uint8_t len = ev.prefix.length();
    d.stats.length = len;
    const bool host_event = len == 32;
    std::uint64_t* src_total = nullptr;
    std::uint64_t* src_dropped = nullptr;
    std::uint64_t* seen = nullptr;
    if (host_event && n_src > 0) {
      src_total = arena.alloc_zeroed<std::uint64_t>(n_src);
      src_dropped = arena.alloc_zeroed<std::uint64_t>(n_src);
      seen = arena.alloc_zeroed<std::uint64_t>((n_src + 63) / 64);
    }
    std::uint64_t rows = 0;
    for (const auto& active : ev.active) {
      rows += cols.for_each_dst_row(ev.prefix, active, [&](std::size_t i) {
        const std::uint64_t pk = cols.packets[i];
        const std::uint64_t by = cols.bytes[i];
        const bool dropped = cols.dropped(i);
        d.stats.packets_total += pk;
        d.stats.bytes_total += by;
        d.ev_total += pk;
        if (dropped) {
          d.stats.packets_dropped += pk;
          d.stats.bytes_dropped += by;
          d.ev_dropped += pk;
        }
        if (host_event) {
          const std::uint32_t m = cols.src_member[i];
          if (m != flow::FlowColumns::kNoMember) {
            seen[m >> 6] |= std::uint64_t{1} << (m & 63);
            src_total[m] += pk;
            if (dropped) src_dropped[m] += pk;
          }
        }
      });
    }
    if (host_event && n_src > 0) {
      for (std::uint32_t m = 0; m < n_src; ++m) {
        if (((seen[m >> 6] >> (m & 63)) & 1u) == 0) continue;
        SourceAsReaction src;
        src.asn = dataset.source_as(m);
        src.packets_total = src_total[m];
        src.packets_dropped = src_dropped[m];
        d.sources.push_back(src);
      }
    }
    metrics.rows->add(rows);
    return d;
  };

  const obs::StopWatch watch;
  const auto deltas =
      engine == KernelEngine::kColumnar
          ? util::parallel_map(pool, events.size(), columnar_delta, 0, deadline)
          : util::parallel_map(pool, events.size(), records_delta, 0, deadline);
  if (engine == KernelEngine::kColumnar) metrics.ns->add(watch.elapsed_ns());

  // Merge in event order; integer sums make the totals exact and the
  // ordering rules below make the whole report thread-count independent.
  std::map<std::uint8_t, PrefixLenDropStats> by_length;
  std::unordered_map<bgp::Asn, SourceAsReaction> sources32;
  sources32.reserve(dataset.mac_table().size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    const EventDelta& d = deltas[e];
    if (d.stats.packets_total > 0) {
      auto& stats = by_length[d.stats.length];
      stats.length = d.stats.length;
      stats.packets_total += d.stats.packets_total;
      stats.packets_dropped += d.stats.packets_dropped;
      stats.bytes_total += d.stats.bytes_total;
      stats.bytes_dropped += d.stats.bytes_dropped;
    }
    for (const SourceAsReaction& s : d.sources) {
      auto& src = sources32[s.asn];
      src.asn = s.asn;
      src.packets_total += s.packets_total;
      src.packets_dropped += s.packets_dropped;
    }
    if (d.ev_total >= config.min_event_samples) {
      const double rate =
          static_cast<double>(d.ev_dropped) / static_cast<double>(d.ev_total);
      if (d.stats.length == 32) report.event_rates_len32.push_back(rate);
      if (d.stats.length == 24) report.event_rates_len24.push_back(rate);
    }
  }

  for (const auto& [len, stats] : by_length) {
    report.by_length.push_back(stats);
    report.packets_all_lengths += stats.packets_total;
    report.bytes_all_lengths += stats.bytes_total;
  }

  report.sources_to_len32.reserve(sources32.size());
  for (const auto& [asn, src] : sources32) {
    report.sources_to_len32.push_back(src);
  }
  // Tie-break on ASN so the order is deterministic however the map
  // iterates.
  std::sort(report.sources_to_len32.begin(), report.sources_to_len32.end(),
            [](const SourceAsReaction& a, const SourceAsReaction& b) {
              if (a.packets_total != b.packets_total) {
                return a.packets_total > b.packets_total;
              }
              return a.asn < b.asn;
            });
  return report;
}

TopSourceSummary summarize_top_sources(const DropRateReport& report,
                                       std::size_t top_n) {
  TopSourceSummary out;
  std::uint64_t total = 0;
  std::uint64_t top_total = 0;
  for (const auto& s : report.sources_to_len32) total += s.packets_total;
  const std::size_t n = std::min(top_n, report.sources_to_len32.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = report.sources_to_len32[i];
    ++out.considered;
    top_total += s.packets_total;
    const double share = s.drop_share();
    if (share > 0.99) ++out.full_droppers;
    else if (share < 0.01) ++out.full_forwarders;
    else ++out.inconsistent;
  }
  out.traffic_share_of_total =
      total > 0 ? static_cast<double>(top_total) / static_cast<double>(total)
                : 0.0;
  return out;
}

std::vector<TypedReaction> type_top_sources(const DropRateReport& report,
                                            const pdb::Registry& registry,
                                            std::size_t top_n) {
  std::map<pdb::OrgType, TypedReaction> by_type;
  const std::size_t n = std::min(top_n, report.sources_to_len32.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = report.sources_to_len32[i];
    const pdb::OrgType type = registry.type_of(s.asn);
    auto& t = by_type[type];
    t.type = type;
    if (s.drop_share() > 0.99) ++t.droppers;
    else ++t.others;
  }
  std::vector<TypedReaction> out;
  out.reserve(by_type.size());
  for (const auto& [type, t] : by_type) out.push_back(t);
  std::sort(out.begin(), out.end(), [](const TypedReaction& a,
                                       const TypedReaction& b) {
    return a.droppers + a.others > b.droppers + b.others;
  });
  return out;
}

}  // namespace bw::core
