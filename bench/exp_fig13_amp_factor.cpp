// Figure 13: Anomaly Amplification Factor — the last 5-minute slot before
// each RTBH event compared to the mean of its whole 72-hour pre-window,
// per traffic feature (Section 5.3).
//
// Paper: when the last slot contains packets, multiples of up to 800 are
// observed; in 15% of the cases the last slot is the maximum of the whole
// range.
#include "common.hpp"
#include "core/anomaly.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig13");
  const auto& pre = exp.report.pre;

  bench::print_header("Fig. 13", "anomaly amplification factor per feature");
  std::array<std::vector<double>, core::kFeatureCount> factors;
  std::size_t with_last_slot = 0;
  std::size_t last_is_max = 0;
  for (const auto& r : pre.per_event) {
    if (!r.last_slot_has_data) continue;
    ++with_last_slot;
    if (r.last_slot_is_max) ++last_is_max;
    for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
      if (r.amplification[f] > 0.0) factors[f].push_back(r.amplification[f]);
    }
  }

  util::TextTable table({"feature", "median", "p90", "p99", "max"});
  auto csv = bench::open_csv("fig13_amp_factor",
                             {"feature", "median", "p90", "p99", "max"});
  for (std::size_t f = 0; f < core::kFeatureCount; ++f) {
    const auto name = std::string(
        core::to_string(static_cast<core::Feature>(f)));
    table.add_row({name, util::fmt_double(util::quantile(factors[f], 0.5), 1),
                   util::fmt_double(util::quantile(factors[f], 0.9), 1),
                   util::fmt_double(util::quantile(factors[f], 0.99), 1),
                   util::fmt_double(util::quantile(factors[f], 1.0), 1)});
    csv->write_row({name, util::fmt_double(util::quantile(factors[f], 0.5), 2),
                    util::fmt_double(util::quantile(factors[f], 0.9), 2),
                    util::fmt_double(util::quantile(factors[f], 0.99), 2),
                    util::fmt_double(util::quantile(factors[f], 1.0), 2)});
  }
  std::cout << table;

  bench::print_paper_row(
      "largest amplification multiples", "up to ~800 (window has 864 slots)",
      util::fmt_double(
          util::quantile(factors[static_cast<std::size_t>(
                             core::Feature::kPackets)],
                         1.0),
          0));
  bench::print_paper_row(
      "last slot is the maximum of the range", "15% of cases",
      with_last_slot > 0
          ? util::fmt_percent(static_cast<double>(last_is_max) /
                                  static_cast<double>(with_last_slot),
                              0)
          : "n/a");
  return 0;
}
