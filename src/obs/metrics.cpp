#include "obs/metrics.hpp"

#include <chrono>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <ctime>
#endif

namespace bw::obs {

namespace detail {

std::size_t shard_index() noexcept {
  // Dense process-unique thread index: threads that exist concurrently get
  // distinct shards until kMetricShards is exceeded; after that they share.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace detail

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  // Fixed shard order: the merged result is a plain sum, identical no
  // matter which thread landed in which shard.
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      s.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    s.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < kBucketCount; ++b) s.count += s.counts[b];
  return s;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  // The input vectors are name-sorted by Registry::snapshot (std::map
  // iteration order), so the rendered object has stable key order.
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, counters[i].first);
    os << ": " << counters[i].second;
  }
  os << (counters.empty() ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, gauges[i].first);
    os << ": " << gauges[i].second;
  }
  os << (gauges.empty() ? "}" : "\n  }");
  os << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    append_json_string(os, h.name);
    os << ": {\"count\": " << h.data.count << ", \"sum_us\": " << h.data.sum
       << ", \"bucket_bounds_us\": [";
    for (std::size_t b = 0; b < Histogram::kBucketBounds.size(); ++b) {
      os << (b == 0 ? "" : ", ") << Histogram::kBucketBounds[b];
    }
    os << "], \"bucket_counts\": [";
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
      os << (b == 0 ? "" : ", ") << h.data.counts[b];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "}" : "\n  }");
  os << "\n}";
  return os.str();
}

bool is_deterministic_metric(std::string_view name) {
  if (name.starts_with("sched.")) return false;
  // Streaming-ingest counters depend on producer/consumer interleaving in
  // threaded replay (lockstep replay pins them, but the class of the metric
  // is what two arbitrary runs may be compared on).
  if (name.starts_with("stream.")) return false;
  if (name.ends_with("_us") || name.ends_with("_ns")) return false;
  return true;
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;  // handles outlive static-destruction order games
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot()});
  }
  return s;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void StopWatch::restart() noexcept {
  start_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t StopWatch::elapsed_ns() const noexcept {
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now_ns - start_ns_;
}

std::uint64_t StopWatch::elapsed_us() const noexcept {
  return elapsed_ns() / 1000;
}

std::uint64_t ThreadCpuTimer::now_us() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000u;
  }
#endif
  return 0;  // platform without thread CPU clocks: cpu_us reads as 0
}

}  // namespace bw::obs
