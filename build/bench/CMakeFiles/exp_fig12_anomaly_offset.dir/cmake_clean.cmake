file(REMOVE_RECURSE
  "CMakeFiles/exp_fig12_anomaly_offset.dir/exp_fig12_anomaly_offset.cpp.o"
  "CMakeFiles/exp_fig12_anomaly_offset.dir/exp_fig12_anomaly_offset.cpp.o.d"
  "exp_fig12_anomaly_offset"
  "exp_fig12_anomaly_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig12_anomaly_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
