#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace bw::util {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, BinPlacement) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(HistogramTest, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(HistogramTest, WeightsAndFractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(CategoricalHistogramTest, CountsAndFractions) {
  CategoricalHistogram h;
  h.add("udp", 3.0);
  h.add("tcp");
  h.add("udp");
  EXPECT_DOUBLE_EQ(h.count("udp"), 4.0);
  EXPECT_DOUBLE_EQ(h.count("tcp"), 1.0);
  EXPECT_DOUBLE_EQ(h.count("absent"), 0.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.fraction("udp"), 0.8);
}

TEST(CategoricalHistogramTest, KeysByCountOrdering) {
  CategoricalHistogram h;
  h.add("b", 2.0);
  h.add("a", 2.0);
  h.add("c", 5.0);
  const auto keys = h.keys_by_count();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "c");
  EXPECT_EQ(keys[1], "a");  // tie broken alphabetically
  EXPECT_EQ(keys[2], "b");
}

TEST(CategoricalHistogramTest, EmptyFraction) {
  const CategoricalHistogram h;
  EXPECT_DOUBLE_EQ(h.fraction("x"), 0.0);
}

}  // namespace
}  // namespace bw::util
