file(REMOVE_RECURSE
  "CMakeFiles/bw_ixp.dir/ixp/blackhole_service.cpp.o"
  "CMakeFiles/bw_ixp.dir/ixp/blackhole_service.cpp.o.d"
  "CMakeFiles/bw_ixp.dir/ixp/fabric.cpp.o"
  "CMakeFiles/bw_ixp.dir/ixp/fabric.cpp.o.d"
  "CMakeFiles/bw_ixp.dir/ixp/member.cpp.o"
  "CMakeFiles/bw_ixp.dir/ixp/member.cpp.o.d"
  "CMakeFiles/bw_ixp.dir/ixp/platform.cpp.o"
  "CMakeFiles/bw_ixp.dir/ixp/platform.cpp.o.d"
  "libbw_ixp.a"
  "libbw_ixp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_ixp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
