// IPv4 prefix (CIDR) value type. Prefix length is central to the paper's
// acceptance analysis (Section 4.2): /24 RTBHs are widely accepted while
// /25-/32 require explicit whitelisting and often are not.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"

namespace bw::net {

class Prefix {
 public:
  constexpr Prefix() = default;

  /// Construct from any address inside the prefix; host bits are zeroed.
  constexpr Prefix(Ipv4 addr, std::uint8_t length)
      : addr_(Ipv4(addr.value() & mask_bits(length))),
        length_(length <= 32 ? length : 32) {}

  /// Parse "a.b.c.d/len"; a bare address parses as a /32.
  static std::optional<Prefix> parse(std::string_view text);

  /// Host route for a single address.
  static constexpr Prefix host(Ipv4 addr) noexcept { return Prefix(addr, 32); }

  [[nodiscard]] constexpr Ipv4 network() const noexcept { return addr_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return mask_bits(length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4 addr) const noexcept {
    return (addr.value() & mask()) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Number of addresses covered (2^(32-len)).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The i-th address inside the prefix (i taken modulo size()).
  [[nodiscard]] constexpr Ipv4 address_at(std::uint64_t i) const noexcept {
    return Ipv4(addr_.value() + static_cast<std::uint32_t>(i % size()));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_bits(std::uint8_t length) noexcept {
    return length == 0 ? 0u
                       : ~std::uint32_t{0} << (32 - (length <= 32 ? length : 32));
  }

  Ipv4 addr_{};
  std::uint8_t length_{0};
};

}  // namespace bw::net

template <>
struct std::hash<bw::net::Prefix> {
  std::size_t operator()(const bw::net::Prefix& p) const noexcept {
    const std::uint64_t key =
        (std::uint64_t{p.network().value()} << 8) | p.length();
    return std::hash<std::uint64_t>{}(key);
  }
};
