// Per-host port statistics outside RTBH activity (Section 6; Figs. 16-17,
// Table 4).
//
// For every blackholed /32 address, traffic *outside* its RTBH events (and
// outside a 10-minute reaction window before each event) is aggregated:
// port-diversity features for the RadViz projection, and the daily "top
// port" sequence whose variation separates servers (stable listening
// ports) from clients (ephemeral ports that change daily).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/dataset.hpp"
#include "core/event_merge.hpp"
#include "peeringdb/registry.hpp"
#include "util/parallel.hpp"

namespace bw::core {

enum class HostClass : std::uint8_t { kClient, kServer, kUnclassified };

[[nodiscard]] std::string_view to_string(HostClass c);

struct HostPortStats {
  net::Ipv4 ip;
  std::optional<bgp::Asn> origin;

  // RadViz features (Fig. 16).
  std::size_t unique_src_ports_in{0};
  std::size_t unique_dst_ports_in{0};
  std::size_t unique_src_ports_out{0};
  std::size_t unique_dst_ports_out{0};

  std::size_t days_with_inbound{0};
  std::size_t days_with_outbound{0};
  /// Days with both directions (the paper's >= 20-day criterion).
  std::size_t days_bidirectional{0};

  /// Distinct daily top (proto, port) tuples of inbound traffic.
  std::vector<net::ProtoPort> top_ports;
  /// #top ports / #days with inbound traffic (Fig. 17's y axis).
  double port_variation{0.0};

  HostClass classification{HostClass::kUnclassified};
};

struct PortStatsReport {
  std::vector<HostPortStats> hosts;  ///< all blackholed /32 hosts with data
  std::size_t eligible_hosts{0};     ///< >= min_days bidirectional
  std::size_t clients{0};
  std::size_t servers{0};
  std::size_t blackholed_hosts_total{0};  ///< all /32 event addresses
};

struct PortStatsConfig {
  std::size_t min_days{20};          ///< paper's conservative lower bound
  double client_variation_min{0.5};  ///< port variation threshold
  util::DurationMs reaction_window{10 * util::kMinute};
};

/// The flow-log pass shards over `pool` (null: the global pool) with
/// per-shard accumulators; set/sum merging keeps the result identical at
/// any thread count.
/// A non-null `deadline` is polled per chunk (cooperative supervision).
[[nodiscard]] PortStatsReport compute_port_stats(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PortStatsConfig& config = {}, util::ThreadPool* pool = nullptr,
    const util::Deadline* deadline = nullptr,
    KernelEngine engine = KernelEngine::kColumnar);

/// Table 4: origin-AS type distribution of detected clients and servers.
struct AsnTypeRow {
  pdb::OrgType type{pdb::OrgType::kUnknown};
  std::size_t clients{0};
  std::size_t servers{0};
};

[[nodiscard]] std::vector<AsnTypeRow> asn_type_table(
    const PortStatsReport& report, const pdb::Registry& registry);

}  // namespace bw::core
