#include "core/io_text.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace bw::core {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  if (!line.empty() && line.back() == sep) out.emplace_back();
  return out;
}

template <typename T>
bool parse_int(const std::string& s, T& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

}  // namespace

void write_control_csv(std::ostream& os, const bgp::UpdateLog& log) {
  os << "time_ms,type,sender_asn,origin_asn,prefix,next_hop,communities\n";
  for (const auto& u : log) {
    os << u.time << ','
       << (u.type == bgp::UpdateType::kAnnounce ? 'A' : 'W') << ','
       << u.sender_asn << ',' << u.origin_asn << ',' << u.prefix.to_string()
       << ',' << u.next_hop.to_string() << ',';
    for (std::size_t i = 0; i < u.communities.size(); ++i) {
      if (i != 0) os << ' ';
      os << u.communities[i].to_string();
    }
    os << '\n';
  }
}

void write_flows_csv(std::ostream& os, const flow::FlowLog& flows) {
  os << "time_ms,src_ip,dst_ip,proto,src_port,dst_port,src_mac,dst_mac,"
        "packets,bytes\n";
  for (const auto& r : flows) {
    os << r.time << ',' << r.src_ip.to_string() << ',' << r.dst_ip.to_string()
       << ',' << static_cast<int>(r.proto) << ',' << r.src_port << ','
       << r.dst_port << ',' << r.src_mac.to_string() << ','
       << r.dst_mac.to_string() << ',' << r.packets << ',' << r.bytes << '\n';
  }
}

void write_macs_csv(std::ostream& os,
                    const std::unordered_map<net::Mac, bgp::Asn>& macs) {
  os << "mac,asn\n";
  for (const auto& [mac, asn] : macs) {
    os << mac.to_string() << ',' << asn << '\n';
  }
}

void write_origins_csv(
    std::ostream& os,
    const std::vector<std::pair<net::Prefix, bgp::Asn>>& origins) {
  os << "prefix,asn\n";
  for (const auto& [prefix, asn] : origins) {
    os << prefix.to_string() << ',' << asn << '\n';
  }
}

void export_dataset_csv(const Dataset& dataset, const std::string& directory) {
  std::filesystem::create_directories(directory);
  auto open = [&](const char* name) {
    std::ofstream os(directory + "/" + name, std::ios::trunc);
    if (!os) {
      throw std::runtime_error(std::string("export_dataset_csv: cannot open ") +
                               directory + "/" + name);
    }
    return os;
  };
  {
    auto os = open("control.csv");
    write_control_csv(os, dataset.control());
  }
  {
    auto os = open("flows.csv");
    write_flows_csv(os, dataset.flows());
  }
  {
    auto os = open("macs.csv");
    write_macs_csv(os, dataset.mac_table());
  }
  {
    auto os = open("origins.csv");
    write_origins_csv(os, dataset.origin_prefixes());
  }
  {
    auto os = open("period.csv");
    os << "begin_ms,end_ms\n"
       << dataset.period().begin << ',' << dataset.period().end << '\n';
  }
}

std::optional<bgp::UpdateLog> read_control_csv(std::istream& is) {
  bgp::UpdateLog log;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    if (f.size() != 7) return std::nullopt;
    bgp::Update u;
    if (!parse_int(f[0], u.time)) return std::nullopt;
    if (f[1] == "A") u.type = bgp::UpdateType::kAnnounce;
    else if (f[1] == "W") u.type = bgp::UpdateType::kWithdraw;
    else return std::nullopt;
    if (!parse_int(f[2], u.sender_asn)) return std::nullopt;
    if (!parse_int(f[3], u.origin_asn)) return std::nullopt;
    const auto prefix = net::Prefix::parse(f[4]);
    const auto next_hop = net::Ipv4::parse(f[5]);
    if (!prefix || !next_hop) return std::nullopt;
    u.prefix = *prefix;
    u.next_hop = *next_hop;
    if (!f[6].empty()) {
      for (const auto& c : split(f[6], ' ')) {
        const auto community = bgp::Community::parse(c);
        if (!community) return std::nullopt;
        u.communities.push_back(*community);
      }
    }
    log.push_back(std::move(u));
  }
  return log;
}

std::optional<flow::FlowLog> read_flows_csv(std::istream& is) {
  flow::FlowLog flows;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    if (f.size() != 10) return std::nullopt;
    flow::FlowRecord r;
    int proto = 0;
    if (!parse_int(f[0], r.time) || !parse_int(f[3], proto) ||
        !parse_int(f[4], r.src_port) || !parse_int(f[5], r.dst_port) ||
        !parse_int(f[8], r.packets) || !parse_int(f[9], r.bytes)) {
      return std::nullopt;
    }
    const auto src = net::Ipv4::parse(f[1]);
    const auto dst = net::Ipv4::parse(f[2]);
    const auto smac = net::Mac::parse(f[6]);
    const auto dmac = net::Mac::parse(f[7]);
    if (!src || !dst || !smac || !dmac) return std::nullopt;
    r.src_ip = *src;
    r.dst_ip = *dst;
    r.proto = static_cast<net::Proto>(proto);
    r.src_mac = *smac;
    r.dst_mac = *dmac;
    flows.push_back(r);
  }
  return flows;
}

std::optional<std::unordered_map<net::Mac, bgp::Asn>> read_macs_csv(
    std::istream& is) {
  std::unordered_map<net::Mac, bgp::Asn> macs;
  std::string line;
  std::getline(is, line);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    if (f.size() != 2) return std::nullopt;
    const auto mac = net::Mac::parse(f[0]);
    bgp::Asn asn = 0;
    if (!mac || !parse_int(f[1], asn)) return std::nullopt;
    macs[*mac] = asn;
  }
  return macs;
}

std::optional<std::vector<std::pair<net::Prefix, bgp::Asn>>> read_origins_csv(
    std::istream& is) {
  std::vector<std::pair<net::Prefix, bgp::Asn>> origins;
  std::string line;
  std::getline(is, line);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line, ',');
    if (f.size() != 2) return std::nullopt;
    const auto prefix = net::Prefix::parse(f[0]);
    bgp::Asn asn = 0;
    if (!prefix || !parse_int(f[1], asn)) return std::nullopt;
    origins.emplace_back(*prefix, asn);
  }
  return origins;
}

Dataset import_dataset_csv(const std::string& directory) {
  auto open = [&](const char* name) {
    std::ifstream is(directory + "/" + name);
    if (!is) {
      throw std::runtime_error(std::string("import_dataset_csv: cannot open ") +
                               directory + "/" + name);
    }
    return is;
  };
  auto control_is = open("control.csv");
  auto control = read_control_csv(control_is);
  auto flows_is = open("flows.csv");
  auto flows = read_flows_csv(flows_is);
  auto macs_is = open("macs.csv");
  auto macs = read_macs_csv(macs_is);
  auto origins_is = open("origins.csv");
  auto origins = read_origins_csv(origins_is);
  if (!control || !flows || !macs || !origins) {
    throw std::runtime_error("import_dataset_csv: malformed CSV in " +
                             directory);
  }

  util::TimeRange period{0, 0};
  {
    auto is = open("period.csv");
    std::string line;
    std::getline(is, line);  // header
    if (!std::getline(is, line)) {
      throw std::runtime_error("import_dataset_csv: missing period row");
    }
    const auto f = split(line, ',');
    if (f.size() != 2 || !parse_int(f[0], period.begin) ||
        !parse_int(f[1], period.end)) {
      throw std::runtime_error("import_dataset_csv: malformed period.csv");
    }
  }
  return Dataset(std::move(*control), std::move(*flows), std::move(*macs),
                 std::move(*origins), period);
}

}  // namespace bw::core
