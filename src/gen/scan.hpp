// Internet background radiation and scan traffic (Section 2.2): low-volume
// probes towards monitored address space. Scans bias the inbound port
// statistics (Section 6.3, "incoming traffic is biased by scans") and give
// squatting-protection RTBHs their characteristic trickle of traffic.
#pragma once

#include <span>

#include "ixp/platform.hpp"
#include "net/prefix.hpp"
#include "util/rng.hpp"

namespace bw::gen {

struct ScanConfig {
  /// Expected scan bursts per monitored /32 per day.
  double bursts_per_ip_day{0.012};
  /// Packets per scan burst (SYN probes, small UDP probes).
  std::int64_t packets_per_burst{8000};
};

class ScanGenerator {
 public:
  ScanGenerator(ScanConfig config, util::Rng rng) : cfg_(config), rng_(rng) {}

  /// Emit scan traffic towards every address of `targets` (sampled per
  /// day over `period`), entering via random `ingress` members.
  void emit(std::span<const net::Ipv4> targets,
            std::span<const flow::MemberId> ingress, util::TimeRange period,
            const ixp::Platform::BurstSink& sink);

  /// Emit a single day's scan traffic (`day` indexes from period start) —
  /// the sharded scenario driver's per-day emission unit.
  void emit_day(std::span<const net::Ipv4> targets,
                std::span<const flow::MemberId> ingress,
                util::TimeRange period, int day,
                const ixp::Platform::BurstSink& sink);

  /// Replace the generator's stream (see LegitGenerator::reseed).
  void reseed(util::Rng rng) { rng_ = rng; }

 private:
  /// One Bernoulli trial for (target, day): maybe emit one probe burst.
  void maybe_emit_burst(net::Ipv4 target,
                        std::span<const flow::MemberId> ingress,
                        util::TimeMs day_begin,
                        const ixp::Platform::BurstSink& sink);

  ScanConfig cfg_;
  util::Rng rng_;
};

}  // namespace bw::gen
