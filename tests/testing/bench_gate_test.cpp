// Unit tests for the bench JSON parser and the perf-regression gate logic
// behind tools/bench-gate.
#include <gtest/gtest.h>

#include <string>

#include "testing/bench_gate.hpp"

namespace bw::testing {
namespace {

constexpr const char* kBenchDoc = R"({
  "bench_schema_version": 2,
  "benchmark": "run_pipeline",
  "scale": 0.25,
  "flow_records": 3513509,
  "hardware_concurrency": 8,
  "wall_ms_by_threads": {
    "1": 2000.0,
    "8": 400.0
  },
  "flows_per_s_by_threads": {
    "1": 1756754.5,
    "8": 8783772.5
  },
  "speedup_8_vs_1": 5.0
})";

std::string doc_with_thread1_fps(double fps) {
  return std::string(R"({
    "bench_schema_version": 2,
    "benchmark": "run_pipeline",
    "flows_per_s_by_threads": { "1": )") +
         std::to_string(fps) + " }\n}";
}

TEST(BenchJsonTest, ParsesUnifiedSchema) {
  const auto parsed = parse_bench_json(kBenchDoc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const BenchJson& doc = parsed.value();
  EXPECT_EQ(doc.name(), "run_pipeline");
  EXPECT_EQ(doc.number("bench_schema_version"), 2.0);
  EXPECT_EQ(doc.number("flow_records"), 3513509.0);
  EXPECT_EQ(doc.number("wall_ms_by_threads.1"), 2000.0);
  EXPECT_EQ(doc.number("flows_per_s_by_threads.8"), 8783772.5);
  EXPECT_TRUE(doc.has("speedup_8_vs_1"));
  EXPECT_FALSE(doc.has("no_such_key"));
  EXPECT_EQ(doc.number("no_such_key", -1.0), -1.0);
}

TEST(BenchJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_bench_json("").ok());
  EXPECT_FALSE(parse_bench_json("{").ok());
  EXPECT_FALSE(parse_bench_json(R"({"a": })").ok());
  EXPECT_FALSE(parse_bench_json(R"({"a": 1} trailing)").ok());
  EXPECT_FALSE(parse_bench_json(R"([1, 2, 3])").ok());
}

TEST(BenchGateTest, PassesWhenCurrentMatchesBaseline) {
  const auto baseline = parse_bench_json(kBenchDoc);
  const auto current = parse_bench_json(kBenchDoc);
  ASSERT_TRUE(baseline.ok() && current.ok());
  const GateResult r =
      check_regression(baseline.value(), current.value(), 0.10);
  EXPECT_TRUE(r.pass) << r.message;
  EXPECT_EQ(r.metric, "flows_per_s_by_threads.1");
}

TEST(BenchGateTest, PassesOnImprovementAndWithinTolerance) {
  const auto base = parse_bench_json(doc_with_thread1_fps(1000000.0));
  const auto faster = parse_bench_json(doc_with_thread1_fps(1500000.0));
  const auto slightly_slower = parse_bench_json(doc_with_thread1_fps(950000.0));
  ASSERT_TRUE(base.ok() && faster.ok() && slightly_slower.ok());
  EXPECT_TRUE(check_regression(base.value(), faster.value(), 0.10).pass);
  // 5% below baseline is inside the 10% budget.
  EXPECT_TRUE(
      check_regression(base.value(), slightly_slower.value(), 0.10).pass);
}

TEST(BenchGateTest, FailsBeyondRegressionBudget) {
  const auto base = parse_bench_json(doc_with_thread1_fps(1000000.0));
  const auto slow = parse_bench_json(doc_with_thread1_fps(850000.0));
  ASSERT_TRUE(base.ok() && slow.ok());
  const GateResult r = check_regression(base.value(), slow.value(), 0.10);
  EXPECT_FALSE(r.pass);
  // The failure message must name the regressing metric.
  EXPECT_NE(r.message.find("flows_per_s_by_threads.1"), std::string::npos)
      << r.message;
  EXPECT_NE(r.message.find("REGRESSION"), std::string::npos) << r.message;
}

TEST(BenchGateTest, DoctoredBaselineTenPercentAboveMeasuredFails) {
  // The CI negative test in miniature: a baseline claiming 10%+ more
  // throughput than actually measured must trip the gate.
  const auto measured = parse_bench_json(doc_with_thread1_fps(1000000.0));
  const auto doctored = parse_bench_json(doc_with_thread1_fps(1120000.0));
  ASSERT_TRUE(measured.ok() && doctored.ok());
  EXPECT_FALSE(
      check_regression(doctored.value(), measured.value(), 0.10).pass);
}

TEST(BenchGateTest, SchemaVersionMismatchFails) {
  const auto v2 = parse_bench_json(doc_with_thread1_fps(1000000.0));
  const auto v1 = parse_bench_json(R"({
    "benchmark": "run_pipeline",
    "flows_per_s_by_threads": { "1": 1000000.0 }
  })");
  ASSERT_TRUE(v2.ok() && v1.ok());
  const GateResult r = check_regression(v1.value(), v2.value(), 0.10);
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.message.find("refresh the baseline"), std::string::npos)
      << r.message;
}

TEST(BenchGateTest, MissingMetricFailsNamingTheMetric) {
  const auto ok = parse_bench_json(doc_with_thread1_fps(1000000.0));
  const auto no_metric = parse_bench_json(R"({
    "bench_schema_version": 2,
    "benchmark": "run_pipeline"
  })");
  ASSERT_TRUE(ok.ok() && no_metric.ok());
  const GateResult r = check_regression(ok.value(), no_metric.value(), 0.10);
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.message.find("flows_per_s_by_threads.1"), std::string::npos)
      << r.message;
}

TEST(BenchGateTest, AlternateThreadColumn) {
  const auto base = parse_bench_json(kBenchDoc);
  ASSERT_TRUE(base.ok());
  const GateResult r =
      check_regression(base.value(), base.value(), 0.10, "8");
  EXPECT_TRUE(r.pass) << r.message;
  EXPECT_EQ(r.metric, "flows_per_s_by_threads.8");
}

}  // namespace
}  // namespace bw::testing
