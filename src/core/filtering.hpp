// Fine-grained filtering what-if analysis (Section 5.5, Fig. 14).
//
// For each attack-correlated RTBH event, emulate filtering only the packets
// matching known UDP amplification signatures (source port on the Table 3
// list) and measure which share of the event's traffic that covers. In the
// paper ~90% of events could be handled completely this way — dropping the
// attack while sparing legitimate flows.
#pragma once

#include <vector>

#include "core/event_merge.hpp"
#include "core/pre_rtbh.hpp"

namespace bw::core {

struct FilteringReport {
  /// Per qualifying event: share of its packets matched by the
  /// amplification-port filter.
  std::vector<double> coverage;
  std::size_t events_considered{0};
  double fully_filterable_fraction{0.0};  ///< coverage >= threshold
  double threshold{0.95};
};

[[nodiscard]] FilteringReport compute_filtering(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PreRtbhReport& pre, double full_threshold = 0.95,
    KernelEngine engine = KernelEngine::kColumnar);

}  // namespace bw::core
