// DDoS attack traffic generator.
//
// Produces the attack-side data plane of Section 2.2 / Section 5: UDP
// reflection-amplification floods built from the Table 3 protocol list
// (unspoofed reflector sources, random victim destination ports), TCP SYN
// floods (spoofed random sources), and the hard-to-filter 10% of Section
// 5.5: random-port UDP floods, increasing-port sweeps, and multi-protocol
// mixes.
#pragma once

#include <vector>

#include "gen/amplification.hpp"
#include "ixp/platform.hpp"
#include "net/ipv4.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bw::gen {

enum class VectorKind : std::uint8_t {
  kUdpAmplification,  ///< reflected; src port = amplification service
  kSynFlood,          ///< TCP SYN; spoofed random sources
  kUdpRandomPorts,    ///< UDP flood over random src/dst ports
  kUdpIncreasingPorts ///< UDP flood sweeping increasing dst ports
};

struct AttackVector {
  VectorKind kind{VectorKind::kUdpAmplification};
  net::Port amp_port{0};  ///< for kUdpAmplification: the reflector port
  /// Share of the attack's packet volume carried by this vector.
  double volume_share{1.0};
};

struct AttackSpec {
  net::Ipv4 victim;
  util::TimeRange window;       ///< attack active period (true time)
  std::int64_t total_packets{0};
  std::vector<AttackVector> vectors;
  std::size_t amplifier_count{60};  ///< reflectors participating
  std::int32_t packet_bytes{1200};  ///< amplified payloads are large
};

class DdosGenerator {
 public:
  DdosGenerator(const AmplifierPool& pool, util::Rng rng)
      : pool_(&pool), rng_(rng) {}

  /// Emit the bursts of one attack into the sink. Reflected vectors draw
  /// real amplifiers (unspoofed origin attribution works); SYN floods and
  /// carpet vectors enter at random members with spoofed sources.
  void emit(const AttackSpec& spec,
            std::span<const flow::MemberId> spoofed_ingress_members,
            const ixp::Platform::BurstSink& sink);

 private:
  void emit_amplification(const AttackSpec& spec, const AttackVector& vec,
                          std::int64_t vector_packets,
                          const ixp::Platform::BurstSink& sink);
  void emit_syn_flood(const AttackSpec& spec, std::int64_t vector_packets,
                      std::span<const flow::MemberId> ingress,
                      const ixp::Platform::BurstSink& sink);
  void emit_udp_carpet(const AttackSpec& spec, std::int64_t vector_packets,
                       std::span<const flow::MemberId> ingress, bool increasing,
                       const ixp::Platform::BurstSink& sink);

  const AmplifierPool* pool_;
  util::Rng rng_;
};

}  // namespace bw::gen
