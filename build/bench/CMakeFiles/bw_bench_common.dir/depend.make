# Empty dependencies file for bw_bench_common.
# This may be replaced when dependencies are built.
