
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/anomaly_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/anomaly_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/anomaly_test.cpp.o.d"
  "/root/repo/tests/core/classify_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/classify_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/classify_test.cpp.o.d"
  "/root/repo/tests/core/dataset_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/dataset_test.cpp.o.d"
  "/root/repo/tests/core/empty_edge_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/empty_edge_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/empty_edge_test.cpp.o.d"
  "/root/repo/tests/core/event_merge_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/event_merge_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/event_merge_test.cpp.o.d"
  "/root/repo/tests/core/io_text_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/io_text_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/io_text_test.cpp.o.d"
  "/root/repo/tests/core/monitor_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/monitor_test.cpp.o.d"
  "/root/repo/tests/core/port_stats_collateral_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/port_stats_collateral_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/port_stats_collateral_test.cpp.o.d"
  "/root/repo/tests/core/pre_rtbh_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/pre_rtbh_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/pre_rtbh_test.cpp.o.d"
  "/root/repo/tests/core/protocol_filter_participation_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/protocol_filter_participation_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/protocol_filter_participation_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/time_offset_load_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/time_offset_load_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/time_offset_load_test.cpp.o.d"
  "/root/repo/tests/core/visibility_drop_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/visibility_drop_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/visibility_drop_test.cpp.o.d"
  "/root/repo/tests/core/whatif_test.cpp" "tests/CMakeFiles/bw_core_test.dir/core/whatif_test.cpp.o" "gcc" "tests/CMakeFiles/bw_core_test.dir/core/whatif_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
