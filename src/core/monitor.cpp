#include "core/monitor.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace bw::core {

namespace {

obs::Counter& monitor_counter(const char* what) {
  return obs::Registry::global().counter(std::string("monitor.") + what);
}

}  // namespace

std::string_view to_string(AlertKind k) {
  switch (k) {
    case AlertKind::kEventStarted: return "event-started";
    case AlertKind::kEventEnded: return "event-ended";
    case AlertKind::kAttackCorrelated: return "attack-correlated";
    case AlertKind::kLowDropRate: return "low-drop-rate";
    case AlertKind::kZombieSuspect: return "zombie-suspect";
  }
  return "unknown";
}

RtbhMonitor::RtbhMonitor(MonitorConfig config, AlertSink sink)
    : cfg_(config), sink_(std::move(sink)) {}

RtbhMonitor::PrefixState& RtbhMonitor::state_for(const net::Prefix& prefix) {
  auto [it, fresh] = prefixes_.try_emplace(prefix);
  if (fresh) {
    it->second.detectors.assign(kFeatureCount,
                                util::EwmaDetector(cfg_.ewma));
    if (prefix.length() < 32) wide_prefixes_.push_back(prefix);
    lru_.push_front(prefix);
    it->second.lru_it = lru_.begin();
    evict_over_cap();
  } else {
    touch(it->second);
  }
  return it->second;
}

void RtbhMonitor::touch(PrefixState& st) {
  lru_.splice(lru_.begin(), lru_, st.lru_it);
}

void RtbhMonitor::evict_over_cap() {
  if (cfg_.max_destinations == 0) return;
  // Keep at least the entry just touched (the LRU front) alive, so the
  // caller's reference stays valid even with a cap of 1.
  while (prefixes_.size() > cfg_.max_destinations && lru_.size() > 1) {
    const net::Prefix victim = lru_.back();
    auto it = prefixes_.find(victim);
    PrefixState& st = it->second;
    if (st.in_event) {
      // State is shed loudly: the evicted event gets its final alert so
      // downstream consumers never see an event silently vanish.
      st.in_event = false;
      std::ostringstream os;
      os << victim.to_string() << " evicted with its event still open (LRU"
         << " cap " << cfg_.max_destinations << " destinations)";
      emit(AlertKind::kEventEnded, std::max(now_, st.event_start), victim, st,
           0.0, os.str());
      active_.erase(victim);
    }
    if (victim.length() < 32) {
      wide_prefixes_.erase(
          std::remove(wide_prefixes_.begin(), wide_prefixes_.end(), victim),
          wide_prefixes_.end());
    }
    lru_.pop_back();
    prefixes_.erase(it);
    static obs::Counter& evictions = monitor_counter("evictions");
    evictions.add();
  }
}

void RtbhMonitor::emit(AlertKind kind, util::TimeMs t,
                       const net::Prefix& prefix, const PrefixState& st,
                       double value, std::string message) {
  Alert alert;
  alert.kind = kind;
  alert.time = t;
  alert.prefix = prefix;
  alert.origin = st.origin;
  alert.value = value;
  alert.message = std::move(message);
  ++alerts_emitted_;
  static obs::Counter& alerts = monitor_counter("alerts");
  alerts.add();
  if (sink_) sink_(alert);
}

void RtbhMonitor::close_slot(const net::Prefix& prefix, PrefixState& st) {
  if (st.slot_index < 0) return;
  const std::array<double, kFeatureCount> values{
      st.slot_packets, st.slot_flows,
      static_cast<double>(st.slot_sources.size()),
      static_cast<double>(st.slot_ports.size()), st.slot_non_tcp};
  int level = 0;
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    if (st.detectors[f].push(values[f])) ++level;
  }
  if (level > 0) {
    st.last_anomaly_level = level;
    st.last_anomaly_at = st.slot_index * cfg_.slot;  // slot start
  }
  st.slot_packets = st.slot_flows = st.slot_non_tcp = 0;
  st.slot_sources.clear();
  st.slot_ports.clear();
  st.last_closed_slot = st.slot_index;
  st.slot_index = -1;
  (void)prefix;
}

void RtbhMonitor::maybe_close_event(const net::Prefix& prefix,
                                    PrefixState& st, util::TimeMs now) {
  if (!st.in_event) return;

  // Zombie check while the event is open.
  if (!st.zombie_alerted && st.announced &&
      now - st.event_start >= cfg_.zombie_after &&
      st.packets_total < cfg_.zombie_max_packets) {
    st.zombie_alerted = true;
    std::ostringstream os;
    os << prefix.to_string() << " blackholed since "
       << util::format_time(st.event_start) << " with only "
       << st.packets_total << " sampled packets — forgotten?";
    emit(AlertKind::kZombieSuspect, now, prefix, st,
         static_cast<double>(st.packets_total), os.str());
  }

  maybe_end_event(prefix, st, now);
}

void RtbhMonitor::maybe_end_event(const net::Prefix& prefix, PrefixState& st,
                                  util::TimeMs now) {
  // Event end: withdrawn and the merge window has passed.
  if (!st.in_event) return;
  if (!st.announced && now - st.last_withdraw > cfg_.merge_delta) {
    st.in_event = false;
    std::ostringstream os;
    os << prefix.to_string() << " event ended after "
       << util::format_duration(st.last_withdraw - st.event_start);
    emit(AlertKind::kEventEnded, st.last_withdraw, prefix, st, 0.0, os.str());
  }
}

void RtbhMonitor::advance(util::TimeMs now) {
  if (now <= now_) return;
  now_ = now;
  // Sweep only open events, at most once per simulated minute.
  if (last_sweep_ != std::numeric_limits<util::TimeMs>::min() &&
      now - last_sweep_ < util::kMinute) {
    return;
  }
  last_sweep_ = now;
  std::vector<net::Prefix> closed;
  for (const auto& prefix : active_) {
    auto& st = prefixes_.at(prefix);
    maybe_close_event(prefix, st, now);
    if (!st.in_event) closed.push_back(prefix);
  }
  for (const auto& prefix : closed) active_.erase(prefix);
}

void RtbhMonitor::on_update(const bgp::Update& update) {
  if (!update.is_blackhole()) return;
  PrefixState& st = state_for(update.prefix);

  if (update.type == bgp::UpdateType::kAnnounce) {
    // Expire the merge window against this announcement's own timestamp.
    // The periodic sweep in advance() only runs when the clock moves, so
    // its cadence depends on how many flow records arrived in between —
    // segmentation must not: a re-announce past merge_delta always closes
    // the stale event and opens a fresh one, however quiet the data plane
    // was (or however much of it a shedding ingest dropped).
    maybe_end_event(update.prefix, st, update.time);
    st.announced = true;
    st.origin = update.origin_asn;
    if (!st.in_event) {
      // Flush the partially-filled slot so a burst immediately preceding
      // the announcement is visible to the correlation check.
      close_slot(update.prefix, st);
      st.in_event = true;
      st.event_start = update.time;
      st.packets_total = 0;
      st.packets_dropped = 0;
      st.attack_alerted = false;
      st.low_drop_alerted = false;
      st.zombie_alerted = false;
      active_.insert(update.prefix);
      ++total_events_;
      static obs::Counter& events = monitor_counter("events_total");
      events.add();
      std::ostringstream os;
      os << update.prefix.to_string() << " blackholed by AS"
         << update.sender_asn;
      emit(AlertKind::kEventStarted, update.time, update.prefix, st, 0.0,
           os.str());

      // Attack correlation: did this destination spike recently?
      if (st.last_anomaly_level > 0 &&
          update.time - st.last_anomaly_at <= cfg_.merge_delta) {
        st.attack_alerted = true;
        std::ostringstream msg;
        msg << update.prefix.to_string() << " anomaly level "
            << st.last_anomaly_level << "/5 within "
            << util::format_duration(
                   std::max<util::DurationMs>(update.time - st.last_anomaly_at, 0))
            << " of the blackhole — DDoS mitigation";
        emit(AlertKind::kAttackCorrelated, update.time, update.prefix, st,
             st.last_anomaly_level, msg.str());
      }
    }
  } else {
    st.announced = false;
    st.last_withdraw = update.time;
  }
  advance(update.time);
}

void RtbhMonitor::on_flow(const flow::FlowRecord& record) {
  PrefixState* st = nullptr;
  // Attribute the record to the longest announced prefix we track. The
  // common case is the /32; scan host first, then any tracked covering
  // prefix (bounded: tracked prefixes only).
  const net::Prefix host = net::Prefix::host(record.dst_ip);
  if (auto it = prefixes_.find(host); it != prefixes_.end()) {
    st = &it->second;
    touch(*st);
  } else {
    for (const auto& prefix : wide_prefixes_) {
      if (prefix.contains(record.dst_ip)) {
        st = &prefixes_.at(prefix);
        touch(*st);
        break;
      }
    }
  }
  if (st == nullptr) st = &state_for(host);

  // Slotted per-destination features for the anomaly detectors.
  const std::int64_t slot = util::slot_index(record.time, cfg_.slot);
  if (st->slot_index >= 0 && slot != st->slot_index) close_slot(host, *st);
  if (st->slot_index < 0) {
    // Backfill empty slots (bounded by the window) so detector baselines
    // see the silence between bursts, as the offline pipeline does.
    if (st->last_closed_slot != std::numeric_limits<std::int64_t>::min()) {
      const std::int64_t gap = std::clamp<std::int64_t>(
          slot - st->last_closed_slot - 1, 0,
          static_cast<std::int64_t>(cfg_.ewma.window));
      for (std::int64_t g = 0; g < gap; ++g) {
        for (auto& det : st->detectors) det.push(0.0);
      }
    }
    st->slot_index = slot;
  }
  st->slot_packets += record.packets;
  st->slot_flows += 1;
  st->slot_sources.emplace(record.src_ip.value(), true);
  st->slot_ports.emplace(record.dst_port, true);
  if (record.proto != net::Proto::kTcp) st->slot_non_tcp += 1;

  if (st->in_event) {
    st->packets_total += record.packets;
    if (record.dropped()) st->packets_dropped += record.packets;
    if (!st->low_drop_alerted && st->packets_total >= cfg_.min_drop_samples) {
      const double share = static_cast<double>(st->packets_dropped) /
                           static_cast<double>(st->packets_total);
      if (share < cfg_.low_drop_threshold) {
        st->low_drop_alerted = true;
        std::ostringstream os;
        os << "blackhole for " << record.dst_ip.to_string() << " leaking: only "
           << util::fmt_percent(share, 0) << " of " << st->packets_total
           << " sampled packets dropped — peers reject the host route?";
        emit(AlertKind::kLowDropRate, record.time, host, *st, share, os.str());
      }
    }
  }
  advance(record.time);
}

void RtbhMonitor::finish(util::TimeMs now) {
  for (auto& [prefix, st] : prefixes_) {
    close_slot(prefix, st);
    if (st.in_event) {
      // Feed ends with the blackhole still up: close the bookkeeping so
      // counters settle, but zombies stay flagged as such.
      maybe_close_event(prefix, st, now);
      if (st.in_event && !st.announced) st.in_event = false;
    }
  }
  active_.clear();
  now_ = std::max(now_, now);
}

std::size_t RtbhMonitor::active_events() const {
  std::size_t n = 0;
  for (const auto& [prefix, st] : prefixes_) {
    if (st.in_event) ++n;
  }
  return n;
}

}  // namespace bw::core
