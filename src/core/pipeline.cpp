#include "core/pipeline.hpp"

#include <array>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "gen/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/parallel.hpp"

namespace bw::core {

namespace {

/// Fixed stage order: the report's stage table (and therefore the rendered
/// document) is identical at every thread count.
constexpr const char* kStageNames[] = {
    "summary",   "event_merge",   "pre_rtbh", "drop_rate", "protocol_mix",
    "filtering", "participation", "victims",  "classify",
};
constexpr std::size_t kStageCount = std::size(kStageNames);

/// Per-stage metric handles, registered once under the documented names
/// (pipeline.stage.<name>.{runs,wall_us,cpu_us,degraded,timed_out}) and
/// cached so stage guards never take the registry mutex.
struct StageMetrics {
  obs::Counter* runs;
  obs::Counter* wall_us;
  obs::Counter* cpu_us;
  obs::Counter* degraded;
  obs::Counter* timed_out;
};

const std::array<StageMetrics, kStageCount>& stage_metrics() {
  static const auto* metrics = [] {
    auto* arr = new std::array<StageMetrics, kStageCount>();
    auto& reg = obs::Registry::global();
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const std::string base = std::string("pipeline.stage.") + kStageNames[i];
      (*arr)[i] = {&reg.counter(base + ".runs"),
                   &reg.counter(base + ".wall_us"),
                   &reg.counter(base + ".cpu_us"),
                   &reg.counter(base + ".degraded"),
                   &reg.counter(base + ".timed_out")};
    }
    return arr;
  }();
  return *metrics;
}

obs::Counter& cache_counter(const char* what) {
  auto& reg = obs::Registry::global();
  return reg.counter(std::string("scenario.cache.") + what);
}

}  // namespace

AnalysisReport run_pipeline(const Dataset& dataset,
                            const AnalysisConfig& config) {
  static obs::Counter& pipeline_runs =
      obs::Registry::global().counter("pipeline.runs");
  pipeline_runs.add();
  const obs::TraceSpan pipeline_span("run_pipeline", "pipeline");

  util::ThreadPool& pool = util::pool_or_global(config.pool);
  AnalysisReport report;
  report.data_quality.dataset = dataset.quality();

  // Per-stage isolation: each stage body runs inside a guard that converts
  // an escaped exception into a degraded StageStatus. The stage's report
  // section stays default-constructed; every other stage still runs. Each
  // guard writes only its own pre-allocated slot, so the guards are safe to
  // run from concurrent stage-graph tasks.
  // Supervision: each stage gets a fresh deadline at entry (stages run
  // concurrently, so a shared deadline would charge one stage for another's
  // runtime). The heavy kernels poll it per parallel_for chunk; expiry
  // surfaces as DeadlineExceeded and lands in the timed_out branch below.
  std::array<StageStatus, kStageCount> stages;
  for (std::size_t i = 0; i < kStageCount; ++i) stages[i].name = kStageNames[i];
  auto guarded = [&](std::size_t slot, auto&& body) {
    StageStatus& status = stages[slot];
    const StageMetrics& metrics = stage_metrics()[slot];
    const obs::TraceSpan span(std::string("stage.") + status.name, "pipeline");
    const obs::StopWatch wall;
    const obs::ThreadCpuTimer cpu;
    metrics.runs->add();
    const util::Deadline deadline = config.stage_timeout > 0
                                        ? util::Deadline::after(config.stage_timeout)
                                        : util::Deadline::never();
    try {
      for (const auto& fault : config.inject_stage_faults) {
        if (fault == status.name) {
          throw std::runtime_error("injected stage fault");
        }
      }
      for (const auto& hang : config.inject_stage_hangs) {
        if (hang != status.name) continue;
        if (deadline.never_expires()) {
          throw std::runtime_error("injected hang without a stage timeout");
        }
        // A wedged stage: burn wall-clock until the watchdog fires. The
        // poll-sleep loop models any stage whose checkpoints keep firing
        // but whose work never finishes.
        while (true) {
          deadline.check(status.name);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      body(deadline);
    } catch (const util::DeadlineExceeded& e) {
      status.degraded = true;
      status.timed_out = true;
      status.error = e.what();
    } catch (const std::exception& e) {
      status.degraded = true;
      status.error = e.what();
    } catch (...) {
      status.degraded = true;
      status.error = "unknown failure";
    }
    metrics.wall_us->add(wall.elapsed_us());
    metrics.cpu_us->add(cpu.elapsed_us());
    if (status.degraded) metrics.degraded->add();
    if (status.timed_out) metrics.timed_out->add();
  };

  // Serial prologue: event merging is cheap and everything depends on it;
  // the pre-RTBH scan (the heaviest kernel) fans events out internally.
  auto summary_done = pool.submit([&] {
    guarded(0, [&](const util::Deadline&) {
      report.summary = dataset.summary(&pool, config.engine);
    });
  });
  guarded(1, [&](const util::Deadline&) {
    report.events = merge_events(dataset.blackhole_updates(),
                                 dataset.period().end, config.merge_delta);
  });
  const std::vector<RtbhEvent>& events = report.events;
  guarded(2, [&](const util::Deadline& dl) {
    report.pre = compute_pre_rtbh(dataset, events, config.pre, &pool, &dl,
                                  config.engine);
  });

  // Stage graph: with events and the pre-RTBH report fixed, the remaining
  // stages only read shared immutable state and write disjoint report
  // fields, so they run concurrently. The victims chain (port stats ->
  // RadViz -> collateral) keeps its internal data dependency. Each stage
  // computes a thread-count-independent result, so the stage graph changes
  // wall-clock time only, never bytes. In serial mode (BW_THREADS=1)
  // submit() runs inline, reproducing the sequential stage order exactly.
  auto drop_done = pool.submit([&] {
    guarded(3, [&](const util::Deadline& dl) {
      report.drop = compute_drop_rates(dataset, events, config.drop, &pool,
                                       &dl, config.engine);
    });
  });
  auto protocols_done = pool.submit([&] {
    guarded(4, [&](const util::Deadline&) {
      report.protocols = compute_protocol_mix(dataset, events, report.pre,
                                              config.protocols, config.engine);
    });
  });
  auto filtering_done = pool.submit([&] {
    guarded(5, [&](const util::Deadline&) {
      report.filtering = compute_filtering(dataset, events, report.pre, 0.95,
                                           config.engine);
    });
  });
  auto participation_done = pool.submit([&] {
    guarded(6, [&](const util::Deadline&) {
      report.participation = compute_participation(dataset, events, report.pre);
    });
  });
  auto victims_done = pool.submit([&] {
    guarded(7, [&](const util::Deadline& dl) {
      report.ports = compute_port_stats(dataset, events, config.ports, &pool,
                                        &dl, config.engine);
      report.radviz = radviz_projection(report.ports, config.ports.min_days);
      report.collateral =
          compute_collateral(dataset, events, report.ports,
                             config.sampling_rate, &pool, &dl, config.engine);
    });
  });
  guarded(8, [&](const util::Deadline&) {
    report.classes = classify_events(dataset, events, report.pre,
                                     config.classify, config.engine);
  });

  summary_done.get();
  drop_done.get();
  protocols_done.get();
  filtering_done.get();
  participation_done.get();
  victims_done.get();

  report.data_quality.stages.assign(stages.begin(), stages.end());
  return report;
}

std::string scenario_cache_name(const gen::ScenarioConfig& cfg) {
  std::ostringstream os;
  // v7: the cache file moved to the checksummed v2 container framing.
  os << "v7|" << cfg.sampling_rate << '|' << cfg.scale << '|' << cfg.seed
     << '|' << cfg.period.begin << '|'
     << cfg.period.end << '|' << cfg.members << '|' << cfg.blackholer_members
     << '|' << cfg.victim_origin_as << '|' << cfg.amplifier_origins << '|'
     << cfg.amplifiers << '|' << cfg.server_hosts << '|' << cfg.client_hosts
     << '|' << cfg.idle_victims << '|' << cfg.rtbh_events << '|'
     << cfg.attack_fraction << '|' << cfg.steady_fraction << '|'
     << cfg.zombies << '|' << cfg.squatting_prefixes << '|'
     << cfg.content_blocking << '|' << cfg.attack_packets_log_mean << '|'
     << cfg.server_daily_packets << '|' << cfg.client_daily_packets;
  const std::size_t h = std::hash<std::string>{}(os.str());
  std::ostringstream name;
  name << "scenario_" << std::hex << h << ".bwds";
  return name.str();
}

std::size_t generation_shards(std::size_t concurrency) {
  return concurrency <= 1 ? 1 : concurrency * 4;
}

ScenarioRun run_scenario(const gen::ScenarioConfig& config,
                         std::optional<std::string> cache_dir,
                         util::ThreadPool* pool,
                         const util::Deadline* deadline) {
  const obs::TraceSpan run_span("run_scenario", "generate");
  gen::Scenario scenario(config);
  ixp::Platform platform(gen::Scenario::platform_config(config));
  scenario.install(platform);

  std::string cache_path;
  if (!cache_dir.has_value()) {
    const char* env = std::getenv("BW_CACHE_DIR");
    cache_dir = env != nullptr ? std::string(env) : std::string("bw_cache");
  }
  if (!cache_dir->empty()) {
    std::filesystem::create_directories(*cache_dir);
    cache_path = *cache_dir + "/" + scenario_cache_name(config);
  }

  std::vector<CacheIncident> incidents;
  auto finish = [&](Dataset dataset) {
    ScenarioRun run{std::move(dataset), scenario.registry(),
                    platform.route_server().peer_asns(), scenario.truth(),
                    std::move(incidents)};
    return run;
  };

  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    const obs::TraceSpan load_span("scenario.cache.load", "generate");
    auto loaded = Dataset::try_load(cache_path);
    if (loaded.ok()) {
      cache_counter("hit").add();
      return finish(std::move(loaded).value());
    }
    // Self-healing: a cache file that fails validation is a cache miss,
    // never a crash. Quarantine the bytes for post-mortem (best effort; a
    // failed rename falls back to removal so the bad file cannot be loaded
    // again), record the incident, and regenerate below.
    cache_counter("quarantined").add();
    CacheIncident incident;
    incident.path = cache_path;
    incident.error = loaded.status().to_string();
    const std::string quarantine = cache_path + ".corrupt";
    std::error_code ec;
    std::filesystem::rename(cache_path, quarantine, ec);
    if (!ec) {
      incident.quarantined_to = quarantine;
    } else {
      std::filesystem::remove(cache_path, ec);
    }
    incidents.push_back(std::move(incident));
  }
  // Reaching this point with caching enabled means the cache did not
  // deliver (absent or quarantined) and the corpus is regenerated.
  if (!cache_path.empty()) cache_counter("miss").add();

  // Sharded generation: cut the anchor-ordered emission plan into
  // contiguous, cost-balanced time slices and replay them concurrently
  // against the prepared platform. Every per-unit and per-burst draw is
  // content-keyed, and the slice outputs merge in shard order, so the
  // corpus bytes are invariant to the shard count (and thus BW_THREADS).
  util::ThreadPool& workers = util::pool_or_global(pool);
  const std::vector<gen::EmissionUnit> plan = scenario.emission_plan();
  const std::vector<gen::ShardRange> shards =
      gen::plan_shards(plan, generation_shards(workers.concurrency()));

  platform.prepare(scenario.control());
  std::vector<ixp::Platform::SliceResult> slices = util::parallel_map(
      workers, shards.size(),
      [&](std::size_t i) {
        const obs::TraceSpan slice_span("generate.run_slice", "generate");
        std::vector<gen::EmissionUnit> units(
            plan.begin() + static_cast<std::ptrdiff_t>(shards[i].begin),
            plan.begin() + static_cast<std::ptrdiff_t>(shards[i].end));
        return platform.run_slice(
            scenario.traffic_source(std::move(units), deadline));
      },
      0, deadline);
  ixp::RunResult result = platform.finish(std::move(slices));
  Dataset dataset = Dataset::from_run(std::move(result), platform);
  if (!cache_path.empty()) {
    // Cache writes are an optimisation: a save that still fails after the
    // bounded retry is recorded as an incident, never fatal. Only transient
    // (kUnavailable) errors are retried; a permanent error aborts at once.
    const obs::TraceSpan save_span("scenario.cache.save", "generate");
    const util::Status saved = util::retry_with_backoff(
        3, 10, [&] { return dataset.try_save(cache_path); });
    if (!saved.ok()) {
      cache_counter("save_failure").add();
      CacheIncident incident;
      incident.path = cache_path;
      incident.error = saved.to_string();
      incidents.push_back(std::move(incident));
    }
  }
  return finish(std::move(dataset));
}

gen::ScenarioConfig default_benchmark_scenario() {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.25;
  if (const char* env = std::getenv("BW_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) cfg.scale = s;
  }
  return cfg;
}

}  // namespace bw::core
