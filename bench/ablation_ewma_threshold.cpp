// Ablation: sensitivity of the Table 2 classification to the EWMA anomaly
// threshold.
//
// Section 5.3: "we tested extreme configurations such as thresholds of
// 10*SD (instead of 2.5) with very stable results" — because the observed
// pattern is either no traffic change at all or a very significant burst.
// This ablation quantifies exactly that claim over our corpus.
#include "common.hpp"
#include "core/pre_rtbh.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("ablation-ewma");
  const auto events = exp.report.events;

  bench::print_header("Ablation", "EWMA threshold vs Table 2 shares");
  util::TextTable table({"threshold [SD]", "no data", "data, no anomaly",
                         "data + anomaly <=10min"});
  auto csv = bench::open_csv("ablation_ewma_threshold",
                             {"threshold_sd", "no_data", "data_no_anomaly",
                              "data_anomaly_10m"});
  for (const double sd : {1.5, 2.5, 5.0, 10.0, 20.0}) {
    core::PreRtbhConfig cfg;
    cfg.ewma.threshold_sd = sd;
    const auto pre = compute_pre_rtbh(exp.run.dataset, events, cfg);
    const double total = static_cast<double>(pre.total());
    table.add_row({util::fmt_double(sd, 1),
                   util::fmt_percent(static_cast<double>(pre.no_data) / total, 1),
                   util::fmt_percent(
                       static_cast<double>(pre.data_no_anomaly) / total, 1),
                   util::fmt_percent(
                       static_cast<double>(pre.data_anomaly_10m) / total, 1)});
    csv->write_row({util::fmt_double(sd, 1),
                    util::fmt_double(static_cast<double>(pre.no_data) / total, 4),
                    util::fmt_double(
                        static_cast<double>(pre.data_no_anomaly) / total, 4),
                    util::fmt_double(
                        static_cast<double>(pre.data_anomaly_10m) / total, 4)});
  }
  std::cout << table;
  bench::print_paper_row("claimed stability", "2.5*SD vs 10*SD nearly equal",
                         "see table");
  return 0;
}
