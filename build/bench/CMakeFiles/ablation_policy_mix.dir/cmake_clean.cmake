file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_mix.dir/ablation_policy_mix.cpp.o"
  "CMakeFiles/ablation_policy_mix.dir/ablation_policy_mix.cpp.o.d"
  "ablation_policy_mix"
  "ablation_policy_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
