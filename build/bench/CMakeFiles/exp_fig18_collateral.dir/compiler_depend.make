# Empty compiler generated dependencies file for exp_fig18_collateral.
# This may be replaced when dependencies are built.
