#include "core/classify.hpp"

#include <gtest/gtest.h>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() : world_({0, util::days(100)}, 0) {}

  Dataset make_dataset() {
    bgp::UpdateLog control;
    std::vector<flow::TrafficBurst> bursts;
    auto& svc = world_.platform->service();

    // (a) Infrastructure protection: attack then short RTBH on day 50.
    const net::Ipv4 attacked(24, 0, 0, 1);
    const util::TimeMs t0 = util::days(50);
    control.push_back(svc.make_announce(t0, World::kVictimAsn, 50000,
                                        net::Prefix::host(attacked)));
    control.push_back(svc.make_withdraw(t0 + 2 * util::kHour,
                                        World::kVictimAsn, 50000,
                                        net::Prefix::host(attacked)));
    for (int a = 0; a < 15; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 1, static_cast<std::uint8_t>(a)), attacked,
          net::Proto::kUdp, 123, static_cast<net::Port>(30000 + a),
          {t0 - 9 * util::kMinute, t0 + util::kHour}, 5000, world_.acceptor));
    }

    // (b) Squatting candidate: /22, announced day 2, never withdrawn.
    control.push_back(svc.make_announce(util::days(2), World::kVictimAsn,
                                        51000,
                                        *net::Prefix::parse("28.0.0.0/22")));

    // (c) Zombie candidate: /32, announced day 10, never withdrawn, silent.
    const net::Ipv4 zombie(24, 0, 0, 3);
    control.push_back(svc.make_announce(util::days(10), World::kVictimAsn,
                                        50000, net::Prefix::host(zombie)));

    // (d) Other: /32 RTBH for a steady host, mid duration, no anomaly.
    const net::Ipv4 steady(24, 0, 0, 4);
    control.push_back(svc.make_announce(util::days(60), World::kVictimAsn,
                                        50000, net::Prefix::host(steady)));
    control.push_back(svc.make_withdraw(util::days(61), World::kVictimAsn,
                                        50000, net::Prefix::host(steady)));
    for (int day = 40; day < 59; ++day) {
      bursts.push_back(world_.burst(
          net::Ipv4(16, 0, 0, 5), steady, net::Proto::kTcp, 55555, 443,
          {day * util::kDay, day * util::kDay + util::kHour}, 200,
          world_.acceptor));
    }
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(ClassifyTest, AssignsAllFourClasses) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  ASSERT_EQ(events.size(), 4u);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto report = classify_events(dataset, events, pre);

  EXPECT_EQ(report.total(), 4u);
  EXPECT_EQ(report.infrastructure, 1u);
  EXPECT_EQ(report.squatting, 1u);
  EXPECT_EQ(report.squatting_prefixes, 1u);
  EXPECT_EQ(report.squatting_origin_as, 1u);
  EXPECT_EQ(report.zombies, 1u);
  EXPECT_EQ(report.other, 1u);

  for (const auto& ce : report.events) {
    const auto& ev = events[ce.event_index];
    switch (ce.cls) {
      case EventClass::kInfrastructureProtection:
        EXPECT_EQ(ev.prefix.network(), net::Ipv4(24, 0, 0, 1));
        EXPECT_GT(ce.sampled_packets, 0u);
        break;
      case EventClass::kSquattingCandidate:
        EXPECT_EQ(ev.prefix.length(), 22);
        EXPECT_GT(ce.duration, 90 * util::kDay);
        break;
      case EventClass::kZombieCandidate:
        EXPECT_EQ(ev.prefix.network(), net::Ipv4(24, 0, 0, 3));
        EXPECT_LT(ce.sampled_packets, 10u);
        break;
      case EventClass::kOther:
        EXPECT_EQ(ev.prefix.network(), net::Ipv4(24, 0, 0, 4));
        break;
    }
  }
}

TEST_F(ClassifyTest, LowTrafficOtherTracked) {
  // A short-lived /32 event with no traffic lands in "other" with the
  // low-traffic flag (the paper's 13% tail).
  bgp::UpdateLog control;
  auto& svc = world_.platform->service();
  const net::Ipv4 quiet(24, 0, 0, 9);
  control.push_back(svc.make_announce(util::days(50), World::kVictimAsn, 50000,
                                      net::Prefix::host(quiet)));
  control.push_back(svc.make_withdraw(util::days(50) + 6 * util::kHour,
                                      World::kVictimAsn, 50000,
                                      net::Prefix::host(quiet)));
  const Dataset dataset = world_.run(std::move(control), {});
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto pre = compute_pre_rtbh(dataset, events);
  const auto report = classify_events(dataset, events, pre);
  EXPECT_EQ(report.other, 1u);
  EXPECT_EQ(report.other_len32_low_traffic, 1u);
  EXPECT_EQ(report.zombies, 0u) << "not active until period end";
}

TEST(ClassifyNamesTest, Strings) {
  EXPECT_EQ(to_string(EventClass::kInfrastructureProtection),
            "infrastructure-protection");
  EXPECT_EQ(to_string(EventClass::kSquattingCandidate), "squatting-candidate");
  EXPECT_EQ(to_string(EventClass::kZombieCandidate), "zombie-candidate");
  EXPECT_EQ(to_string(EventClass::kOther), "other");
}

}  // namespace
}  // namespace bw::core
