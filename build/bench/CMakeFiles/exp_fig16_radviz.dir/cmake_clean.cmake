file(REMOVE_RECURSE
  "CMakeFiles/exp_fig16_radviz.dir/exp_fig16_radviz.cpp.o"
  "CMakeFiles/exp_fig16_radviz.dir/exp_fig16_radviz.cpp.o.d"
  "exp_fig16_radviz"
  "exp_fig16_radviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig16_radviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
