# Empty compiler generated dependencies file for bw-monitor.
# This may be replaced when dependencies are built.
