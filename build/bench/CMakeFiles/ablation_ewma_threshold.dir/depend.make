# Empty dependencies file for ablation_ewma_threshold.
# This may be replaced when dependencies are built.
