#include "core/visibility.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/stats.hpp"

namespace bw::core {

namespace {

struct SpanInfo {
  util::TimeRange range;
  bgp::Asn sender{0};
  /// Non-empty only when the announcement carried distribution actions:
  /// flag per peer index, 1 = peer does NOT receive this route.
  std::vector<std::uint8_t> excluded;
};

bool has_action_communities(const std::vector<bgp::Community>& communities,
                            std::uint16_t rs_asn) {
  for (const auto& c : communities) {
    if (c.global == 0) return true;
    if (c.global == rs_asn) return true;
  }
  return false;
}

}  // namespace

VisibilityReport compute_visibility(const Dataset& dataset,
                                    const std::vector<bgp::Asn>& peers,
                                    util::DurationMs sample_interval) {
  VisibilityReport report;
  report.sample_interval = std::max<util::DurationMs>(sample_interval, 1);
  if (peers.empty()) return report;

  // The route-server ASN is visible in the control data itself: it is the
  // next-hop-announcing session; we infer it as the most common `global`
  // part of positive action communities, falling back to the default.
  std::uint16_t rs_asn = 64600;
  {
    std::unordered_map<std::uint16_t, std::size_t> votes;
    for (const auto& u : dataset.blackhole_updates()) {
      for (const auto& c : u.communities) {
        if (c.global != 0 && c.global != 65535) ++votes[c.global];
      }
    }
    std::size_t best = 0;
    for (const auto& [asn, n] : votes) {
      if (n > best) {
        best = n;
        rs_asn = asn;
      }
    }
  }
  const bgp::TargetedAnnouncement targeted(rs_asn);

  std::unordered_map<bgp::Asn, std::size_t> peer_index;
  for (std::size_t i = 0; i < peers.size(); ++i) peer_index[peers[i]] = i;

  // Collect spans; precompute exclusion bitmaps for targeted ones.
  std::vector<SpanInfo> spans;
  dataset.rs_index().for_each([&](const net::Prefix&,
                                  const std::vector<bgp::BlackholeIndex::Span>&
                                      prefix_spans) {
    for (const auto& s : prefix_spans) {
      SpanInfo info;
      info.range = s.range;
      info.sender = s.sender;
      if (has_action_communities(s.communities, rs_asn)) {
        info.excluded.resize(peers.size(), 0);
        for (std::size_t i = 0; i < peers.size(); ++i) {
          const auto p16 = static_cast<std::uint16_t>(peers[i] & 0xFFFF);
          if (!targeted.should_announce(s.communities, p16)) {
            info.excluded[i] = 1;
          }
        }
      }
      spans.push_back(std::move(info));
    }
  });

  // Event-driven sweep over sample times.
  struct Edge {
    util::TimeMs time;
    std::size_t span;
    bool open;
  };
  std::vector<Edge> edges;
  edges.reserve(spans.size() * 2);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    edges.push_back({spans[i].range.begin, i, true});
    edges.push_back({spans[i].range.end, i, false});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return !a.open && b.open;  // close before open at identical times
  });

  std::unordered_map<bgp::Asn, std::size_t> active_plain_by_sender;
  std::vector<std::size_t> active_targeted;
  std::size_t active_total = 0;
  std::size_t edge_pos = 0;

  const util::TimeRange period = dataset.period();
  std::vector<double> missed(peers.size());
  for (util::TimeMs t = period.begin; t < period.end;
       t += report.sample_interval) {
    while (edge_pos < edges.size() && edges[edge_pos].time <= t) {
      const Edge& e = edges[edge_pos++];
      const SpanInfo& s = spans[e.span];
      if (s.excluded.empty()) {
        auto& n = active_plain_by_sender[s.sender];
        if (e.open) {
          ++n;
          ++active_total;
        } else if (n > 0) {
          --n;
          --active_total;
        }
      } else {
        if (e.open) {
          active_targeted.push_back(e.span);
          ++active_total;
        } else {
          const auto it = std::find(active_targeted.begin(),
                                    active_targeted.end(), e.span);
          if (it != active_targeted.end()) {
            active_targeted.erase(it);
            --active_total;
          }
        }
      }
    }

    VisibilityPoint point;
    point.time = t;
    point.announced = active_total;
    if (active_total > 0) {
      for (std::size_t i = 0; i < peers.size(); ++i) {
        double m = 0.0;
        const auto it = active_plain_by_sender.find(peers[i]);
        if (it != active_plain_by_sender.end()) {
          m += static_cast<double>(it->second);  // own routes not echoed
        }
        for (const std::size_t si : active_targeted) {
          const SpanInfo& s = spans[si];
          if (s.sender == peers[i] || s.excluded[i] != 0) m += 1.0;
        }
        missed[i] = m / static_cast<double>(active_total);
      }
      std::vector<double> sorted = missed;
      std::sort(sorted.begin(), sorted.end());
      point.missed_max = sorted.back();
      point.missed_p99 = util::quantile(sorted, 0.99);
      point.missed_median = util::quantile(sorted, 0.50);
    }
    report.overall_missed_max =
        std::max(report.overall_missed_max, point.missed_max);
    report.overall_missed_median_peak =
        std::max(report.overall_missed_median_peak, point.missed_median);
    report.series.push_back(point);
  }
  return report;
}

}  // namespace bw::core
