// Extension experiment: quantify the mitigation trade-off the paper's
// discussion (Sections 2, 5.5, 7.2) sketches — RTBH as observed vs perfect
// RTBH vs targeted announcements vs FlowSpec-style port filters vs
// IXP-side advanced blackholing — over the attack-correlated events.
//
// Expected shape: RTBH trades unpredictable efficacy for full collateral
// damage; a static amplification-port filter removes ~90% of the attack
// volume with almost no collateral; advanced blackholing closes most of
// the remaining gap at the cost of UDP collateral (gaming clients).
#include "common.hpp"
#include "core/whatif.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("whatif");
  const auto whatif =
      core::compute_whatif(exp.run.dataset, exp.report.events, exp.report.pre);

  bench::print_header("Extension", "mitigation-strategy what-if");
  util::TextTable table({"strategy", "attack packets dropped",
                         "legitimate packets dropped (collateral)"});
  auto csv = bench::open_csv("whatif_mitigation",
                             {"strategy", "efficacy", "collateral"});
  for (const auto& o : whatif.outcomes) {
    table.add_row({std::string(core::to_string(o.strategy)),
                   util::fmt_percent(o.efficacy(), 1),
                   util::fmt_percent(o.collateral(), 1)});
    csv->write_row({std::string(core::to_string(o.strategy)),
                    util::fmt_double(o.efficacy(), 4),
                    util::fmt_double(o.collateral(), 4)});
  }
  std::cout << table;

  bench::print_paper_row(
      "events considered", "(attack-correlated events with traffic)",
      util::fmt_count(static_cast<std::int64_t>(whatif.events_considered)));
  bench::print_paper_row(
      "paper's qualitative claim (Sec. 7.2)",
      "fine-grained port blacklisting is very effective;",
      "whitelisting legit traffic is hard (client ports are unstable)");
  return 0;
}
