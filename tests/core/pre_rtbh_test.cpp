#include "core/pre_rtbh.hpp"

#include <gtest/gtest.h>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

class PreRtbhTest : public ::testing::Test {
 protected:
  PreRtbhTest() : world_({0, util::days(8)}, 0) {}

  // Build a dataset with three victims:
  //  v1: attacked right before its RTBH (anomaly expected)
  //  v2: steady traffic, RTBH without attack (data, no anomaly)
  //  v3: idle, RTBH without any traffic (no data)
  Dataset make_dataset() {
    const util::TimeMs t0 = util::days(5);  // all events on day 5
    bgp::UpdateLog control;
    std::vector<flow::TrafficBurst> bursts;

    for (int v = 1; v <= 3; ++v) {
      const net::Ipv4 victim(24, 0, 0, static_cast<std::uint8_t>(v));
      control.push_back(world_.platform->service().make_announce(
          t0, World::kVictimAsn, 50000, net::Prefix::host(victim)));
      control.push_back(world_.platform->service().make_withdraw(
          t0 + util::kHour, World::kVictimAsn, 50000,
          net::Prefix::host(victim)));
    }

    // v1: attack burst in the 10 minutes before the RTBH, many sources.
    for (int a = 0; a < 20; ++a) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 1, static_cast<std::uint8_t>(a)),
          net::Ipv4(24, 0, 0, 1), net::Proto::kUdp, 123,
          static_cast<net::Port>(30000 + a * 13),
          {t0 - 8 * util::kMinute, t0 + 30 * util::kMinute}, 3000,
          world_.acceptor));
    }
    // v1 also has a little steady background before that.
    for (int day = 0; day < 5; ++day) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 0, 9), net::Ipv4(24, 0, 0, 1), net::Proto::kTcp,
          55555, 443,
          {day * util::kDay + util::kHour, day * util::kDay + 2 * util::kHour},
          5, world_.acceptor));
    }
    // v2: steady daily traffic only.
    for (int day = 0; day < 6; ++day) {
      bursts.push_back(world_.burst(
          net::Ipv4(64, 0, 0, 10), net::Ipv4(24, 0, 0, 2), net::Proto::kTcp,
          55555, 443,
          {day * util::kDay + util::kHour, day * util::kDay + 3 * util::kHour},
          8, world_.acceptor));
    }
    // v3: nothing.
    return world_.run(std::move(control), bursts);
  }

  World world_;
};

TEST_F(PreRtbhTest, ClassifiesThreeWays) {
  const Dataset dataset = make_dataset();
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  ASSERT_EQ(events.size(), 3u);
  const auto report = compute_pre_rtbh(dataset, events);
  ASSERT_EQ(report.per_event.size(), 3u);
  EXPECT_EQ(report.no_data, 1u);
  EXPECT_EQ(report.data_no_anomaly, 1u);
  EXPECT_EQ(report.data_anomaly_10m, 1u);
  EXPECT_EQ(report.anomaly_1h, 1u);

  // Identify v1's event (prefix .1).
  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& res = report.per_event[e];
    const auto last_octet = events[e].prefix.network().octet(3);
    if (last_octet == 1) {
      EXPECT_TRUE(res.anomaly_within_10min);
      EXPECT_GE(res.max_level, 3) << "attack spikes several features";
      EXPECT_TRUE(res.last_slot_has_data);
      EXPECT_GT(res.amplification[static_cast<std::size_t>(
                    Feature::kPackets)],
                10.0);
      ASSERT_FALSE(res.anomalies.empty());
      // Anomalies sit at the very end of the 72 h window.
      EXPECT_GE(res.anomalies.back().first, -3);
    } else if (last_octet == 2) {
      EXPECT_TRUE(res.has_data);
      EXPECT_FALSE(res.anomaly_within_10min);
      EXPECT_GT(res.slots_with_data, 10u);
    } else {
      EXPECT_FALSE(res.has_data);
      EXPECT_EQ(res.slots_with_data, 0u);
    }
  }
}

TEST_F(PreRtbhTest, EventEarlyInPeriodCannotAlarm) {
  // RTBH on day 0, 1 hour in: the EWMA window can never fill.
  bgp::UpdateLog control;
  const net::Ipv4 victim(24, 0, 0, 7);
  control.push_back(world_.platform->service().make_announce(
      util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world_.burst(net::Ipv4(64, 0, 0, 1), victim,
                                net::Proto::kUdp, 123, 4444,
                                {util::kHour - 5 * util::kMinute, util::kHour},
                                100000, world_.acceptor));
  const Dataset dataset = world_.run(std::move(control), bursts);
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto report = compute_pre_rtbh(dataset, events);
  ASSERT_EQ(report.per_event.size(), 1u);
  EXPECT_TRUE(report.per_event[0].has_data);
  EXPECT_FALSE(report.per_event[0].anomaly_within_10min)
      << "no anomaly possible within the first 24h of history";
}

TEST_F(PreRtbhTest, AmplificationFactorAgainstEmptyMeanIsLarge) {
  // Traffic ONLY in the last slot: factor == slot_count (mean = x/n).
  bgp::UpdateLog control;
  const net::Ipv4 victim(24, 0, 0, 8);
  const util::TimeMs t0 = util::days(5);
  control.push_back(world_.platform->service().make_announce(
      t0, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world_.burst(net::Ipv4(64, 0, 0, 1), victim,
                                net::Proto::kUdp, 123, 4444,
                                {t0 - 4 * util::kMinute, t0}, 50000,
                                world_.acceptor));
  const Dataset dataset = world_.run(std::move(control), bursts);
  const auto events =
      merge_events(dataset.blackhole_updates(), dataset.period().end);
  const auto report = compute_pre_rtbh(dataset, events);
  ASSERT_EQ(report.per_event.size(), 1u);
  const auto& res = report.per_event[0];
  EXPECT_TRUE(res.last_slot_is_max);
  // 72h window = 864 slots; all packets in the last one.
  EXPECT_NEAR(res.amplification[static_cast<std::size_t>(Feature::kPackets)],
              864.0, 1.0);
}

}  // namespace
}  // namespace bw::core
