# Empty compiler generated dependencies file for exp_tab01_use_cases.
# This may be replaced when dependencies are built.
