#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace bw::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_count(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace bw::util
