// Shared support for the exp_* reproduction harnesses.
//
// Every harness regenerates one table or figure of the paper from the
// synthetic corpus. The corpus is produced once per (scale, seed) and
// cached on disk ($BW_CACHE_DIR, default ./bw_cache), so running the whole
// bench directory costs one generation plus cheap analyses. Scale defaults
// to 0.25 of the paper's population; override with BW_SCALE=1.0 for a
// full-size run.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace bw::bench {

/// Best-of-N wall-clock timing on the obs::StopWatch clock — the single
/// steady_clock source shared with --metrics-out stage timings, so the
/// BENCH_*.json records and run manifests are directly comparable.
template <typename Fn>
double time_best_ms(int repetitions, Fn&& body) {
  double best = 0.0;
  for (int r = 0; r < repetitions; ++r) {
    const obs::StopWatch watch;
    body();
    const double ms = static_cast<double>(watch.elapsed_us()) / 1000.0;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

inline const char* csv_dir() {
  const char* dir = std::getenv("BW_CSV_DIR");
  return dir != nullptr ? dir : "bench_out";
}

/// Open a CSV for a figure's series; creates the output directory.
std::unique_ptr<util::CsvWriter> open_csv(
    const std::string& name, const std::vector<std::string>& header);

struct Experiment {
  gen::ScenarioConfig config;
  core::ScenarioRun run;
  core::AnalysisReport report;
};

/// Load (or generate) the default benchmark corpus and run the pipeline.
/// Prints a one-line corpus summary so every harness output is
/// self-describing.
Experiment load_experiment(const char* title);

/// Header helper: "=== Fig. 5: ... ===".
void print_header(const char* id, const char* caption);

/// Footer comparing one headline number with the paper.
void print_paper_row(const std::string& what, const std::string& paper,
                     const std::string& measured);

}  // namespace bw::bench
