#include "core/participation.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/ports.hpp"

namespace bw::core {

ParticipationReport compute_participation(const Dataset& dataset,
                                          const std::vector<RtbhEvent>& events,
                                          const PreRtbhReport& pre) {
  ParticipationReport report;
  struct Tally {
    std::size_t events{0};
    std::uint64_t packets{0};
  };
  std::unordered_map<bgp::Asn, Tally> handover;
  std::unordered_map<bgp::Asn, Tally> origins;
  std::uint64_t total_packets = 0;
  std::uint64_t total_amplifiers = 0;
  std::uint64_t total_handover = 0;
  std::uint64_t total_origins = 0;

  for (std::size_t e = 0; e < events.size(); ++e) {
    if (e >= pre.per_event.size() || !pre.per_event[e].anomaly_within_10min) {
      continue;
    }
    const auto& ev = events[e];
    std::unordered_set<std::uint32_t> amplifiers;
    std::unordered_set<bgp::Asn> ev_handover;
    std::unordered_set<bgp::Asn> ev_origins;
    std::unordered_map<bgp::Asn, std::uint64_t> ev_handover_pkts;
    std::unordered_map<bgp::Asn, std::uint64_t> ev_origin_pkts;

    dataset.for_each_flow_to(ev.prefix, ev.span,
                             [&](const flow::FlowRecord& rec) {
      if (rec.proto != net::Proto::kUdp ||
          !net::is_amplification_port(rec.src_port)) {
        return;
      }
      amplifiers.insert(rec.src_ip.value());
      if (const auto asn = dataset.member_asn(rec.src_mac)) {
        ev_handover.insert(*asn);
        ev_handover_pkts[*asn] += rec.packets;
      }
      if (const auto asn = dataset.origin_asn(rec.src_ip)) {
        ev_origins.insert(*asn);
        ev_origin_pkts[*asn] += rec.packets;
      }
      total_packets += rec.packets;
    });
    if (amplifiers.empty()) continue;  // not an amplification attack

    ++report.attacks;
    total_amplifiers += amplifiers.size();
    total_handover += ev_handover.size();
    total_origins += ev_origins.size();
    for (const bgp::Asn asn : ev_handover) {
      auto& t = handover[asn];
      ++t.events;
      t.packets += ev_handover_pkts[asn];
    }
    for (const bgp::Asn asn : ev_origins) {
      auto& t = origins[asn];
      ++t.events;
      t.packets += ev_origin_pkts[asn];
    }
  }

  auto flatten = [&](const std::unordered_map<bgp::Asn, Tally>& in) {
    std::vector<AsParticipation> out;
    out.reserve(in.size());
    for (const auto& [asn, t] : in) {
      AsParticipation p;
      p.asn = asn;
      p.events = t.events;
      p.event_share = report.attacks > 0 ? static_cast<double>(t.events) /
                                               static_cast<double>(report.attacks)
                                         : 0.0;
      p.packets = t.packets;
      p.traffic_share =
          total_packets > 0 ? static_cast<double>(t.packets) /
                                  static_cast<double>(total_packets)
                            : 0.0;
      out.push_back(p);
    }
    std::sort(out.begin(), out.end(),
              [](const AsParticipation& a, const AsParticipation& b) {
                return a.event_share > b.event_share;
              });
    return out;
  };
  report.handover = flatten(handover);
  report.origins = flatten(origins);
  if (report.attacks > 0) {
    const auto n = static_cast<double>(report.attacks);
    report.avg_amplifiers_per_attack =
        static_cast<double>(total_amplifiers) / n;
    report.avg_handover_per_attack = static_cast<double>(total_handover) / n;
    report.avg_origins_per_attack = static_cast<double>(total_origins) / n;
  }
  return report;
}

}  // namespace bw::core
