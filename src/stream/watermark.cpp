#include "stream/watermark.hpp"

#include "obs/metrics.hpp"

namespace bw::stream {

WatermarkMux::WatermarkMux(std::vector<FeedRing*> feeds,
                           std::size_t max_buffer)
    : feeds_(std::move(feeds)), max_buffer_(max_buffer == 0 ? 1 : max_buffer) {}

namespace {

/// A feed's effective progress at the consumer: the published watermark,
/// clamped by the oldest event still undrained in its ring (a watermark
/// must not overtake buffered records).
util::TimeMs effective_mark(FeedRing& feed) {
  util::TimeMs mark = feed.watermark.load(std::memory_order_acquire);
  if (const StreamEvent* oldest = feed.ring.front()) {
    const util::TimeMs floor =
        oldest->time >
                std::numeric_limits<util::TimeMs>::min() + feed.allowance
            ? oldest->time - feed.allowance
            : std::numeric_limits<util::TimeMs>::min();
    mark = std::min(mark, floor);
  }
  return mark;
}

}  // namespace

std::size_t WatermarkMux::drain_feeds(std::size_t budget) {
  std::size_t popped = 0;
  while (popped < budget) {
    // The gating feed (lowest effective mark, still open) is drained with
    // priority: its progress is what unlocks releases, so memory spent on
    // other feeds' events would just sit in the heap.
    FeedRing* pick = nullptr;
    util::TimeMs pick_mark = std::numeric_limits<util::TimeMs>::max();
    util::TimeMs gate_mark = std::numeric_limits<util::TimeMs>::max();
    for (FeedRing* feed : feeds_) {
      const bool empty = feed->ring.empty();
      if (empty && feed->closed.load(std::memory_order_acquire)) continue;
      const util::TimeMs mark = effective_mark(*feed);
      gate_mark = std::min(gate_mark, mark);
      if (!empty && (pick == nullptr || mark < pick_mark)) {
        pick = feed;
        pick_mark = mark;
      }
    }
    if (pick == nullptr) break;
    // At the heap cap, only the gating feed may keep growing the heap —
    // draining a racing feed would just widen the unreleasable backlog.
    // The racing feed's ring fills instead and its producer feels the
    // backpressure; forced release below stays reserved for a gating feed
    // that is open but dead.
    if (heap_.size() >= max_buffer_ && pick_mark > gate_mark) break;

    StreamEvent ev;
    if (!pick->ring.try_pop(ev)) continue;  // raced with nothing: retry scan
    ++popped;
    if (ev.time < released_floor_) {
      // The feed broke its watermark promise by more than the allowance;
      // emitting now would hand the monitor time travel. Count and drop.
      ++stats_.late_dropped;
      static obs::Counter& late =
          obs::Registry::global().counter("stream.late_dropped");
      late.add();
      continue;
    }
    heap_.push(std::move(ev));
  }
  return popped;
}

util::TimeMs WatermarkMux::release_threshold() {
  util::TimeMs threshold = std::numeric_limits<util::TimeMs>::max();
  for (FeedRing* feed : feeds_) {
    if (feed->ring.empty() && feed->closed.load(std::memory_order_acquire)) {
      continue;  // can never produce again; stops gating
    }
    threshold = std::min(threshold, effective_mark(*feed));
  }
  return threshold;
}

bool WatermarkMux::feeds_spent() const {
  for (const FeedRing* feed : feeds_) {
    if (!feed->closed.load(std::memory_order_acquire) || !feed->ring.empty()) {
      return false;
    }
  }
  return true;
}

bool WatermarkMux::exhausted() const {
  return heap_.empty() && feeds_spent();
}

void WatermarkMux::note_forced_release() {
  static obs::Counter& forced =
      obs::Registry::global().counter("stream.forced_release");
  forced.add();
}

}  // namespace bw::stream
