# Empty dependencies file for bw_bgp.
# This may be replaced when dependencies are built.
