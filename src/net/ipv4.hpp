// IPv4 address value type. The paper restricts itself to IPv4 (>95% of IXP
// traffic, >98% of RTBH events at the vantage point), and so do we.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace bw::net {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_{0};
};

}  // namespace bw::net

template <>
struct std::hash<bw::net::Ipv4> {
  std::size_t operator()(bw::net::Ipv4 a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
