#include "core/pipeline.hpp"

#include <array>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "gen/shard.hpp"
#include "util/parallel.hpp"

namespace bw::core {

namespace {

/// Fixed stage order: the report's stage table (and therefore the rendered
/// document) is identical at every thread count.
constexpr const char* kStageNames[] = {
    "summary",   "event_merge",   "pre_rtbh", "drop_rate", "protocol_mix",
    "filtering", "participation", "victims",  "classify",
};
constexpr std::size_t kStageCount = std::size(kStageNames);

}  // namespace

AnalysisReport run_pipeline(const Dataset& dataset,
                            const AnalysisConfig& config) {
  util::ThreadPool& pool = util::pool_or_global(config.pool);
  AnalysisReport report;
  report.data_quality.dataset = dataset.quality();

  // Per-stage isolation: each stage body runs inside a guard that converts
  // an escaped exception into a degraded StageStatus. The stage's report
  // section stays default-constructed; every other stage still runs. Each
  // guard writes only its own pre-allocated slot, so the guards are safe to
  // run from concurrent stage-graph tasks.
  std::array<StageStatus, kStageCount> stages;
  for (std::size_t i = 0; i < kStageCount; ++i) stages[i].name = kStageNames[i];
  auto guarded = [&](std::size_t slot, auto&& body) {
    StageStatus& status = stages[slot];
    try {
      for (const auto& fault : config.inject_stage_faults) {
        if (fault == status.name) {
          throw std::runtime_error("injected stage fault");
        }
      }
      body();
    } catch (const std::exception& e) {
      status.degraded = true;
      status.error = e.what();
    } catch (...) {
      status.degraded = true;
      status.error = "unknown failure";
    }
  };

  // Serial prologue: event merging is cheap and everything depends on it;
  // the pre-RTBH scan (the heaviest kernel) fans events out internally.
  auto summary_done = pool.submit(
      [&] { guarded(0, [&] { report.summary = dataset.summary(&pool); }); });
  guarded(1, [&] {
    report.events = merge_events(dataset.blackhole_updates(),
                                 dataset.period().end, config.merge_delta);
  });
  const std::vector<RtbhEvent>& events = report.events;
  guarded(2, [&] {
    report.pre = compute_pre_rtbh(dataset, events, config.pre, &pool);
  });

  // Stage graph: with events and the pre-RTBH report fixed, the remaining
  // stages only read shared immutable state and write disjoint report
  // fields, so they run concurrently. The victims chain (port stats ->
  // RadViz -> collateral) keeps its internal data dependency. Each stage
  // computes a thread-count-independent result, so the stage graph changes
  // wall-clock time only, never bytes. In serial mode (BW_THREADS=1)
  // submit() runs inline, reproducing the sequential stage order exactly.
  auto drop_done = pool.submit([&] {
    guarded(3, [&] {
      report.drop = compute_drop_rates(dataset, events, config.drop, &pool);
    });
  });
  auto protocols_done = pool.submit([&] {
    guarded(4, [&] {
      report.protocols =
          compute_protocol_mix(dataset, events, report.pre, config.protocols);
    });
  });
  auto filtering_done = pool.submit([&] {
    guarded(5, [&] {
      report.filtering = compute_filtering(dataset, events, report.pre);
    });
  });
  auto participation_done = pool.submit([&] {
    guarded(6, [&] {
      report.participation = compute_participation(dataset, events, report.pre);
    });
  });
  auto victims_done = pool.submit([&] {
    guarded(7, [&] {
      report.ports = compute_port_stats(dataset, events, config.ports, &pool);
      report.radviz = radviz_projection(report.ports, config.ports.min_days);
      report.collateral = compute_collateral(dataset, events, report.ports,
                                             config.sampling_rate, &pool);
    });
  });
  guarded(8, [&] {
    report.classes =
        classify_events(dataset, events, report.pre, config.classify);
  });

  summary_done.get();
  drop_done.get();
  protocols_done.get();
  filtering_done.get();
  participation_done.get();
  victims_done.get();

  report.data_quality.stages.assign(stages.begin(), stages.end());
  return report;
}

namespace {

std::string config_fingerprint(const gen::ScenarioConfig& cfg) {
  std::ostringstream os;
  os << "v6|" << cfg.sampling_rate << '|' << cfg.scale << '|' << cfg.seed
     << '|' << cfg.period.begin << '|'
     << cfg.period.end << '|' << cfg.members << '|' << cfg.blackholer_members
     << '|' << cfg.victim_origin_as << '|' << cfg.amplifier_origins << '|'
     << cfg.amplifiers << '|' << cfg.server_hosts << '|' << cfg.client_hosts
     << '|' << cfg.idle_victims << '|' << cfg.rtbh_events << '|'
     << cfg.attack_fraction << '|' << cfg.steady_fraction << '|'
     << cfg.zombies << '|' << cfg.squatting_prefixes << '|'
     << cfg.content_blocking << '|' << cfg.attack_packets_log_mean << '|'
     << cfg.server_daily_packets << '|' << cfg.client_daily_packets;
  const std::size_t h = std::hash<std::string>{}(os.str());
  std::ostringstream name;
  name << "scenario_" << std::hex << h << ".bwds";
  return name.str();
}

}  // namespace

std::size_t generation_shards(std::size_t concurrency) {
  return concurrency <= 1 ? 1 : concurrency * 4;
}

ScenarioRun run_scenario(const gen::ScenarioConfig& config,
                         std::optional<std::string> cache_dir,
                         util::ThreadPool* pool) {
  gen::Scenario scenario(config);
  ixp::Platform platform(gen::Scenario::platform_config(config));
  scenario.install(platform);

  std::string cache_path;
  if (!cache_dir.has_value()) {
    const char* env = std::getenv("BW_CACHE_DIR");
    cache_dir = env != nullptr ? std::string(env) : std::string("bw_cache");
  }
  if (!cache_dir->empty()) {
    std::filesystem::create_directories(*cache_dir);
    cache_path = *cache_dir + "/" + config_fingerprint(config);
  }

  auto finish = [&](Dataset dataset) {
    ScenarioRun run{std::move(dataset), scenario.registry(),
                    platform.route_server().peer_asns(), scenario.truth()};
    return run;
  };

  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    return finish(Dataset::load(cache_path));
  }

  // Sharded generation: cut the anchor-ordered emission plan into
  // contiguous, cost-balanced time slices and replay them concurrently
  // against the prepared platform. Every per-unit and per-burst draw is
  // content-keyed, and the slice outputs merge in shard order, so the
  // corpus bytes are invariant to the shard count (and thus BW_THREADS).
  util::ThreadPool& workers = util::pool_or_global(pool);
  const std::vector<gen::EmissionUnit> plan = scenario.emission_plan();
  const std::vector<gen::ShardRange> shards =
      gen::plan_shards(plan, generation_shards(workers.concurrency()));

  platform.prepare(scenario.control());
  std::vector<ixp::Platform::SliceResult> slices = util::parallel_map(
      workers, shards.size(), [&](std::size_t i) {
        std::vector<gen::EmissionUnit> units(
            plan.begin() + static_cast<std::ptrdiff_t>(shards[i].begin),
            plan.begin() + static_cast<std::ptrdiff_t>(shards[i].end));
        return platform.run_slice(scenario.traffic_source(std::move(units)));
      });
  ixp::RunResult result = platform.finish(std::move(slices));
  Dataset dataset = Dataset::from_run(std::move(result), platform);
  if (!cache_path.empty()) dataset.save(cache_path);
  return finish(std::move(dataset));
}

gen::ScenarioConfig default_benchmark_scenario() {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.25;
  if (const char* env = std::getenv("BW_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) cfg.scale = s;
  }
  return cfg;
}

}  // namespace bw::core
