file(REMOVE_RECURSE
  "CMakeFiles/bw_peeringdb_test.dir/peeringdb/registry_test.cpp.o"
  "CMakeFiles/bw_peeringdb_test.dir/peeringdb/registry_test.cpp.o.d"
  "bw_peeringdb_test"
  "bw_peeringdb_test.pdb"
  "bw_peeringdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_peeringdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
