# Empty dependencies file for exp_fig08_pdb_types.
# This may be replaced when dependencies are built.
