#include "core/time_offset.hpp"

#include <algorithm>

namespace bw::core {

OffsetEstimate estimate_offset(const Dataset& dataset,
                               const OffsetConfig& config) {
  OffsetEstimate est;
  const util::DurationMs step = std::max<util::DurationMs>(config.step, 1);
  const auto bins = static_cast<std::size_t>(
      (config.max_offset - config.min_offset) / step + 1);

  // Gather dropped samples (optionally uniformly subsampled).
  std::vector<std::size_t> dropped;
  for (std::size_t i = 0; i < dataset.flows().size(); ++i) {
    if (dataset.flows()[i].dropped()) dropped.push_back(i);
  }
  est.dropped_samples = dropped.size();
  std::size_t stride = 1;
  if (config.max_samples > 0 && dropped.size() > config.max_samples) {
    stride = dropped.size() / config.max_samples + 1;
  }

  // For each sample, the candidate offsets that explain it form the union
  // of intervals [span.begin - t, span.end - t). Accumulate them on the
  // grid as +1/-1 differences — O(samples), independent of grid size.
  std::vector<double> diff(bins + 1, 0.0);
  std::size_t used = 0;
  for (std::size_t k = 0; k < dropped.size(); k += stride) {
    const auto& rec = dataset.flows()[dropped[k]];
    ++used;
    for (const auto& range : dataset.rs_index().announced_ranges(rec.dst_ip)) {
      const util::DurationMs lo = range.begin - rec.time;
      const util::DurationMs hi = range.end - rec.time;
      if (hi <= config.min_offset || lo > config.max_offset) continue;
      const auto lo_bin = static_cast<std::size_t>(
          std::max<util::DurationMs>(lo - config.min_offset + step - 1, 0) /
          step);
      const auto hi_bin = std::min<std::size_t>(
          static_cast<std::size_t>(
              std::max<util::DurationMs>(hi - config.min_offset + step - 1, 0) /
              step),
          bins);
      if (lo_bin >= hi_bin) continue;
      diff[lo_bin] += 1.0;
      diff[hi_bin] -= 1.0;
    }
  }

  est.curve.reserve(bins);
  double acc = 0.0;
  const double denom = used > 0 ? static_cast<double>(used) : 1.0;
  for (std::size_t b = 0; b < bins; ++b) {
    acc += diff[b];
    OffsetPoint p;
    p.offset = config.min_offset + static_cast<util::DurationMs>(b) * step;
    p.overlap = std::min(acc / denom, 1.0);
    est.curve.push_back(p);
    if (p.overlap > est.best_overlap) {
      est.best_overlap = p.overlap;
      est.best_offset = p.offset;
    }
  }
  return est;
}

}  // namespace bw::core
