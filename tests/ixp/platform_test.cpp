#include "ixp/platform.hpp"

#include <gtest/gtest.h>

#include "ixp/blackhole_service.hpp"

namespace bw::ixp {
namespace {

PlatformConfig small_config() {
  PlatformConfig cfg;
  cfg.period = {0, util::days(1)};
  cfg.sampling_rate = 1;  // sample everything for deterministic assertions
  cfg.clock.offset_ms = 0;
  cfg.clock.jitter_sd_ms = 0.0;
  cfg.internal_flow_fraction = 0.0;
  return cfg;
}

class PlatformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    platform_ = std::make_unique<Platform>(small_config());
    victim_member_ = platform_->add_member(
        100, {.blackhole = bgp::BlackholeAcceptance::kAcceptAll},
        {*net::Prefix::parse("24.0.0.0/16")});
    acceptor_ = platform_->add_member(
        200, {.blackhole = bgp::BlackholeAcceptance::kAcceptAll},
        {*net::Prefix::parse("16.0.0.0/16")});
    rejector_ = platform_->add_member(
        300, {.blackhole = bgp::BlackholeAcceptance::kClassfulOnly},
        {*net::Prefix::parse("16.1.0.0/16")});
  }

  flow::TrafficBurst burst_to_victim(flow::MemberId handover,
                                     util::TimeRange window,
                                     std::int64_t packets = 100) {
    flow::TrafficBurst b;
    b.window = window;
    b.src_ip = net::Ipv4(16, 0, 0, 5);
    b.dst_ip = victim_ip_;
    b.proto = net::Proto::kUdp;
    b.src_port = 123;
    b.dst_port = 4444;
    b.packets = packets;
    b.handover = handover;
    return b;
  }

  std::unique_ptr<Platform> platform_;
  flow::MemberId victim_member_{};
  flow::MemberId acceptor_{};
  flow::MemberId rejector_{};
  net::Ipv4 victim_ip_{24, 0, 0, 7};
};

TEST_F(PlatformTest, MemberRegistration) {
  EXPECT_EQ(platform_->member_count(), 3u);
  EXPECT_EQ(platform_->member(victim_member_).asn, 100u);
  EXPECT_EQ(platform_->member_by_asn(200), acceptor_);
  EXPECT_FALSE(platform_->member_by_asn(999));
  EXPECT_THROW(platform_->add_member(100, {}, {}), std::invalid_argument);
}

TEST_F(PlatformTest, OwnershipLookup) {
  EXPECT_EQ(platform_->owner_of(victim_ip_), victim_member_);
  EXPECT_EQ(platform_->owner_of(net::Ipv4(16, 1, 2, 3)), rejector_);
  EXPECT_FALSE(platform_->owner_of(net::Ipv4(99, 0, 0, 1)));
}

TEST_F(PlatformTest, OriginRegistration) {
  platform_->register_origin(*net::Prefix::parse("64.0.0.0/16"), 210000,
                             acceptor_);
  EXPECT_EQ(platform_->origin_of(net::Ipv4(64, 0, 1, 2)), 210000u);
  EXPECT_FALSE(platform_->origin_of(net::Ipv4(65, 0, 0, 1)));
  EXPECT_EQ(platform_->handover_of(210000), acceptor_);
  EXPECT_EQ(platform_->origin_prefix_table().size(), 1u);
}

TEST_F(PlatformTest, ForwardedTrafficKeepsVictimMac) {
  auto result = platform_->run({}, [&](const Platform::BurstSink& sink) {
    sink(burst_to_victim(acceptor_, {1000, 2000}));
  });
  ASSERT_EQ(result.data.size(), 100u);
  for (const auto& rec : result.data) {
    EXPECT_FALSE(rec.dropped());
    EXPECT_EQ(rec.dst_mac, platform_->member(victim_member_).port_mac);
    EXPECT_EQ(rec.src_mac, platform_->member(acceptor_).port_mac);
  }
}

TEST_F(PlatformTest, BlackholedTrafficGoesToBlackholeMac) {
  const auto prefix = net::Prefix::host(victim_ip_);
  bgp::UpdateLog control;
  control.push_back(
      platform_->service().make_announce(500, 100, 100, prefix));
  auto result =
      platform_->run(std::move(control), [&](const Platform::BurstSink& sink) {
        sink(burst_to_victim(acceptor_, {1000, 2000}));
      });
  ASSERT_EQ(result.data.size(), 100u);
  for (const auto& rec : result.data) {
    EXPECT_TRUE(rec.dropped());
  }
  EXPECT_EQ(result.accounting.sampled_dropped, 100u);
}

TEST_F(PlatformTest, RejectingPeerForwardsDespiteBlackhole) {
  const auto prefix = net::Prefix::host(victim_ip_);
  bgp::UpdateLog control;
  control.push_back(
      platform_->service().make_announce(500, 100, 100, prefix));
  auto result =
      platform_->run(std::move(control), [&](const Platform::BurstSink& sink) {
        sink(burst_to_victim(rejector_, {1000, 2000}));
      });
  ASSERT_EQ(result.data.size(), 100u);
  for (const auto& rec : result.data) {
    EXPECT_FALSE(rec.dropped());  // classful-only rejects the /32
  }
}

TEST_F(PlatformTest, DropStartsMidBurst) {
  const auto prefix = net::Prefix::host(victim_ip_);
  bgp::UpdateLog control;
  control.push_back(
      platform_->service().make_announce(util::kHour, 100, 100, prefix));
  auto result =
      platform_->run(std::move(control), [&](const Platform::BurstSink& sink) {
        sink(burst_to_victim(acceptor_, {0, 2 * util::kHour}, 10000));
      });
  std::size_t dropped = 0;
  for (const auto& rec : result.data) {
    if (rec.dropped()) {
      ++dropped;
      EXPECT_GE(rec.time, util::kHour);
    } else {
      EXPECT_LT(rec.time, util::kHour);
    }
  }
  // Roughly half the (uniform) burst falls after the announcement.
  EXPECT_NEAR(static_cast<double>(dropped) / 10000.0, 0.5, 0.05);
}

TEST_F(PlatformTest, PrivateBlackholeDropsWithoutControlPlane) {
  platform_->service().add_private_blackhole(net::Prefix::host(victim_ip_),
                                             {0, util::kDay});
  auto result = platform_->run({}, [&](const Platform::BurstSink& sink) {
    sink(burst_to_victim(acceptor_, {1000, 2000}));
  });
  ASSERT_EQ(result.data.size(), 100u);
  for (const auto& rec : result.data) EXPECT_TRUE(rec.dropped());
  EXPECT_EQ(result.accounting.sampled_dropped_private, 100u);
  EXPECT_TRUE(result.control.empty());
}

TEST_F(PlatformTest, UnroutableTrafficNeverCrossesFabric) {
  auto result = platform_->run({}, [&](const Platform::BurstSink& sink) {
    flow::TrafficBurst b = burst_to_victim(acceptor_, {1000, 2000});
    b.dst_ip = net::Ipv4(99, 9, 9, 9);  // owned by nobody, no blackhole
    sink(b);
  });
  EXPECT_TRUE(result.data.empty());
  EXPECT_EQ(result.accounting.unroutable_bursts, 1u);
}

TEST_F(PlatformTest, RunTwiceThrows) {
  (void)platform_->run({}, [](const Platform::BurstSink&) {});
  EXPECT_THROW((void)platform_->run({}, [](const Platform::BurstSink&) {}),
               std::logic_error);
}

TEST(BlackholeServiceTest, AnnounceCarriesRfc7999Communities) {
  BlackholeService svc(64600);
  const auto u = svc.make_announce(10, 100, 200,
                                   *net::Prefix::parse("10.0.0.1/32"));
  EXPECT_TRUE(u.is_blackhole());
  EXPECT_TRUE(bgp::has_community(u.communities, bgp::kNoExport));
  EXPECT_EQ(u.type, bgp::UpdateType::kAnnounce);
  EXPECT_EQ(u.sender_asn, 100u);
  EXPECT_EQ(u.origin_asn, 200u);
  EXPECT_EQ(u.next_hop, svc.blackhole_next_hop());

  const auto w = svc.make_withdraw(20, 100, 200,
                                   *net::Prefix::parse("10.0.0.1/32"));
  EXPECT_EQ(w.type, bgp::UpdateType::kWithdraw);
  EXPECT_TRUE(w.is_blackhole());
}

TEST(BlackholeServiceTest, ExtraCommunitiesPreserved) {
  BlackholeService svc(64600);
  const auto u = svc.make_announce(10, 100, 200,
                                   *net::Prefix::parse("10.0.0.1/32"),
                                   {bgp::Community{0, 42}});
  EXPECT_TRUE(bgp::has_community(u.communities, bgp::Community{0, 42}));
  EXPECT_TRUE(u.is_blackhole());
}

}  // namespace
}  // namespace bw::ixp
