
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/CMakeFiles/bw_core.dir/core/anomaly.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/anomaly.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/bw_core.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/collateral.cpp" "src/CMakeFiles/bw_core.dir/core/collateral.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/collateral.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/bw_core.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/drop_rate.cpp" "src/CMakeFiles/bw_core.dir/core/drop_rate.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/drop_rate.cpp.o.d"
  "/root/repo/src/core/event_merge.cpp" "src/CMakeFiles/bw_core.dir/core/event_merge.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/event_merge.cpp.o.d"
  "/root/repo/src/core/filtering.cpp" "src/CMakeFiles/bw_core.dir/core/filtering.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/filtering.cpp.o.d"
  "/root/repo/src/core/io_text.cpp" "src/CMakeFiles/bw_core.dir/core/io_text.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/io_text.cpp.o.d"
  "/root/repo/src/core/load.cpp" "src/CMakeFiles/bw_core.dir/core/load.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/load.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/bw_core.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/participation.cpp" "src/CMakeFiles/bw_core.dir/core/participation.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/participation.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/bw_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/port_stats.cpp" "src/CMakeFiles/bw_core.dir/core/port_stats.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/port_stats.cpp.o.d"
  "/root/repo/src/core/pre_rtbh.cpp" "src/CMakeFiles/bw_core.dir/core/pre_rtbh.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/pre_rtbh.cpp.o.d"
  "/root/repo/src/core/protocol_mix.cpp" "src/CMakeFiles/bw_core.dir/core/protocol_mix.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/protocol_mix.cpp.o.d"
  "/root/repo/src/core/radviz.cpp" "src/CMakeFiles/bw_core.dir/core/radviz.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/radviz.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/bw_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/time_offset.cpp" "src/CMakeFiles/bw_core.dir/core/time_offset.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/time_offset.cpp.o.d"
  "/root/repo/src/core/visibility.cpp" "src/CMakeFiles/bw_core.dir/core/visibility.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/visibility.cpp.o.d"
  "/root/repo/src/core/whatif.cpp" "src/CMakeFiles/bw_core.dir/core/whatif.cpp.o" "gcc" "src/CMakeFiles/bw_core.dir/core/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
