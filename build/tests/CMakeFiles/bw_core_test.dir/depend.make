# Empty dependencies file for bw_core_test.
# This may be replaced when dependencies are built.
