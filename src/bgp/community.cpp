#include "bgp/community.hpp"

#include <charconv>

namespace bw::bgp {

std::string Community::to_string() const {
  return std::to_string(global) + ":" + std::to_string(local);
}

std::optional<Community> Community::parse(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  unsigned g = 0;
  unsigned l = 0;
  const std::string_view gs = text.substr(0, colon);
  const std::string_view ls = text.substr(colon + 1);
  const auto [gp, gec] = std::from_chars(gs.data(), gs.data() + gs.size(), g);
  const auto [lp, lec] = std::from_chars(ls.data(), ls.data() + ls.size(), l);
  if (gec != std::errc{} || lec != std::errc{} || gp != gs.data() + gs.size() ||
      lp != ls.data() + ls.size() || g > 65535 || l > 65535) {
    return std::nullopt;
  }
  return Community{static_cast<std::uint16_t>(g), static_cast<std::uint16_t>(l)};
}

bool has_community(std::span<const Community> communities, Community c) {
  for (const auto& x : communities) {
    if (x == c) return true;
  }
  return false;
}

bool TargetedAnnouncement::should_announce(
    std::span<const Community> communities, std::uint16_t peer_asn) const {
  bool any_positive_action = false;
  bool announce_this_peer = false;
  for (const auto& c : communities) {
    if (c.global == 0 && c.local == rs_asn_) return false;  // announce to none
    if (c.global == 0 && c.local == peer_asn) return false;  // exclude peer
    if (c.global == rs_asn_) {
      if (c.local == rs_asn_) {
        any_positive_action = true;
        announce_this_peer = true;  // announce to all
      } else {
        any_positive_action = true;
        if (c.local == peer_asn) announce_this_peer = true;
      }
    }
  }
  // With no positive action communities at all, the default is announce-all.
  return any_positive_action ? announce_this_peer : true;
}

std::vector<Community> TargetedAnnouncement::restrict_to(
    std::span<const std::uint16_t> peer_asns) const {
  std::vector<Community> out;
  out.reserve(peer_asns.size());
  for (const std::uint16_t p : peer_asns) out.push_back({rs_asn_, p});
  return out;
}

std::vector<Community> TargetedAnnouncement::exclude(
    std::span<const std::uint16_t> peer_asns) const {
  std::vector<Community> out;
  out.reserve(peer_asns.size());
  for (const std::uint16_t p : peer_asns) out.push_back({0, p});
  return out;
}

}  // namespace bw::bgp
