// Attack-source participation analysis (Section 5.5, Fig. 15).
//
// Because reflection traffic is unspoofed, both the *origin AS* of each
// amplifier (via BGP prefix attribution) and the *handover AS* (the member
// whose port the traffic entered, via MAC attribution — spoofing-proof) can
// be determined. This module derives, per AS, the share of amplification
// attacks it participated in, plus the per-attack averages the paper
// reports (1,086 amplifiers, 30 handover ASes, 73 origin ASes).
#pragma once

#include <vector>

#include "core/event_merge.hpp"
#include "core/pre_rtbh.hpp"

namespace bw::core {

struct AsParticipation {
  bgp::Asn asn{0};
  std::size_t events{0};          ///< attacks this AS participated in
  double event_share{0.0};        ///< events / total amplification attacks
  std::uint64_t packets{0};
  double traffic_share{0.0};
};

struct ParticipationReport {
  std::size_t attacks{0};  ///< amplification attacks considered
  /// Sorted by descending event share.
  std::vector<AsParticipation> handover;
  std::vector<AsParticipation> origins;
  double avg_amplifiers_per_attack{0.0};
  double avg_handover_per_attack{0.0};
  double avg_origins_per_attack{0.0};
};

[[nodiscard]] ParticipationReport compute_participation(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PreRtbhReport& pre);

}  // namespace bw::core
