#include "bgp/rib.hpp"

#include <gtest/gtest.h>

namespace bw::bgp {
namespace {

const net::Prefix kHost = *net::Prefix::parse("10.1.2.3/32");
const net::Ipv4 kAddr = net::Ipv4(10, 1, 2, 3);

Route blackhole_route(const net::Prefix& p) {
  Route r;
  r.prefix = p;
  r.communities = {kBlackhole};
  return r;
}

TEST(BlackholeHistoryTest, OpenCloseQuery) {
  BlackholeHistory h;
  h.open(kHost, 100);
  h.close(kHost, 200);
  h.finalize(1000);
  EXPECT_TRUE(h.active_at(kAddr, 150));
  EXPECT_FALSE(h.active_at(kAddr, 250));
  EXPECT_FALSE(h.active_at(kAddr, 50));
}

TEST(BlackholeHistoryTest, OpenIntervalQueryableBeforeFinalize) {
  BlackholeHistory h;
  h.open(kHost, 100);
  EXPECT_TRUE(h.active_at(kAddr, 500));
  EXPECT_FALSE(h.active_at(kAddr, 50));
}

TEST(BlackholeHistoryTest, IdempotentOpen) {
  BlackholeHistory h;
  h.open(kHost, 100);
  h.open(kHost, 150);  // ignored, already open
  h.close(kHost, 200);
  h.finalize(1000);
  const auto ivals = h.intervals(kHost);
  ASSERT_EQ(ivals.size(), 1u);
  EXPECT_EQ(ivals[0].begin, 100);
  EXPECT_EQ(ivals[0].end, 200);
}

TEST(BlackholeHistoryTest, CoveringPrefixReturnsLongest) {
  BlackholeHistory h;
  h.open(*net::Prefix::parse("10.1.0.0/16"), 0);
  h.open(kHost, 0);
  h.finalize(100);
  const auto covering = h.covering_prefix(kAddr, 50);
  ASSERT_TRUE(covering);
  EXPECT_EQ(covering->length(), 32);
  const auto other = h.covering_prefix(net::Ipv4(10, 1, 9, 9), 50);
  ASSERT_TRUE(other);
  EXPECT_EQ(other->length(), 16);
}

TEST(RibTest, OfferAppliesPolicy) {
  Rib accept(1, {.blackhole = BlackholeAcceptance::kAcceptAll});
  Rib reject(2, {.blackhole = BlackholeAcceptance::kClassfulOnly});
  EXPECT_TRUE(accept.offer(blackhole_route(kHost), 100));
  EXPECT_FALSE(reject.offer(blackhole_route(kHost), 100));
  EXPECT_TRUE(accept.blackholed(kAddr, 150));
  EXPECT_FALSE(reject.blackholed(kAddr, 150));
  EXPECT_EQ(accept.offered(), 1u);
  EXPECT_EQ(accept.accepted(), 1u);
  EXPECT_EQ(reject.accepted(), 0u);
}

TEST(RibTest, WithdrawStopsBlackholing) {
  Rib rib(1, {.blackhole = BlackholeAcceptance::kAcceptAll});
  rib.offer(blackhole_route(kHost), 100);
  rib.withdraw(kHost, /*was_blackhole=*/true, 200);
  rib.finalize(1000);
  EXPECT_TRUE(rib.blackholed(kAddr, 150));
  EXPECT_FALSE(rib.blackholed(kAddr, 250));
}

TEST(RibTest, RegularRoutesDoNotBlackhole) {
  Rib rib(1, {.blackhole = BlackholeAcceptance::kAcceptAll});
  Route regular;
  regular.prefix = *net::Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(rib.offer(regular, 100));
  EXPECT_FALSE(rib.blackholed(net::Ipv4(10, 1, 0, 1), 150));
}

}  // namespace
}  // namespace bw::bgp
