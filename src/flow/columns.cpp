#include "flow/columns.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace bw::flow {

FlowColumns FlowColumns::build(
    const FlowLog& flows, const std::vector<std::size_t>& by_dst,
    const std::vector<std::size_t>& by_src,
    const std::unordered_map<net::Mac, std::uint32_t>& member_ids,
    util::ThreadPool& pool) {
  FlowColumns c;
  const std::size_t n = flows.size();
  c.time.resize(n);
  c.src_ip.resize(n);
  c.dst_ip.resize(n);
  c.proto.resize(n);
  c.src_port.resize(n);
  c.dst_port.resize(n);
  c.packets.resize(n);
  c.bytes.resize(n);
  c.src_member.resize(n);
  c.dropped_words.assign((n + 63) / 64, 0);
  c.s_src_ip.resize(n);
  c.s_time.resize(n);
  c.s_src_port.resize(n);
  c.s_dst_port.resize(n);

  // Grain 8192 is a multiple of 64, so a bitmap word is only ever written
  // by the chunk that owns its 64 rows — the |= below is race-free.
  util::parallel_for(
      pool, n,
      [&](std::size_t k) {
        const FlowRecord& r = flows[by_dst[k]];
        c.time[k] = r.time;
        c.src_ip[k] = r.src_ip.value();
        c.dst_ip[k] = r.dst_ip.value();
        c.proto[k] = static_cast<std::uint8_t>(r.proto);
        c.src_port[k] = r.src_port;
        c.dst_port[k] = r.dst_port;
        c.packets[k] = r.packets;
        c.bytes[k] = r.bytes;
        if (r.dropped()) {
          c.dropped_words[k >> 6] |= std::uint64_t{1} << (k & 63);
        }
        const auto it = member_ids.find(r.src_mac);
        c.src_member[k] = it == member_ids.end() ? kNoMember : it->second;

        const FlowRecord& s = flows[by_src[k]];
        c.s_src_ip[k] = s.src_ip.value();
        c.s_time[k] = s.time;
        c.s_src_port[k] = s.src_port;
        c.s_dst_port[k] = s.dst_port;
      },
      8192);
  return c;
}

FlowColumns::DstScan FlowColumns::resolve_dst(const net::Prefix& prefix,
                                              util::TimeRange range) const {
  const std::uint32_t lo = prefix.network().value();
  const std::uint32_t hi = prefix.address_at(prefix.size() - 1).value();
  DstScan s;
  const auto first = std::lower_bound(dst_ip.begin(), dst_ip.end(), lo);
  const auto last = std::upper_bound(first, dst_ip.end(), hi);
  s.begin = static_cast<std::size_t>(first - dst_ip.begin());
  s.end = static_cast<std::size_t>(last - dst_ip.begin());
  if (prefix.length() == 32) {
    // A single-address run is time-sorted: the half-open window [begin,
    // end) is a contiguous sub-run, so the per-row time test disappears.
    const auto tb = time.begin();
    s.begin = static_cast<std::size_t>(
        std::lower_bound(tb + static_cast<std::ptrdiff_t>(s.begin),
                         tb + static_cast<std::ptrdiff_t>(s.end),
                         range.begin) -
        tb);
    s.end = static_cast<std::size_t>(
        std::lower_bound(tb + static_cast<std::ptrdiff_t>(s.begin),
                         tb + static_cast<std::ptrdiff_t>(s.end), range.end) -
        tb);
    s.time_filtered = false;
  } else {
    s.time_filtered = true;
  }
  return s;
}

FlowColumns::Range FlowColumns::dst_run(net::Ipv4 addr) const {
  const auto [first, last] =
      std::equal_range(dst_ip.begin(), dst_ip.end(), addr.value());
  return {static_cast<std::size_t>(first - dst_ip.begin()),
          static_cast<std::size_t>(last - dst_ip.begin())};
}

FlowColumns::Range FlowColumns::src_run(net::Ipv4 addr) const {
  const auto [first, last] =
      std::equal_range(s_src_ip.begin(), s_src_ip.end(), addr.value());
  return {static_cast<std::size_t>(first - s_src_ip.begin()),
          static_cast<std::size_t>(last - s_src_ip.begin())};
}

}  // namespace bw::flow
