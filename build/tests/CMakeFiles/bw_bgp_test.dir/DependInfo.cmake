
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/blackhole_index_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/blackhole_index_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/blackhole_index_test.cpp.o.d"
  "/root/repo/tests/bgp/community_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/community_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/community_test.cpp.o.d"
  "/root/repo/tests/bgp/message_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/message_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/message_test.cpp.o.d"
  "/root/repo/tests/bgp/policy_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/policy_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/policy_test.cpp.o.d"
  "/root/repo/tests/bgp/rib_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/rib_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/rib_test.cpp.o.d"
  "/root/repo/tests/bgp/route_server_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/route_server_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/route_server_test.cpp.o.d"
  "/root/repo/tests/bgp/wire_test.cpp" "tests/CMakeFiles/bw_bgp_test.dir/bgp/wire_test.cpp.o" "gcc" "tests/CMakeFiles/bw_bgp_test.dir/bgp/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
