file(REMOVE_RECURSE
  "CMakeFiles/bw_util_test.dir/util/bootstrap_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/bootstrap_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/cusum_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/cusum_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/ewma_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/ewma_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/histogram_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/rng_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/stats_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/table_csv_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/table_csv_test.cpp.o.d"
  "CMakeFiles/bw_util_test.dir/util/time_test.cpp.o"
  "CMakeFiles/bw_util_test.dir/util/time_test.cpp.o.d"
  "bw_util_test"
  "bw_util_test.pdb"
  "bw_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
