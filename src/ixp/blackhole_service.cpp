#include "ixp/blackhole_service.hpp"

namespace bw::ixp {

namespace {

std::vector<bgp::Community> with_blackhole_communities(
    std::vector<bgp::Community> extra) {
  extra.push_back(bgp::kBlackhole);
  extra.push_back(bgp::kNoExport);
  return extra;
}

}  // namespace

bgp::Update BlackholeService::make_announce(
    util::TimeMs time, bgp::Asn sender, bgp::Asn origin,
    const net::Prefix& prefix, std::vector<bgp::Community> extra) const {
  bgp::Update u;
  u.time = time;
  u.type = bgp::UpdateType::kAnnounce;
  u.sender_asn = sender;
  u.origin_asn = origin;
  u.prefix = prefix;
  u.next_hop = next_hop_;
  u.communities = with_blackhole_communities(std::move(extra));
  return u;
}

bgp::Update BlackholeService::make_withdraw(
    util::TimeMs time, bgp::Asn sender, bgp::Asn origin,
    const net::Prefix& prefix, std::vector<bgp::Community> extra) const {
  bgp::Update u = make_announce(time, sender, origin, prefix, std::move(extra));
  u.type = bgp::UpdateType::kWithdraw;
  return u;
}

void BlackholeService::add_private_blackhole(const net::Prefix& prefix,
                                             util::TimeRange range) {
  private_.open(prefix, range.begin);
  private_.close(prefix, range.end);
}

}  // namespace bw::ixp
