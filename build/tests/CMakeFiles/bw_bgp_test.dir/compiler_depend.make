# Empty compiler generated dependencies file for bw_bgp_test.
# This may be replaced when dependencies are built.
