# Empty compiler generated dependencies file for bw_peeringdb.
# This may be replaced when dependencies are built.
