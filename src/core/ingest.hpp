// Ingest policy and accounting shared by every corpus loader.
//
// Real IXP exports arrive truncated, duplicated and mangled; a loader that
// dies on the first bad byte discards 104 days of telemetry for one corrupt
// row. Every CSV reader in core/io_text takes a LoadOptions and fills a
// per-file LoadReport, so a caller can choose between failing fast
// (kStrict), paying one record per fault (kSkip), or additionally salvaging
// rows whose damage is confined to recoverable fields (kRepair) — and can
// always account for exactly what was lost.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bw::core {

enum class Strictness : std::uint8_t {
  kStrict,  ///< first malformed row fails the whole load
  kSkip,    ///< malformed rows are dropped and counted
  kRepair,  ///< like kSkip, but recoverable rows are salvaged and counted
};

[[nodiscard]] std::string_view to_string(Strictness s);

struct LoadOptions {
  Strictness strictness{Strictness::kStrict};
  /// Cap on per-file diagnostics retained (counts are always exact).
  std::size_t max_diagnostics{8};
};

/// Per-file ingest accounting: what was read, dropped, repaired, and why.
struct LoadReport {
  std::string file;
  std::size_t rows_read{0};      ///< rows accepted (incl. repaired)
  std::size_t rows_skipped{0};   ///< malformed rows dropped
  std::size_t rows_repaired{0};  ///< rows salvaged with defaulted fields
  std::size_t diagnostics_total{0};  ///< all faults seen (>= diagnostics.size())

  struct Diagnostic {
    std::size_t line{0};  ///< 1-based physical line number in the file
    std::string message;
  };
  std::vector<Diagnostic> diagnostics;  ///< first max_diagnostics faults

  /// Record one fault, keeping at most `cap` detailed diagnostics.
  void note(std::size_t line, std::string message, std::size_t cap);

  [[nodiscard]] bool clean() const {
    return rows_skipped == 0 && rows_repaired == 0;
  }
  /// "flows.csv: 9998 rows (2 skipped, 1 repaired); line 17: bad src_ip"
  [[nodiscard]] std::string summary() const;
};

/// All files of one dataset-directory load.
struct IngestReport {
  std::vector<LoadReport> files;

  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::size_t rows_skipped() const;
  [[nodiscard]] std::size_t rows_repaired() const;
  /// One summary line per file, newline-terminated.
  [[nodiscard]] std::string summary() const;
};

}  // namespace bw::core
