// Parallel execution layer: a reusable thread pool plus deterministic
// parallel-for / parallel-map / parallel-sort helpers.
//
// Concurrency is sized by $BW_THREADS (default: hardware_concurrency).
// BW_THREADS=1 yields an exact serial fallback: the pool owns no worker
// threads and every task runs inline on the calling thread, in call order.
//
// Determinism contract: all helpers here produce results that are
// *independent of the thread count*.
//   - parallel_map collects results by index, so output order equals input
//     order no matter which thread computed an element.
//   - parallel_sort partitions the range by size only (never by thread
//     count) and merges chunks stably in a fixed tree order, so its output
//     equals std::stable_sort for every BW_THREADS value.
//   - parallel_for guarantees each index runs exactly once; when the body
//     accumulates into shards, merge the shards in index order (see
//     core/drop_rate.cpp for the pattern) to keep results bit-identical.
//
// Nesting: parallel_for/map/sort may be called from inside a pool task.
// Completion never waits on queued-but-unscheduled helpers — the calling
// thread participates in the work and only waits for chunks that some
// running thread has already claimed — so nested use cannot deadlock.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/deadline.hpp"

namespace bw::util {

namespace detail {
/// Cached registry handles (definition in parallel.cpp) so the hot loop
/// pays one relaxed fetch_add, never a map lookup.
[[nodiscard]] obs::Counter& parallel_for_calls();   ///< sched.parallel.for_calls
[[nodiscard]] obs::Counter& parallel_chunk_count(); ///< sched.parallel.chunks
}  // namespace detail

class ThreadPool {
 public:
  /// A pool executing on `workers` background threads plus the calling
  /// thread. `workers == 0` is the exact serial fallback: submit() runs
  /// tasks inline and the helpers degrade to plain loops.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (0 in serial mode).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  /// Usable concurrency: workers plus the participating caller.
  [[nodiscard]] std::size_t concurrency() const noexcept {
    return workers_.size() + 1;
  }

  /// Schedule `fn` and return its future. Exceptions thrown by `fn`
  /// propagate through the future. In serial mode the task runs inline,
  /// before submit() returns.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// $BW_THREADS, clamped to >= 1; hardware_concurrency when unset.
  [[nodiscard]] static std::size_t configured_concurrency();

  /// The process-wide pool, lazily built with configured_concurrency().
  [[nodiscard]] static ThreadPool& global();

  /// Low-level: schedule a fire-and-forget task with no future. Must not
  /// be called on a serial pool (there is no worker to run it).
  void enqueue(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_{false};
  std::vector<std::thread> workers_;
};

/// Convenience for APIs taking an optional pool: the given pool, or the
/// process-wide one when null.
[[nodiscard]] inline ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::global();
}

namespace detail {

/// Shared bookkeeping for one parallel_for: chunk claiming, completion
/// counting, and first-exception capture. Kept alive by shared_ptr so
/// helper tasks scheduled after completion can still exit cleanly.
struct ForLoopState {
  std::size_t n{0};
  std::size_t grain{1};
  std::size_t chunks{0};
  const Deadline* deadline{nullptr};  ///< polled between chunks when set
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void finish_chunks(std::size_t count) {
    if (done_chunks.fetch_add(count) + count == chunks) {
      const std::lock_guard<std::mutex> lock(mutex);
      done_cv.notify_all();
    }
  }

  /// Claim and run chunks until none remain. On an exception, record the
  /// first one, then claim-and-skip the rest so completion still counts up
  /// to `chunks` without waiting on unscheduled helpers.
  template <typename F>
  void drain(F& body) {
    std::size_t c;
    while ((c = next_chunk.fetch_add(1)) < chunks) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        const obs::TraceSpan span("parallel_for.chunk", "parallel");
        parallel_chunk_count().add();
        if (deadline != nullptr) deadline->check("parallel_for");
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        finish_chunks(1);
        std::size_t skipped = 0;
        while (next_chunk.fetch_add(1) < chunks) ++skipped;
        if (skipped > 0) finish_chunks(skipped);
        return;
      }
      finish_chunks(1);
    }
  }
};

}  // namespace detail

/// Run `body(i)` exactly once for every i in [0, n), spread over the pool's
/// workers plus the calling thread. Blocks until every index has run.
/// `grain` indices are executed per claimed chunk (0 = pick automatically).
/// The first exception thrown by any body is rethrown on the caller.
/// A non-null `deadline` is polled between chunks; expiry raises
/// DeadlineExceeded on the caller after remaining chunks are skipped —
/// cooperative supervision with no effect on results while time remains.
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& body,
                  std::size_t grain = 0,
                  const Deadline* deadline = nullptr) {
  if (n == 0) return;
  detail::parallel_for_calls().add();
  auto& fn = body;
  if (pool.worker_count() == 0 || n == 1) {
    const obs::TraceSpan span("parallel_for.serial", "parallel");
    for (std::size_t i = 0; i < n; ++i) {
      // Serial fallback: poll at the same per-chunk granularity so a
      // supervised loop cannot wedge in BW_THREADS=1 mode either.
      if (deadline != nullptr && (grain == 0 ? i % 1024 == 0
                                             : i % grain == 0)) {
        deadline->check("parallel_for");
      }
      fn(i);
    }
    return;
  }
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * pool.concurrency()));
  auto state = std::make_shared<detail::ForLoopState>();
  state->n = n;
  state->grain = grain;
  state->chunks = (n + grain - 1) / grain;
  state->deadline = deadline;

  const std::size_t helpers =
      std::min(pool.worker_count(), state->chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.enqueue([state, &fn] { state->drain(fn); });
  }
  state->drain(fn);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] {
      return state->done_chunks.load() == state->chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

/// Map [0, n) through `fn` and return the results in index order. The
/// output is identical for every thread count.
template <typename F,
          typename R = std::decay_t<std::invoke_result_t<F&, std::size_t>>>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t n, F&& fn,
                            std::size_t grain = 0,
                            const Deadline* deadline = nullptr) {
  std::vector<R> results(n);
  auto& f = fn;
  parallel_for(
      pool, n, [&](std::size_t i) { results[i] = f(i); }, grain, deadline);
  return results;
}

namespace detail {

inline constexpr std::size_t kSortSerialCutoff = 1u << 14;

/// Chunk layout for parallel_sort, derived from the range size only, so
/// the result does not depend on the thread count.
inline std::size_t sort_chunk_count(std::size_t n) {
  std::size_t chunks = 1;
  while (chunks < 64 && n / (chunks * 2) >= kSortSerialCutoff / 2) {
    chunks *= 2;
  }
  return chunks;
}

}  // namespace detail

/// Stable parallel sort: equivalent to std::stable_sort(first, last, comp)
/// at every thread count. Chunks are stable-sorted concurrently, then
/// merged stably in a fixed binary tree order.
template <typename It, typename Comp>
void parallel_sort(ThreadPool& pool, It first, It last, Comp comp) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  const std::size_t chunks = detail::sort_chunk_count(n);
  if (pool.worker_count() == 0 || chunks == 1) {
    std::stable_sort(first, last, comp);
    return;
  }
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  auto bound = [&](std::size_t c) {
    return first + static_cast<std::ptrdiff_t>(std::min(n, c * chunk_len));
  };
  parallel_for(
      pool, chunks,
      [&](std::size_t c) { std::stable_sort(bound(c), bound(c + 1), comp); },
      1);
  for (std::size_t width = 1; width < chunks; width *= 2) {
    const std::size_t pairs = chunks / (2 * width);
    parallel_for(
        pool, pairs,
        [&](std::size_t p) {
          const std::size_t lo = p * 2 * width;
          std::inplace_merge(bound(lo), bound(lo + width),
                             bound(lo + 2 * width), comp);
        },
        1);
  }
}

template <typename It>
void parallel_sort(ThreadPool& pool, It first, It last) {
  parallel_sort(pool, first, last, std::less<>{});
}

}  // namespace bw::util
