#include "flow/sampler.hpp"

#include <algorithm>

namespace bw::flow {

std::vector<util::TimeMs> IpfixSampler::sample_times(const TrafficBurst& burst) {
  return sample_times(burst, rng_);
}

std::vector<util::TimeMs> IpfixSampler::sample_times(const TrafficBurst& burst,
                                                     util::Rng& rng) const {
  std::vector<util::TimeMs> times;
  if (burst.packets <= 0) return times;
  const std::int64_t k = rng.binomial(burst.packets, probability());
  if (k <= 0) return times;
  times.reserve(static_cast<std::size_t>(k));
  const util::TimeMs begin = burst.window.begin;
  const util::DurationMs len = std::max<util::DurationMs>(burst.window.length(), 1);
  for (std::int64_t i = 0; i < k; ++i) {
    times.push_back(begin + rng.uniform_int(0, len - 1));
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace bw::flow
