#include "bgp/policy.hpp"

#include <gtest/gtest.h>

#include "bgp/route.hpp"

namespace bw::bgp {
namespace {

Route blackhole_route(const char* prefix) {
  Route r;
  r.prefix = *net::Prefix::parse(prefix);
  r.communities = {kBlackhole, kNoExport};
  return r;
}

Route regular_route(const char* prefix) {
  Route r;
  r.prefix = *net::Prefix::parse(prefix);
  return r;
}

TEST(PolicyTest, RegularRouteLengthFilter) {
  PeerPolicy p;
  EXPECT_TRUE(p.accepts(regular_route("10.0.0.0/8")));
  EXPECT_TRUE(p.accepts(regular_route("10.0.0.0/24")));
  EXPECT_FALSE(p.accepts(regular_route("10.0.0.0/25")));
  EXPECT_FALSE(p.accepts(regular_route("10.0.0.1/32")));
}

TEST(PolicyTest, RejectAll) {
  PeerPolicy p{.blackhole = BlackholeAcceptance::kRejectAll};
  EXPECT_FALSE(p.accepts(blackhole_route("10.0.0.0/24")));
  EXPECT_FALSE(p.accepts(blackhole_route("10.0.0.1/32")));
  // Regular routes still pass.
  EXPECT_TRUE(p.accepts(regular_route("10.0.0.0/24")));
}

TEST(PolicyTest, ClassfulOnly) {
  PeerPolicy p{.blackhole = BlackholeAcceptance::kClassfulOnly};
  EXPECT_TRUE(p.accepts(blackhole_route("10.0.0.0/22")));
  EXPECT_TRUE(p.accepts(blackhole_route("10.0.0.0/24")));
  EXPECT_FALSE(p.accepts(blackhole_route("10.0.0.0/25")));
  EXPECT_FALSE(p.accepts(blackhole_route("10.0.0.1/32")));
}

TEST(PolicyTest, WhitelistHostAcceptsHostButNotMidLengths) {
  // The Section 7.1 pathology: operators whitelist /32 but forget /25-/31.
  PeerPolicy p{.blackhole = BlackholeAcceptance::kWhitelistHost};
  EXPECT_TRUE(p.accepts(blackhole_route("10.0.0.0/24")));
  EXPECT_TRUE(p.accepts(blackhole_route("10.0.0.1/32")));
  for (int len = 25; len <= 31; ++len) {
    const std::string s = "10.0.0.0/" + std::to_string(len);
    EXPECT_FALSE(p.accepts_blackhole(*net::Prefix::parse(s))) << s;
  }
}

TEST(PolicyTest, AcceptAll) {
  PeerPolicy p{.blackhole = BlackholeAcceptance::kAcceptAll};
  for (int len = 8; len <= 32; ++len) {
    const std::string s = "10.0.0.0/" + std::to_string(len);
    EXPECT_TRUE(p.accepts_blackhole(*net::Prefix::parse(s))) << s;
  }
}

TEST(PolicyTest, InconsistentIsDeterministicPerPrefix) {
  PeerPolicy p{.blackhole = BlackholeAcceptance::kInconsistent,
               .inconsistent_accept_fraction = 0.5,
               .salt = 1234};
  const auto prefix = *net::Prefix::parse("10.1.2.3/32");
  const bool first = p.accepts_blackhole(prefix);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.accepts_blackhole(prefix), first);
  }
  // Short prefixes always pass (stock filters).
  EXPECT_TRUE(p.accepts_blackhole(*net::Prefix::parse("10.0.0.0/24")));
}

TEST(PolicyTest, InconsistentFractionApproximatelyHolds) {
  PeerPolicy p{.blackhole = BlackholeAcceptance::kInconsistent,
               .inconsistent_accept_fraction = 0.3,
               .salt = 99};
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const net::Prefix prefix(net::Ipv4(static_cast<std::uint32_t>(i * 7919)), 32);
    if (p.accepts_blackhole(prefix)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, 0.3, 0.02);
}

TEST(PolicyTest, InconsistentSaltChangesSubset) {
  PeerPolicy a{.blackhole = BlackholeAcceptance::kInconsistent,
               .inconsistent_accept_fraction = 0.5,
               .salt = 1};
  PeerPolicy b = a;
  b.salt = 2;
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    const net::Prefix prefix(net::Ipv4(static_cast<std::uint32_t>(i * 7919)), 32);
    if (a.accepts_blackhole(prefix) != b.accepts_blackhole(prefix)) ++differ;
  }
  EXPECT_GT(differ, 300);
}

TEST(PolicyTest, Names) {
  EXPECT_EQ(to_string(BlackholeAcceptance::kRejectAll), "reject-all");
  EXPECT_EQ(to_string(BlackholeAcceptance::kAcceptAll), "accept-all");
  EXPECT_EQ(to_string(BlackholeAcceptance::kWhitelistHost), "whitelist-host");
  EXPECT_EQ(to_string(BlackholeAcceptance::kClassfulOnly), "classful-only");
  EXPECT_EQ(to_string(BlackholeAcceptance::kInconsistent), "inconsistent");
}

}  // namespace
}  // namespace bw::bgp
