file(REMOVE_RECURSE
  "CMakeFiles/bw_gen_test.dir/gen/generators_test.cpp.o"
  "CMakeFiles/bw_gen_test.dir/gen/generators_test.cpp.o.d"
  "CMakeFiles/bw_gen_test.dir/gen/private_blackhole_test.cpp.o"
  "CMakeFiles/bw_gen_test.dir/gen/private_blackhole_test.cpp.o.d"
  "CMakeFiles/bw_gen_test.dir/gen/scenario_test.cpp.o"
  "CMakeFiles/bw_gen_test.dir/gen/scenario_test.cpp.o.d"
  "bw_gen_test"
  "bw_gen_test.pdb"
  "bw_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
