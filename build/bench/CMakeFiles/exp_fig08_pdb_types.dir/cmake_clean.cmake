file(REMOVE_RECURSE
  "CMakeFiles/exp_fig08_pdb_types.dir/exp_fig08_pdb_types.cpp.o"
  "CMakeFiles/exp_fig08_pdb_types.dir/exp_fig08_pdb_types.cpp.o.d"
  "exp_fig08_pdb_types"
  "exp_fig08_pdb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig08_pdb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
