#include "peeringdb/registry.hpp"

#include <gtest/gtest.h>

namespace bw::pdb {
namespace {

TEST(RegistryTest, UpsertAndFind) {
  Registry r;
  r.upsert({.asn = 100, .type = OrgType::kContent, .scope = Scope::kGlobal});
  const auto rec = r.find(100);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->type, OrgType::kContent);
  EXPECT_EQ(rec->scope, Scope::kGlobal);
  EXPECT_FALSE(r.find(200));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RegistryTest, UpsertOverwrites) {
  Registry r;
  r.upsert({.asn = 100, .type = OrgType::kContent});
  r.upsert({.asn = 100, .type = OrgType::kNsp});
  EXPECT_EQ(r.type_of(100), OrgType::kNsp);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RegistryTest, MissingFoldsToUnknown) {
  const Registry r;
  EXPECT_EQ(r.type_of(42), OrgType::kUnknown);
  EXPECT_EQ(r.scope_of(42), Scope::kUnknown);
}

TEST(RegistryTest, TypeNames) {
  EXPECT_EQ(to_string(OrgType::kContent), "Content");
  EXPECT_EQ(to_string(OrgType::kCableDslIsp), "Cable/DSL/ISP");
  EXPECT_EQ(to_string(OrgType::kNsp), "NSP");
  EXPECT_EQ(to_string(OrgType::kEnterprise), "Enterprise");
  EXPECT_EQ(to_string(OrgType::kUnknown), "Unknown");
  EXPECT_EQ(to_string(Scope::kGlobal), "Global");
  EXPECT_EQ(to_string(Scope::kEurope), "Europe");
}

TEST(RegistryTest, SynthesizeRespectsMarginalsAndAbsence) {
  std::vector<Asn> asns(5000);
  for (std::size_t i = 0; i < asns.size(); ++i) {
    asns[i] = static_cast<Asn>(1000 + i);
  }
  util::Rng rng(42);
  Registry::Marginals m;  // absent = 0.18
  const Registry r = Registry::synthesize(asns, m, rng);
  EXPECT_LT(r.size(), asns.size());
  const double present =
      static_cast<double>(r.size()) / static_cast<double>(asns.size());
  EXPECT_NEAR(present, 0.82, 0.05);

  std::size_t dsl = 0;
  for (const Asn a : asns) {
    if (r.type_of(a) == OrgType::kCableDslIsp) ++dsl;
  }
  // cable_dsl_isp weight 0.35 of total 1.0.
  EXPECT_NEAR(static_cast<double>(dsl) / static_cast<double>(asns.size()), 0.35,
              0.05);
}

TEST(RegistryTest, SynthesizeDeterministicForSeed) {
  std::vector<Asn> asns{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  util::Rng a(7);
  util::Rng b(7);
  const Registry ra = Registry::synthesize(asns, {}, a);
  const Registry rb = Registry::synthesize(asns, {}, b);
  for (const Asn asn : asns) {
    EXPECT_EQ(ra.type_of(asn), rb.type_of(asn));
  }
}

}  // namespace
}  // namespace bw::pdb
