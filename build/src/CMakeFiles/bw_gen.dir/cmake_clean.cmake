file(REMOVE_RECURSE
  "CMakeFiles/bw_gen.dir/gen/amplification.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/amplification.cpp.o.d"
  "CMakeFiles/bw_gen.dir/gen/ddos.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/ddos.cpp.o.d"
  "CMakeFiles/bw_gen.dir/gen/legit.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/legit.cpp.o.d"
  "CMakeFiles/bw_gen.dir/gen/operator_model.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/operator_model.cpp.o.d"
  "CMakeFiles/bw_gen.dir/gen/scan.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/scan.cpp.o.d"
  "CMakeFiles/bw_gen.dir/gen/scenario.cpp.o"
  "CMakeFiles/bw_gen.dir/gen/scenario.cpp.o.d"
  "libbw_gen.a"
  "libbw_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
