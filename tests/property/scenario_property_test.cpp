// Property tests over scenario generation and the end-to-end pipeline:
// invariants that must hold at every (scale, seed), plus exact determinism.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/pipeline.hpp"

namespace bw::core {
namespace {

class ScenarioPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ScenarioPropertyTest, CorpusInvariants) {
  const auto [scale, seed] = GetParam();
  gen::ScenarioConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  const ScenarioRun run = run_scenario(cfg, std::string{});
  const Dataset& ds = run.dataset;

  // Control plane: sorted, all blackholes, all within the period.
  util::TimeMs prev = ds.period().begin;
  for (const auto& u : ds.control()) {
    EXPECT_GE(u.time, prev);
    prev = u.time;
    EXPECT_TRUE(u.is_blackhole());
    EXPECT_LE(u.time, ds.period().end);
  }

  // Data plane: sorted; every record's source MAC belongs to a member;
  // dropped records carry the blackhole MAC and nothing else does.
  prev = std::numeric_limits<util::TimeMs>::min();
  for (const auto& r : ds.flows()) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
    EXPECT_TRUE(ds.member_asn(r.src_mac).has_value());
    if (!r.dropped()) {
      EXPECT_TRUE(ds.member_asn(r.dst_mac).has_value());
    }
  }

  // Merged events: spans ordered, actives inside span, within period.
  const auto events = merge_events(ds.blackhole_updates(), ds.period().end);
  EXPECT_FALSE(events.empty());
  for (const auto& ev : events) {
    EXPECT_LE(ev.span.begin, ev.span.end);
    EXPECT_GE(ev.announcements, 1u);
    EXPECT_EQ(ev.announcements, ev.active.size());
    for (const auto& a : ev.active) {
      EXPECT_GE(a.begin, ev.span.begin);
      EXPECT_LE(a.end, ev.span.end);
    }
  }

  // Events of the same prefix never overlap and respect the merge delta.
  std::unordered_map<std::uint64_t, util::TimeMs> last_end;
  std::vector<const RtbhEvent*> by_prefix(events.size());
  for (const auto& ev : events) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ev.prefix.network().value()) << 8) |
        ev.prefix.length();
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      EXPECT_GT(ev.span.begin - it->second, kDefaultMergeDelta)
          << ev.prefix.to_string();
    }
    last_end[key] = std::max(ev.span.end, it != last_end.end() ? it->second
                                                               : ev.span.end);
  }
}

TEST_P(ScenarioPropertyTest, SummaryStatisticsScaleSanely) {
  const auto [scale, seed] = GetParam();
  gen::ScenarioConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  const ScenarioRun run = run_scenario(cfg, std::string{});
  const auto s = run.dataset.summary();
  // Updates per scheduled event in a sane band at any scale.
  const double per_event =
      static_cast<double>(s.blackhole_updates) /
      static_cast<double>(run.truth.events.size());
  EXPECT_GT(per_event, 10.0);
  EXPECT_LT(per_event, 40.0);
  // Some but not most of ALL sampled packets die (the blackholed share of
  // total traffic swings with the attack/legit volume ratio at small
  // scales; the per-length rates are asserted elsewhere).
  const double dropped = static_cast<double>(s.dropped_packets) /
                         static_cast<double>(s.sampled_packets);
  EXPECT_GT(dropped, 0.05);
  EXPECT_LT(dropped, 0.65);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, ScenarioPropertyTest,
    ::testing::Values(std::make_tuple(0.01, 1ull), std::make_tuple(0.01, 2ull),
                      std::make_tuple(0.02, 7ull),
                      std::make_tuple(0.04, 42ull)));

TEST(PipelineDeterminismTest, IdenticalRunsProduceIdenticalReports) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.015;
  cfg.seed = 99;
  const ScenarioRun a = run_scenario(cfg, std::string{});
  const ScenarioRun b = run_scenario(cfg, std::string{});
  ASSERT_EQ(a.dataset.flows().size(), b.dataset.flows().size());
  ASSERT_EQ(a.dataset.control().size(), b.dataset.control().size());
  for (std::size_t i = 0; i < a.dataset.flows().size(); i += 97) {
    const auto& ra = a.dataset.flows()[i];
    const auto& rb = b.dataset.flows()[i];
    ASSERT_EQ(ra.time, rb.time) << i;
    ASSERT_EQ(ra.src_ip, rb.src_ip) << i;
    ASSERT_EQ(ra.dst_mac, rb.dst_mac) << i;
  }
  const auto ra = run_pipeline(a.dataset);
  const auto rb = run_pipeline(b.dataset);
  EXPECT_EQ(ra.events.size(), rb.events.size());
  EXPECT_EQ(ra.pre.data_anomaly_10m, rb.pre.data_anomaly_10m);
  EXPECT_EQ(ra.pre.no_data, rb.pre.no_data);
  EXPECT_EQ(ra.classes.zombies, rb.classes.zombies);
  EXPECT_EQ(ra.ports.clients, rb.ports.clients);
  EXPECT_EQ(ra.summary.dropped_packets, rb.summary.dropped_packets);
}

TEST(SeedSensitivityTest, DifferentSeedsDifferentCorpusSameShape) {
  gen::ScenarioConfig a;
  a.scale = 0.02;
  a.seed = 1;
  gen::ScenarioConfig b = a;
  b.seed = 2;
  const ScenarioRun ra = run_scenario(a, std::string{});
  const ScenarioRun rb = run_scenario(b, std::string{});
  // Different corpora...
  EXPECT_NE(ra.dataset.flows().size(), rb.dataset.flows().size());
  // ...same statistical shape.
  const auto pa = run_pipeline(ra.dataset);
  const auto pb = run_pipeline(rb.dataset);
  const double anomaly_a = static_cast<double>(pa.pre.data_anomaly_10m) /
                           static_cast<double>(pa.pre.total());
  const double anomaly_b = static_cast<double>(pb.pre.data_anomaly_10m) /
                           static_cast<double>(pb.pre.total());
  EXPECT_NEAR(anomaly_a, anomaly_b, 0.06);
}

}  // namespace
}  // namespace bw::core
