// Property: across randomly corrupted flow files, the strictness levels
// agree with each other — a strict load succeeds exactly when a tolerant
// load reports a clean file, the first skip diagnostic names the same line
// the strict error points at, and on clean inputs every mode reads the
// same rows.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/io_text.hpp"
#include "testing/fault.hpp"
#include "util/rng.hpp"

namespace bw::core {
namespace {

namespace bt = bw::testing;

constexpr const char* kFlowsHeader =
    "time_ms,src_ip,dst_ip,proto,src_port,dst_port,src_mac,dst_mac,"
    "packets,bytes";

/// A deterministic valid flows.csv body of `n` rows.
bt::CsvFile make_flows_file(util::Rng& rng, std::size_t n) {
  bt::CsvFile file;
  file.name = "flows.csv";
  file.header = kFlowsHeader;
  std::int64_t time = 0;
  for (std::size_t i = 0; i < n; ++i) {
    time += rng.uniform_int(1, 5000);
    std::ostringstream row;
    row << time << ",64.0." << rng.uniform_int(0, 255) << '.'
        << rng.uniform_int(1, 254) << ",24.0.0." << rng.uniform_int(1, 254)
        << ',' << (rng.chance(0.5) ? 17 : 6) << ',' << rng.uniform_int(1, 65535)
        << ',' << rng.uniform_int(1, 65535)
        << ",aa:bb:cc:00:00:01,aa:bb:cc:00:00:02," << rng.uniform_int(1, 9)
        << ',' << rng.uniform_int(40, 1500);
    file.rows.push_back(row.str());
  }
  return file;
}

/// A random fault plan over flows.csv: any subset of the row-level kinds.
bt::FaultPlan make_plan(util::Rng& rng, std::uint64_t seed) {
  bt::FaultPlan plan;
  plan.seed = seed;
  if (rng.chance(0.4)) {
    plan.faults.push_back({bt::FaultKind::kByteFlip, "flows.csv",
                           static_cast<std::size_t>(rng.uniform_int(1, 4)),
                           0.0, 0});
  }
  if (rng.chance(0.4)) {
    plan.faults.push_back({bt::FaultKind::kMangleField, "flows.csv",
                           static_cast<std::size_t>(rng.uniform_int(1, 3)),
                           0.0, 0});
  }
  if (rng.chance(0.3)) {
    plan.faults.push_back(
        {bt::FaultKind::kTruncate, "flows.csv", 0, rng.uniform(0.01, 0.2), 0});
  }
  return plan;
}

std::string render(const bt::CsvFile& file) {
  std::string text = file.header + "\n";
  for (const auto& row : file.rows) text += row + "\n";
  text += file.partial_tail;
  return text;
}

TEST(LoadStrictnessProperty, StrictRejectsExactlyWhatSkipCounts) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    util::Rng rng(seed);
    bt::CsvCorpus corpus;
    corpus.files.push_back(
        make_flows_file(rng, static_cast<std::size_t>(rng.uniform_int(5, 80))));
    const bt::FaultPlan plan = make_plan(rng, seed * 977);
    const bt::FaultLog log = bt::apply_faults(corpus, plan);
    const std::string text = render(corpus.files[0]);

    std::istringstream strict_is(text);
    LoadReport strict_report;
    const auto strict =
        read_flows_csv(strict_is, LoadOptions{}, &strict_report);

    std::istringstream skip_is(text);
    LoadOptions skip_options;
    skip_options.strictness = Strictness::kSkip;
    LoadReport skip_report;
    const auto skip = read_flows_csv(skip_is, skip_options, &skip_report);
    ASSERT_TRUE(skip.ok()) << "seed " << seed << ": "
                           << skip.status().to_string();

    // Strict succeeds exactly when the tolerant load saw nothing to skip.
    EXPECT_EQ(strict.ok(), skip_report.clean()) << "seed " << seed;

    if (strict.ok()) {
      // Clean input: both modes read every row identically.
      EXPECT_EQ(strict.value().size(), skip.value().size()) << "seed " << seed;
      EXPECT_EQ(strict_report.rows_read, skip_report.rows_read);
      EXPECT_TRUE(log.entries.empty() ||
                  log.total(bt::FaultKind::kByteFlip) +
                          log.total(bt::FaultKind::kMangleField) +
                          log.total(bt::FaultKind::kTruncate) ==
                      0)
          << "seed " << seed;
    } else {
      // The strict error names the same line as the first skip diagnostic.
      ASSERT_FALSE(skip_report.diagnostics.empty()) << "seed " << seed;
      const std::string needle =
          "line " + std::to_string(skip_report.diagnostics[0].line);
      EXPECT_NE(strict.status().message().find(needle), std::string::npos)
          << "seed " << seed << ": " << strict.status().message()
          << " vs first diagnostic at " << needle;
      // Accepted + skipped rows account for the whole (possibly truncated,
      // possibly duplicated) body.
      EXPECT_EQ(skip_report.rows_read + skip_report.rows_skipped,
                corpus.files[0].rows.size() +
                    (corpus.files[0].partial_tail.empty() ? 0u : 1u))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace bw::core
