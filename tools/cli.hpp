// Shared CLI conventions for the bw-* tools.
//
// Exit codes are part of the tool contract (scripts and CI branch on them):
//   0  success
//   2  usage error (bad flags/arguments; nothing was attempted)
//   3  data error (input missing, malformed, or rejected by --strict;
//      also a generation run cancelled by --stage-timeout-s, which leaves
//      no usable corpus)
//   4  internal error (unexpected exception; a bug, not an input problem)
//
// Watchdog note: an *analysis* stage cancelled by --stage-timeout-s is the
// degraded-but-complete success path — bw-analyze still exits 0 and the
// timeout is reported in the data-quality section, mirroring how injected
// stage faults behave.
#pragma once

namespace bw::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitInternal = 4;

}  // namespace bw::tools
