# Empty compiler generated dependencies file for bw_net.
# This may be replaced when dependencies are built.
