// Table 1: literature-based expected RTBH characteristics per use case —
// validated here against the *measured* behaviour of each ground-truth
// class in the synthetic corpus (prefix length, reaction latency, duration).
//
// Paper expectations: infrastructure protection /32, secs-mins reaction,
// mins-hours duration, attack traffic at servers; squatting protection
// <= /24, manual, months, scan traffic only; content blocking /32, manual,
// weeks-months, normal traffic.
#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("tab01");

  struct Row {
    std::vector<double> prefix_len;
    std::vector<double> latency_s;
    std::vector<double> duration_h;
    std::size_t count{0};
  };
  std::map<gen::UseCase, Row> rows;
  for (const auto& ev : exp.run.truth.events) {
    Row& r = rows[ev.use_case];
    ++r.count;
    r.prefix_len.push_back(ev.prefix.length());
    r.duration_h.push_back(static_cast<double>(ev.rtbh_span.length()) /
                           static_cast<double>(util::kHour));
    if (ev.has_attack) {
      r.latency_s.push_back(
          static_cast<double>(ev.rtbh_span.begin - ev.attack_window.begin) /
          static_cast<double>(util::kSecond));
    }
  }

  bench::print_header("Tab. 1", "expected vs generated use-case characteristics");
  util::TextTable table({"use case", "events", "median /len", "median latency",
                         "median duration"});
  auto csv = bench::open_csv("tab01_use_cases",
                             {"use_case", "events", "median_len",
                              "median_latency_s", "median_duration_h"});
  for (const auto& [use_case, r] : rows) {
    const auto name = std::string(gen::to_string(use_case));
    const double len = util::median(r.prefix_len);
    const double lat = r.latency_s.empty() ? 0.0 : util::median(r.latency_s);
    const double dur = util::median(r.duration_h);
    table.add_row({name, util::fmt_count(static_cast<std::int64_t>(r.count)),
                   "/" + util::fmt_double(len, 0),
                   r.latency_s.empty() ? "manual/NA"
                                       : util::format_duration(util::seconds(lat)),
                   util::format_duration(util::hours(dur))});
    csv->write_row({name, std::to_string(r.count), util::fmt_double(len, 1),
                    util::fmt_double(lat, 1), util::fmt_double(dur, 2)});
  }
  std::cout << table;

  bench::print_paper_row("infrastructure protection", "/32, secs-mins, mins-hours",
                         "see table row");
  bench::print_paper_row("squatting protection", "<= /24, manual, months",
                         "see table row");
  bench::print_paper_row("content blocking", "/32, manual, weeks-months",
                         "see table row");
  return 0;
}
