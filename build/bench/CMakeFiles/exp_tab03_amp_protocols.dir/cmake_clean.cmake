file(REMOVE_RECURSE
  "CMakeFiles/exp_tab03_amp_protocols.dir/exp_tab03_amp_protocols.cpp.o"
  "CMakeFiles/exp_tab03_amp_protocols.dir/exp_tab03_amp_protocols.cpp.o.d"
  "exp_tab03_amp_protocols"
  "exp_tab03_amp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab03_amp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
