// Performance microbenchmarks for the IXP substrate: sampling, policy
// evaluation, per-packet forwarding decisions, and route-server update
// processing — the hot paths of a full-scale scenario run.
//
// After the google-benchmark run, main() times sharded corpus generation
// once per thread count and writes machine-readable
// $BW_CSV_DIR/BENCH_generate.json (default bench_out/) so the generation
// perf trajectory is tracked across PRs alongside BENCH_pipeline.json.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bgp/route_server.hpp"
#include "common.hpp"
#include "core/pipeline.hpp"
#include "flow/sampler.hpp"
#include "ixp/blackhole_service.hpp"
#include "testing/bench_gate.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace bw;

void BM_SamplerBurst(benchmark::State& state) {
  flow::IpfixSampler sampler(10000, util::Rng(1));
  flow::TrafficBurst burst;
  burst.window = {0, util::kHour};
  burst.packets = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_times(burst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerBurst)->Arg(10000)->Arg(10000000);

void BM_PolicyAcceptsBlackhole(benchmark::State& state) {
  bgp::PeerPolicy policy{.blackhole = bgp::BlackholeAcceptance::kInconsistent,
                         .inconsistent_accept_fraction = 0.5,
                         .salt = 42};
  util::Rng rng(2);
  std::vector<net::Prefix> prefixes(1024);
  for (auto& p : prefixes) {
    p = net::Prefix(
        net::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7FFFFFFF))),
        32);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.accepts_blackhole(prefixes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyAcceptsBlackhole);

// The per-sampled-packet fast path: stateless forwarding decision against
// the annotated blackhole index.
void BM_ForwardingDecision(benchmark::State& state) {
  bgp::RouteServer rs(64600);
  ixp::BlackholeService svc(64600);
  util::Rng rng(3);
  for (int p = 0; p < 500; ++p) {
    rs.add_peer(static_cast<bgp::Asn>(1000 + p),
                {.blackhole = p % 3 == 0
                                  ? bgp::BlackholeAcceptance::kAcceptAll
                                  : bgp::BlackholeAcceptance::kClassfulOnly});
  }
  bgp::UpdateLog log;
  std::vector<net::Ipv4> victims;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const net::Ipv4 victim(0x18000000u + static_cast<std::uint32_t>(i));
    victims.push_back(victim);
    util::TimeMs t = rng.uniform_int(0, util::days(100));
    for (int c = 0; c < 8; ++c) {
      const util::TimeMs end = t + util::minutes(5.0);
      log.push_back(svc.make_announce(t, 1, 2, net::Prefix::host(victim)));
      log.push_back(svc.make_withdraw(end, 1, 2, net::Prefix::host(victim)));
      t = end + util::minutes(2.0);
    }
  }
  rs.process_all(std::move(log));
  rs.finalize(util::days(104));

  std::size_t i = 0;
  for (auto _ : state) {
    const auto& victim = victims[i % victims.size()];
    const auto t = static_cast<util::TimeMs>((i * 7919) % util::days(104));
    benchmark::DoNotOptimize(
        rs.blackholed_for_peer(1000 + static_cast<bgp::Asn>(i % 500), victim, t));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardingDecision)->Arg(1000)->Arg(10000);

void BM_RouteServerProcess(benchmark::State& state) {
  ixp::BlackholeService svc(64600);
  util::Rng rng(4);
  bgp::UpdateLog log;
  for (int i = 0; i < 10000; ++i) {
    const net::Prefix prefix(
        net::Ipv4(0x18000000u + static_cast<std::uint32_t>(rng.uniform_int(
                                    0, 1 << 20))),
        32);
    if (rng.chance(0.5)) {
      log.push_back(svc.make_announce(i, 1, 2, prefix));
    } else {
      log.push_back(svc.make_withdraw(i, 1, 2, prefix));
    }
  }
  for (auto _ : state) {
    bgp::RouteServer rs(64600);
    for (int p = 0; p < 100; ++p) rs.add_peer(static_cast<bgp::Asn>(p), {});
    rs.process_all(log);
    rs.finalize(util::days(104));
    benchmark::DoNotOptimize(rs.blackhole_index().prefix_count());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_RouteServerProcess)->Unit(benchmark::kMillisecond);

double time_generate_s(const gen::ScenarioConfig& cfg, std::size_t threads,
                       std::size_t* flows_out) {
  util::ThreadPool pool(threads - 1);
  const double ms = bench::time_best_ms(1, [&] {
    const core::ScenarioRun run =
        core::run_scenario(cfg, std::string{}, &pool);  // cache disabled
    if (flows_out != nullptr) *flows_out = run.dataset.flows().size();
  });
  return ms / 1e3;
}

/// bench_out/BENCH_generate.json: the cross-PR generation-perf record.
void write_generate_json() {
  const char* dir_env = std::getenv("BW_CSV_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : "bench_out";
  std::filesystem::create_directories(dir);

  const gen::ScenarioConfig cfg = core::default_benchmark_scenario();
  std::ofstream os(dir + "/BENCH_generate.json", std::ios::trunc);
  os << "{\n";
  os << "  \"bench_schema_version\": " << testing::kBenchSchemaVersion
     << ",\n";
  os << "  \"benchmark\": \"run_scenario\",\n";
  os << "  \"scale\": " << cfg.scale << ",\n";
  os << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n";
  std::size_t flows = 0;
  double serial_s = 0.0;
  double t8 = 0.0;
  const std::size_t counts[] = {1, 2, 4, 8};
  std::ostringstream wall;
  std::ostringstream shards;
  std::ostringstream rate;
  for (std::size_t i = 0; i < 4; ++i) {
    const double s = time_generate_s(cfg, counts[i], &flows);
    if (counts[i] == 1) serial_s = s;
    if (counts[i] == 8) t8 = s;
    const char* sep = i + 1 < 4 ? ",\n" : "\n";
    wall << "    \"" << counts[i] << "\": " << s * 1e3 << sep;
    shards << "    \"" << counts[i] << "\": "
           << core::generation_shards(counts[i]) << sep;
    rate << "    \"" << counts[i] << "\": "
         << (s > 0.0 ? static_cast<double>(flows) / s : 0.0) << sep;
    std::cerr << "generate threads=" << counts[i] << " wall_s=" << s
              << " flows=" << flows << "\n";
  }
  os << "  \"flow_records\": " << flows << ",\n";
  os << "  \"wall_ms_by_threads\": {\n" << wall.str() << "  },\n";
  os << "  \"shards_by_threads\": {\n" << shards.str() << "  },\n";
  os << "  \"flows_per_s_by_threads\": {\n" << rate.str() << "  },\n";
  os << "  \"speedup_8_vs_1\": " << (t8 > 0.0 ? serial_s / t8 : 0.0) << "\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_generate_json();
  return 0;
}
