// Cooperative deadlines for supervised pipeline stages.
//
// Threads cannot be killed safely, so a wedged or over-budget stage is
// bounded cooperatively: the supervisor hands the stage a Deadline, and the
// stage's inner loops (parallel_for chunks, per-event kernels, emission
// units) poll it at natural checkpoints. An expired deadline raises
// DeadlineExceeded, which the stage guard converts into the existing
// degraded-mode StageStatus — the process never hangs, and the rest of the
// run completes. A default-constructed Deadline never expires, so passing
// one through unconditionally costs a branch, not a syscall.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/status.hpp"
#include "util/time.hpp"

namespace bw::util {

/// Raised at a cooperative checkpoint once the deadline has passed. Derives
/// from std::runtime_error so existing stage guards degrade on it.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  [[nodiscard]] static Deadline never() { return Deadline(); }

  /// Expires `budget` from now. A non-positive budget is already expired —
  /// useful for tests that must hit the timeout path deterministically.
  [[nodiscard]] static Deadline after(DurationMs budget) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(budget);
    return d;
  }

  [[nodiscard]] bool never_expires() const noexcept {
    return !at_.has_value();
  }

  [[nodiscard]] bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

  /// Throw DeadlineExceeded when expired; `what` names the supervised work.
  void check(std::string_view what) const {
    if (expired()) {
      throw DeadlineExceeded(std::string(what) + ": deadline exceeded");
    }
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

}  // namespace bw::util
