# Empty dependencies file for bw_flow_test.
# This may be replaced when dependencies are built.
