// IXP route server: receives member updates, applies targeted-announcement
// communities, distributes to peer sessions, and keeps (a) the full control
// plane log — the paper's Section 3.1 data set — and (b) an annotated index
// of blackhole activity, against which per-peer visibility and forwarding
// decisions are evaluated.
//
// Per-peer RIBs can optionally be materialised (useful in unit tests and
// small examples); at paper scale (~830 peers x ~400k updates) the fabric
// instead consults the annotated BlackholeIndex, which yields bit-identical
// decisions because import policies are pure functions.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/blackhole_index.hpp"
#include "bgp/message.hpp"
#include "bgp/policy.hpp"
#include "bgp/rib.hpp"

namespace bw::bgp {

class RouteServer {
 public:
  explicit RouteServer(std::uint16_t rs_asn = 64600, bool materialize_ribs = false)
      : rs_asn_(rs_asn),
        targeted_(rs_asn),
        index_(rs_asn),
        materialize_ribs_(materialize_ribs) {}

  /// Register a peer session with its import policy. Peers must be added
  /// before updates are processed.
  void add_peer(Asn asn, PeerPolicy policy);

  [[nodiscard]] std::size_t peer_count() const noexcept { return peers_.size(); }
  [[nodiscard]] std::uint16_t rs_asn() const noexcept { return rs_asn_; }

  /// Process one member update: log it, update the blackhole index, and
  /// (when RIBs are materialised) distribute it to every eligible peer.
  void process(const Update& update);

  /// Process a whole (unsorted) log in replay order.
  void process_all(UpdateLog updates);

  /// Close all open state at the end of the measurement period.
  void finalize(util::TimeMs end_time);

  /// Everything the route server received, in processing order.
  [[nodiscard]] const UpdateLog& log() const noexcept { return log_; }

  /// Annotated blackhole activity (full route-server view + distribution
  /// metadata).
  [[nodiscard]] const BlackholeIndex& blackhole_index() const noexcept {
    return index_;
  }

  /// Forwarding decision for traffic entering at `peer` towards `addr` at
  /// time `t`: true when the peer had an accepted RTBH route covering the
  /// address installed. Throws std::out_of_range for unknown peers.
  [[nodiscard]] bool blackholed_for_peer(Asn peer, net::Ipv4 addr,
                                         util::TimeMs t) const;

  /// Import policy of a registered peer.
  [[nodiscard]] const PeerPolicy& policy_of(Asn peer) const;

  /// Materialised per-peer state; throws std::logic_error when RIBs were
  /// not materialised and std::out_of_range for unknown peers.
  [[nodiscard]] const Rib& rib(Asn peer) const;

  [[nodiscard]] std::vector<Asn> peer_asns() const;

  [[nodiscard]] const TargetedAnnouncement& targeted() const noexcept {
    return targeted_;
  }

 private:
  struct PeerState {
    Asn asn{0};
    PeerPolicy policy;
  };

  std::uint16_t rs_asn_;
  TargetedAnnouncement targeted_;
  BlackholeIndex index_;
  bool materialize_ribs_;
  std::vector<PeerState> peers_;
  std::vector<Rib> ribs_;  ///< parallel to peers_ when materialised
  std::unordered_map<Asn, std::size_t> peer_index_;
  UpdateLog log_;
};

}  // namespace bw::bgp
