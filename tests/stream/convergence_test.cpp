// The replay-convergence proof as a unit test (ISSUE 7 acceptance):
//
//   1. With no shedding, streaming the corpus through rings + shedding +
//      watermark mux feeds the monitor the identical event sequence the
//      batch merge does — the alert streams are byte-for-byte equal.
//   2. Under forced shedding (small rings, slow consumer) the run still
//      completes, every dropped event is accounted for exactly
//      (produced == delivered + shed + late), BGP is never shed in
//      priority mode (event segmentation stays exact), and the whole
//      degradation is deterministic and monotone in the consumer budget.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "stream/replay.hpp"
#include "util/time.hpp"

namespace bw::stream {
namespace {

core::Dataset small_corpus(std::uint64_t seed) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = seed;
  cfg.period = {0, util::days(8)};
  return core::run_scenario(cfg, std::string{}).dataset;  // cache disabled
}

/// Full-fidelity alert rendering: every field participates, so "equal
/// lines" really means "equal alert streams".
std::string fmt(const core::Alert& a) {
  std::ostringstream os;
  os << core::to_string(a.kind) << " " << a.time << " "
     << a.prefix.to_string() << " " << a.origin << " " << a.value << " "
     << a.message;
  return os.str();
}

struct RunResult {
  std::vector<std::string> alerts;
  std::size_t starts{0};
  std::size_t ends{0};
  ReplayStats stats;
  std::vector<std::string> shed_log;
};

core::RtbhMonitor make_monitor(RunResult& out) {
  return core::RtbhMonitor(core::MonitorConfig{}, [&out](const core::Alert& a) {
    out.alerts.push_back(fmt(a));
    if (a.kind == core::AlertKind::kEventStarted) ++out.starts;
    if (a.kind == core::AlertKind::kEventEnded) ++out.ends;
  });
}

RunResult run_batch(const core::Dataset& dataset) {
  RunResult out;
  core::RtbhMonitor monitor = make_monitor(out);
  replay_batch(dataset, monitor);
  return out;
}

RunResult run_stream(const core::Dataset& dataset, ReplayOptions options) {
  RunResult out;
  options.shed_sink = [&out](const ShedRecord& r) {
    out.shed_log.push_back(r.to_line());
  };
  core::RtbhMonitor monitor = make_monitor(out);
  out.stats = replay_streaming(dataset, monitor, options);
  return out;
}

TEST(ConvergenceTest, NoShedLockstepIsByteIdenticalToBatchAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::Dataset dataset = small_corpus(seed);
    const RunResult batch = run_batch(dataset);
    ASSERT_FALSE(batch.alerts.empty()) << "corpus produced no alerts";

    ReplayOptions opt;
    opt.lockstep = true;
    const RunResult stream = run_stream(dataset, opt);

    EXPECT_EQ(stream.stats.shed.shed_total, 0u);
    EXPECT_EQ(stream.stats.mux.late_dropped, 0u);
    EXPECT_EQ(stream.stats.produced(), stream.stats.delivered());
    EXPECT_EQ(stream.stats.produced_bgp,
              dataset.blackhole_updates().size());
    EXPECT_EQ(stream.stats.produced_flow, dataset.flows().size());
    ASSERT_EQ(stream.alerts, batch.alerts)
        << "no-shed streaming must match the batch merge byte-for-byte";
  }
}

TEST(ConvergenceTest, NoShedThreadedIsByteIdenticalToBatch) {
  const core::Dataset dataset = small_corpus(20191021);
  const RunResult batch = run_batch(dataset);

  ReplayOptions opt;  // threaded (lockstep=false), full speed
  opt.block_deadline = 10 * util::kMinute;  // never shed, even on a loaded box
  const RunResult stream = run_stream(dataset, opt);

  EXPECT_EQ(stream.stats.shed.shed_total, 0u);
  EXPECT_EQ(stream.stats.mux.late_dropped, 0u);
  ASSERT_EQ(stream.alerts, batch.alerts);
}

TEST(ConvergenceTest, ForcedSheddingIsLoudExactAndKeepsSegmentation) {
  const core::Dataset dataset = small_corpus(7);
  const RunResult batch = run_batch(dataset);

  ReplayOptions opt;
  opt.lockstep = true;
  opt.shed_mode = ShedMode::kPriorityShed;
  opt.ring_capacity = 64;
  opt.fault.tick_events = 16;  // slow consumer: 4 pops per 16 pushes
  opt.fault.drain_per_tick = 4;
  const RunResult stream = run_stream(dataset, opt);

  // Degraded but complete, and every loss is accounted for exactly.
  EXPECT_GE(stream.stats.shed_fraction(), 0.10)
      << "fault plan was supposed to force >=10% shedding";
  EXPECT_EQ(stream.stats.produced(),
            stream.stats.delivered() + stream.stats.shed.shed_total +
                stream.stats.mux.late_dropped);
  EXPECT_EQ(stream.stats.mux.late_dropped, 0u);
  EXPECT_EQ(stream.stats.mux.forced_releases, 0u);

  // Priority mode protects the control plane: BGP is never shed, so the
  // event segmentation (start/end alerts) matches the batch run exactly.
  EXPECT_EQ(stream.stats.shed.shed_bgp, 0u);
  EXPECT_EQ(stream.stats.delivered_bgp, stream.stats.produced_bgp);
  EXPECT_EQ(stream.starts, batch.starts);
  EXPECT_EQ(stream.ends, batch.ends);

  // The ground-truth shed log reconciles with the counters, one line per
  // decision.
  EXPECT_EQ(stream.shed_log.size(), stream.stats.shed.shed_total);

  // Deterministic: the same corpus + options + fault reproduce the same
  // alerts and the same shed log, line for line.
  const RunResult again = run_stream(dataset, opt);
  EXPECT_EQ(again.alerts, stream.alerts);
  EXPECT_EQ(again.shed_log, stream.shed_log);
}

TEST(ConvergenceTest, DegradationIsMonotoneInConsumerBudget) {
  const core::Dataset dataset = small_corpus(7);

  std::uint64_t prev_delivered = 0;
  for (std::size_t budget : {2u, 8u, 32u}) {
    SCOPED_TRACE("drain budget " + std::to_string(budget));
    ReplayOptions opt;
    opt.lockstep = true;
    opt.shed_mode = ShedMode::kPriorityShed;
    opt.ring_capacity = 64;
    opt.fault.tick_events = 16;
    opt.fault.drain_per_tick = budget;
    const RunResult stream = run_stream(dataset, opt);

    EXPECT_EQ(stream.stats.produced(),
              stream.stats.delivered() + stream.stats.shed.shed_total +
                  stream.stats.mux.late_dropped);
    EXPECT_GE(stream.stats.delivered(), prev_delivered)
        << "a faster consumer must never deliver less";
    prev_delivered = stream.stats.delivered();
  }
}

}  // namespace
}  // namespace bw::stream
