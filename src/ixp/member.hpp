// An IXP member: an AS connected to the peering platform with a router
// port on the switching fabric, a set of prefixes it originates or carries
// into the IXP, and a BGP import policy towards the route server.
#pragma once

#include <vector>

#include "bgp/policy.hpp"
#include "flow/record.hpp"
#include "net/mac.hpp"
#include "net/prefix.hpp"

namespace bw::ixp {

struct Member {
  flow::MemberId id{0};
  bgp::Asn asn{0};
  net::Mac port_mac;
  /// Prefixes this member announces into the IXP (destinations it carries).
  std::vector<net::Prefix> owned;
  bgp::PeerPolicy policy;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace bw::ixp
