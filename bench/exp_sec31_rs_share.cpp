// Section 3.1 sanity numbers: share of dropped bytes controlled by
// route-server RTBHs (vs other/bilateral blackhole sources) and the share
// of IXP-internal flows removed during preprocessing.
//
// Paper: 95% of dropped bytes are RTBHs signalled via the route server;
// internal system flows are 0.01% of records and removed before analysis.
#include "common.hpp"
#include "core/time_offset.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("sec31");
  const auto& ds = exp.run.dataset;

  // Attribute every dropped record: explained by an RS blackhole active at
  // its (offset-corrected) timestamp, or dropped by another source.
  core::OffsetConfig ocfg;
  ocfg.min_offset = -util::kSecond;
  ocfg.max_offset = util::kSecond;
  const auto offset = core::estimate_offset(ds, ocfg);

  std::uint64_t dropped_bytes = 0;
  std::uint64_t rs_bytes = 0;
  for (const auto& rec : ds.flows()) {
    if (!rec.dropped()) continue;
    dropped_bytes += rec.bytes;
    if (ds.rs_index().announced_at(rec.dst_ip,
                                   rec.time + offset.best_offset)) {
      rs_bytes += rec.bytes;
    }
  }

  bench::print_header("Sec. 3.1", "route-server share of dropped traffic");
  util::TextTable table({"metric", "paper", "measured"});
  table.add_row({"dropped bytes via route-server RTBH", "95%",
                 util::fmt_percent(dropped_bytes > 0
                                       ? static_cast<double>(rs_bytes) /
                                             static_cast<double>(dropped_bytes)
                                       : 0.0,
                                   1)});
  table.add_row({"dropped bytes via other sources", "5%",
                 util::fmt_percent(dropped_bytes > 0
                                       ? 1.0 - static_cast<double>(rs_bytes) /
                                                   static_cast<double>(
                                                       dropped_bytes)
                                       : 0.0,
                                   1)});
  std::cout << table;

  auto csv = bench::open_csv("sec31_rs_share",
                             {"dropped_bytes", "rs_bytes", "share"});
  csv->write_row({std::to_string(dropped_bytes), std::to_string(rs_bytes),
                  util::fmt_double(dropped_bytes > 0
                                       ? static_cast<double>(rs_bytes) /
                                             static_cast<double>(dropped_bytes)
                                       : 0.0,
                                   4)});
  return 0;
}
