#include "core/pre_rtbh.hpp"

#include <algorithm>

namespace bw::core {

PreRtbhReport compute_pre_rtbh(const Dataset& dataset,
                               const std::vector<RtbhEvent>& events,
                               const PreRtbhConfig& config,
                               util::ThreadPool* pool_opt,
                               const util::Deadline* deadline,
                               KernelEngine engine) {
  util::ThreadPool& pool = util::pool_or_global(pool_opt);
  PreRtbhReport report;

  const auto slots_10min =
      static_cast<std::size_t>(std::max<util::DurationMs>(
          (10 * util::kMinute + config.slot - 1) / config.slot, 1));
  const auto slots_1h = static_cast<std::size_t>(std::max<util::DurationMs>(
      (util::kHour + config.slot - 1) / config.slot, 1));

  // Each pre-RTBH event is independent: fan the events out over the pool
  // and collect the per-event results in index order.
  report.per_event = util::parallel_map(pool, events.size(), [&](std::size_t e) {
    const auto& ev = events[e];
    PreRtbhResult res;
    res.event_index = e;

    util::TimeRange window{ev.span.begin - config.window, ev.span.begin};
    // Clamp to the measurement period (events early in the period have a
    // shorter history; the EWMA full-window rule handles the rest).
    window.begin = std::max(window.begin, dataset.period().begin);

    const FeatureMatrix features =
        compute_features(dataset, ev.prefix, window, config.slot, engine);
    res.slots_with_data = features.slots_with_data();
    res.has_data = res.slots_with_data > 0;

    if (res.has_data) {
      const AnomalyScan scan =
          config.detector == PreRtbhConfig::Detector::kCusum
              ? detect_anomalies_cusum(features, config.cusum)
              : detect_anomalies(features, config.ewma);
      res.max_level = scan.max_level();
      res.anomaly_within_10min = scan.any_anomaly_in_last(slots_10min);
      res.anomaly_within_1h = scan.any_anomaly_in_last(slots_1h);
      const auto n = static_cast<int>(scan.level.size());
      for (int s = 0; s < n; ++s) {
        if (scan.level[static_cast<std::size_t>(s)] >= 1) {
          res.anomalies.emplace_back(s - n,
                                     scan.level[static_cast<std::size_t>(s)]);
        }
      }

      // Anomaly amplification factor: last slot vs pre-event mean.
      if (features.slot_count() > 0) {
        const std::size_t last = features.slot_count() - 1;
        const auto& pk =
            features.series[static_cast<std::size_t>(Feature::kPackets)];
        res.last_slot_has_data = pk[last] > 0.0;
        res.last_slot_is_max =
            res.last_slot_has_data &&
            pk[last] >= *std::max_element(pk.begin(), pk.end());
        for (std::size_t f = 0; f < kFeatureCount; ++f) {
          const auto& series = features.series[f];
          double mean = 0.0;
          for (const double v : series) mean += v;
          mean /= static_cast<double>(series.size());
          res.amplification[f] = mean > 0.0 ? series[last] / mean : 0.0;
        }
      }
    }
    return res;
  }, 0, deadline);

  // Tally the Table 2 classes serially, in event order.
  for (const PreRtbhResult& res : report.per_event) {
    if (!res.has_data) ++report.no_data;
    else if (res.anomaly_within_10min) ++report.data_anomaly_10m;
    else ++report.data_no_anomaly;
    if (res.has_data && res.anomaly_within_1h) ++report.anomaly_1h;
  }
  return report;
}

}  // namespace bw::core
