file(REMOVE_RECURSE
  "CMakeFiles/bw-analyze.dir/bw_analyze.cpp.o"
  "CMakeFiles/bw-analyze.dir/bw_analyze.cpp.o.d"
  "bw-analyze"
  "bw-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
