#include <gtest/gtest.h>

#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace bw::net {
namespace {

TEST(Ipv4Test, ConstructFromOctets) {
  const Ipv4 a(192, 168, 1, 2);
  EXPECT_EQ(a.value(), 0xC0A80102u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(3), 2);
}

TEST(Ipv4Test, RoundTripString) {
  const Ipv4 a(10, 0, 255, 1);
  EXPECT_EQ(a.to_string(), "10.0.255.1");
  EXPECT_EQ(Ipv4::parse("10.0.255.1"), a);
}

TEST(Ipv4Test, ParseValid) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0"), Ipv4(0));
  EXPECT_EQ(Ipv4::parse("255.255.255.255"), Ipv4(0xFFFFFFFFu));
}

TEST(Ipv4Test, ParseInvalid) {
  EXPECT_FALSE(Ipv4::parse(""));
  EXPECT_FALSE(Ipv4::parse("1.2.3"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4::parse("01.2.3.4"));  // ambiguous leading zero
  EXPECT_FALSE(Ipv4::parse("1..2.3"));
  EXPECT_FALSE(Ipv4::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4::parse("-1.2.3.4"));
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Ipv4Test, Hashable) {
  const std::hash<Ipv4> h;
  EXPECT_EQ(h(Ipv4(1, 2, 3, 4)), h(Ipv4(1, 2, 3, 4)));
  EXPECT_NE(h(Ipv4(1, 2, 3, 4)), h(Ipv4(1, 2, 3, 5)));
}

TEST(MacTest, RoundTripString) {
  const Mac m(0x0242ab00cd01ULL);
  EXPECT_EQ(m.to_string(), "02:42:ab:00:cd:01");
  EXPECT_EQ(Mac::parse("02:42:ab:00:cd:01"), m);
  EXPECT_EQ(Mac::parse("02:42:AB:00:CD:01"), m);  // case-insensitive
}

TEST(MacTest, ParseInvalid) {
  EXPECT_FALSE(Mac::parse(""));
  EXPECT_FALSE(Mac::parse("02:42:ab:00:cd"));
  EXPECT_FALSE(Mac::parse("02:42:ab:00:cd:011"));
  EXPECT_FALSE(Mac::parse("02-42-ab-00-cd-01"));
  EXPECT_FALSE(Mac::parse("0g:42:ab:00:cd:01"));
}

TEST(MacTest, MasksTo48Bits) {
  const Mac m(0xFFFF'1234'5678'9ABCULL);
  EXPECT_EQ(m.value(), 0x1234'5678'9ABCULL);
}

TEST(MacTest, MemberPortsAreDistinct) {
  EXPECT_NE(Mac::for_member_port(1), Mac::for_member_port(2));
  EXPECT_NE(Mac::for_member_port(0), Mac::blackhole());
}

TEST(MacTest, BlackholeIsStable) {
  EXPECT_EQ(Mac::blackhole(), Mac::blackhole());
  EXPECT_EQ(Mac::blackhole().to_string(), "06:66:00:00:00:66");
}

}  // namespace
}  // namespace bw::net
