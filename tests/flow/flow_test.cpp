#include <gtest/gtest.h>

#include "flow/collector.hpp"
#include "flow/mac_table.hpp"
#include "flow/record.hpp"
#include "flow/sampler.hpp"

namespace bw::flow {
namespace {

TEST(RecordTest, DroppedFlag) {
  FlowRecord r;
  r.dst_mac = net::Mac::for_member_port(3);
  EXPECT_FALSE(r.dropped());
  r.dst_mac = net::Mac::blackhole();
  EXPECT_TRUE(r.dropped());
}

TEST(RecordTest, SortFlows) {
  FlowLog log(3);
  log[0].time = 30;
  log[1].time = 10;
  log[2].time = 20;
  sort_flows(log);
  EXPECT_EQ(log[0].time, 10);
  EXPECT_EQ(log[2].time, 30);
}

TEST(MacTableTest, MemberMapping) {
  MacTable t;
  t.register_member(1, net::Mac::for_member_port(1));
  t.register_member(2, net::Mac::for_member_port(2));
  EXPECT_EQ(t.member_of(net::Mac::for_member_port(1)), 1u);
  EXPECT_EQ(t.member_of(net::Mac::for_member_port(2)), 2u);
  EXPECT_FALSE(t.member_of(net::Mac::for_member_port(99)));
  EXPECT_EQ(t.mac_of(1), net::Mac::for_member_port(1));
  EXPECT_THROW((void)t.mac_of(99), std::out_of_range);
  EXPECT_EQ(t.member_count(), 2u);
}

TEST(MacTableTest, InternalAndBlackhole) {
  MacTable t;
  const net::Mac internal(0x0242FF000001ULL);
  t.register_internal(internal);
  EXPECT_TRUE(t.is_internal(internal));
  EXPECT_FALSE(t.is_internal(net::Mac::for_member_port(1)));
  EXPECT_TRUE(t.is_blackhole(net::Mac::blackhole()));
  EXPECT_FALSE(t.is_blackhole(internal));
}

TEST(SamplerTest, ZeroPacketsNoSamples) {
  IpfixSampler s(10000, util::Rng(1));
  TrafficBurst b;
  b.packets = 0;
  EXPECT_TRUE(s.sample_times(b).empty());
}

TEST(SamplerTest, RateOneSamplesEverything) {
  IpfixSampler s(1, util::Rng(1));
  TrafficBurst b;
  b.window = {0, 1000};
  b.packets = 57;
  EXPECT_EQ(s.sample_times(b).size(), 57u);
}

TEST(SamplerTest, SampleTimesInsideWindowAndSorted) {
  IpfixSampler s(10, util::Rng(2));
  TrafficBurst b;
  b.window = {5000, 6000};
  b.packets = 10000;
  const auto times = s.sample_times(b);
  ASSERT_FALSE(times.empty());
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const auto t : times) {
    EXPECT_GE(t, 5000);
    EXPECT_LT(t, 6000);
  }
}

TEST(SamplerTest, ZeroRateClampedToOne) {
  IpfixSampler s(0, util::Rng(1));
  EXPECT_EQ(s.rate(), 1u);
}

// Property: sampled counts follow Binomial(n, 1/N) statistics.
class SamplerStatsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SamplerStatsTest, MeanAndVarianceMatchBinomial) {
  const std::uint32_t rate = GetParam();
  IpfixSampler s(rate, util::Rng(7));
  TrafficBurst b;
  b.window = {0, 1000};
  b.packets = 50000;
  const double p = 1.0 / rate;
  const double expected_mean = 50000.0 * p;
  double sum = 0.0;
  double sq = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    const auto k = static_cast<double>(s.sample_times(b).size());
    sum += k;
    sq += k * k;
  }
  const double mean = sum / trials;
  const double var = sq / trials - mean * mean;
  EXPECT_NEAR(mean, expected_mean, expected_mean * 0.15 + 1.0);
  const double expected_var = 50000.0 * p * (1 - p);
  EXPECT_NEAR(var, expected_var, expected_var * 0.5 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplerStatsTest,
                         ::testing::Values(100u, 1000u, 10000u));

TEST(CollectorTest, AppliesClockOffset) {
  MacTable macs;
  macs.register_member(1, net::Mac::for_member_port(1));
  Collector c(macs, {.offset_ms = -40, .jitter_sd_ms = 0.0}, util::Rng(1));
  FlowRecord r;
  r.time = 1000;
  r.src_mac = net::Mac::for_member_port(1);
  r.dst_mac = net::Mac::for_member_port(1);
  c.ingest(r);
  ASSERT_EQ(c.flows().size(), 1u);
  EXPECT_EQ(c.flows()[0].time, 960);
}

TEST(CollectorTest, FiltersInternalFlows) {
  MacTable macs;
  const net::Mac internal(0x0242FF000001ULL);
  macs.register_internal(internal);
  macs.register_member(1, net::Mac::for_member_port(1));
  Collector c(macs, {}, util::Rng(1));
  FlowRecord r;
  r.src_mac = internal;
  r.dst_mac = net::Mac::for_member_port(1);
  c.ingest(r);
  EXPECT_TRUE(c.flows().empty());
  EXPECT_EQ(c.internal_flows_removed(), 1u);
}

TEST(CollectorTest, FinalizeSortsByTime) {
  MacTable macs;
  macs.register_member(1, net::Mac::for_member_port(1));
  Collector c(macs, {.offset_ms = 0, .jitter_sd_ms = 0.0}, util::Rng(1));
  for (const util::TimeMs t : {300, 100, 200}) {
    FlowRecord r;
    r.time = t;
    r.src_mac = net::Mac::for_member_port(1);
    r.dst_mac = net::Mac::for_member_port(1);
    c.ingest(r);
  }
  c.finalize();
  EXPECT_EQ(c.flows()[0].time, 100);
  EXPECT_EQ(c.flows()[2].time, 300);
}

TEST(CollectorTest, JitterStaysSmall) {
  MacTable macs;
  macs.register_member(1, net::Mac::for_member_port(1));
  Collector c(macs, {.offset_ms = 0, .jitter_sd_ms = 10.0}, util::Rng(1));
  for (int i = 0; i < 500; ++i) {
    FlowRecord r;
    r.time = 100000;
    r.src_mac = net::Mac::for_member_port(1);
    r.dst_mac = net::Mac::for_member_port(1);
    c.ingest(r);
  }
  for (const auto& r : c.flows()) {
    EXPECT_NEAR(static_cast<double>(r.time), 100000.0, 60.0);  // 6 sigma
  }
}

}  // namespace
}  // namespace bw::flow
