# Empty dependencies file for exp_fig04_visibility.
# This may be replaced when dependencies are built.
