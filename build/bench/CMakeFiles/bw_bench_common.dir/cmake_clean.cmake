file(REMOVE_RECURSE
  "CMakeFiles/bw_bench_common.dir/common.cpp.o"
  "CMakeFiles/bw_bench_common.dir/common.cpp.o.d"
  "libbw_bench_common.a"
  "libbw_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
