file(REMOVE_RECURSE
  "libbw_ixp.a"
)
