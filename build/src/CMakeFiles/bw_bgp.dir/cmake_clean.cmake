file(REMOVE_RECURSE
  "CMakeFiles/bw_bgp.dir/bgp/blackhole_index.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/blackhole_index.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/community.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/community.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/message.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/message.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/policy.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/policy.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/rib.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/rib.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/route.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/route.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/route_server.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/route_server.cpp.o.d"
  "CMakeFiles/bw_bgp.dir/bgp/wire.cpp.o"
  "CMakeFiles/bw_bgp.dir/bgp/wire.cpp.o.d"
  "libbw_bgp.a"
  "libbw_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
