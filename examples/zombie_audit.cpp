// Example: audit a control-plane feed for RTBH zombies and squatting-
// protection blackholes (Section 7.3).
//
// A "zombie" is a blackhole that was once triggered (probably manually,
// against an attack) and then forgotten: a /32 that stays announced to the
// end of the measurement period while attracting almost no traffic. Its
// owner pays with broken reachability that is miserable to debug — on
// average such an address is only reachable for ~50% of IXP traffic.
//
//   ./zombie_audit [scale]
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bw;
  gen::ScenarioConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  if (cfg.scale <= 0.0) cfg.scale = 0.08;

  std::cout << "Generating scenario at scale " << cfg.scale << "...\n";
  const core::ScenarioRun run = core::run_scenario(cfg, std::string{});
  const auto events = core::merge_events(run.dataset.blackhole_updates(),
                                         run.dataset.period().end);
  const auto pre = core::compute_pre_rtbh(run.dataset, events);
  const auto classes = core::classify_events(run.dataset, events, pre);

  // --- Zombie findings. ---
  util::TextTable zombies({"prefix", "announced since", "sampled packets",
                           "origin AS"});
  std::size_t shown = 0;
  for (const auto& ce : classes.events) {
    if (ce.cls != core::EventClass::kZombieCandidate) continue;
    const auto& ev = events[ce.event_index];
    if (shown++ < 12) {
      zombies.add_row({ev.prefix.to_string(),
                       util::format_time(ev.span.begin),
                       std::to_string(ce.sampled_packets),
                       "AS" + std::to_string(ev.origin)});
    }
  }
  std::cout << "\nRTBH zombie candidates (" << classes.zombies
            << " total, first 12 shown):\n"
            << zombies;

  // Validate against the generator's ground truth.
  std::size_t planted = run.truth.zombie_addresses.size();
  std::size_t recovered = 0;
  std::unordered_set<std::uint32_t> zombie_ips;
  for (const auto& ip : run.truth.zombie_addresses) {
    zombie_ips.insert(ip.value());
  }
  for (const auto& ce : classes.events) {
    if (ce.cls != core::EventClass::kZombieCandidate) continue;
    if (zombie_ips.contains(
            events[ce.event_index].prefix.network().value())) {
      ++recovered;
    }
  }
  std::cout << "Ground truth: " << planted << " zombies planted, "
            << recovered << " recovered by the audit ("
            << util::fmt_percent(planted > 0 ? static_cast<double>(recovered) /
                                                   static_cast<double>(planted)
                                             : 0.0,
                                 0)
            << ").\n";

  // --- Squatting-protection findings. ---
  util::TextTable squat({"prefix", "origin AS", "duration"});
  for (const auto& ce : classes.events) {
    if (ce.cls != core::EventClass::kSquattingCandidate) continue;
    const auto& ev = events[ce.event_index];
    squat.add_row({ev.prefix.to_string(), "AS" + std::to_string(ev.origin),
                   util::format_duration(ce.duration)});
  }
  std::cout << "\nSquatting-protection candidates (" << classes.squatting
            << " events, " << classes.squatting_prefixes << " prefixes from "
            << classes.squatting_origin_as << " origin ASes; paper: 21 "
            << "prefixes from 4 ASes):\n"
            << squat;

  std::cout << "\nOperational takeaway: withdraw blackholes when the attack "
               "ends — a forgotten /32 RTBH\nsilently halves your "
               "reachability at the IXP.\n";
  return 0;
}
