#include "net/prefix.hpp"

#include <charconv>

namespace bw::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = Ipv4::parse(text);
    if (!addr) return std::nullopt;
    return Prefix::host(*addr);
  }
  const auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  unsigned len = 0;
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() || len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace bw::net
