# Empty dependencies file for exp_fig06_drop_cdf.
# This may be replaced when dependencies are built.
