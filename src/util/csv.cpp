#include "util/csv.hpp"

#include <stdexcept>

namespace bw::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace bw::util
