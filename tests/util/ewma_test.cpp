#include "util/ewma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace bw::util {
namespace {

// Naive reference implementation following the paper's formulas directly.
class NaiveEwma {
 public:
  explicit NaiveEwma(std::size_t window) : window_(window) {
    const double alpha = 2.0 / (static_cast<double>(window) + 1.0);
    double w = 1.0;
    for (std::size_t i = 0; i < window; ++i) {
      weights_.push_back(w);
      w *= (1.0 - alpha);
    }
  }

  void push(double x) {
    values_.insert(values_.begin(), x);  // newest first
    if (values_.size() > window_) values_.resize(window_);
  }

  [[nodiscard]] double average() const {
    return weighted_mean(values_, {weights_.data(), values_.size()});
  }
  [[nodiscard]] double stddev() const {
    return weighted_stddev(values_, {weights_.data(), values_.size()});
  }

 private:
  std::size_t window_;
  std::vector<double> weights_;
  std::vector<double> values_;
};

TEST(EwmaTest, NoAnomalyBeforeFullWindow) {
  EwmaDetector det({.window = 10, .threshold_sd = 2.5});
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(det.push(1000.0 * i)) << "window not yet full at " << i;
  }
  EXPECT_FALSE(det.window_full());
  det.push(0.0);
  EXPECT_TRUE(det.window_full());
}

TEST(EwmaTest, DetectsSpikeAfterFlatBaseline) {
  EwmaDetector det({.window = 20, .threshold_sd = 2.5});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) det.push(10.0 + rng.uniform(-0.5, 0.5));
  EXPECT_TRUE(det.push(100.0));
}

TEST(EwmaTest, NoAnomalyOnFlatSeries) {
  EwmaDetector det({.window = 20});
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(det.push(5.0));
  }
}

TEST(EwmaTest, DipsAreNotAnomalies) {
  EwmaDetector det({.window = 20});
  Rng rng(2);
  for (int i = 0; i < 50; ++i) det.push(100.0 + rng.uniform(-1.0, 1.0));
  EXPECT_FALSE(det.push(0.0));  // only positive deviations count
}

TEST(EwmaTest, RecentValuesWeighHeavier) {
  EwmaDetector det({.window = 4});
  det.push(0.0);
  det.push(0.0);
  det.push(0.0);
  det.push(100.0);  // newest
  // Weighted average with newest-heavy weights must exceed the plain mean.
  EXPECT_GT(det.current_average(), 25.0);
}

TEST(EwmaTest, ResetClearsState) {
  EwmaDetector det({.window = 5});
  for (int i = 0; i < 10; ++i) det.push(3.0);
  det.reset();
  EXPECT_EQ(det.samples_seen(), 0u);
  EXPECT_FALSE(det.window_full());
  EXPECT_EQ(det.current_average(), 0.0);
}

TEST(EwmaTest, ScanMatchesDetector) {
  Rng rng(3);
  std::vector<double> series;
  for (int i = 0; i < 500; ++i) series.push_back(rng.uniform(0.0, 10.0));
  series[400] = 500.0;
  const EwmaConfig cfg{.window = 50};
  const EwmaSeries scan = ewma_scan(series, cfg);
  EwmaDetector det(cfg);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(det.push(series[i]), scan.anomalous[i]) << "at " << i;
  }
  EXPECT_TRUE(scan.anomalous[400]);
}

TEST(EwmaTest, PaperParameters) {
  const EwmaDetector det;  // defaults
  EXPECT_EQ(det.config().window, 288u);
  EXPECT_DOUBLE_EQ(det.config().threshold_sd, 2.5);
}

// Property: the O(1) incremental moments match the naive recomputation.
class EwmaPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(EwmaPropertyTest, IncrementalMatchesNaive) {
  const auto [window, seed] = GetParam();
  EwmaDetector det({.window = window});
  NaiveEwma naive(window);
  Rng rng(seed);
  for (int i = 0; i < 700; ++i) {
    // Mix of sparse zeros and occasional spikes, like real slot series.
    double x = rng.chance(0.7) ? 0.0 : rng.uniform(0.0, 20.0);
    if (rng.chance(0.01)) x = rng.uniform(100.0, 1000.0);
    det.push(x);
    naive.push(x);
    // Tolerance scales with magnitude: the sum-of-squares variance form
    // loses precision via cancellation when values are large.
    const double tol = 1e-6 + 1e-6 * std::abs(naive.average()) +
                       1e-9 * naive.average() * naive.average();
    ASSERT_NEAR(det.current_average(), naive.average(), tol) << "step " << i;
    ASSERT_NEAR(det.current_stddev(), naive.stddev(), tol + 1e-4)
        << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndSeeds, EwmaPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 7, 50, 288),
                       ::testing::Values<std::uint64_t>(1, 99)));

}  // namespace
}  // namespace bw::util
