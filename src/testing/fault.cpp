#include "testing/fault.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/container.hpp"

namespace bw::testing {

namespace {

constexpr const char* kCorpusFiles[] = {
    "control.csv", "flows.csv", "macs.csv", "origins.csv", "period.csv",
};

/// Distinct row indices, ascending. Empty when the file has no rows.
std::vector<std::size_t> pick_rows(util::Rng& rng, std::size_t n,
                                   std::size_t k) {
  auto picked = rng.sample_indices(n, k);
  std::sort(picked.begin(), picked.end());
  return picked;
}

/// A byte that breaks any of our numeric/address/mac fields.
char garbage_byte(util::Rng& rng, char original) {
  const char candidates[] = {'x', 'y', 'z', '~'};
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const char c = candidates[rng.index(std::size(candidates))];
    if (c != original) return c;
  }
  return '~';
}

std::size_t fault_truncate(CsvFile& file, util::Rng& rng, double fraction) {
  if (file.rows.empty()) return 0;
  std::size_t cut = static_cast<std::size_t>(
      fraction * static_cast<double>(file.rows.size()));
  cut = std::clamp<std::size_t>(cut, 1, file.rows.size());
  file.rows.resize(file.rows.size() - cut);
  std::size_t affected = cut;
  if (!file.rows.empty()) {
    // End mid-row: keep a prefix of the (new) last row as an unterminated
    // tail. Cutting within the first half guarantees the remnant has too
    // few fields to parse.
    std::string& last = file.rows.back();
    if (last.size() >= 2) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(last.size() / 2)));
      file.partial_tail = last.substr(0, pos);
      file.rows.pop_back();
      ++affected;
    }
  }
  return affected;
}

std::size_t fault_byte_flip(CsvFile& file, util::Rng& rng, std::size_t count) {
  const auto picked = pick_rows(rng, file.rows.size(), count);
  std::size_t affected = 0;
  for (const std::size_t idx : picked) {
    std::string& row = file.rows[idx];
    if (row.empty()) continue;
    const std::size_t pos = rng.index(row.size());
    row[pos] = garbage_byte(rng, row[pos]);
    ++affected;
  }
  return affected;
}

std::size_t fault_duplicate(CsvFile& file, util::Rng& rng, std::size_t count) {
  if (file.rows.empty()) return 0;
  std::size_t affected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string copy = file.rows[rng.index(file.rows.size())];
    const std::size_t at = rng.index(file.rows.size() + 1);
    file.rows.insert(file.rows.begin() + static_cast<std::ptrdiff_t>(at),
                     copy);
    ++affected;
  }
  return affected;
}

std::size_t fault_reorder(CsvFile& file, util::Rng& rng, std::size_t count) {
  const auto picked = pick_rows(rng, file.rows.size(), count);
  if (picked.size() < 2) return 0;
  // Cyclic shift of the chosen rows: the earliest position receives the
  // latest row, guaranteeing out-of-order timestamps for distinct times.
  const std::string last = file.rows[picked.back()];
  for (std::size_t i = picked.size() - 1; i > 0; --i) {
    file.rows[picked[i]] = file.rows[picked[i - 1]];
  }
  file.rows[picked.front()] = last;
  return picked.size();
}

std::size_t fault_mangle(CsvFile& file, util::Rng& rng, std::size_t count) {
  const auto picked = pick_rows(rng, file.rows.size(), count);
  std::size_t affected = 0;
  for (const std::size_t idx : picked) {
    std::string& row = file.rows[idx];
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t pos = row.find(',', start);
      if (pos == std::string::npos) {
        fields.push_back(row.substr(start));
        break;
      }
      fields.push_back(row.substr(start, pos - start));
      start = pos + 1;
    }
    fields[rng.index(fields.size())] = "##mangled##";
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ',';
      out += fields[i];
    }
    row = std::move(out);
    ++affected;
  }
  return affected;
}

std::size_t fault_clock_skew(CsvFile& file, util::Rng& rng, std::size_t count,
                             std::int64_t skew_ms) {
  const auto picked = pick_rows(rng, file.rows.size(), count);
  std::size_t affected = 0;
  for (const std::size_t idx : picked) {
    std::string& row = file.rows[idx];
    const std::size_t comma = row.find(',');
    if (comma == std::string::npos) continue;
    std::int64_t time = 0;
    const auto [p, ec] = std::from_chars(row.data(), row.data() + comma, time);
    if (ec != std::errc{} || p != row.data() + comma) continue;
    row = std::to_string(time + skew_ms) + row.substr(comma);
    ++affected;
  }
  return affected;
}

std::size_t fault_drop_rows(CsvFile& file, util::Rng& rng, std::size_t count) {
  const auto picked = pick_rows(rng, file.rows.size(), count);
  for (auto it = picked.rbegin(); it != picked.rend(); ++it) {
    file.rows.erase(file.rows.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return picked.size();
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kByteFlip: return "byteflip";
    case FaultKind::kDuplicateRows: return "dup";
    case FaultKind::kReorderRows: return "reorder";
    case FaultKind::kMangleField: return "mangle";
    case FaultKind::kClockSkew: return "skew";
    case FaultKind::kDropMacs: return "dropmacs";
  }
  return "unknown";
}

CsvFile* CsvCorpus::find(std::string_view name) {
  for (auto& f : files) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

util::Result<CsvCorpus> CsvCorpus::load(const std::string& directory) {
  CsvCorpus corpus;
  for (const char* name : kCorpusFiles) {
    std::ifstream is(directory + "/" + name);
    if (!is) {
      return util::not_found(std::string("CsvCorpus::load: cannot open ") +
                             directory + "/" + name);
    }
    CsvFile file;
    file.name = name;
    if (!std::getline(is, file.header)) {
      return util::data_loss(std::string("CsvCorpus::load: empty file ") +
                             directory + "/" + name);
    }
    std::string line;
    while (std::getline(is, line)) file.rows.push_back(line);
    corpus.files.push_back(std::move(file));
  }
  return corpus;
}

util::Status CsvCorpus::save(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  for (const auto& file : files) {
    std::ofstream os(directory + "/" + file.name, std::ios::trunc);
    if (!os) {
      return util::not_found(std::string("CsvCorpus::save: cannot open ") +
                             directory + "/" + file.name);
    }
    os << file.header << '\n';
    for (const auto& row : file.rows) os << row << '\n';
    os << file.partial_tail;  // unterminated on purpose (truncation fault)
    if (!os) {
      return util::data_loss(std::string("CsvCorpus::save: write failed: ") +
                             directory + "/" + file.name);
    }
  }
  return util::ok_status();
}

FaultPlan FaultPlan::default_mix(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.faults = {
      {FaultKind::kTruncate, "flows.csv", 0, 0.01, 0},
      {FaultKind::kByteFlip, "control.csv", 4, 0.0, 0},
      {FaultKind::kDuplicateRows, "flows.csv", 6, 0.0, 0},
      {FaultKind::kReorderRows, "flows.csv", 12, 0.0, 0},
      {FaultKind::kMangleField, "control.csv", 3, 0.0, 0},
      {FaultKind::kClockSkew, "flows.csv", 5, 0.0, 3 * 24 * 3600 * 1000LL},
      {FaultKind::kDropMacs, "macs.csv", 2, 0.0, 0},
  };
  return plan;
}

std::size_t FaultLog::total(FaultKind kind) const {
  std::size_t n = 0;
  for (const auto& e : entries) {
    if (e.kind == kind) n += e.rows_affected;
  }
  return n;
}

std::string FaultLog::summary() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    os << to_string(e.kind) << ' ' << e.file << ": " << e.rows_affected
       << " row(s)\n";
  }
  return os.str();
}

FaultLog apply_faults(CsvCorpus& corpus, const FaultPlan& plan) {
  FaultLog log;
  const util::Rng root(plan.seed);
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const Fault& fault = plan.faults[i];
    // One substream per fault position: appending a fault to the plan never
    // changes what the earlier faults did.
    util::Rng rng = root.fork(i);
    const std::string& target =
        fault.kind == FaultKind::kDropMacs ? "macs.csv" : fault.file;
    FaultLog::Entry entry{fault.kind, target, 0};
    if (CsvFile* file = corpus.find(target)) {
      switch (fault.kind) {
        case FaultKind::kTruncate:
          entry.rows_affected = fault_truncate(*file, rng, fault.fraction);
          break;
        case FaultKind::kByteFlip:
          entry.rows_affected = fault_byte_flip(*file, rng, fault.count);
          break;
        case FaultKind::kDuplicateRows:
          entry.rows_affected = fault_duplicate(*file, rng, fault.count);
          break;
        case FaultKind::kReorderRows:
          entry.rows_affected = fault_reorder(*file, rng, fault.count);
          break;
        case FaultKind::kMangleField:
          entry.rows_affected = fault_mangle(*file, rng, fault.count);
          break;
        case FaultKind::kClockSkew:
          entry.rows_affected =
              fault_clock_skew(*file, rng, fault.count, fault.skew_ms);
          break;
        case FaultKind::kDropMacs:
          entry.rows_affected = fault_drop_rows(*file, rng, fault.count);
          break;
      }
    }
    log.entries.push_back(std::move(entry));
  }
  return log;
}

util::Result<FaultPlan> parse_fault_spec(std::string_view spec,
                                         std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = std::min(spec.find(',', start), spec.size());
    const std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;

    std::string_view parts[3];
    std::size_t n_parts = 0;
    std::size_t p = 0;
    while (n_parts < 3) {
      const std::size_t colon = std::min(item.find(':', p), item.size());
      parts[n_parts++] = item.substr(p, colon - p);
      if (colon == item.size()) break;
      p = colon + 1;
    }

    Fault fault;
    const std::string_view kind = parts[0];
    if (kind == "truncate") {
      fault = {FaultKind::kTruncate, "flows.csv", 0, 0.01, 0};
    } else if (kind == "byteflip") {
      fault = {FaultKind::kByteFlip, "flows.csv", 4, 0.0, 0};
    } else if (kind == "dup") {
      fault = {FaultKind::kDuplicateRows, "flows.csv", 6, 0.0, 0};
    } else if (kind == "reorder") {
      fault = {FaultKind::kReorderRows, "flows.csv", 12, 0.0, 0};
    } else if (kind == "mangle") {
      fault = {FaultKind::kMangleField, "control.csv", 3, 0.0, 0};
    } else if (kind == "skew") {
      fault = {FaultKind::kClockSkew, "flows.csv", 8, 0.0,
               3 * 24 * 3600 * 1000LL};
    } else if (kind == "dropmacs") {
      fault = {FaultKind::kDropMacs, "macs.csv", 2, 0.0, 0};
    } else {
      return util::invalid_argument("unknown fault kind '" +
                                    std::string(kind) + "'");
    }
    if (n_parts >= 2 && !parts[1].empty()) fault.file = std::string(parts[1]);
    if (n_parts >= 3 && !parts[2].empty()) {
      const std::string_view arg = parts[2];
      const char* argend = arg.data() + arg.size();
      bool ok = false;
      if (fault.kind == FaultKind::kTruncate) {
        // std::from_chars for doubles is spotty across libstdc++ versions;
        // fractions are short, so strtod on a copy is fine.
        try {
          fault.fraction = std::stod(std::string(arg));
          ok = fault.fraction > 0.0 && fault.fraction <= 1.0;
        } catch (...) {
          ok = false;
        }
      } else if (fault.kind == FaultKind::kClockSkew) {
        const auto [q, ec] = std::from_chars(arg.data(), argend, fault.skew_ms);
        ok = ec == std::errc{} && q == argend;
      } else {
        const auto [q, ec] = std::from_chars(arg.data(), argend, fault.count);
        ok = ec == std::errc{} && q == argend;
      }
      if (!ok) {
        return util::invalid_argument("bad fault argument '" +
                                      std::string(arg) + "' for " +
                                      std::string(kind));
      }
    }
    plan.faults.push_back(std::move(fault));
  }
  if (plan.faults.empty()) {
    return util::invalid_argument("empty fault spec");
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Binary container faults
// ---------------------------------------------------------------------------

std::string_view to_string(BinaryFaultKind kind) {
  switch (kind) {
    case BinaryFaultKind::kTruncate: return "truncate";
    case BinaryFaultKind::kBitFlip: return "bitflip";
    case BinaryFaultKind::kTornRename: return "torn";
    case BinaryFaultKind::kSectionSwap: return "swap";
  }
  return "unknown";
}

util::Result<BinaryFaultKind> parse_binary_fault_kind(std::string_view name) {
  if (name == "truncate") return BinaryFaultKind::kTruncate;
  if (name == "bitflip") return BinaryFaultKind::kBitFlip;
  if (name == "torn") return BinaryFaultKind::kTornRename;
  if (name == "swap") return BinaryFaultKind::kSectionSwap;
  return util::invalid_argument("unknown binary fault kind '" +
                                std::string(name) + "'");
}

namespace {

util::Result<std::string> read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return util::not_found("apply_binary_fault: cannot open " + path);
  }
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

util::Status write_file_bytes(const std::string& path,
                              const std::string& bytes) {
  // Plain truncating overwrite on purpose: torn/partial states are the
  // product, not a hazard.
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return util::not_found("apply_binary_fault: cannot open " + path +
                           " for writing");
  }
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    return util::data_loss("apply_binary_fault: write failed: " + path);
  }
  return util::ok_status();
}

}  // namespace

util::Result<BinaryFaultReport> apply_binary_fault(const std::string& path,
                                                   BinaryFaultKind kind,
                                                   std::uint64_t seed) {
  auto bytes_result = read_file_bytes(path);
  if (!bytes_result.ok()) return bytes_result.status();
  std::string bytes = std::move(bytes_result).value();
  if (bytes.size() < 2) {
    return util::failed_precondition(
        "apply_binary_fault: file too small to corrupt: " + path);
  }
  const std::string original = bytes;
  util::Rng rng(
      util::Rng::derive_seed(seed, static_cast<std::uint64_t>(kind)));

  BinaryFaultReport report;
  report.kind = kind;
  report.file = path;

  switch (kind) {
    case BinaryFaultKind::kTruncate: {
      // Keep anywhere from 0 bytes to all-but-one: exercises header-only,
      // mid-payload, and missing-footer cuts.
      const std::size_t keep = rng.index(bytes.size());
      report.detail = "cut " + std::to_string(bytes.size() - keep) + " of " +
                      std::to_string(bytes.size()) + " bytes";
      bytes.resize(keep);
      break;
    }
    case BinaryFaultKind::kBitFlip: {
      const std::size_t at = rng.index(bytes.size());
      const int bit = static_cast<int>(rng.index(8));
      bytes[at] = static_cast<char>(static_cast<unsigned char>(bytes[at]) ^
                                    (1u << bit));
      report.detail = "flipped bit " + std::to_string(bit) + " of byte " +
                      std::to_string(at);
      break;
    }
    case BinaryFaultKind::kTornRename: {
      // A crash during a non-atomic in-place overwrite: the head of the new
      // bytes made it to disk, the tail is whatever was there before —
      // modelled as random garbage of an independent length.
      const std::size_t head = rng.index(bytes.size());
      const std::size_t tail = 1 + rng.index(bytes.size());
      bytes.resize(head);
      for (std::size_t i = 0; i < tail; ++i) {
        bytes.push_back(static_cast<char>(rng.index(256)));
      }
      report.detail = "kept " + std::to_string(head) +
                      " head bytes, appended " + std::to_string(tail) +
                      " stale bytes";
      break;
    }
    case BinaryFaultKind::kSectionSwap: {
      // Parse the intact TOC to find payload ranges, then swap two payloads
      // without touching the TOC: offsets and CRCs go stale exactly the way
      // a block-level misplacement leaves them.
      std::istringstream is(bytes);
      auto toc = util::container::read_toc(is, bytes.size());
      if (!toc.ok()) {
        return toc.status().with_context(
            "apply_binary_fault: swap needs a valid container");
      }
      std::vector<const util::container::Section*> nonempty;
      for (const auto& s : toc->sections) {
        if (s.length > 0) nonempty.push_back(&s);
      }
      if (nonempty.size() < 2) {
        return util::failed_precondition(
            "apply_binary_fault: fewer than two non-empty sections in " +
            path);
      }
      const auto picked = rng.sample_indices(nonempty.size(), 2);
      const auto* a = nonempty[std::min(picked[0], picked[1])];
      const auto* b = nonempty[std::max(picked[0], picked[1])];
      const std::string pa = bytes.substr(a->offset, a->length);
      const std::string pb = bytes.substr(b->offset, b->length);
      // Rebuild with the payloads exchanged; unequal lengths shift every
      // byte in between, which the stale TOC also fails to describe.
      std::string out;
      out.reserve(bytes.size());
      out.append(bytes, 0, a->offset);
      out.append(pb);
      out.append(bytes, a->offset + a->length,
                 b->offset - (a->offset + a->length));
      out.append(pa);
      out.append(bytes, b->offset + b->length,
                 bytes.size() - (b->offset + b->length));
      bytes = std::move(out);
      report.detail = "swapped payloads of " +
                      util::container::section_name(a->id) + " and " +
                      util::container::section_name(b->id);
      break;
    }
  }

  report.bytes_changed = bytes != original;
  if (util::Status st = write_file_bytes(path, bytes); !st.ok()) {
    return st;
  }
  return report;
}

// --- Streaming-ingest faults ------------------------------------------------

std::string StreamFaultPlan::summary() const {
  if (!any()) return "none";
  std::ostringstream os;
  const char* sep = "";
  if (tick_events > 0) {
    os << "slow-consumer " << drain_per_tick << "/" << tick_events;
    sep = ", ";
  }
  if (consumer_delay_us > 0) {
    os << sep << "consumer-delay " << consumer_delay_us << "us";
    sep = ", ";
  }
  if (burst > 0) {
    os << sep << "bursty-producer " << burst << " every " << burst_pause_us
       << "us";
  }
  return os.str();
}

util::Result<StreamFaultPlan> parse_stream_fault_spec(std::string_view spec) {
  StreamFaultPlan plan;
  const auto parse_u64 = [](std::string_view s, std::uint64_t& out) {
    const char* end = s.data() + s.size();
    const auto [q, ec] = std::from_chars(s.data(), end, out);
    return ec == std::errc{} && q == end && !s.empty();
  };
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = std::min(spec.find(',', start), spec.size());
    const std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;

    std::string_view parts[3];
    std::size_t n_parts = 0;
    std::size_t p = 0;
    while (n_parts < 3) {
      const std::size_t colon = std::min(item.find(':', p), item.size());
      parts[n_parts++] = item.substr(p, colon - p);
      if (colon == item.size()) break;
      p = colon + 1;
    }

    const std::string_view kind = parts[0];
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (kind == "slow") {
      if (n_parts != 3 || !parse_u64(parts[1], a) || !parse_u64(parts[2], b) ||
          a == 0) {
        return util::invalid_argument(
            "slow consumer fault needs slow:TICK:DRAIN with TICK > 0");
      }
      plan.tick_events = static_cast<std::size_t>(a);
      plan.drain_per_tick = static_cast<std::size_t>(b);
    } else if (kind == "delay") {
      if (n_parts != 2 || !parse_u64(parts[1], a) || a == 0) {
        return util::invalid_argument("delay fault needs delay:MICROSECONDS");
      }
      plan.consumer_delay_us = a;
    } else if (kind == "burst") {
      if (n_parts < 2 || !parse_u64(parts[1], a) || a == 0 ||
          (n_parts == 3 && !parse_u64(parts[2], b))) {
        return util::invalid_argument("burst fault needs burst:N[:PAUSE_US]");
      }
      plan.burst = static_cast<std::size_t>(a);
      plan.burst_pause_us = n_parts == 3 ? b : 1000;
    } else {
      return util::invalid_argument("unknown stream fault kind '" +
                                    std::string(kind) +
                                    "' (slow | delay | burst)");
    }
  }
  return plan;
}

}  // namespace bw::testing
