// Performance microbenchmarks for the core analysis algorithms. These
// bound the cost of running the pipeline at full paper scale (34k events,
// millions of sampled records).
#include <benchmark/benchmark.h>

#include "core/event_merge.hpp"
#include "ixp/blackhole_service.hpp"
#include "net/prefix_trie.hpp"
#include "util/ewma.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace bw;

void BM_EwmaPush(benchmark::State& state) {
  util::EwmaDetector det({.window = static_cast<std::size_t>(state.range(0))});
  util::Rng rng(1);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.chance(0.8) ? 0.0 : rng.uniform(0.0, 50.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.push(values[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwmaPush)->Arg(288)->Arg(1024);

void BM_TrieLongestPrefixMatch(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng(2);
  for (int i = 0; i < state.range(0); ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(16, 32));
    trie.insert(net::Prefix(net::Ipv4(static_cast<std::uint32_t>(
                                rng.uniform_int(0, 0x7FFFFFFF))),
                            len),
                i);
  }
  std::vector<net::Ipv4> probes(4096);
  for (auto& p : probes) {
    p = net::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7FFFFFFF)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.match(probes[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestPrefixMatch)->Arg(1000)->Arg(30000);

void BM_TrieCoveringMatches(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng(3);
  for (int i = 0; i < 30000; ++i) {
    trie.insert(net::Prefix(net::Ipv4(static_cast<std::uint32_t>(
                                rng.uniform_int(0, 0x00FFFFFF) << 8)),
                            32),
                i);
  }
  std::vector<net::Ipv4> probes(4096);
  for (auto& p : probes) {
    p = net::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7FFFFFFF)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.matches(probes[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieCoveringMatches);

void BM_EventMerge(benchmark::State& state) {
  // Build a synthetic announcement log: N prefixes x 12 on/off cycles.
  ixp::BlackholeService svc;
  bgp::UpdateLog log;
  util::Rng rng(4);
  const int prefixes = static_cast<int>(state.range(0));
  for (int p = 0; p < prefixes; ++p) {
    const net::Prefix prefix(
        net::Ipv4(0x18000000u + static_cast<std::uint32_t>(p)), 32);
    util::TimeMs t = rng.uniform_int(0, util::days(100));
    for (int c = 0; c < 12; ++c) {
      const util::TimeMs end = t + util::minutes(rng.uniform(1.0, 10.0));
      log.push_back(svc.make_announce(t, 1, 2, prefix));
      log.push_back(svc.make_withdraw(end, 1, 2, prefix));
      t = end + util::minutes(rng.uniform(0.5, 3.0));
    }
  }
  for (auto _ : state) {
    auto events = core::merge_events(log, util::days(104));
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * log.size());
}
BENCHMARK(BM_EventMerge)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_Quantile(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (double& v : values) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::quantile(values, 0.75));
  }
}
BENCHMARK(BM_Quantile)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
