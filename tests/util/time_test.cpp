#include "util/time.hpp"

#include <gtest/gtest.h>

namespace bw::util {
namespace {

TEST(TimeTest, ConstantsRelate) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(TimeTest, DurationHelpers) {
  EXPECT_EQ(seconds(1.5), 1500);
  EXPECT_EQ(minutes(2.0), 120000);
  EXPECT_EQ(hours(0.5), 30 * kMinute);
  EXPECT_EQ(days(2.0), 48 * kHour);
}

TEST(TimeRangeTest, LengthAndContains) {
  const TimeRange r{10, 20};
  EXPECT_EQ(r.length(), 10);
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));  // half-open
  EXPECT_FALSE(r.contains(9));
}

TEST(TimeRangeTest, Overlaps) {
  const TimeRange a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 15}));
  EXPECT_TRUE(a.overlaps({-5, 1}));
  EXPECT_FALSE(a.overlaps({10, 20}));  // touching, half-open
  EXPECT_FALSE(a.overlaps({20, 30}));
}

TEST(TimeRangeTest, ClampIntersection) {
  const TimeRange a{0, 10};
  EXPECT_EQ(a.clamp({5, 15}), (TimeRange{5, 10}));
  EXPECT_EQ(a.clamp({-5, 5}), (TimeRange{-5 + 5, 5}));
  const TimeRange empty = a.clamp({20, 30});
  EXPECT_EQ(empty.length(), 0);
}

TEST(SlotTest, IndexRoundsTowardNegativeInfinity) {
  EXPECT_EQ(slot_index(0, 100), 0);
  EXPECT_EQ(slot_index(99, 100), 0);
  EXPECT_EQ(slot_index(100, 100), 1);
  EXPECT_EQ(slot_index(-1, 100), -1);
  EXPECT_EQ(slot_index(-100, 100), -1);
  EXPECT_EQ(slot_index(-101, 100), -2);
}

TEST(SlotTest, SlotStart) {
  EXPECT_EQ(slot_start(250, 100), 200);
  EXPECT_EQ(slot_start(-50, 100), -100);
}

TEST(SlotTest, ZeroWidthIsSafe) {
  EXPECT_EQ(slot_index(123, 0), 0);
}

TEST(FormatTest, FormatTime) {
  EXPECT_EQ(format_time(0), "day0 00:00:00");
  EXPECT_EQ(format_time(kDay + kHour + kMinute + kSecond), "day1 01:01:01");
  EXPECT_EQ(format_time(-kHour), "-day0 01:00:00");
}

TEST(FormatTest, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500ms");
  EXPECT_EQ(format_duration(1500), "1.50s");
  EXPECT_EQ(format_duration(90 * kSecond), "1.5m");
  EXPECT_EQ(format_duration(36 * kHour), "1.5d");
  EXPECT_EQ(format_duration(-90 * kSecond), "-1.5m");
}

}  // namespace
}  // namespace bw::util
