// Unit tests for the bw::obs observability substrate: sharded counters and
// histograms (including concurrent writers), the determinism naming
// convention, name-sorted snapshot JSON stability, manifest assembly, and
// the trace-span collector round trip.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bw::obs {
namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreInclusive) {
  // bucket_for places value v in the first bucket whose bound is >= v.
  EXPECT_EQ(Histogram::bucket_for(0), 0u);
  EXPECT_EQ(Histogram::bucket_for(1), 0u);
  EXPECT_EQ(Histogram::bucket_for(2), 1u);
  EXPECT_EQ(Histogram::bucket_for(4), 1u);
  EXPECT_EQ(Histogram::bucket_for(5), 2u);
  EXPECT_EQ(Histogram::bucket_for(1024), 5u);
  EXPECT_EQ(Histogram::bucket_for(4194304), 11u);
  // Past the last bound: the overflow bucket.
  EXPECT_EQ(Histogram::bucket_for(4194305), Histogram::kBucketCount - 1);
}

TEST(HistogramTest, RecordSnapshotReset) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(5000000);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 5000004u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[Histogram::kBucketCount - 1], 1u);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().sum, 0u);
}

TEST(MetricsTest, DeterminismNamingConvention) {
  EXPECT_TRUE(is_deterministic_metric("pipeline.runs"));
  EXPECT_TRUE(is_deterministic_metric("scenario.cache.hit"));
  EXPECT_TRUE(is_deterministic_metric("ingest.rows_read"));
  // Timing suffixes vary run to run.
  EXPECT_FALSE(is_deterministic_metric("pipeline.stage.victims.wall_us"));
  EXPECT_FALSE(is_deterministic_metric("dataset.load.latency_us"));
  EXPECT_FALSE(is_deterministic_metric("anything_ns"));
  // Scheduling shape varies with the thread count.
  EXPECT_FALSE(is_deterministic_metric("sched.parallel.chunks"));
  EXPECT_FALSE(is_deterministic_metric("sched.parallel.for_calls"));
}

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  Registry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(RegistryTest, SnapshotIsNameSortedAndJsonIsStable) {
  Registry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(-5);
  registry.histogram("lat_us").record(10);

  const MetricsSnapshot s1 = registry.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "alpha");
  EXPECT_EQ(s1.counters[1].first, "zebra");
  EXPECT_EQ(s1.counter("alpha"), 2u);
  EXPECT_EQ(s1.counter("absent"), 0u);

  const std::string json = s1.to_json();
  EXPECT_NE(json.find("\"alpha\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"zebra\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mid\": -5"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  // Same registry state renders byte-identical JSON.
  EXPECT_EQ(registry.snapshot().to_json(), json);

  registry.reset_values();
  const MetricsSnapshot s2 = registry.snapshot();
  EXPECT_EQ(s2.counter("zebra"), 0u);    // values cleared...
  EXPECT_EQ(s2.counters.size(), 2u);     // ...names stay registered
  EXPECT_EQ(s2.histograms[0].data.count, 0u);
}

TEST(ManifestTest, PopulateFromMetricsFillsHeadlinesAndStageTimes) {
  Registry registry;
  registry.counter("scenario.cache.hit").add(3);
  registry.counter("scenario.cache.miss").add(1);
  registry.counter("retry.backoffs").add(2);
  registry.counter("ingest.rows_read").add(100);
  registry.counter("ingest.rows_repaired").add(4);
  registry.counter("monitor.alerts").add(7);
  registry.counter("pipeline.stage.victims.wall_us").add(123);
  registry.counter("pipeline.stage.victims.cpu_us").add(45);

  Manifest m;
  m.tool = "bw-test";
  m.corpus = "corpus.csv";
  m.has_seed = true;
  m.seed = 20191021;
  m.threads = 8;
  m.stages.push_back({"victims", 0, 0, false, false});
  m.populate_from_metrics(registry.snapshot());

  EXPECT_EQ(m.cache_hits, 3u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.fault_retries, 2u);
  EXPECT_EQ(m.rows_loaded, 100u);
  EXPECT_EQ(m.rows_repaired, 4u);
  EXPECT_EQ(m.monitor_alerts, 7u);
  ASSERT_EQ(m.stages.size(), 1u);
  EXPECT_EQ(m.stages[0].wall_us, 123u);
  EXPECT_EQ(m.stages[0].cpu_us, 45u);

  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"tool\": \"bw-test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 20191021"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 8"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"victims\", \"wall_us\": 123"),
            std::string::npos);
  EXPECT_NE(json.find("\"cache\": {\"hits\": 3, \"misses\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  // Same inputs render byte-identical documents.
  EXPECT_EQ(m.to_json(), json);
}

TEST(ManifestTest, SeedIsNullWhenAbsent) {
  Manifest m;
  m.tool = "bw-test";
  EXPECT_NE(m.to_json().find("\"seed\": null"), std::string::npos);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  trace_enable(false);
  trace_reset();
  { const TraceSpan span("obs_test.disabled", "test"); }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST(TraceTest, EnabledSpansRoundTripThroughChromeJson) {
  trace_enable(true);
  trace_reset();
  {
    const TraceSpan outer("obs_test.outer", "test");
    const TraceSpan inner("obs_test.inner", "test");
  }
  trace_enable(false);
  EXPECT_EQ(trace_event_count(), 2u);

  const std::string json = render_chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);

  trace_reset();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, SpansFromWorkerThreadsAreAllCollected) {
  trace_enable(true);
  trace_reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back(
        [] { const TraceSpan span("obs_test.worker", "test"); });
  }
  for (auto& w : workers) w.join();
  trace_enable(false);
  EXPECT_EQ(trace_event_count(), 4u);
  trace_reset();
}

}  // namespace
}  // namespace bw::obs
