// 1:N packet sampler.
//
// The IXP exports IPFIX samples of 1 out of 10,000 packets (Section 3.1).
// For a burst of `n` packets the number of sampled packets is
// Binomial(n, 1/N) — statistically identical to flipping a coin per packet —
// and sample times are uniform within the burst window (packets within a
// burst are homogeneous by construction). This is what lets the simulator
// carry paper-scale traffic volumes without materialising every packet.
#pragma once

#include <vector>

#include "flow/record.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bw::flow {

class IpfixSampler {
 public:
  IpfixSampler(std::uint32_t one_in_n, util::Rng rng)
      : n_(one_in_n == 0 ? 1 : one_in_n), rng_(rng) {}

  [[nodiscard]] std::uint32_t rate() const noexcept { return n_; }
  [[nodiscard]] double probability() const noexcept { return 1.0 / n_; }

  /// Draw the sampled-packet timestamps for one burst, sorted ascending.
  /// Draws from the sampler's own sequential stream — order-dependent, so
  /// only suitable for serial replay.
  [[nodiscard]] std::vector<util::TimeMs> sample_times(const TrafficBurst& burst);

  /// Same draw from a caller-provided stream. Pass `stream(key)` with a
  /// content-derived key (burst id) and the sample is a pure function of
  /// (sampler seed, key, burst), independent of burst arrival order.
  [[nodiscard]] std::vector<util::TimeMs> sample_times(const TrafficBurst& burst,
                                                       util::Rng& rng) const;

  /// Independent per-key substream of this sampler's seed.
  [[nodiscard]] util::Rng stream(std::uint64_t key) const {
    return rng_.fork(key);
  }

  /// Expected number of samples for a burst (for tests and sanity checks).
  [[nodiscard]] double expected_samples(const TrafficBurst& burst) const {
    return static_cast<double>(burst.packets) * probability();
  }

 private:
  std::uint32_t n_;
  util::Rng rng_;
};

}  // namespace bw::flow
