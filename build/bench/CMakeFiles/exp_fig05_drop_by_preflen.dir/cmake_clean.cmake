file(REMOVE_RECURSE
  "CMakeFiles/exp_fig05_drop_by_preflen.dir/exp_fig05_drop_by_preflen.cpp.o"
  "CMakeFiles/exp_fig05_drop_by_preflen.dir/exp_fig05_drop_by_preflen.cpp.o.d"
  "exp_fig05_drop_by_preflen"
  "exp_fig05_drop_by_preflen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig05_drop_by_preflen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
