#include "core/port_stats.hpp"

#include <algorithm>

namespace bw::core {

std::string_view to_string(HostClass c) {
  switch (c) {
    case HostClass::kClient: return "client";
    case HostClass::kServer: return "server";
    case HostClass::kUnclassified: return "unclassified";
  }
  return "unknown";
}

namespace {

struct Exclusions {
  /// Begin-sorted, per host: RTBH event spans plus the reaction window.
  std::vector<util::TimeRange> ranges;

  [[nodiscard]] bool contains(util::TimeMs t) const {
    auto it = std::upper_bound(ranges.begin(), ranges.end(), t,
                               [](util::TimeMs v, const util::TimeRange& r) {
                                 return v < r.begin;
                               });
    if (it == ranges.begin()) return false;
    --it;
    return it->contains(t);
  }
};

struct Accumulator {
  std::set<net::Port> src_in;
  std::set<net::Port> dst_in;
  std::set<net::Port> src_out;
  std::set<net::Port> dst_out;
  std::set<std::int64_t> days_in;
  std::set<std::int64_t> days_out;
  /// day -> (proto,port) -> packets, for the daily inbound top port.
  std::map<std::int64_t, std::map<net::ProtoPort, std::uint64_t>> daily_in;
};

}  // namespace

PortStatsReport compute_port_stats(const Dataset& dataset,
                                   const std::vector<RtbhEvent>& events,
                                   const PortStatsConfig& config,
                                   util::ThreadPool* pool_opt,
                                   const util::Deadline* deadline,
                                   KernelEngine engine) {
  util::ThreadPool& pool = util::pool_or_global(pool_opt);
  PortStatsReport report;

  // Host universe: every /32 RTBH event address, with its exclusion windows.
  std::unordered_map<net::Ipv4, Exclusions> exclusions;
  std::unordered_map<net::Ipv4, std::optional<bgp::Asn>> host_origin;
  for (const auto& ev : events) {
    if (ev.prefix.length() != 32) continue;
    auto& ex = exclusions[ev.prefix.network()];
    ex.ranges.push_back(
        {ev.span.begin - config.reaction_window, ev.span.end});
    host_origin.emplace(ev.prefix.network(),
                        ev.origin != 0 ? std::optional<bgp::Asn>(ev.origin)
                                       : std::nullopt);
  }
  for (auto& [ip, ex] : exclusions) {
    std::sort(ex.ranges.begin(), ex.ranges.end(),
              [](const util::TimeRange& a, const util::TimeRange& b) {
                return a.begin < b.begin;
              });
    // Merge overlaps so the binary-search predicate stays correct.
    std::vector<util::TimeRange> merged;
    for (const auto& r : ex.ranges) {
      if (!merged.empty() && r.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, r.end);
      } else {
        merged.push_back(r);
      }
    }
    ex.ranges = std::move(merged);
  }
  report.blackholed_hosts_total = exclusions.size();

  // Shared finaliser: identical for both engines so derived values (and
  // therefore the rendered report) cannot diverge.
  const auto finalize_host = [&config, &host_origin](net::Ipv4 ip,
                                                     const Accumulator& a) {
    HostPortStats h;
    h.ip = ip;
    h.origin = host_origin.at(ip);
    h.unique_src_ports_in = a.src_in.size();
    h.unique_dst_ports_in = a.dst_in.size();
    h.unique_src_ports_out = a.src_out.size();
    h.unique_dst_ports_out = a.dst_out.size();
    h.days_with_inbound = a.days_in.size();
    h.days_with_outbound = a.days_out.size();
    std::size_t both = 0;
    for (const std::int64_t d : a.days_in) {
      if (a.days_out.contains(d)) ++both;
    }
    h.days_bidirectional = both;

    std::set<net::ProtoPort> tops;
    for (const auto& [day, ports] : a.daily_in) {
      const auto top = std::max_element(
          ports.begin(), ports.end(),
          [](const auto& x, const auto& y) { return x.second < y.second; });
      tops.insert(top->first);
    }
    h.top_ports.assign(tops.begin(), tops.end());
    h.port_variation =
        h.days_with_inbound > 0
            ? static_cast<double>(h.top_ports.size()) /
                  static_cast<double>(h.days_with_inbound)
            : 0.0;

    if (h.days_bidirectional >= config.min_days) {
      if (h.port_variation >= config.client_variation_min) {
        h.classification = HostClass::kClient;
      } else {
        h.classification = HostClass::kServer;
      }
    }
    return h;
  };

  const util::TimeMs epoch = dataset.period().begin;

  if (engine == KernelEngine::kColumnar) {
    // Columnar engine: instead of scanning the whole log and hashing every
    // record against the universe, jump straight to each blackholed host's
    // destination and source runs in the columns. A host appears in the
    // report iff at least one non-excluded record touches it in either
    // direction — exactly the records engine's map-entry condition.
    static const KernelScanMetrics metrics =
        make_kernel_scan_metrics("port_stats");
    const obs::StopWatch watch;
    const flow::FlowColumns& cols = dataset.columns();

    std::vector<net::Ipv4> universe;
    universe.reserve(exclusions.size());
    for (const auto& [ip, ex] : exclusions) universe.push_back(ip);
    std::sort(universe.begin(), universe.end());

    auto hosts = util::parallel_map(pool, universe.size(), [&](std::size_t u) {
      const net::Ipv4 ip = universe[u];
      const Exclusions& ex = exclusions.at(ip);
      Accumulator a;
      bool any = false;

      const auto din = cols.dst_run(ip);
      for (std::size_t i = din.begin; i < din.end; ++i) {
        if (ex.contains(cols.time[i])) continue;
        any = true;
        const std::int64_t day =
            util::slot_index(cols.time[i] - epoch, util::kDay);
        a.src_in.insert(cols.src_port[i]);
        a.dst_in.insert(cols.dst_port[i]);
        a.days_in.insert(day);
        a.daily_in[day][{static_cast<net::Proto>(cols.proto[i]),
                         cols.dst_port[i]}] += cols.packets[i];
      }

      const auto dout = cols.src_run(ip);
      for (std::size_t i = dout.begin; i < dout.end; ++i) {
        if (ex.contains(cols.s_time[i])) continue;
        any = true;
        const std::int64_t day =
            util::slot_index(cols.s_time[i] - epoch, util::kDay);
        a.src_out.insert(cols.s_src_port[i]);
        a.dst_out.insert(cols.s_dst_port[i]);
        a.days_out.insert(day);
      }

      metrics.rows->add(din.size() + dout.size());
      return any ? std::optional<HostPortStats>(finalize_host(ip, a))
                 : std::nullopt;
    }, 0, deadline);

    report.hosts.reserve(hosts.size());
    for (auto& h : hosts) {
      if (h) report.hosts.push_back(std::move(*h));
    }
    metrics.ns->add(watch.elapsed_ns());
  } else {
  // Pass over the flow log, attributing both directions. The log is
  // sharded over the pool with one accumulator map per shard; shard
  // boundaries depend only on the log size, and the set/sum merge below is
  // order-insensitive, so the result is identical at any thread count.
  const flow::FlowLog& flows = dataset.flows();
  const std::size_t shards =
      std::clamp<std::size_t>(flows.size() / 65536, 1, 64);
  const std::size_t shard_len = (flows.size() + shards - 1) / shards;
  auto shard_accs = util::parallel_map(pool, shards, [&](std::size_t k) {
    std::unordered_map<net::Ipv4, Accumulator> acc;
    const std::size_t end = std::min(flows.size(), (k + 1) * shard_len);
    for (std::size_t i = k * shard_len; i < end; ++i) {
      const auto& rec = flows[i];
      const std::int64_t day = util::slot_index(rec.time - epoch, util::kDay);
      if (auto it = exclusions.find(rec.dst_ip); it != exclusions.end()) {
        if (!it->second.contains(rec.time)) {
          auto& a = acc[rec.dst_ip];
          a.src_in.insert(rec.src_port);
          a.dst_in.insert(rec.dst_port);
          a.days_in.insert(day);
          a.daily_in[day][{rec.proto, rec.dst_port}] += rec.packets;
        }
      }
      if (auto it = exclusions.find(rec.src_ip); it != exclusions.end()) {
        if (!it->second.contains(rec.time)) {
          auto& a = acc[rec.src_ip];
          a.src_out.insert(rec.src_port);
          a.dst_out.insert(rec.dst_port);
          a.days_out.insert(day);
        }
      }
    }
    return acc;
  }, 0, deadline);

  std::unordered_map<net::Ipv4, Accumulator> acc;
  acc.reserve(exclusions.size());
  for (auto& shard : shard_accs) {
    for (auto& [ip, sa] : shard) {
      auto& a = acc[ip];
      a.src_in.merge(sa.src_in);
      a.dst_in.merge(sa.dst_in);
      a.src_out.merge(sa.src_out);
      a.dst_out.merge(sa.dst_out);
      a.days_in.merge(sa.days_in);
      a.days_out.merge(sa.days_out);
      for (const auto& [day, ports] : sa.daily_in) {
        auto& day_ports = a.daily_in[day];
        for (const auto& [pp, packets] : ports) day_ports[pp] += packets;
      }
    }
  }

  // Finalise per host in sorted-address order (deterministic output and
  // embarrassingly parallel).
  std::vector<net::Ipv4> ips;
  ips.reserve(acc.size());
  for (const auto& [ip, a] : acc) ips.push_back(ip);
  std::sort(ips.begin(), ips.end());

  report.hosts = util::parallel_map(pool, ips.size(), [&](std::size_t i) {
    return finalize_host(ips[i], acc.at(ips[i]));
  }, 0, deadline);
  }
  for (const HostPortStats& h : report.hosts) {
    if (h.classification == HostClass::kUnclassified) continue;
    ++report.eligible_hosts;
    if (h.classification == HostClass::kClient) ++report.clients;
    else ++report.servers;
  }
  return report;
}

std::vector<AsnTypeRow> asn_type_table(const PortStatsReport& report,
                                       const pdb::Registry& registry) {
  std::map<pdb::OrgType, AsnTypeRow> rows;
  for (const auto& h : report.hosts) {
    if (h.classification == HostClass::kUnclassified) continue;
    const pdb::OrgType type =
        h.origin ? registry.type_of(*h.origin) : pdb::OrgType::kUnknown;
    auto& row = rows[type];
    row.type = type;
    if (h.classification == HostClass::kClient) ++row.clients;
    else ++row.servers;
  }
  std::vector<AsnTypeRow> out;
  out.reserve(rows.size());
  for (const auto& [type, row] : rows) out.push_back(row);
  std::sort(out.begin(), out.end(), [](const AsnTypeRow& a, const AsnTypeRow& b) {
    return a.clients + a.servers > b.clients + b.servers;
  });
  return out;
}

}  // namespace bw::core
