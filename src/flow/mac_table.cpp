#include "flow/mac_table.hpp"

#include <stdexcept>

namespace bw::flow {

void MacTable::register_member(MemberId member, net::Mac port_mac) {
  mac_to_member_[port_mac] = member;
  member_to_mac_[member] = port_mac;
}

void MacTable::register_internal(net::Mac mac) { internal_[mac] = true; }

std::optional<MemberId> MacTable::member_of(net::Mac mac) const {
  const auto it = mac_to_member_.find(mac);
  if (it == mac_to_member_.end()) return std::nullopt;
  return it->second;
}

bool MacTable::is_internal(net::Mac mac) const {
  const auto it = internal_.find(mac);
  return it != internal_.end() && it->second;
}

net::Mac MacTable::mac_of(MemberId member) const {
  const auto it = member_to_mac_.find(member);
  if (it == member_to_mac_.end()) {
    throw std::out_of_range("MacTable: unknown member id");
  }
  return it->second;
}

}  // namespace bw::flow
