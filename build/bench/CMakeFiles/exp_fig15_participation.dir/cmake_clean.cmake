file(REMOVE_RECURSE
  "CMakeFiles/exp_fig15_participation.dir/exp_fig15_participation.cpp.o"
  "CMakeFiles/exp_fig15_participation.dir/exp_fig15_participation.cpp.o.d"
  "exp_fig15_participation"
  "exp_fig15_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig15_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
