// RadViz projection of host port-diversity features (Section 6.1, Fig. 16).
//
// RadViz (Hoffman et al.) places one anchor per feature on the unit circle
// and attaches each data point to all anchors with spring stiffness
// proportional to the (normalised) feature value; the point settles at the
// stiffness-weighted mean of the anchor positions. With the four port-
// diversity features, client-like hosts are pulled towards the
// "unique destination ports in" / "unique source ports out" anchors and
// server-like hosts towards the opposite pair.
#pragma once

#include <array>
#include <vector>

#include "core/port_stats.hpp"

namespace bw::core {

struct RadvizPoint {
  net::Ipv4 ip;
  double x{0.0};
  double y{0.0};
  HostClass classification{HostClass::kUnclassified};
  /// Dominant pull: true when the point sits in the client half-plane.
  bool client_side{false};
};

struct RadvizReport {
  /// Anchor order: src-ports-in, dst-ports-in, src-ports-out, dst-ports-out
  /// at angles 0, 90, 180, 270 degrees.
  std::array<std::pair<double, double>, 4> anchors;
  std::vector<RadvizPoint> points;
  std::size_t client_side_count{0};
  std::size_t server_side_count{0};
};

/// Project every host with >= `min_days` bidirectional days. Feature values
/// are normalised by the maximum port number (1/65535), as in the paper.
[[nodiscard]] RadvizReport radviz_projection(const PortStatsReport& stats,
                                             std::size_t min_days = 20);

}  // namespace bw::core
