file(REMOVE_RECURSE
  "CMakeFiles/exp_tab04_asn_types.dir/exp_tab04_asn_types.cpp.o"
  "CMakeFiles/exp_tab04_asn_types.dir/exp_tab04_asn_types.cpp.o.d"
  "exp_tab04_asn_types"
  "exp_tab04_asn_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tab04_asn_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
