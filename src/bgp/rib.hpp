// Per-peer RIB with blackhole interval history.
//
// The fabric needs to answer, for every sampled packet: "had this handover
// peer accepted an RTBH route covering the destination at this instant?"
// Instead of replaying BGP and traffic in lock-step we record, per accepted
// blackhole prefix, the time intervals during which it was installed, and
// answer point queries against that history.
#pragma once

#include <optional>
#include <vector>

#include "bgp/policy.hpp"
#include "bgp/route.hpp"
#include "net/prefix_trie.hpp"
#include "util/time.hpp"

namespace bw::bgp {

/// Interval history of installed blackhole prefixes.
class BlackholeHistory {
 public:
  /// Record installation of `prefix` at `t` (idempotent while open).
  void open(const net::Prefix& prefix, util::TimeMs t);

  /// Record removal of `prefix` at `t`; no-op when not installed.
  void close(const net::Prefix& prefix, util::TimeMs t);

  /// Close all still-open intervals at the end of the measurement period.
  void finalize(util::TimeMs end_time);

  /// True when any recorded prefix covering `addr` was installed at `t`.
  [[nodiscard]] bool active_at(net::Ipv4 addr, util::TimeMs t) const;

  /// True when exactly `prefix` was installed at `t`.
  [[nodiscard]] bool active_at(const net::Prefix& prefix, util::TimeMs t) const;

  /// Longest installed prefix covering `addr` at time `t`, if any.
  [[nodiscard]] std::optional<net::Prefix> covering_prefix(
      net::Ipv4 addr, util::TimeMs t) const;

  /// All intervals ever recorded for `prefix` (after finalize()).
  [[nodiscard]] std::vector<util::TimeRange> intervals(
      const net::Prefix& prefix) const;

  /// Number of distinct prefixes ever recorded.
  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return trie_.size();
  }

  /// Visit every recorded prefix with its closed intervals.
  void for_each(
      const std::function<void(const net::Prefix&,
                               const std::vector<util::TimeRange>&)>& fn) const;

 private:
  struct Entry {
    std::vector<util::TimeRange> closed;  ///< sorted by begin
    std::optional<util::TimeMs> open_since;

    [[nodiscard]] bool active_at(util::TimeMs t) const;
  };

  net::PrefixTrie<Entry> trie_;
};

/// A member's routing state as fed by the route server.
class Rib {
 public:
  Rib() = default;
  Rib(Asn peer_asn, PeerPolicy policy) : asn_(peer_asn), policy_(policy) {}

  [[nodiscard]] Asn peer_asn() const noexcept { return asn_; }
  [[nodiscard]] const PeerPolicy& policy() const noexcept { return policy_; }

  /// Offer a route learned from the route server at time `t`. Applies the
  /// import policy; returns true when installed.
  bool offer(const Route& route, util::TimeMs t);

  /// Withdraw a previously offered route.
  void withdraw(const net::Prefix& prefix, bool was_blackhole, util::TimeMs t);

  void finalize(util::TimeMs end_time) { blackholes_.finalize(end_time); }

  /// Forwarding decision: true when traffic to `addr` at `t` hits an
  /// installed blackhole route (and is therefore sent to the blackhole MAC).
  [[nodiscard]] bool blackholed(net::Ipv4 addr, util::TimeMs t) const {
    return blackholes_.active_at(addr, t);
  }

  [[nodiscard]] const BlackholeHistory& blackhole_history() const noexcept {
    return blackholes_;
  }

  [[nodiscard]] std::size_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::size_t accepted() const noexcept { return accepted_; }

 private:
  Asn asn_{0};
  PeerPolicy policy_;
  BlackholeHistory blackholes_;
  std::size_t offered_{0};
  std::size_t accepted_{0};
};

}  // namespace bw::bgp
