// Nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates (drop-rate medians, class shares) from
// one measurement period. For the reproduction we attach percentile-
// bootstrap CIs so EXPERIMENTS.md comparisons distinguish real deviations
// from sampling noise.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace bw::util {

struct ConfidenceInterval {
  double estimate{0.0};
  double lo{0.0};
  double hi{0.0};
  double level{0.95};
};

/// Statistic evaluated on a (re)sample.
using Statistic = std::function<double(std::span<const double>)>;

struct BootstrapConfig {
  std::size_t resamples{1000};
  double level{0.95};
  std::uint64_t seed{0xb0075'74a9ULL};
};

/// Percentile bootstrap for an arbitrary statistic of an i.i.d. sample.
/// Empty input yields a degenerate zero interval.
[[nodiscard]] ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                              const Statistic& statistic,
                                              const BootstrapConfig& config = {});

/// Convenience: CI for a quantile of the sample.
[[nodiscard]] ConfidenceInterval bootstrap_quantile_ci(
    std::span<const double> sample, double q, const BootstrapConfig& config = {});

/// Convenience: CI for the proportion of successes in `n` Bernoulli trials
/// (bootstraps the indicator sample implicitly).
[[nodiscard]] ConfidenceInterval bootstrap_share_ci(
    std::uint64_t successes, std::uint64_t n, const BootstrapConfig& config = {});

}  // namespace bw::util
