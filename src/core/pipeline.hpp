// End-to-end analysis pipeline and scenario runner.
//
// `run_pipeline` executes the paper's full analysis chain over a Dataset;
// `run_scenario` produces (or loads from cache) the synthetic measurement
// corpus for a scenario configuration. Together they are what every
// example and experiment harness builds on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/collateral.hpp"
#include "core/dataset.hpp"
#include "core/drop_rate.hpp"
#include "core/event_merge.hpp"
#include "core/filtering.hpp"
#include "core/ingest.hpp"
#include "core/load.hpp"
#include "core/participation.hpp"
#include "core/port_stats.hpp"
#include "core/pre_rtbh.hpp"
#include "core/protocol_mix.hpp"
#include "core/radviz.hpp"
#include "core/time_offset.hpp"
#include "core/visibility.hpp"
#include "gen/scenario.hpp"
#include "util/deadline.hpp"

namespace bw::core {

struct AnalysisConfig {
  util::DurationMs merge_delta{kDefaultMergeDelta};
  PreRtbhConfig pre{};
  DropRateConfig drop{};
  ProtocolMixConfig protocols{};
  PortStatsConfig ports{};
  ClassifyConfig classify{};
  std::uint32_t sampling_rate{10000};
  /// Kernel engine for every analysis stage. kColumnar (the default) runs
  /// the SoA scan kernels; kRecords runs the original AoS path. Both
  /// produce byte-identical reports — kRecords exists as the equivalence
  /// oracle and fallback.
  KernelEngine engine{KernelEngine::kColumnar};
  /// Thread pool for the stage graph and the per-event kernels; null uses
  /// the process-wide pool (sized by $BW_THREADS). The report is identical
  /// for every pool size.
  util::ThreadPool* pool{nullptr};
  /// Per-stage wall-clock budget; 0 = unsupervised. Each stage gets its own
  /// deadline at entry; an over-budget stage is cancelled at its next
  /// cooperative checkpoint and recorded as a timed-out degraded stage —
  /// the rest of the run completes normally.
  util::DurationMs stage_timeout{0};
  /// Fault injection: stages named here throw at entry, exercising the
  /// degraded-mode path (names as in DataQuality::stages). Testing only.
  std::vector<std::string> inject_stage_faults{};
  /// Fault injection: stages named here wedge (poll-sleep loop) until their
  /// deadline expires, exercising the watchdog path deterministically.
  /// Requires stage_timeout > 0. Testing only.
  std::vector<std::string> inject_stage_hangs{};
};

/// Outcome of one pipeline stage. A stage that throws (or reports a Status
/// error) is marked degraded; its report section stays default-constructed
/// and every other section is computed normally.
struct StageStatus {
  std::string name;
  bool degraded{false};
  bool timed_out{false};  ///< degraded specifically by the stage watchdog
  std::string error;      ///< failure description when degraded

  friend bool operator==(const StageStatus&, const StageStatus&) = default;
};

/// One self-healing event on the scenario cache: a cache file that failed
/// validation (or could not be written) and what was done about it. A run
/// with incidents is complete — the corpus was regenerated — but the report
/// must say the cache misbehaved.
struct CacheIncident {
  std::string path;            ///< cache file involved
  std::string quarantined_to;  ///< where the bad bytes went; "" if removed
  std::string error;           ///< the Status that triggered the incident

  friend bool operator==(const CacheIncident&, const CacheIncident&) = default;
};

/// The report's account of how trustworthy this run is: what ingest and
/// sanitation dropped, and which analysis stages failed.
struct DataQuality {
  Dataset::Quality dataset;       ///< quarantine/dedupe accounting
  std::vector<LoadReport> files;  ///< per-file ingest reports (CSV loads)
  std::vector<StageStatus> stages;  ///< every stage, in fixed order
  std::vector<CacheIncident> cache_incidents;  ///< self-healed cache faults

  [[nodiscard]] bool degraded() const {
    for (const auto& s : stages) {
      if (s.degraded) return true;
    }
    return false;
  }
  [[nodiscard]] bool timed_out() const {
    for (const auto& s : stages) {
      if (s.timed_out) return true;
    }
    return false;
  }
  [[nodiscard]] bool clean() const {
    if (degraded() || !dataset.clean() || !cache_incidents.empty()) {
      return false;
    }
    for (const auto& f : files) {
      if (!f.clean()) return false;
    }
    return true;
  }
};

struct AnalysisReport {
  Dataset::Summary summary;
  std::vector<RtbhEvent> events;
  PreRtbhReport pre;
  DropRateReport drop;
  ProtocolMixReport protocols;
  FilteringReport filtering;
  ParticipationReport participation;
  PortStatsReport ports;
  RadvizReport radviz;
  CollateralReport collateral;
  ClassificationReport classes;
  DataQuality data_quality;
};

/// Run the full chain: merge -> pre-RTBH -> drop rates -> protocol mix ->
/// filtering -> participation -> port stats -> RadViz -> collateral ->
/// classification. Stages are isolated: a stage failure degrades its own
/// report section (recorded in data_quality.stages) and never aborts the
/// run or disturbs other sections.
[[nodiscard]] AnalysisReport run_pipeline(const Dataset& dataset,
                                          const AnalysisConfig& config = {});

/// A generated scenario with everything benches/examples need.
struct ScenarioRun {
  Dataset dataset;
  pdb::Registry registry;
  std::vector<bgp::Asn> peer_asns;
  gen::GroundTruth truth;  ///< generator ground truth (validation only)
  /// Cache files this run healed around (load failures quarantined and
  /// regenerated, save failures tolerated). Copy into the analysis report's
  /// DataQuality so the incidents are visible in the rendered document.
  std::vector<CacheIncident> cache_incidents;
};

/// Generate the corpus for `config`, reusing an on-disk cache of the
/// Dataset when available (key: config fingerprint). The cache directory is
/// $BW_CACHE_DIR, defaulting to "bw_cache" under the current directory; an
/// empty cache_dir disables caching.
///
/// Generation is sharded over `pool` (null: the process-wide pool, sized by
/// $BW_THREADS): the scenario's emission plan is cut into contiguous time
/// slices, each replayed concurrently against the prepared platform, and
/// the slice outputs are stitched with a deterministic ordered merge. The
/// corpus is byte-identical at every pool size.
///
/// Robustness: a cache file that fails validation is treated as a cache
/// *miss* — the bad bytes are quarantined to `<name>.corrupt`, the corpus
/// is regenerated, and the incident is recorded in the returned
/// ScenarioRun. Cache writes go through an atomic temp-then-rename commit
/// with a bounded retry on transient filesystem errors; a write that still
/// fails is recorded, never fatal. A non-null `deadline` bounds generation
/// cooperatively (checked per shard chunk and per emission unit); expiry
/// raises util::DeadlineExceeded.
[[nodiscard]] ScenarioRun run_scenario(
    const gen::ScenarioConfig& config,
    std::optional<std::string> cache_dir = std::nullopt,
    util::ThreadPool* pool = nullptr,
    const util::Deadline* deadline = nullptr);

/// Shard count used when generating with `concurrency`-way parallelism: a
/// few shards per worker so the cost-balanced planner can even out slices.
[[nodiscard]] std::size_t generation_shards(std::size_t concurrency);

/// The cache file name (and de-facto scenario fingerprint) run_scenario
/// derives from `config` — e.g. "scenario_3fa9c1d2e47b8a05.bwds". Exposed so
/// tools can record the fingerprint in their run manifests.
[[nodiscard]] std::string scenario_cache_name(const gen::ScenarioConfig& config);

/// The scenario configuration used by all exp_* harnesses: paper-shaped
/// counts at the scale given by $BW_SCALE (default 0.25).
[[nodiscard]] gen::ScenarioConfig default_benchmark_scenario();

}  // namespace bw::core
