# Empty compiler generated dependencies file for exp_fig14_finegrained.
# This may be replaced when dependencies are built.
