// Time primitives shared by the control-plane and data-plane substrates.
//
// All timestamps in blackwatch are integral milliseconds since the (simulated)
// measurement epoch. The paper's measurement period runs 2018-09-26 through
// 2019-01-11 (104 days); our simulated epoch 0 corresponds to the first day
// of measurement. Millisecond resolution comfortably covers the 10 ms NTP
// accuracy the paper assumes (Murta et al., cited in Section 3.1).
#pragma once

#include <cstdint>
#include <string>

namespace bw::util {

/// Milliseconds since the simulated measurement epoch.
using TimeMs = std::int64_t;

/// Signed length of a time interval, in milliseconds.
using DurationMs = std::int64_t;

inline constexpr DurationMs kMillisecond = 1;
inline constexpr DurationMs kSecond = 1000 * kMillisecond;
inline constexpr DurationMs kMinute = 60 * kSecond;
inline constexpr DurationMs kHour = 60 * kMinute;
inline constexpr DurationMs kDay = 24 * kHour;

constexpr DurationMs seconds(double s) noexcept {
  return static_cast<DurationMs>(s * static_cast<double>(kSecond));
}
constexpr DurationMs minutes(double m) noexcept {
  return static_cast<DurationMs>(m * static_cast<double>(kMinute));
}
constexpr DurationMs hours(double h) noexcept {
  return static_cast<DurationMs>(h * static_cast<double>(kHour));
}
constexpr DurationMs days(double d) noexcept {
  return static_cast<DurationMs>(d * static_cast<double>(kDay));
}

/// A half-open time interval [begin, end).
struct TimeRange {
  TimeMs begin{0};
  TimeMs end{0};

  [[nodiscard]] constexpr DurationMs length() const noexcept { return end - begin; }
  [[nodiscard]] constexpr bool contains(TimeMs t) const noexcept {
    return t >= begin && t < end;
  }
  [[nodiscard]] constexpr bool overlaps(const TimeRange& other) const noexcept {
    return begin < other.end && other.begin < end;
  }
  /// Intersection of two ranges; empty (length 0) range when disjoint.
  [[nodiscard]] constexpr TimeRange clamp(const TimeRange& other) const noexcept {
    const TimeMs b = begin > other.begin ? begin : other.begin;
    const TimeMs e = end < other.end ? end : other.end;
    return e > b ? TimeRange{b, e} : TimeRange{b, b};
  }

  friend constexpr bool operator==(const TimeRange&, const TimeRange&) = default;
};

/// Index of the fixed-width slot containing `t` (slots count from epoch 0;
/// negative times map to negative slot indices, rounding toward -inf).
[[nodiscard]] std::int64_t slot_index(TimeMs t, DurationMs slot_width) noexcept;

/// Start of the slot that contains `t`.
[[nodiscard]] TimeMs slot_start(TimeMs t, DurationMs slot_width) noexcept;

/// Render a timestamp as "dayD HH:MM:SS" for human-readable reports.
[[nodiscard]] std::string format_time(TimeMs t);

/// Render a duration as e.g. "3h12m" / "45s" / "104d".
[[nodiscard]] std::string format_duration(DurationMs d);

}  // namespace bw::util
