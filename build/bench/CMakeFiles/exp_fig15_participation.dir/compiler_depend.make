# Empty compiler generated dependencies file for exp_fig15_participation.
# This may be replaced when dependencies are built.
