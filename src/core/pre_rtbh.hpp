// Pre-RTBH event analysis (Sections 5.2-5.3; Figs. 11-13, Table 2).
//
// For each merged RTBH event, the 72 hours before the first announcement
// (the *pre-RTBH event*) are scanned for traffic and anomalies, yielding
// the three-way classification of Table 2: (i) no sampled traffic at all,
// (ii) traffic but no anomaly within 10 minutes of the event, (iii) traffic
// and a preceding anomaly.
#pragma once

#include <array>
#include <vector>

#include "core/anomaly.hpp"
#include "core/event_merge.hpp"
#include "util/parallel.hpp"

namespace bw::core {

inline constexpr util::DurationMs kPreWindow = 72 * util::kHour;

struct PreRtbhResult {
  std::size_t event_index{0};
  bool has_data{false};
  std::size_t slots_with_data{0};
  bool anomaly_within_10min{false};
  bool anomaly_within_1h{false};
  int max_level{0};
  /// (slot offset relative to event start, level) of each anomalous slot;
  /// offsets are negative slot counts (Fig. 12's x axis).
  std::vector<std::pair<int, int>> anomalies;
  /// Per feature: last-slot value / mean over the pre-window (Fig. 13's
  /// Anomaly Amplification Factor); 0 when the last slot is empty.
  std::array<double, kFeatureCount> amplification{};
  bool last_slot_has_data{false};
  bool last_slot_is_max{false};  ///< last slot is the packet-feature max
};

struct PreRtbhReport {
  std::vector<PreRtbhResult> per_event;
  std::size_t no_data{0};
  std::size_t data_no_anomaly{0};   ///< data, no anomaly within 10 min
  std::size_t data_anomaly_10m{0};  ///< data + anomaly within 10 min
  std::size_t anomaly_1h{0};        ///< data + anomaly within 1 h

  [[nodiscard]] std::size_t total() const { return per_event.size(); }
};

struct PreRtbhConfig {
  util::DurationMs window{kPreWindow};
  util::DurationMs slot{kFeatureSlot};
  /// Detector choice; the paper uses EWMA (Section 5.3), CUSUM is the
  /// ablation alternative.
  enum class Detector : std::uint8_t { kEwma, kCusum } detector{Detector::kEwma};
  util::EwmaConfig ewma{};
  util::CusumConfig cusum{};
};

/// Events fan out over `pool` (null: the global pool); per-event results
/// land in index order, so the report is identical at any thread count.
/// A non-null `deadline` is polled per chunk (cooperative supervision).
[[nodiscard]] PreRtbhReport compute_pre_rtbh(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PreRtbhConfig& config = {}, util::ThreadPool* pool = nullptr,
    const util::Deadline* deadline = nullptr,
    KernelEngine engine = KernelEngine::kColumnar);

}  // namespace bw::core
