// Annotated blackhole activity index.
//
// The route server records, per RTBH prefix, the intervals during which the
// blackhole was announced together with the announcement's community set
// and sender. Because a peer's import decision is a *pure function* of its
// policy and the prefix, and route-server distribution is a pure function
// of the communities and the peer ASN, this single index answers the
// per-packet forwarding question for *any* peer without materialising
// per-peer RIBs — turning an O(updates x peers) replay into O(updates).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bgp/community.hpp"
#include "bgp/policy.hpp"
#include "net/prefix_trie.hpp"
#include "util/time.hpp"

namespace bw::bgp {

class BlackholeIndex {
 public:
  explicit BlackholeIndex(std::uint16_t rs_asn = 64600) : targeted_(rs_asn) {}

  /// Record an RTBH announcement for `prefix` at `t`. A re-announcement of
  /// an open blackhole replaces its metadata (communities may change).
  void open(const net::Prefix& prefix, util::TimeMs t,
            std::vector<Community> communities, Asn sender);

  /// Record the withdrawal at `t`; no-op when not announced.
  void close(const net::Prefix& prefix, util::TimeMs t);

  /// Close all open blackholes at the end of the measurement period.
  void finalize(util::TimeMs end_time);

  /// Was any blackhole covering `addr` announced (at the route server) at
  /// time `t`?
  [[nodiscard]] bool announced_at(net::Ipv4 addr, util::TimeMs t) const;
  [[nodiscard]] bool announced_at(const net::Prefix& prefix,
                                  util::TimeMs t) const;

  /// Forwarding decision for a peer: true when a blackhole covering `addr`
  /// was announced at `t`, was distributed to `peer_asn` (targeted-
  /// announcement communities), did not originate from the peer itself,
  /// and passes the peer's import policy.
  [[nodiscard]] bool dropped_for_peer(const PeerPolicy& policy, Asn peer_asn,
                                      net::Ipv4 addr, util::TimeMs t) const;

  /// Number of distinct prefixes ever blackholed.
  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return trie_.size();
  }

  /// All announced intervals of every prefix covering `addr` (closed spans
  /// only — call finalize() first for complete results).
  [[nodiscard]] std::vector<util::TimeRange> announced_ranges(
      net::Ipv4 addr) const;

  /// One announced interval with its distribution metadata.
  struct Span {
    util::TimeRange range;
    std::vector<Community> communities;
    Asn sender{0};
  };

  /// Visit every prefix with all its (closed) spans, in prefix order.
  void for_each(const std::function<void(const net::Prefix&,
                                         const std::vector<Span>&)>& fn) const;

 private:
  struct Entry {
    std::vector<Span> closed;  ///< sorted by range.begin after finalize()
    std::optional<Span> open;  ///< open.range.end unused while open

    [[nodiscard]] const Span* active_at(util::TimeMs t) const;
  };

  TargetedAnnouncement targeted_;
  net::PrefixTrie<Entry> trie_;
};

}  // namespace bw::bgp
