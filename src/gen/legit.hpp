// Legitimate-traffic generator.
//
// Produces the steady client/server patterns of Section 6: servers receive
// traffic on few stable listening ports from many ephemeral client ports
// (stable "top ports"), clients receive traffic on ephemeral ports that
// change daily (top-port variation ~1). Both directions are generated so
// the RadViz features (Fig. 16) and the port-variation classifier (Fig. 17)
// have the structure the paper measures.
#pragma once

#include <vector>

#include "ixp/platform.hpp"
#include "net/ipv4.hpp"
#include "net/ports.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bw::gen {

enum class HostRole : std::uint8_t {
  kServer,  ///< stable service ports, daily inbound/outbound traffic
  kClient,  ///< ephemeral ports, daily traffic, e.g. DSL gaming hosts
  kIdle,    ///< (nearly) no IXP-visible traffic
};

struct HostProfile {
  net::Ipv4 ip;
  HostRole role{HostRole::kIdle};
  flow::MemberId home_member{0};  ///< member announcing the host's prefix
  bgp::Asn origin_asn{0};         ///< origin AS of the host's prefix
  std::vector<net::ProtoPort> services;  ///< listening ports (servers)
  double daily_activity{0.9};     ///< probability of traffic on a given day
  double mean_daily_packets{5e4}; ///< true packets/day (1:10k sampling!)
};

struct RemoteEndpoints {
  /// Pool of remote (non-monitored) hosts that talk to our hosts; each has
  /// an ingress member (for inbound) and the members owning their space
  /// (for outbound destinations).
  std::vector<net::Ipv4> client_ips;
  std::vector<flow::MemberId> client_ingress;  ///< parallel to client_ips
  std::vector<net::Ipv4> server_ips;
  std::vector<flow::MemberId> server_ingress;  ///< parallel to server_ips
};

class LegitGenerator {
 public:
  LegitGenerator(RemoteEndpoints remotes, util::Rng rng)
      : remotes_(std::move(remotes)), rng_(rng) {}

  /// Emit one host's traffic for one day (inbound and outbound bursts).
  /// `day` indexes from the period start. Does nothing when the host draws
  /// an inactive day or is idle.
  void emit_day(const HostProfile& host, int day,
                const ixp::Platform::BurstSink& sink);

  /// Replace the generator's stream. The sharded scenario driver reseeds
  /// one shared instance per (host, day) emission unit so each unit's
  /// draws are a pure function of its identity, not of emission order.
  void reseed(util::Rng rng) { rng_ = rng; }

 private:
  void emit_server_day(const HostProfile& host, util::TimeMs day_start,
                       const ixp::Platform::BurstSink& sink);
  void emit_client_day(const HostProfile& host, util::TimeMs day_start,
                       const ixp::Platform::BurstSink& sink);

  /// Diurnal window inside the day for one burst (biased to daytime).
  [[nodiscard]] util::TimeRange burst_window(util::TimeMs day_start);

  /// A host talks to a small, *stable* subset of remote endpoints (its CDN
  /// nodes, its game servers, its regular clients). This keeps each host's
  /// ingress-member mix consistent over time — and with it, the per-event
  /// drop-rate spread the paper observes.
  [[nodiscard]] std::size_t sticky_remote(net::Ipv4 host_ip,
                                          std::size_t pool_size);

  RemoteEndpoints remotes_;
  util::Rng rng_;
};

}  // namespace bw::gen
