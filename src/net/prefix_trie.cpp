#include "net/prefix_trie.hpp"

#include <cstdint>
#include <string>

namespace bw::net {

// Explicit instantiations for the value types the library uses, keeping the
// template compiled (and its warnings surfaced) even in header-only usage.
template class PrefixTrie<std::uint32_t>;
template class PrefixTrie<std::string>;
template class FlatLpm<std::uint32_t>;

}  // namespace bw::net
