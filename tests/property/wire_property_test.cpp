// Property tests for the BGP wire codec: random updates round-trip, random
// byte mutations never crash the decoder (they either parse or return
// nullopt).
#include <gtest/gtest.h>

#include "bgp/wire.hpp"
#include "util/rng.hpp"

namespace bw::bgp::wire {
namespace {

Update random_update(util::Rng& rng) {
  Update u;
  u.time = rng.uniform_int(0, util::days(104));
  u.type = rng.chance(0.5) ? UpdateType::kAnnounce : UpdateType::kWithdraw;
  u.sender_asn = static_cast<Asn>(rng.uniform_int(1, 0xFFFFFFF));
  u.origin_asn = rng.chance(0.3)
                     ? u.sender_asn
                     : static_cast<Asn>(rng.uniform_int(1, 0xFFFFFFF));
  u.prefix = net::Prefix(
      net::Ipv4(static_cast<std::uint32_t>(
          rng.uniform_int(0, std::numeric_limits<std::uint32_t>::max()))),
      static_cast<std::uint8_t>(rng.uniform_int(0, 32)));
  u.next_hop = net::Ipv4(static_cast<std::uint32_t>(
      rng.uniform_int(0, std::numeric_limits<std::uint32_t>::max())));
  const auto n_comms = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < n_comms; ++i) {
    u.communities.push_back(
        {static_cast<std::uint16_t>(rng.uniform_int(0, 65535)),
         static_cast<std::uint16_t>(rng.uniform_int(0, 65535))});
  }
  return u;
}

class WirePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WirePropertyTest, RandomUpdatesRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Update u = random_update(rng);
    const auto bytes = encode_update(u);
    const auto decoded = decode_update(bytes);
    ASSERT_TRUE(decoded) << "iteration " << i;
    EXPECT_EQ(decoded->type, u.type);
    EXPECT_EQ(decoded->sender_asn, u.sender_asn);
    EXPECT_EQ(decoded->origin_asn, u.origin_asn);
    EXPECT_EQ(decoded->prefix, u.prefix);
    EXPECT_EQ(decoded->communities, u.communities);
    if (u.type == UpdateType::kAnnounce) {
      EXPECT_EQ(decoded->next_hop, u.next_hop);
    }
  }
}

TEST_P(WirePropertyTest, MutatedBytesNeverCrash) {
  util::Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 300; ++i) {
    auto bytes = encode_update(random_update(rng));
    // Flip a handful of random bytes (skip the marker so we exercise the
    // body parser, not just the marker check).
    const auto flips = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos =
          16 + rng.index(bytes.size() > 16 ? bytes.size() - 16 : 1);
      if (pos < bytes.size()) {
        bytes[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      }
    }
    // Must not crash; result may be nullopt or a (different) valid update.
    (void)decode_update(bytes);
  }
}

TEST_P(WirePropertyTest, RandomStreamsRoundTrip) {
  util::Rng rng(GetParam() ^ 0xCAFE);
  UpdateLog log;
  const auto n = static_cast<std::size_t>(rng.uniform_int(0, 50));
  for (std::size_t i = 0; i < n; ++i) log.push_back(random_update(rng));
  const auto decoded = decode_stream(encode_stream(log));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ((*decoded)[i].time, log[i].time);
    EXPECT_EQ((*decoded)[i].prefix, log[i].prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WirePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace bw::bgp::wire
