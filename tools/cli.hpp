// Shared CLI conventions for the bw-* tools.
//
// Exit codes are part of the tool contract (scripts and CI branch on them):
//   0  success
//   2  usage error (bad flags/arguments; nothing was attempted)
//   3  data error (input missing, malformed, or rejected by --strict;
//      also a generation run cancelled by --stage-timeout-s, which leaves
//      no usable corpus)
//   4  internal error (unexpected exception; a bug, not an input problem)
//
// Watchdog note: an *analysis* stage cancelled by --stage-timeout-s is the
// degraded-but-complete success path — bw-analyze still exits 0 and the
// timeout is reported in the data-quality section, mirroring how injected
// stage faults behave.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "core/io_text.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"

namespace bw::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitInternal = 4;

/// Observability outputs every bw-* tool offers:
///   --metrics-out FILE  run manifest + full metrics snapshot (JSON)
///   --trace-out FILE    Chrome trace (chrome://tracing, Perfetto)
/// Collection itself never alters results; the reports stay byte-identical
/// with these on or off.
struct ObsOptions {
  std::string metrics_out;
  std::string trace_out;

  /// Handle one argv slot. Returns true when consumed (possibly advancing
  /// `i` past the flag's value).
  bool parse(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
      return true;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      return true;
    }
    return false;
  }

  /// Call after argument parsing: turns span collection on when a trace
  /// file was requested (spans are free while off).
  void arm() const {
    if (!trace_out.empty()) obs::trace_enable(true);
  }

  /// Write the requested outputs (atomic commit, like every other tool
  /// artifact). Returns false after printing to stderr if a write failed.
  bool emit(const char* tool, const obs::Manifest& manifest) const {
    if (!metrics_out.empty()) {
      const util::Status st =
          util::atomic_write_file(metrics_out, manifest.to_json());
      if (!st.ok()) {
        std::cerr << tool << ": " << st.to_string() << "\n";
        return false;
      }
    }
    if (!trace_out.empty()) {
      const util::Status st =
          util::atomic_write_file(trace_out, obs::render_chrome_trace());
      if (!st.ok()) {
        std::cerr << tool << ": " << st.to_string() << "\n";
        return false;
      }
    }
    return true;
  }
};

inline constexpr const char* kObsUsage =
    "  --metrics-out FILE   write a run manifest + metrics snapshot (JSON)\n"
    "  --trace-out FILE     write a Chrome-trace JSON timeline\n";

/// The strictness flags every corpus-consuming tool accepts (the 0/2/3/4
/// exit-code contract depends on all tools honouring the same trio):
///   --strict        fail on the first malformed CSV row (default)
///   --skip-bad-rows drop malformed rows, accounted in data quality
///   --repair        like skip, salvaging recoverably-damaged rows
struct StrictnessOptions {
  core::LoadOptions load_options;  // default: Strictness::kStrict

  /// Handle one argv slot; returns true when it was a strictness flag.
  bool parse(std::string_view arg) {
    if (arg == "--strict") {
      load_options.strictness = core::Strictness::kStrict;
    } else if (arg == "--skip-bad-rows") {
      load_options.strictness = core::Strictness::kSkip;
    } else if (arg == "--repair") {
      load_options.strictness = core::Strictness::kRepair;
    } else {
      return false;
    }
    return true;
  }
};

inline constexpr const char* kStrictnessUsage =
    "  --strict             fail on the first malformed CSV row (default)\n"
    "  --skip-bad-rows      drop malformed rows; account in data quality\n"
    "  --repair             like --skip-bad-rows, salvaging rows whose\n"
    "                       damage is confined to recoverable fields\n";

/// Load CORPUS — a .bwds container or a CSV directory — under `options`,
/// printing a per-file summary line to stderr for every unclean CSV file.
/// On failure the caller reports the status and exits kExitData.
inline util::Result<core::Dataset> load_corpus(
    const std::string& path, const core::LoadOptions& options,
    core::IngestReport* ingest = nullptr) {
  if (std::filesystem::is_directory(path)) {
    core::IngestReport local;
    core::IngestReport* report = ingest != nullptr ? ingest : &local;
    auto loaded = core::load_dataset_csv(path, options, report);
    if (loaded.ok()) {
      for (const auto& f : report->files) {
        if (!f.clean()) std::cerr << f.summary() << "\n";
      }
    }
    return loaded;
  }
  return core::Dataset::try_load(path);
}

}  // namespace bw::tools
