file(REMOVE_RECURSE
  "CMakeFiles/exp_fig07_top100_reaction.dir/exp_fig07_top100_reaction.cpp.o"
  "CMakeFiles/exp_fig07_top100_reaction.dir/exp_fig07_top100_reaction.cpp.o.d"
  "exp_fig07_top100_reaction"
  "exp_fig07_top100_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig07_top100_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
