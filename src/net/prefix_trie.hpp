// Longest-prefix-match structures over IPv4 prefixes.
//
// PrefixTrie is the mutable binary radix trie used by the per-peer RIBs
// (best-route selection per destination), where inserts and withdrawals
// interleave with lookups. FlatLpm is its immutable, flattened counterpart
// for the per-flow origin-AS attribution hot path: one 2^16-entry level-1
// table indexed by the top 16 address bits resolves every prefix of length
// <= 16 with a single load, and longer prefixes collapse into short
// per-bucket lists scanned longest-first — the path-compressed remainder of
// the trie. A FlatLpm::match is two cache lines in the common case versus
// up to 32 dependent pointer loads for PrefixTrie::match.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace bw::net {

template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns true when the
  /// prefix was newly inserted, false when an existing value was replaced.
  bool insert(const Prefix& prefix, V value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the value at exactly `prefix`. Returns true when removed.
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const V* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return node != nullptr && node->value.has_value() ? &*node->value : nullptr;
  }
  [[nodiscard]] V* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return node != nullptr && node->value.has_value() ? &*node->value : nullptr;
  }

  /// Longest-prefix match for a single address; nullptr when nothing covers
  /// the address.
  [[nodiscard]] const V* match(Ipv4 addr) const {
    const Node* node = root_.get();
    const V* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Longest matching prefix (with its value) for an address.
  [[nodiscard]] std::optional<std::pair<Prefix, V>> match_entry(Ipv4 addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, V>> best;
    if (node->value) best = {Prefix(addr, 0), *node->value};
    std::uint32_t bits = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      bits = (bits << 1) | static_cast<std::uint32_t>(bit);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        const auto len = static_cast<std::uint8_t>(depth + 1);
        const std::uint32_t network = bits << (32 - len);
        best = {Prefix(Ipv4(network), len), *node->value};
      }
    }
    return best;
  }

  /// All (prefix, value) pairs that cover `addr`, shortest first.
  [[nodiscard]] std::vector<std::pair<Prefix, const V*>> matches(Ipv4 addr) const {
    std::vector<std::pair<Prefix, const V*>> out;
    const Node* node = root_.get();
    if (node->value) out.emplace_back(Prefix(Ipv4(0), 0), &*node->value);
    std::uint32_t bits = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      bits = (bits << 1) | static_cast<std::uint32_t>(bit);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        const auto len = static_cast<std::uint8_t>(depth + 1);
        out.emplace_back(Prefix(Ipv4(bits << (32 - len)), len), &*node->value);
      }
    }
    return out;
  }

  /// Visit every stored (prefix, value) pair in trie (lexicographic) order.
  void for_each(const std::function<void(const Prefix&, const V&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }
  [[nodiscard]] Node* descend(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend(prefix));
  }

  static void walk(const Node* node, std::uint32_t bits, int depth,
                   const std::function<void(const Prefix&, const V&)>& fn) {
    if (node == nullptr) return;
    if (node->value) {
      const std::uint32_t network = depth == 0 ? 0u : bits << (32 - depth);
      fn(Prefix(Ipv4(network), static_cast<std::uint8_t>(depth)), *node->value);
    }
    if (depth == 32) return;
    walk(node->child[0].get(), bits << 1, depth + 1, fn);
    walk(node->child[1].get(), (bits << 1) | 1u, depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_{0};
};

/// Immutable longest-prefix-match table, frozen from a list of
/// (prefix, value) entries. Duplicate prefixes resolve last-wins, matching
/// PrefixTrie::insert overwrite semantics, so building a FlatLpm from an
/// insertion sequence yields exactly the lookups of the equivalent trie.
template <typename V>
class FlatLpm {
 public:
  FlatLpm() : l1_(kL1Size) {}

  explicit FlatLpm(const std::vector<std::pair<Prefix, V>>& entries)
      : FlatLpm() {
    // Last-wins dedupe: later entries overwrite earlier ones at the same
    // prefix, exactly like repeated PrefixTrie::insert calls.
    std::vector<std::pair<Prefix, std::uint32_t>> unique;
    unique.reserve(entries.size());
    {
      // Sort (prefix, original index) so duplicates are adjacent and the
      // highest original index — the last insert — wins.
      std::vector<std::pair<Prefix, std::uint32_t>> seen;
      seen.reserve(entries.size());
      for (std::uint32_t i = 0; i < entries.size(); ++i) {
        seen.emplace_back(entries[i].first, i);
      }
      std::sort(seen.begin(), seen.end());
      for (std::size_t i = 0; i < seen.size(); ++i) {
        if (i + 1 < seen.size() && seen[i + 1].first == seen[i].first) continue;
        unique.push_back(seen[i]);
      }
    }
    values_.reserve(unique.size());
    // Short prefixes (length <= 16) paint level-1 slots in ascending length
    // order, so a longer covering prefix overwrites a shorter one and every
    // slot ends up holding its longest <=16-bit cover.
    std::stable_sort(unique.begin(), unique.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.length() < b.first.length();
                     });
    for (const auto& [prefix, original] : unique) {
      const auto value_idx = static_cast<std::uint32_t>(values_.size());
      values_.push_back(entries[original].second);
      if (prefix.length() <= 16) {
        const std::uint32_t first = prefix.network().value() >> 16;
        const std::uint32_t count = 1u << (16 - prefix.length());
        for (std::uint32_t s = first; s < first + count; ++s) {
          l1_[s].base = value_idx;
        }
      } else {
        ++l1_[prefix.network().value() >> 16].long_count;
      }
    }
    // Long prefixes (length > 16) go into per-slot lists sorted by
    // descending length: the first containing entry in a scan is the
    // longest match. Entries of equal length never overlap, so the
    // network tie-break only pins a deterministic layout.
    long_.resize(unique.size() - count_short(unique));
    std::uint32_t begin = 0;
    for (Slot& slot : l1_) {
      slot.long_begin = begin;
      begin += slot.long_count;
      slot.long_count = 0;  // reused as a fill cursor below
    }
    std::uint32_t value_idx = 0;
    for (const auto& [prefix, original] : unique) {
      const std::uint32_t v = value_idx++;
      if (prefix.length() <= 16) continue;
      Slot& slot = l1_[prefix.network().value() >> 16];
      long_[slot.long_begin + slot.long_count++] = LongEntry{
          prefix.network().value(), prefix.mask(), v, prefix.length()};
    }
    for (Slot& slot : l1_) {
      LongEntry* const first = long_.data() + slot.long_begin;
      std::sort(first, first + slot.long_count,
                [](const LongEntry& a, const LongEntry& b) {
                  if (a.length != b.length) return a.length > b.length;
                  return a.network < b.network;
                });
    }
    size_ = unique.size();
  }

  /// Longest-prefix match; nullptr when nothing covers the address.
  [[nodiscard]] const V* match(Ipv4 addr) const {
    const std::uint32_t a = addr.value();
    const Slot& slot = l1_[a >> 16];
    const LongEntry* e = long_.data() + slot.long_begin;
    for (const LongEntry* end = e + slot.long_count; e != end; ++e) {
      if ((a & e->mask) == e->network) return &values_[e->value];
    }
    return slot.base == kNone ? nullptr : &values_[slot.base];
  }

  /// Number of distinct prefixes stored.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  static constexpr std::size_t kL1Size = std::size_t{1} << 16;
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Slot {
    std::uint32_t base{kNone};     ///< longest <=16-bit cover (value index)
    std::uint32_t long_begin{0};   ///< first >16-bit entry in long_
    std::uint32_t long_count{0};
  };
  struct LongEntry {
    std::uint32_t network{0};
    std::uint32_t mask{0};
    std::uint32_t value{0};
    std::uint8_t length{0};
  };

  [[nodiscard]] static std::size_t count_short(
      const std::vector<std::pair<Prefix, std::uint32_t>>& unique) {
    std::size_t n = 0;
    for (const auto& entry : unique) {
      if (entry.first.length() <= 16) ++n;
    }
    return n;
  }

  std::vector<Slot> l1_;        ///< 2^16 slots, one per /16 bucket
  std::vector<LongEntry> long_; ///< >16-bit entries, grouped per slot
  std::vector<V> values_;
  std::size_t size_{0};
};

}  // namespace bw::net
