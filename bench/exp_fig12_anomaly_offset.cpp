// Figure 12: level and time offset of traffic anomalies during pre-RTBH
// events (Section 5.3).
//
// Paper: most anomalies occur up to ten minutes before the first RTBH
// announcement (automatic mitigation), usually with all five features
// anomalous at once; single-feature anomalies exist as well.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig12");
  const auto& pre = exp.report.pre;

  bench::print_header("Fig. 12", "anomaly level x time offset before RTBH");
  // histogram[offset bucket][level 1..5]
  constexpr int kBuckets = 8;  // 0-10m, 10-30m, 30m-1h, 1-3h, 3-12h, 12-24h,
                               // 24-48h, 48-72h before the event
  const char* kBucketNames[kBuckets] = {"0-10m",  "10-30m", "30m-1h", "1-3h",
                                        "3-12h",  "12-24h", "24-48h", "48-72h"};
  const double kBucketEdgesMin[kBuckets + 1] = {0,   10,   30,   60,  180,
                                                720, 1440, 2880, 4320};
  std::size_t hist[kBuckets][6] = {};
  for (const auto& r : pre.per_event) {
    for (const auto& [slot_offset, level] : r.anomalies) {
      const double minutes_before = -static_cast<double>(slot_offset) * 5.0;
      for (int b = 0; b < kBuckets; ++b) {
        if (minutes_before > kBucketEdgesMin[b] - 5.0 &&
            minutes_before <= kBucketEdgesMin[b + 1]) {
          ++hist[b][std::min(level, 5)];
          break;
        }
      }
    }
  }

  util::TextTable table({"offset before RTBH", "level 1", "level 2", "level 3",
                         "level 4", "level 5"});
  auto csv = bench::open_csv("fig12_anomaly_offset",
                             {"offset_bucket", "level", "anomalies"});
  for (int b = 0; b < kBuckets; ++b) {
    table.add_row({kBucketNames[b], std::to_string(hist[b][1]),
                   std::to_string(hist[b][2]), std::to_string(hist[b][3]),
                   std::to_string(hist[b][4]), std::to_string(hist[b][5])});
    for (int l = 1; l <= 5; ++l) {
      csv->write_row({kBucketNames[b], std::to_string(l),
                      std::to_string(hist[b][l])});
    }
  }
  std::cout << table;

  std::size_t near_total = 0;
  std::size_t near_level5 = 0;
  std::size_t far_total = 0;
  double far_slots = 0.0;
  for (int l = 1; l <= 5; ++l) {
    near_total += hist[0][l];
    for (int b = 1; b < kBuckets; ++b) far_total += hist[b][l];
  }
  for (int b = 1; b < kBuckets; ++b) {
    far_slots += (kBucketEdgesMin[b + 1] - kBucketEdgesMin[b]) / 5.0;
  }
  near_level5 = hist[0][5];
  // Compare per-slot densities: the far buckets span 862 slots of base-rate
  // noise, the near bucket only 2.
  const double near_density = static_cast<double>(near_total) / 2.0;
  const double far_density = static_cast<double>(far_total) / far_slots;
  bench::print_paper_row(
      "anomaly density <=10min vs rest of the 72h window", "clear trend",
      util::fmt_double(near_density, 1) + " vs " +
          util::fmt_double(far_density, 1) + " per slot" +
          (near_density > 10.0 * far_density ? " (clear trend)" : ""));
  bench::print_paper_row(
      "share of <=10min anomalies at level 5", "usually all five features",
      near_total > 0
          ? util::fmt_percent(static_cast<double>(near_level5) /
                                  static_cast<double>(near_total),
                              0)
          : "n/a");
  return 0;
}
