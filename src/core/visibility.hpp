// Targeted-announcement visibility analysis (Section 4.1, Fig. 4).
//
// Using only the BGP communities recorded in the control-plane data, this
// derives every peer's view of the set of blackholed prefixes over time and
// reports which share of the announced blackholes is *not* visible to the
// 100th/99th/50th percentile peer — i.e. how much operators actually use
// selective distribution to limit collateral damage (answer: barely).
#pragma once

#include <vector>

#include "core/dataset.hpp"

namespace bw::core {

struct VisibilityPoint {
  util::TimeMs time{0};
  std::size_t announced{0};    ///< blackholes active at the route server
  double missed_max{0.0};      ///< share not visible to the worst peer (100%)
  double missed_p99{0.0};      ///< ... to 99% of peers
  double missed_median{0.0};   ///< ... to the median peer
};

struct VisibilityReport {
  util::DurationMs sample_interval{util::kHour};
  std::vector<VisibilityPoint> series;
  double overall_missed_max{0.0};
  double overall_missed_median_peak{0.0};  ///< peak of the median series
};

/// `peers`: the member ASNs connected to the platform (the population the
/// quantiles run over).
[[nodiscard]] VisibilityReport compute_visibility(
    const Dataset& dataset, const std::vector<bgp::Asn>& peers,
    util::DurationMs sample_interval = util::kHour);

}  // namespace bw::core
