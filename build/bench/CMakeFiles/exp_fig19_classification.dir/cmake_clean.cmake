file(REMOVE_RECURSE
  "CMakeFiles/exp_fig19_classification.dir/exp_fig19_classification.cpp.o"
  "CMakeFiles/exp_fig19_classification.dir/exp_fig19_classification.cpp.o.d"
  "exp_fig19_classification"
  "exp_fig19_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig19_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
