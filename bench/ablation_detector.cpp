// Ablation: anomaly-detector choice (EWMA thresholding vs one-sided CUSUM)
// for the pre-RTBH classification of Table 2.
//
// The paper uses EWMA with a 2.5*SD threshold and argues the methodology is
// insensitive because bursts are either absent or massive. A CUSUM detector
// accumulates small sustained exceedances instead — if the two agree on the
// class shares, the insensitivity claim extends across detector families.
#include "common.hpp"
#include "core/pre_rtbh.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("ablation-detector");
  const auto& events = exp.report.events;

  bench::print_header("Ablation", "EWMA vs CUSUM pre-RTBH classification");
  util::TextTable table({"detector", "no data", "data, no anomaly",
                         "data + anomaly <=10min", "anomaly <=1h"});
  auto csv = bench::open_csv("ablation_detector",
                             {"detector", "no_data", "data_no_anomaly",
                              "data_anomaly_10m", "anomaly_1h"});

  auto add = [&](const char* name, const core::PreRtbhReport& pre) {
    const double total = static_cast<double>(pre.total());
    table.add_row({name,
                   util::fmt_percent(static_cast<double>(pre.no_data) / total, 1),
                   util::fmt_percent(
                       static_cast<double>(pre.data_no_anomaly) / total, 1),
                   util::fmt_percent(
                       static_cast<double>(pre.data_anomaly_10m) / total, 1),
                   util::fmt_percent(
                       static_cast<double>(pre.anomaly_1h) / total, 1)});
    csv->write_row({name,
                    util::fmt_double(static_cast<double>(pre.no_data) / total, 4),
                    util::fmt_double(
                        static_cast<double>(pre.data_no_anomaly) / total, 4),
                    util::fmt_double(
                        static_cast<double>(pre.data_anomaly_10m) / total, 4),
                    util::fmt_double(
                        static_cast<double>(pre.anomaly_1h) / total, 4)});
  };

  add("EWMA 2.5*SD (paper)", exp.report.pre);

  core::PreRtbhConfig cusum_cfg;
  cusum_cfg.detector = core::PreRtbhConfig::Detector::kCusum;
  add("CUSUM k=0.5 h=5",
      compute_pre_rtbh(exp.run.dataset, events, cusum_cfg));

  cusum_cfg.cusum.threshold_h = 10.0;
  add("CUSUM k=0.5 h=10",
      compute_pre_rtbh(exp.run.dataset, events, cusum_cfg));

  std::cout << table;
  bench::print_paper_row("expected", "detector families agree on the shape",
                         "see table");
  return 0;
}
