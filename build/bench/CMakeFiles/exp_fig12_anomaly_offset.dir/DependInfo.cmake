
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_fig12_anomaly_offset.cpp" "bench/CMakeFiles/exp_fig12_anomaly_offset.dir/exp_fig12_anomaly_offset.cpp.o" "gcc" "bench/CMakeFiles/exp_fig12_anomaly_offset.dir/exp_fig12_anomaly_offset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bw_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_ixp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_peeringdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
