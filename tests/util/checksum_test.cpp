#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace bw::util {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The iSCSI/RFC 3720 check value for the classic "123456789" vector.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  // 32 zero bytes (RFC 3720 appendix B.4 test pattern).
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c("", 0), 0u);
  Crc32c crc;
  EXPECT_EQ(crc.value(), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data =
      "Down the Black Hole: Dismantling Operational Practices of BGP "
      "Blackholing at IXPs";
  const std::uint32_t expected = crc32c(data);
  // Every split point must give the same answer as the one-shot call.
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32c crc;
    crc.update(data.data(), split);
    crc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(crc.value(), expected) << "split at " << split;
  }
}

TEST(Crc32cTest, ResetStartsOver) {
  Crc32c crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xE3069283u);
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data(64, 'x');
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(data), clean) << "byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace bw::util
