file(REMOVE_RECURSE
  "CMakeFiles/ddos_mitigation_study.dir/ddos_mitigation_study.cpp.o"
  "CMakeFiles/ddos_mitigation_study.dir/ddos_mitigation_study.cpp.o.d"
  "ddos_mitigation_study"
  "ddos_mitigation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_mitigation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
