#include "core/radviz.hpp"

#include <cmath>

namespace bw::core {

RadvizReport radviz_projection(const PortStatsReport& stats,
                               std::size_t min_days) {
  RadvizReport report;
  // Anchors equally spaced on the unit circle.
  report.anchors = {{{1.0, 0.0},   // unique src ports, inbound  (server pull)
                     {0.0, 1.0},   // unique dst ports, inbound  (client pull)
                     {-1.0, 0.0},  // unique src ports, outbound (client pull)
                     {0.0, -1.0}}};  // unique dst ports, outbound (server pull)
  constexpr double kNorm = 1.0 / 65535.0;

  for (const auto& h : stats.hosts) {
    if (h.days_bidirectional < min_days) continue;
    const std::array<double, 4> f{
        static_cast<double>(h.unique_src_ports_in) * kNorm,
        static_cast<double>(h.unique_dst_ports_in) * kNorm,
        static_cast<double>(h.unique_src_ports_out) * kNorm,
        static_cast<double>(h.unique_dst_ports_out) * kNorm};
    double total = 0.0;
    double x = 0.0;
    double y = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      total += f[i];
      x += f[i] * report.anchors[i].first;
      y += f[i] * report.anchors[i].second;
    }
    if (total <= 0.0) continue;
    RadvizPoint p;
    p.ip = h.ip;
    p.x = x / total;
    p.y = y / total;
    p.classification = h.classification;
    // Client pull is towards the dst-in (0,1) and src-out (-1,0) anchors,
    // i.e. the (-1,1) half-plane.
    p.client_side = (-p.x + p.y) > 0.0;
    if (p.client_side) ++report.client_side_count;
    else ++report.server_side_count;
    report.points.push_back(p);
  }
  return report;
}

}  // namespace bw::core
