// Table 3: number of different UDP amplification protocols per RTBH event
// that shows data and a preceding anomaly (Section 5.4), plus the overall
// transport mix during those events.
//
// Paper: protocol distribution 99.5% UDP / 0.3% TCP / 0.1% ICMP / 0.1%
// other; events by #amplification protocols: 0: 6%, 1: 40%, 2: 45%,
// 3: 8.3%, 4: 0.6%, 5: 0.1%; most common: cLDAP, NTP, DNS.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("tab03");
  const auto& mix = exp.report.protocols;

  bench::print_header("Tab. 3", "amplification protocols per attack event");
  util::TextTable table({"# protocols", "paper", "measured"});
  const char* paper_shares[6] = {"6%", "40%", "45%", "8.3%", "0.6%", "0.1%"};
  auto csv = bench::open_csv("tab03_amp_protocols",
                             {"protocols", "events", "share"});
  for (std::size_t k = 0; k <= 5; ++k) {
    table.add_row({k == 5 ? "5+" : std::to_string(k), paper_shares[k],
                   util::fmt_percent(mix.amp_event_fraction(k), 1)});
    csv->write_row({std::to_string(k),
                    std::to_string(mix.amp_protocol_events[k]),
                    util::fmt_double(mix.amp_event_fraction(k), 4)});
  }
  std::cout << table;

  std::cout << "\nTop amplification protocols by event count:\n";
  util::TextTable top({"protocol", "events"});
  for (std::size_t i = 0; i < std::min<std::size_t>(
                               mix.protocol_event_counts.size(), 8);
       ++i) {
    top.add_row({mix.protocol_event_counts[i].first,
                 util::fmt_count(static_cast<std::int64_t>(
                     mix.protocol_event_counts[i].second))});
  }
  std::cout << top;

  bench::print_paper_row(
      "transport mix UDP/TCP/ICMP/other",
      "99.5% / 0.3% / 0.1% / 0.1%",
      util::fmt_percent(mix.udp_share, 1) + " / " +
          util::fmt_percent(mix.tcp_share, 1) + " / " +
          util::fmt_percent(mix.icmp_share, 1) + " / " +
          util::fmt_percent(mix.other_share, 1));
  bench::print_paper_row("most common protocols", "cLDAP, NTP, DNS",
                         mix.protocol_event_counts.size() >= 3
                             ? mix.protocol_event_counts[0].first + ", " +
                                   mix.protocol_event_counts[1].first + ", " +
                                   mix.protocol_event_counts[2].first
                             : "n/a");
  return 0;
}
