#include "util/checksum.hpp"

#include <array>

namespace bw::util {

namespace {

/// Reflected CRC32C table (polynomial 0x1EDC6F41, reflected 0x82F63B78),
/// generated at static-init time — no magic blob to rot in the source.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32c::update(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state_;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  state_ = crc;
}

std::uint32_t crc32c(const void* data, std::size_t n) noexcept {
  Crc32c c;
  c.update(data, n);
  return c.value();
}

}  // namespace bw::util
