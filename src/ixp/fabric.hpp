// The IXP switching fabric.
//
// Carries traffic bursts between member ports. For every sampled packet the
// fabric makes the forwarding decision of Figure 1: if the handover peer's
// RIB holds an accepted RTBH route covering the destination (or a private
// blackhole applies), the packet's destination MAC is rewritten to the
// non-forwarding blackhole MAC and it is dropped; otherwise it egresses at
// the port of the member that announced the covering prefix.
#pragma once

#include <functional>
#include <optional>

#include "bgp/route_server.hpp"
#include "flow/collector.hpp"
#include "flow/mac_table.hpp"
#include "flow/sampler.hpp"
#include "ixp/blackhole_service.hpp"
#include "net/prefix_trie.hpp"

namespace bw::ixp {

class Fabric {
 public:
  /// Resolves a member id to the member's ASN (provided by the platform).
  using AsnResolver = std::function<bgp::Asn(flow::MemberId)>;

  Fabric(const flow::MacTable& macs, const bgp::RouteServer& rs,
         const BlackholeService& service,
         const net::PrefixTrie<flow::MemberId>& ownership,
         AsnResolver member_asn, flow::IpfixSampler sampler,
         flow::Collector& collector)
      : macs_(&macs),
        rs_(&rs),
        service_(&service),
        ownership_(&ownership),
        member_asn_(std::move(member_asn)),
        sampler_(std::move(sampler)),
        collector_(&collector) {}

  /// Carry one burst across the fabric: sample it, decide forwarding per
  /// sampled packet, and hand records to the collector. Sampling and clock
  /// jitter draw from substreams keyed by `burst.id`, so a keyed burst
  /// yields the identical records no matter which generation shard carries
  /// it (unkeyed bursts fall back to an arrival-order counter).
  void carry(const flow::TrafficBurst& burst);

  /// Ground-truth byte/packet accounting (for calibration and tests only;
  /// the analysis pipeline never reads these).
  struct Accounting {
    std::uint64_t bursts{0};
    std::uint64_t true_packets{0};
    std::uint64_t sampled_packets{0};
    std::uint64_t sampled_dropped{0};
    std::uint64_t sampled_dropped_private{0};
    std::uint64_t unroutable_bursts{0};  ///< destination owned by no member
  };
  [[nodiscard]] const Accounting& accounting() const noexcept { return acct_; }

 private:
  const flow::MacTable* macs_;
  const bgp::RouteServer* rs_;
  const BlackholeService* service_;
  const net::PrefixTrie<flow::MemberId>* ownership_;
  AsnResolver member_asn_;
  flow::IpfixSampler sampler_;
  flow::Collector* collector_;
  Accounting acct_;
  std::uint64_t unkeyed_counter_{0};  ///< fallback key for id == 0 bursts
};

}  // namespace bw::ixp
