file(REMOVE_RECURSE
  "CMakeFiles/bw_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/bw_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/bw_net.dir/net/mac.cpp.o"
  "CMakeFiles/bw_net.dir/net/mac.cpp.o.d"
  "CMakeFiles/bw_net.dir/net/ports.cpp.o"
  "CMakeFiles/bw_net.dir/net/ports.cpp.o.d"
  "CMakeFiles/bw_net.dir/net/prefix.cpp.o"
  "CMakeFiles/bw_net.dir/net/prefix.cpp.o.d"
  "CMakeFiles/bw_net.dir/net/prefix_trie.cpp.o"
  "CMakeFiles/bw_net.dir/net/prefix_trie.cpp.o.d"
  "libbw_net.a"
  "libbw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
