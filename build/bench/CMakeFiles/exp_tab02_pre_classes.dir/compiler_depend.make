# Empty compiler generated dependencies file for exp_tab02_pre_classes.
# This may be replaced when dependencies are built.
