#include "core/collateral.hpp"

#include <algorithm>
#include <unordered_map>

namespace bw::core {

CollateralReport compute_collateral(const Dataset& dataset,
                                    const std::vector<RtbhEvent>& events,
                                    const PortStatsReport& stats,
                                    std::uint32_t sampling_rate) {
  CollateralReport report;

  // Detected servers with their stable top ports.
  std::unordered_map<net::Ipv4, const HostPortStats*> servers;
  for (const auto& h : stats.hosts) {
    if (h.classification == HostClass::kServer) servers[h.ip] = &h;
  }
  report.servers_considered = servers.size();
  if (servers.empty()) return report;

  for (std::size_t e = 0; e < events.size(); ++e) {
    const auto& ev = events[e];
    // Which detected servers does this event cover?
    std::vector<const HostPortStats*> covered;
    if (ev.prefix.length() == 32) {
      const auto it = servers.find(ev.prefix.network());
      if (it != servers.end()) covered.push_back(it->second);
    } else {
      for (const auto& [ip, h] : servers) {
        if (ev.prefix.contains(ip)) covered.push_back(h);
      }
    }
    for (const HostPortStats* server : covered) {
      CollateralEvent ce;
      ce.server = server->ip;
      ce.event_index = e;
      for (const std::size_t idx :
           dataset.flows_to(net::Prefix::host(server->ip), ev.span)) {
        const auto& rec = dataset.flows()[idx];
        const net::ProtoPort pp{rec.proto, rec.dst_port};
        const bool to_top_port =
            std::find(server->top_ports.begin(), server->top_ports.end(), pp) !=
            server->top_ports.end();
        if (!to_top_port) continue;
        ce.packets_to_top_ports += rec.packets;
        if (rec.dropped()) ce.packets_actually_dropped += rec.packets;
      }
      if (ce.packets_to_top_ports == 0) continue;
      ce.est_original_packets = ce.packets_to_top_ports * sampling_rate;
      report.total_top_port_packets += ce.packets_to_top_ports;
      report.total_dropped_packets += ce.packets_actually_dropped;
      report.events.push_back(ce);
    }
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const CollateralEvent& a, const CollateralEvent& b) {
              return a.packets_to_top_ports < b.packets_to_top_ports;
            });
  return report;
}

}  // namespace bw::core
