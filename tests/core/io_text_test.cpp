#include "core/io_text.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

Dataset small_dataset() {
  World world({0, util::days(2)}, 0);
  const net::Ipv4 victim(24, 0, 0, 1);
  bgp::UpdateLog control;
  control.push_back(world.platform->service().make_announce(
      util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim),
      {bgp::Community{0, 300}}));
  control.push_back(world.platform->service().make_withdraw(
      2 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(victim)));
  std::vector<flow::TrafficBurst> bursts;
  bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                               net::Proto::kUdp, 123, 4444,
                               {util::kHour, 2 * util::kHour}, 50,
                               world.acceptor));
  bursts.push_back(world.burst(net::Ipv4(64, 1, 0, 1), victim,
                               net::Proto::kTcp, 55555, 443,
                               {0, util::kHour}, 25, world.rejector));
  return world.run(std::move(control), bursts);
}

TEST(IoTextTest, ControlRoundTrip) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  write_control_csv(ss, ds.control());
  const auto parsed = read_control_csv(ss);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), ds.control().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = (*parsed)[i];
    const auto& b = ds.control()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.sender_asn, b.sender_asn);
    EXPECT_EQ(a.origin_asn, b.origin_asn);
    EXPECT_EQ(a.prefix, b.prefix);
    EXPECT_EQ(a.next_hop, b.next_hop);
    EXPECT_EQ(a.communities, b.communities);
  }
}

TEST(IoTextTest, FlowsRoundTrip) {
  const Dataset ds = small_dataset();
  std::stringstream ss;
  write_flows_csv(ss, ds.flows());
  const auto parsed = read_flows_csv(ss);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), ds.flows().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const auto& a = (*parsed)[i];
    const auto& b = ds.flows()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.proto, b.proto);
    EXPECT_EQ(a.src_port, b.src_port);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.src_mac, b.src_mac);
    EXPECT_EQ(a.dst_mac, b.dst_mac);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(IoTextTest, MalformedRowsRejected) {
  {
    std::stringstream ss("time_ms,type,...\n123,X,1,2,10.0.0.1/32,1.2.3.4,\n");
    EXPECT_FALSE(read_control_csv(ss));
  }
  {
    std::stringstream ss("header\nnot,enough,fields\n");
    EXPECT_FALSE(read_control_csv(ss));
  }
  {
    std::stringstream ss("header\n1,2,3\n");
    EXPECT_FALSE(read_flows_csv(ss));
  }
  {
    std::stringstream ss("header\nzz:zz:zz:zz:zz:zz,abc\n");
    EXPECT_FALSE(read_macs_csv(ss));
  }
  {
    std::stringstream ss("header\n10.0.0.0/99,1\n");
    EXPECT_FALSE(read_origins_csv(ss));
  }
}

TEST(IoTextTest, EmptyBodiesAreValid) {
  std::stringstream control("header\n");
  ASSERT_TRUE(read_control_csv(control));
  EXPECT_TRUE(read_control_csv(control)->empty());
}

TEST(IoTextTest, DirectoryExportImportRoundTrip) {
  const Dataset ds = small_dataset();
  const std::string dir = testing::TempDir() + "/bw_csv_export";
  std::filesystem::remove_all(dir);
  export_dataset_csv(ds, dir);
  for (const char* name :
       {"control.csv", "flows.csv", "macs.csv", "origins.csv", "period.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  const Dataset loaded = import_dataset_csv(dir);
  EXPECT_EQ(loaded.control().size(), ds.control().size());
  EXPECT_EQ(loaded.flows().size(), ds.flows().size());
  EXPECT_EQ(loaded.period(), ds.period());
  EXPECT_EQ(loaded.mac_table().size(), ds.mac_table().size());
  // Analyses on the re-imported dataset behave identically.
  const auto s1 = loaded.summary();
  const auto s2 = ds.summary();
  EXPECT_EQ(s1.dropped_packets, s2.dropped_packets);
  EXPECT_EQ(s1.blackholed_prefixes, s2.blackholed_prefixes);
  EXPECT_EQ(loaded.origin_asn(net::Ipv4(64, 0, 0, 1)),
            ds.origin_asn(net::Ipv4(64, 0, 0, 1)));
  std::filesystem::remove_all(dir);
}

TEST(IoTextTest, ImportMissingDirectoryThrows) {
  EXPECT_THROW((void)import_dataset_csv("/nonexistent-bw-dir"),
               std::runtime_error);
}

// --- streaming readers: CRLF, strictness, per-file accounting ---

constexpr const char* kFlowsHeader =
    "time_ms,src_ip,dst_ip,proto,src_port,dst_port,src_mac,dst_mac,"
    "packets,bytes";

std::string flow_row(std::int64_t time) {
  return std::to_string(time) +
         ",64.0.0.1,24.0.0.1,17,123,4444,"
         "aa:bb:cc:00:00:01,aa:bb:cc:00:00:02,3,1500";
}

TEST(IoTextTest, CrlfTerminatedLinesParse) {
  std::stringstream macs("mac,asn\r\naa:bb:cc:00:00:01,42\r\n");
  const auto parsed_macs = read_macs_csv(macs);
  ASSERT_TRUE(parsed_macs);
  ASSERT_EQ(parsed_macs->size(), 1u);
  EXPECT_EQ(parsed_macs->begin()->second, 42u);

  std::stringstream flows(std::string(kFlowsHeader) + "\r\n" + flow_row(100) +
                          "\r\n");
  const auto parsed_flows = read_flows_csv(flows);
  ASSERT_TRUE(parsed_flows);
  ASSERT_EQ(parsed_flows->size(), 1u);
  EXPECT_EQ((*parsed_flows)[0].time, 100);
  EXPECT_EQ((*parsed_flows)[0].bytes, 1500);
}

TEST(IoTextTest, StrictFailsWithLineNumber) {
  std::stringstream ss(std::string(kFlowsHeader) + "\n" + flow_row(100) +
                       "\ngarbage\n" + flow_row(200) + "\n");
  const auto r = read_flows_csv(ss, LoadOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("flows.csv"), std::string::npos);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(IoTextTest, SkipModeCostsOneRecordPerFault) {
  std::stringstream ss(std::string(kFlowsHeader) + "\n" + flow_row(100) +
                       "\ngarbage\n" + flow_row(200) + "\n");
  LoadOptions options;
  options.strictness = Strictness::kSkip;
  LoadReport report;
  const auto r = read_flows_csv(ss, options, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(report.rows_read, 2u);
  EXPECT_EQ(report.rows_skipped, 1u);
  EXPECT_EQ(report.rows_repaired, 0u);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].line, 3u);
  EXPECT_FALSE(report.clean());
}

TEST(IoTextTest, TruncatedTailCostsOneRecord) {
  // No terminating newline: the file ends mid-row.
  std::stringstream ss(std::string(kFlowsHeader) + "\n" + flow_row(100) + "\n" +
                       flow_row(200).substr(0, 20));
  LoadOptions options;
  options.strictness = Strictness::kSkip;
  LoadReport report;
  const auto r = read_flows_csv(ss, options, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  EXPECT_EQ(report.rows_skipped, 1u);
}

TEST(IoTextTest, RepairDefaultsDamagedVolumeTail) {
  // 8 intact leading fields (tail cut after dst_mac).
  std::string damaged = flow_row(100);
  damaged = damaged.substr(0, damaged.rfind(",3,1500"));
  std::stringstream ss(std::string(kFlowsHeader) + "\n" + damaged + "\n");
  LoadOptions options;
  options.strictness = Strictness::kRepair;
  LoadReport report;
  const auto r = read_flows_csv(ss, options, &report);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].packets, 1);
  EXPECT_EQ(r.value()[0].bytes, 0);
  EXPECT_EQ(report.rows_repaired, 1u);
  EXPECT_EQ(report.rows_skipped, 0u);

  // kSkip must not salvage the same row.
  std::stringstream again(std::string(kFlowsHeader) + "\n" + damaged + "\n");
  options.strictness = Strictness::kSkip;
  LoadReport skip_report;
  const auto r2 = read_flows_csv(again, options, &skip_report);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().empty());
  EXPECT_EQ(skip_report.rows_skipped, 1u);
}

TEST(IoTextTest, RepairDropsMangledCommunities) {
  const std::string row = "100,A,500,100,24.0.0.1/32,10.0.0.1,##mangled##";
  std::stringstream ss("time_ms,type,sender_asn,origin_asn,prefix,next_hop,"
                       "communities\n" +
                       row + "\n");
  LoadOptions options;
  options.strictness = Strictness::kRepair;
  LoadReport report;
  const auto r = read_control_csv(ss, options, &report);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_TRUE(r.value()[0].communities.empty());
  EXPECT_EQ(r.value()[0].prefix.to_string(), "24.0.0.1/32");
  EXPECT_EQ(report.rows_repaired, 1u);
}

TEST(IoTextTest, IngestReportSummarizes) {
  LoadReport report;
  report.file = "flows.csv";
  report.rows_read = 10;
  report.rows_skipped = 2;
  report.note(17, "bad src_ip 'x'", 8);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("flows.csv"), std::string::npos);
  EXPECT_NE(summary.find("line 17"), std::string::npos);

  IngestReport ingest;
  ingest.files.push_back(report);
  EXPECT_FALSE(ingest.clean());
  EXPECT_EQ(ingest.rows_skipped(), 2u);
}

}  // namespace
}  // namespace bw::core
