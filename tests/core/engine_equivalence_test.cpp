// Golden equivalence of the two kernel engines: the columnar (SoA) scan
// kernels must reproduce the records (AoS) path byte for byte — same
// AnalysisReport, same rendered markdown — across seeds and thread counts.
// The records engine is the seed implementation kept as the oracle; any
// divergence here means the columnar port changed semantics.
#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "util/parallel.hpp"

namespace bw::core {
namespace {

std::string run_markdown(const ScenarioRun& run, KernelEngine engine,
                         std::size_t workers) {
  util::ThreadPool pool(workers);
  AnalysisConfig cfg;
  cfg.pool = &pool;
  cfg.engine = engine;
  const AnalysisReport report = run_pipeline(run.dataset, cfg);
  return render_markdown(run.dataset, report, nullptr);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalenceTest, ColumnarMatchesRecordsByteForByte) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.02;
  cfg.seed = GetParam();
  const ScenarioRun run = run_scenario(cfg, std::string{});  // cache disabled

  // {records, columnar} x {serial, 8-way}: all four documents must match.
  const std::string records_serial =
      run_markdown(run, KernelEngine::kRecords, 0);
  const std::string records_wide = run_markdown(run, KernelEngine::kRecords, 7);
  const std::string columnar_serial =
      run_markdown(run, KernelEngine::kColumnar, 0);
  const std::string columnar_wide =
      run_markdown(run, KernelEngine::kColumnar, 7);

  EXPECT_GT(records_serial.size(), 1000u);
  EXPECT_EQ(records_serial, records_wide);
  EXPECT_EQ(records_serial, columnar_serial);
  EXPECT_EQ(records_serial, columnar_wide);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Values(7u, 42u, 20191021u));

}  // namespace
}  // namespace bw::core
