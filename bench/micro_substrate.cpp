// Performance microbenchmarks for the IXP substrate: sampling, policy
// evaluation, per-packet forwarding decisions, and route-server update
// processing — the hot paths of a full-scale scenario run.
#include <benchmark/benchmark.h>

#include "bgp/route_server.hpp"
#include "flow/sampler.hpp"
#include "ixp/blackhole_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace bw;

void BM_SamplerBurst(benchmark::State& state) {
  flow::IpfixSampler sampler(10000, util::Rng(1));
  flow::TrafficBurst burst;
  burst.window = {0, util::kHour};
  burst.packets = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample_times(burst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerBurst)->Arg(10000)->Arg(10000000);

void BM_PolicyAcceptsBlackhole(benchmark::State& state) {
  bgp::PeerPolicy policy{.blackhole = bgp::BlackholeAcceptance::kInconsistent,
                         .inconsistent_accept_fraction = 0.5,
                         .salt = 42};
  util::Rng rng(2);
  std::vector<net::Prefix> prefixes(1024);
  for (auto& p : prefixes) {
    p = net::Prefix(
        net::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7FFFFFFF))),
        32);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.accepts_blackhole(prefixes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyAcceptsBlackhole);

// The per-sampled-packet fast path: stateless forwarding decision against
// the annotated blackhole index.
void BM_ForwardingDecision(benchmark::State& state) {
  bgp::RouteServer rs(64600);
  ixp::BlackholeService svc(64600);
  util::Rng rng(3);
  for (int p = 0; p < 500; ++p) {
    rs.add_peer(static_cast<bgp::Asn>(1000 + p),
                {.blackhole = p % 3 == 0
                                  ? bgp::BlackholeAcceptance::kAcceptAll
                                  : bgp::BlackholeAcceptance::kClassfulOnly});
  }
  bgp::UpdateLog log;
  std::vector<net::Ipv4> victims;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const net::Ipv4 victim(0x18000000u + static_cast<std::uint32_t>(i));
    victims.push_back(victim);
    util::TimeMs t = rng.uniform_int(0, util::days(100));
    for (int c = 0; c < 8; ++c) {
      const util::TimeMs end = t + util::minutes(5.0);
      log.push_back(svc.make_announce(t, 1, 2, net::Prefix::host(victim)));
      log.push_back(svc.make_withdraw(end, 1, 2, net::Prefix::host(victim)));
      t = end + util::minutes(2.0);
    }
  }
  rs.process_all(std::move(log));
  rs.finalize(util::days(104));

  std::size_t i = 0;
  for (auto _ : state) {
    const auto& victim = victims[i % victims.size()];
    const auto t = static_cast<util::TimeMs>((i * 7919) % util::days(104));
    benchmark::DoNotOptimize(
        rs.blackholed_for_peer(1000 + static_cast<bgp::Asn>(i % 500), victim, t));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardingDecision)->Arg(1000)->Arg(10000);

void BM_RouteServerProcess(benchmark::State& state) {
  ixp::BlackholeService svc(64600);
  util::Rng rng(4);
  bgp::UpdateLog log;
  for (int i = 0; i < 10000; ++i) {
    const net::Prefix prefix(
        net::Ipv4(0x18000000u + static_cast<std::uint32_t>(rng.uniform_int(
                                    0, 1 << 20))),
        32);
    if (rng.chance(0.5)) {
      log.push_back(svc.make_announce(i, 1, 2, prefix));
    } else {
      log.push_back(svc.make_withdraw(i, 1, 2, prefix));
    }
  }
  for (auto _ : state) {
    bgp::RouteServer rs(64600);
    for (int p = 0; p < 100; ++p) rs.add_peer(static_cast<bgp::Asn>(p), {});
    rs.process_all(log);
    rs.finalize(util::days(104));
    benchmark::DoNotOptimize(rs.blackhole_index().prefix_count());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_RouteServerProcess)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
