#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace bw::util {

void StreamingStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse duplicates: only emit the last occurrence of each value.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    out.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double cdf_at(std::span<const CdfPoint> cdf, double x) {
  double result = 0.0;
  for (const auto& p : cdf) {
    if (p.value <= x) {
      result = p.cumulative_fraction;
    } else {
      break;
    }
  }
  return result;
}

double weighted_mean(std::span<const double> values, std::span<const double> w) {
  double num = 0.0;
  double den = 0.0;
  const std::size_t n = std::min(values.size(), w.size());
  for (std::size_t i = 0; i < n; ++i) {
    num += values[i] * w[i];
    den += w[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double weighted_stddev(std::span<const double> values, std::span<const double> w) {
  const std::size_t n = std::min(values.size(), w.size());
  const double mu = weighted_mean(values, w);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = values[i] - mu;
    num += w[i] * d * d;
    den += w[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  StreamingStats sx;
  StreamingStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(x[i]);
    sy.add(y[i]);
  }
  const double sdx = sx.stddev();
  const double sdy = sy.stddev();
  if (sdx == 0.0 || sdy == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(n);
  return cov / (sdx * sdy);
}

}  // namespace bw::util
