// Thread-count independence of the deterministic metric class: every
// counter that is_deterministic_metric() admits (i.e. not timing, not
// scheduling shape) must read the same value after a serial run_pipeline
// as after an 8-way run over the same corpus. This is the metrics
// counterpart of pipeline_determinism_test — reports are byte-identical,
// and so is the observable work accounting.
//
// This file is part of bw_parallel_test, so the 8-way run is also executed
// under the tsan CTest label.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace bw::core {
namespace {

/// Deterministic counters only, as name -> value. Names registered in one
/// run but not the other compare as 0 (registration is process-cumulative,
/// values are what must match).
std::map<std::string, std::uint64_t> deterministic_counters(
    const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : snapshot.counters) {
    if (obs::is_deterministic_metric(name)) out[name] = value;
  }
  return out;
}

TEST(ObsDeterminismTest, CounterSnapshotsIdenticalAcrossThreadCounts) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.04;
  cfg.seed = 20191021;
  const ScenarioRun run = run_scenario(cfg, std::string{});  // cache disabled
  obs::Registry& registry = obs::Registry::global();

  registry.reset_values();
  util::ThreadPool serial(0);
  AnalysisConfig serial_cfg;
  serial_cfg.pool = &serial;
  const AnalysisReport serial_report = run_pipeline(run.dataset, serial_cfg);
  const obs::MetricsSnapshot serial_snap = registry.snapshot();
  const auto serial_counters = deterministic_counters(serial_snap);

  registry.reset_values();
  util::ThreadPool wide(7);  // 8-way: 7 workers + the calling thread
  AnalysisConfig wide_cfg;
  wide_cfg.pool = &wide;
  const AnalysisReport wide_report = run_pipeline(run.dataset, wide_cfg);
  const obs::MetricsSnapshot wide_snap = registry.snapshot();
  const auto wide_counters = deterministic_counters(wide_snap);

  // Sanity: both runs actually recorded pipeline work.
  EXPECT_EQ(serial_snap.counter("pipeline.runs"), 1u);
  EXPECT_EQ(wide_snap.counter("pipeline.runs"), 1u);
  ASSERT_GT(serial_counters.size(), 5u);

  // Union of names, absent treated as 0: every deterministic counter must
  // agree between the serial and the 8-way run.
  std::map<std::string, std::uint64_t> all;
  for (const auto& [name, value] : serial_counters) all.emplace(name, 0);
  for (const auto& [name, value] : wide_counters) all.emplace(name, 0);
  for (const auto& [name, unused] : all) {
    const auto lookup = [&](const auto& m) {
      const auto it = m.find(name);
      return it == m.end() ? std::uint64_t{0} : it->second;
    };
    EXPECT_EQ(lookup(serial_counters), lookup(wide_counters))
        << "deterministic counter '" << name
        << "' differs between 1-thread and 8-thread runs";
  }

  // The reports these runs produced are the same ones
  // pipeline_determinism_test pins byte-identical; spot-check alignment so
  // a metrics regression cannot hide behind a report regression.
  EXPECT_EQ(serial_report.summary.flow_records,
            wide_report.summary.flow_records);
  EXPECT_EQ(serial_report.events.size(), wide_report.events.size());
}

TEST(ObsDeterminismTest, StageRunCountersMatchDataQualityStages) {
  gen::ScenarioConfig cfg;
  cfg.scale = 0.04;
  cfg.seed = 20191021;
  const ScenarioRun run = run_scenario(cfg, std::string{});

  obs::Registry& registry = obs::Registry::global();
  registry.reset_values();
  const AnalysisReport report = run_pipeline(run.dataset);
  const obs::MetricsSnapshot snap = registry.snapshot();

  ASSERT_FALSE(report.data_quality.stages.empty());
  for (const auto& stage : report.data_quality.stages) {
    EXPECT_EQ(snap.counter("pipeline.stage." + std::string(stage.name) +
                           ".runs"),
              1u)
        << "stage '" << stage.name << "' run counter";
  }
}

}  // namespace
}  // namespace bw::core
