# Empty dependencies file for ablation_policy_mix.
# This may be replaced when dependencies are built.
