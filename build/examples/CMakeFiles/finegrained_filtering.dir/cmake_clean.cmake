file(REMOVE_RECURSE
  "CMakeFiles/finegrained_filtering.dir/finegrained_filtering.cpp.o"
  "CMakeFiles/finegrained_filtering.dir/finegrained_filtering.cpp.o.d"
  "finegrained_filtering"
  "finegrained_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finegrained_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
