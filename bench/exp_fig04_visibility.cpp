// Figure 4: share of announced blackholes NOT visible to the
// 100th/99th/50th percentile peer over time (Section 4.1).
//
// Paper: targeted announcements are the rare exception. During some weeks
// in early October the median peer saw up to 6.2% fewer RTBHs (one peer
// 10.8% fewer); afterwards the median and 99th percentiles drop to at most
// 0.2%, the worst peer to at most 4.9%.
#include "common.hpp"
#include "core/visibility.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig04");
  const auto vis = core::compute_visibility(exp.run.dataset, exp.run.peer_asns,
                                            2 * util::kHour);

  bench::print_header("Fig. 4", "per-peer RTBH visibility quantiles");
  util::TextTable table(
      {"day", "announced", "missed max", "missed p99", "missed median"});
  auto csv = bench::open_csv(
      "fig04_visibility",
      {"time_ms", "announced", "missed_max", "missed_p99", "missed_median"});
  double phase_median_peak = 0.0;
  double post_phase_median_peak = 0.0;
  double post_phase_max_peak = 0.0;
  for (const auto& p : vis.series) {
    csv->write_row({std::to_string(p.time), std::to_string(p.announced),
                    util::fmt_double(p.missed_max, 4),
                    util::fmt_double(p.missed_p99, 4),
                    util::fmt_double(p.missed_median, 4)});
    const auto day = p.time / util::kDay;
    if (p.time % (4 * util::kDay) == 0) {
      table.add_row({std::to_string(day), std::to_string(p.announced),
                     util::fmt_percent(p.missed_max, 2),
                     util::fmt_percent(p.missed_p99, 2),
                     util::fmt_percent(p.missed_median, 2)});
    }
    if (exp.config.targeted_phase.contains(p.time)) {
      phase_median_peak = std::max(phase_median_peak, p.missed_median);
    } else if (p.time > exp.config.targeted_phase.end) {
      post_phase_median_peak =
          std::max(post_phase_median_peak, p.missed_median);
      post_phase_max_peak = std::max(post_phase_max_peak, p.missed_max);
    }
  }
  std::cout << table;

  bench::print_paper_row("median-peer missed share, early-Oct phase peak",
                         "up to 6.2%",
                         util::fmt_percent(phase_median_peak, 1));
  bench::print_paper_row("median-peer missed share after the phase",
                         "<= 0.2%",
                         util::fmt_percent(post_phase_median_peak, 2));
  bench::print_paper_row("worst peer after the phase", "<= 4.9%",
                         util::fmt_percent(post_phase_max_peak, 2));
  return 0;
}
