#include <gtest/gtest.h>

#include "core/load.hpp"
#include "core/time_offset.hpp"
#include "corpus.hpp"

namespace bw::core {
namespace {

using testutil::World;

Dataset make_skewed_dataset(util::DurationMs skew) {
  World world({0, util::days(2)}, skew);
  const net::Ipv4 victim(24, 0, 0, 1);
  bgp::UpdateLog control;
  std::vector<flow::TrafficBurst> bursts;
  // Many short blackhole windows with traffic spanning the edges, so the
  // boundary samples pin down the offset.
  for (int i = 0; i < 200; ++i) {
    const util::TimeMs start = (i + 1) * 10 * util::kMinute;
    const util::TimeMs end = start + 4 * util::kMinute;
    control.push_back(world.platform->service().make_announce(
        start, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    control.push_back(world.platform->service().make_withdraw(
        end, World::kVictimAsn, 50000, net::Prefix::host(victim)));
    bursts.push_back(world.burst(net::Ipv4(64, 0, 0, 1), victim,
                                 net::Proto::kUdp, 123, 4444,
                                 {start - util::kMinute, end + util::kMinute},
                                 3000, world.acceptor));
  }
  return world.run(std::move(control), bursts);
}

TEST(TimeOffsetTest, RecoversInjectedSkew) {
  const Dataset dataset = make_skewed_dataset(-40);
  OffsetConfig cfg;
  cfg.min_offset = -500;
  cfg.max_offset = 500;
  cfg.step = 10;
  const auto est = estimate_offset(dataset, cfg);
  ASSERT_FALSE(est.curve.empty());
  // Data clock runs 40 ms early; adding +40 ms realigns it.
  EXPECT_NEAR(static_cast<double>(est.best_offset), 40.0, 15.0);
  EXPECT_GT(est.best_overlap, 0.95);
  EXPECT_GT(est.dropped_samples, 1000u);
}

TEST(TimeOffsetTest, ZeroSkewPeaksAtZero) {
  const Dataset dataset = make_skewed_dataset(0);
  OffsetConfig cfg;
  cfg.min_offset = -500;
  cfg.max_offset = 500;
  cfg.step = 10;
  const auto est = estimate_offset(dataset, cfg);
  EXPECT_NEAR(static_cast<double>(est.best_offset), 0.0, 15.0);
}

TEST(TimeOffsetTest, CurveCoversGrid) {
  const Dataset dataset = make_skewed_dataset(-40);
  OffsetConfig cfg;
  cfg.min_offset = -100;
  cfg.max_offset = 100;
  cfg.step = 20;
  const auto est = estimate_offset(dataset, cfg);
  EXPECT_EQ(est.curve.size(), 11u);
  EXPECT_EQ(est.curve.front().offset, -100);
  EXPECT_EQ(est.curve.back().offset, 100);
  for (const auto& p : est.curve) {
    EXPECT_GE(p.overlap, 0.0);
    EXPECT_LE(p.overlap, 1.0);
  }
}

TEST(TimeOffsetTest, SubsamplingKeepsPeak) {
  const Dataset dataset = make_skewed_dataset(-40);
  OffsetConfig cfg;
  cfg.min_offset = -200;
  cfg.max_offset = 200;
  cfg.step = 10;
  cfg.max_samples = 20000;  // force stride > 1 but keep boundary samples
  const auto est = estimate_offset(dataset, cfg);
  EXPECT_NEAR(static_cast<double>(est.best_offset), 40.0, 30.0);
}

TEST(LoadTest, ActivePrefixesAndMessages) {
  World world({0, util::kDay}, 0);
  const net::Ipv4 v1(24, 0, 0, 1);
  const net::Ipv4 v2(24, 0, 0, 2);
  bgp::UpdateLog control;
  // v1 blackholed hours 1-3, v2 hours 2-4: overlap in hour 2-3.
  control.push_back(world.platform->service().make_announce(
      util::kHour, World::kVictimAsn, 50000, net::Prefix::host(v1)));
  control.push_back(world.platform->service().make_withdraw(
      3 * util::kHour, World::kVictimAsn, 50000, net::Prefix::host(v1)));
  control.push_back(world.platform->service().make_announce(
      2 * util::kHour, World::kVictimAsn, 50001, net::Prefix::host(v2)));
  control.push_back(world.platform->service().make_withdraw(
      4 * util::kHour, World::kVictimAsn, 50001, net::Prefix::host(v2)));
  const Dataset dataset = world.run(std::move(control), {});

  const auto report = compute_load(dataset, util::kMinute);
  ASSERT_EQ(report.series.size(), 24u * 60u);
  EXPECT_EQ(report.max_active, 2u);
  EXPECT_EQ(report.series[90].active_prefixes, 1u);    // 01:30: v1 only
  EXPECT_EQ(report.series[30].active_prefixes, 0u);    // 00:30: none
  EXPECT_EQ(report.series[150].active_prefixes, 2u);   // 02:30: overlap
  EXPECT_EQ(report.series[200].active_prefixes, 1u);   // 03:20: v2 only
  EXPECT_EQ(report.series[60].messages, 1u);           // announce minute
  EXPECT_EQ(report.announcing_peers, 1u);
  EXPECT_EQ(report.origin_ases, 2u);
  EXPECT_GT(report.mean_active, 0.0);
  EXPECT_EQ(report.max_messages_per_slot, 1u);
}

TEST(LoadTest, EmptyDataset) {
  World world({0, util::kHour}, 0);
  const Dataset dataset = world.run({}, {});
  const auto report = compute_load(dataset, util::kMinute);
  EXPECT_EQ(report.max_active, 0u);
  EXPECT_EQ(report.mean_active, 0.0);
  EXPECT_EQ(report.announcing_peers, 0u);
}

}  // namespace
}  // namespace bw::core
