// Figure 16: RadViz projection of blackholed hosts over four port-
// diversity features (Section 6.1).
//
// Paper: more blackholed IP addresses show client-like traffic patterns
// than server-like ones — surprising, since DDoS lore expects servers.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig16");
  const auto& radviz = exp.report.radviz;

  bench::print_header("Fig. 16", "RadViz projection of host port features");
  auto csv = bench::open_csv("fig16_radviz",
                             {"ip", "x", "y", "classification"});
  for (const auto& p : radviz.points) {
    csv->write_row({p.ip.to_string(), util::fmt_double(p.x, 4),
                    util::fmt_double(p.y, 4),
                    std::string(core::to_string(p.classification))});
  }

  // Quadrant digest instead of a scatter plot.
  std::size_t quad[2][2] = {};
  for (const auto& p : radviz.points) {
    quad[p.y >= 0 ? 0 : 1][p.x >= 0 ? 1 : 0] += 1;
  }
  util::TextTable table({"", "x < 0 (client pull)", "x >= 0 (server pull)"});
  table.add_row({"y >= 0 (client pull)", std::to_string(quad[0][0]),
                 std::to_string(quad[0][1])});
  table.add_row({"y < 0 (server pull)", std::to_string(quad[1][0]),
                 std::to_string(quad[1][1])});
  std::cout << table;

  bench::print_paper_row("hosts projected (>= 20 bidirectional days)",
                         "~5,000 (x scale)",
                         std::to_string(radviz.points.size()));
  bench::print_paper_row(
      "client-side vs server-side points", "clients outnumber servers",
      std::to_string(radviz.client_side_count) + " vs " +
          std::to_string(radviz.server_side_count) +
          (radviz.client_side_count > radviz.server_side_count
               ? " (clients outnumber servers)"
               : ""));
  return 0;
}
