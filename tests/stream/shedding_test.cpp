#include "stream/shedding.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/mac.hpp"

namespace bw::stream {
namespace {

StreamEvent bgp_event(util::TimeMs t, std::uint64_t seq) {
  bgp::Update u;
  u.time = t;
  return StreamEvent::from(u, seq);
}

StreamEvent legit_flow(util::TimeMs t, std::uint64_t seq) {
  flow::FlowRecord r;
  r.time = t;
  r.dst_mac = net::Mac::for_member_port(7);  // forwarded, not blackholed
  return StreamEvent::from(r, seq);
}

StreamEvent attack_flow(util::TimeMs t, std::uint64_t seq) {
  flow::FlowRecord r;
  r.time = t;
  r.dst_mac = net::Mac::blackhole();  // redirected: the attack evidence
  return StreamEvent::from(r, seq);
}

struct SinkLog {
  std::vector<ShedRecord> records;
  ShedConfig config(ShedMode mode) {
    return ShedConfig{mode,
                      [this](const ShedRecord& r) { records.push_back(r); }};
  }
};

TEST(ShedModeTest, ParsesAndRoundTrips) {
  for (ShedMode mode : {ShedMode::kBlockWithDeadline, ShedMode::kDropNewest,
                        ShedMode::kPriorityShed}) {
    auto parsed = parse_shed_mode(to_string(mode));
    ASSERT_TRUE(parsed.ok()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_shed_mode("loadshed").ok());
  EXPECT_FALSE(parse_shed_mode("").ok());
}

TEST(ShedderTest, DropNewestShedsOnFullRing) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kDropNewest));
  SpscRing<StreamEvent> ring(2);

  EXPECT_TRUE(shedder.offer(ring, legit_flow(10, 0), nullptr));
  EXPECT_TRUE(shedder.offer(ring, legit_flow(11, 1), nullptr));
  // Ring full: the newest arrival is shed immediately, no waiting.
  EXPECT_FALSE(shedder.offer(ring, legit_flow(12, 2), nullptr));

  EXPECT_EQ(shedder.stats().pushed, 2u);
  EXPECT_EQ(shedder.stats().shed_total, 1u);
  EXPECT_EQ(shedder.stats().shed_flow_legit, 1u);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].reason, ShedReason::kQueueFull);
  EXPECT_EQ(sink.records[0].seq, 2u);
  EXPECT_EQ(sink.records[0].time, 12);
}

TEST(ShedderTest, BlockModeShedsWhenWaitingCannotHelp) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kBlockWithDeadline));
  SpscRing<StreamEvent> ring(1);

  ASSERT_TRUE(shedder.offer(ring, bgp_event(10, 0), nullptr));
  // make_room == nullptr means "no consumer can ever help": deadline shed.
  EXPECT_FALSE(shedder.offer(ring, bgp_event(11, 1), nullptr));
  EXPECT_EQ(shedder.stats().shed_bgp, 1u);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].reason, ShedReason::kBlockDeadline);

  int make_room_calls = 0;
  const Shedder::MakeRoom deadline_expired = [&] {
    ++make_room_calls;
    return false;  // the deadline clock says waiting is over
  };
  EXPECT_FALSE(shedder.offer(ring, bgp_event(12, 2), deadline_expired));
  EXPECT_EQ(make_room_calls, 1);
  EXPECT_EQ(shedder.stats().shed_total, 2u);
}

TEST(ShedderTest, BlockModeSucceedsWhenConsumerMakesRoom) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kBlockWithDeadline));
  SpscRing<StreamEvent> ring(1);
  ASSERT_TRUE(shedder.offer(ring, bgp_event(10, 0), nullptr));

  const Shedder::MakeRoom drain_one = [&] {
    StreamEvent ev;
    return ring.try_pop(ev);
  };
  EXPECT_TRUE(shedder.offer(ring, bgp_event(11, 1), drain_one));
  EXPECT_EQ(shedder.stats().pushed, 2u);
  EXPECT_EQ(shedder.stats().shed_total, 0u);
  EXPECT_TRUE(sink.records.empty());
}

TEST(ShedderTest, PriorityShedsLegitFlowsFirstWithoutWaiting) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kPriorityShed));
  SpscRing<StreamEvent> ring(1);
  ASSERT_TRUE(shedder.offer(ring, legit_flow(10, 0), nullptr));

  // Ring full + legit-looking flow: shed instantly, never spend the wait
  // budget on traffic whose loss only widens a confidence interval.
  int make_room_calls = 0;
  const Shedder::MakeRoom counting = [&] {
    ++make_room_calls;
    return false;
  };
  EXPECT_FALSE(shedder.offer(ring, legit_flow(11, 1), counting));
  EXPECT_EQ(make_room_calls, 0) << "legit flows must not wait for room";
  EXPECT_EQ(shedder.stats().shed_flow_legit, 1u);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].reason, ShedReason::kLegitFirst);
}

TEST(ShedderTest, PriorityNeverShedsBgpWhileRoomCanBeMade) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kPriorityShed));
  SpscRing<StreamEvent> ring(1);
  ASSERT_TRUE(shedder.offer(ring, legit_flow(10, 0), nullptr));

  const Shedder::MakeRoom drain_one = [&] {
    StreamEvent ev;
    return ring.try_pop(ev);
  };
  // BGP waits (via make_room) and lands; same for attack-looking flows.
  EXPECT_TRUE(shedder.offer(ring, bgp_event(11, 1), drain_one));
  EXPECT_TRUE(shedder.offer(ring, attack_flow(12, 2), drain_one));
  EXPECT_EQ(shedder.stats().shed_total, 0u);
  EXPECT_EQ(shedder.stats().pushed, 3u);
}

TEST(ShedderTest, PriorityCountsAttackFlowShedAsAttack) {
  // Even the protected classes shed loudly when make_room is exhausted
  // (dead consumer); the attack/legit split must stay truthful.
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kPriorityShed));
  SpscRing<StreamEvent> ring(1);
  ASSERT_TRUE(shedder.offer(ring, bgp_event(10, 0), nullptr));

  EXPECT_FALSE(shedder.offer(ring, attack_flow(11, 1), nullptr));
  EXPECT_EQ(shedder.stats().shed_flow_attack, 1u);
  EXPECT_EQ(shedder.stats().shed_flow_legit, 0u);
  EXPECT_EQ(shedder.stats().shed_bgp, 0u);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].reason, ShedReason::kBlockDeadline);
}

TEST(ShedderTest, StatsSumMatchesSinkRecordCount) {
  SinkLog sink;
  Shedder shedder(sink.config(ShedMode::kDropNewest));
  SpscRing<StreamEvent> ring(2);
  std::uint64_t seq = 0;
  for (int i = 0; i < 16; ++i) {
    shedder.offer(ring, i % 2 ? legit_flow(i, seq) : attack_flow(i, seq),
                  nullptr);
    ++seq;
  }
  const ShedStats& s = shedder.stats();
  EXPECT_EQ(s.pushed + s.shed_total, 16u);
  EXPECT_EQ(s.shed_total,
            s.shed_bgp + s.shed_flow_legit + s.shed_flow_attack);
  EXPECT_EQ(sink.records.size(), s.shed_total)
      << "every shed decision must reach the ground-truth log";
}

TEST(ShedRecordTest, StableLineRendering) {
  const ShedRecord rec{EventKind::kFlow, 123456, 42, ShedReason::kLegitFirst};
  EXPECT_EQ(rec.to_line(), "flow 123456 seq 42 legit-first");
  const ShedRecord bgp{EventKind::kBgpUpdate, 7, 0,
                       ShedReason::kBlockDeadline};
  EXPECT_EQ(bgp.to_line(), "bgp 7 seq 0 block-deadline");
}

TEST(ShedStatsTest, AccumulatesAcrossFeeds) {
  ShedStats a{10, 3, 1, 1, 1};
  const ShedStats b{5, 2, 0, 2, 0};
  a += b;
  EXPECT_EQ(a.pushed, 15u);
  EXPECT_EQ(a.shed_total, 5u);
  EXPECT_EQ(a.shed_bgp, 1u);
  EXPECT_EQ(a.shed_flow_legit, 3u);
  EXPECT_EQ(a.shed_flow_attack, 1u);
}

}  // namespace
}  // namespace bw::stream
