# Empty compiler generated dependencies file for bw_property_test.
# This may be replaced when dependencies are built.
