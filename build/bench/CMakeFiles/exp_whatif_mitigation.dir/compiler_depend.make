# Empty compiler generated dependencies file for exp_whatif_mitigation.
# This may be replaced when dependencies are built.
