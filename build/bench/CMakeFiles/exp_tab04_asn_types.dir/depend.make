# Empty dependencies file for exp_tab04_asn_types.
# This may be replaced when dependencies are built.
