#include "util/container.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

namespace bw::util::container {

namespace {

template <typename T>
void append_raw(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_raw(const char*& p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  p += sizeof(v);
  return v;
}

std::string header_bytes() {
  std::string h;
  append_raw(h, kMagic);
  append_raw(h, kVersion);
  append_raw(h, std::uint32_t{0});  // flags
  return h;
}

std::string toc_entry_bytes(const Section& s) {
  std::string e;
  append_raw(e, s.id);
  append_raw(e, std::uint32_t{0});  // reserved
  append_raw(e, s.offset);
  append_raw(e, s.length);
  append_raw(e, s.crc);
  return e;
}

}  // namespace

std::string section_name(std::uint32_t id) {
  std::string name;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((id >> (8 * i)) & 0xFFu);
    name += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

const Section* Toc::find(std::uint32_t id) const {
  for (const auto& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Writer::Writer(std::ostream& os) : os_(os) {
  const std::string h = header_bytes();
  os_.write(h.data(), static_cast<std::streamsize>(h.size()));
  meta_crc_.update(h.data(), h.size());
  written_ = h.size();
}

void Writer::begin_section(std::uint32_t id) {
  Section s;
  s.id = id;
  s.offset = written_;
  sections_.push_back(s);
  section_crc_.reset();
  in_section_ = true;
}

void Writer::write(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  section_crc_.update(data, n);
  written_ += n;
}

void Writer::end_section() {
  Section& s = sections_.back();
  s.length = written_ - s.offset;
  s.crc = section_crc_.value();
  in_section_ = false;
}

Status Writer::finish() {
  if (in_section_ || finished_) {
    return internal_error("container::Writer: finish() out of sequence");
  }
  finished_ = true;
  std::string toc;
  for (const auto& s : sections_) toc += toc_entry_bytes(s);
  meta_crc_.update(toc.data(), toc.size());

  std::string footer;
  append_raw(footer, static_cast<std::uint32_t>(sections_.size()));
  append_raw(footer, meta_crc_.value());
  append_raw(footer, written_);  // toc_offset
  append_raw(footer,
             written_ + static_cast<std::uint64_t>(toc.size()) + kFooterBytes);
  append_raw(footer, kFooterMagic);

  os_.write(toc.data(), static_cast<std::streamsize>(toc.size()));
  os_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  if (!os_) return data_loss("container::Writer: stream write failed");
  return ok_status();
}

Result<Toc> read_toc(std::istream& is, std::uint64_t file_size) {
  if (file_size < kHeaderBytes + kFooterBytes) {
    return data_loss("container: file too small for header and footer (" +
                     std::to_string(file_size) + " bytes)");
  }

  // Header first: distinguishes "not a container at all" (and legacy
  // pre-checksum files) from a truncated or damaged container.
  char header[kHeaderBytes];
  is.seekg(0, std::ios::beg);
  is.read(header, static_cast<std::streamsize>(kHeaderBytes));
  if (!is) return data_loss("container: cannot read header");
  const char* hp = header;
  const std::uint64_t magic = read_raw<std::uint64_t>(hp);
  if (magic != kMagic) {
    if (magic == 0x6277647330303031ULL) {  // "bwds0001", the v1 framing
      return data_loss(
          "container: legacy v1 file (no checksums); regenerate it");
    }
    return data_loss("container: bad magic");
  }
  Toc toc;
  toc.version = read_raw<std::uint32_t>(hp);
  if (toc.version != kVersion) {
    return data_loss("container: unsupported version " +
                     std::to_string(toc.version) + " (expected " +
                     std::to_string(kVersion) + ")");
  }

  char footer[kFooterBytes];
  is.seekg(static_cast<std::streamoff>(file_size - kFooterBytes),
           std::ios::beg);
  is.read(footer, static_cast<std::streamsize>(kFooterBytes));
  if (!is) return data_loss("container: cannot read footer");
  const char* fp = footer;
  const std::uint32_t section_count = read_raw<std::uint32_t>(fp);
  const std::uint32_t meta_crc = read_raw<std::uint32_t>(fp);
  const std::uint64_t toc_offset = read_raw<std::uint64_t>(fp);
  const std::uint64_t recorded_size = read_raw<std::uint64_t>(fp);
  const std::uint32_t footer_magic = read_raw<std::uint32_t>(fp);
  if (footer_magic != kFooterMagic) {
    return data_loss("container: bad footer magic (truncated file?)");
  }
  if (recorded_size != file_size) {
    return data_loss("container: file is " + std::to_string(file_size) +
                     " bytes but the footer committed " +
                     std::to_string(recorded_size));
  }
  toc.file_size = file_size;
  const std::uint64_t toc_bytes =
      static_cast<std::uint64_t>(section_count) * kTocEntryBytes;
  if (toc_offset < kHeaderBytes ||
      toc_offset + toc_bytes + kFooterBytes != file_size) {
    return data_loss("container: TOC bounds are inconsistent");
  }

  std::vector<char> toc_raw(toc_bytes);
  is.seekg(static_cast<std::streamoff>(toc_offset), std::ios::beg);
  is.read(toc_raw.data(), static_cast<std::streamsize>(toc_bytes));
  if (!is) return data_loss("container: cannot read TOC");

  Crc32c crc;
  crc.update(header, kHeaderBytes);
  crc.update(toc_raw.data(), toc_raw.size());
  if (crc.value() != meta_crc) {
    return data_loss("container: header/TOC checksum mismatch");
  }

  const char* tp = toc_raw.data();
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section s;
    s.id = read_raw<std::uint32_t>(tp);
    (void)read_raw<std::uint32_t>(tp);  // reserved
    s.offset = read_raw<std::uint64_t>(tp);
    s.length = read_raw<std::uint64_t>(tp);
    s.crc = read_raw<std::uint32_t>(tp);
    if (s.offset < kHeaderBytes || s.offset > toc_offset ||
        s.length > toc_offset - s.offset) {
      return data_loss("container: section " + section_name(s.id) +
                       " lies outside the payload region");
    }
    toc.sections.push_back(s);
  }
  return toc;
}

Status verify_section(std::istream& is, const Section& section) {
  is.clear();
  is.seekg(static_cast<std::streamoff>(section.offset), std::ios::beg);
  Crc32c crc;
  char buf[1 << 16];
  std::uint64_t left = section.length;
  while (left > 0) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, sizeof(buf)));
    is.read(buf, static_cast<std::streamsize>(n));
    if (!is) {
      return data_loss("container: section " + section_name(section.id) +
                       " truncated");
    }
    crc.update(buf, n);
    left -= n;
  }
  if (crc.value() != section.crc) {
    return data_loss("container: section " + section_name(section.id) +
                     " checksum mismatch");
  }
  is.seekg(static_cast<std::streamoff>(section.offset), std::ios::beg);
  return ok_status();
}

}  // namespace bw::util::container
