# Empty dependencies file for bw_net_test.
# This may be replaced when dependencies are built.
