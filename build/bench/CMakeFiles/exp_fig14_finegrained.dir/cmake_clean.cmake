file(REMOVE_RECURSE
  "CMakeFiles/exp_fig14_finegrained.dir/exp_fig14_finegrained.cpp.o"
  "CMakeFiles/exp_fig14_finegrained.dir/exp_fig14_finegrained.cpp.o.d"
  "exp_fig14_finegrained"
  "exp_fig14_finegrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig14_finegrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
