#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bw::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = Rng(7).fork(1);
  EXPECT_EQ(c1.uniform_int(0, 1 << 30), c1_again.uniform_int(0, 1 << 30));
  // Sibling forks draw different streams.
  Rng c1b = Rng(7).fork(1);
  Rng c2b = Rng(7).fork(2);
  EXPECT_NE(c1b.uniform_int(0, 1 << 30), c2b.uniform_int(0, 1 << 30));
  (void)c2;
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(6);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(-5, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
}

TEST(RngTest, BinomialMean) {
  Rng rng(7);
  double sum = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.binomial(10000, 0.0001));
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.1);
}

TEST(RngTest, ParetoIsAtLeastScale) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  const std::vector<double> w{0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexDegenerate) {
  Rng rng(10);
  EXPECT_EQ(rng.weighted_index({}), 0u);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(zeros), 0u);
}

TEST(RngTest, SampleIndicesDistinctAndClamped) {
  Rng rng(11);
  const auto s = rng.sample_indices(10, 4);
  EXPECT_EQ(s.size(), 4u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (const auto i : s) EXPECT_LT(i, 10u);

  const auto all = rng.sample_indices(3, 100);
  EXPECT_EQ(all.size(), 3u);
}

TEST(RngTest, IndexWithinBounds) {
  Rng rng(12);
  EXPECT_EQ(rng.index(1), 0u);
  EXPECT_EQ(rng.index(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.index(7), 7u);
}

}  // namespace
}  // namespace bw::util
