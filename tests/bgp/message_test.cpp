#include "bgp/message.hpp"

#include <gtest/gtest.h>

namespace bw::bgp {
namespace {

TEST(MessageTest, BlackholeDetection) {
  Update u;
  EXPECT_FALSE(u.is_blackhole());
  u.communities.push_back(kNoExport);
  EXPECT_FALSE(u.is_blackhole());
  u.communities.push_back(kBlackhole);
  EXPECT_TRUE(u.is_blackhole());
}

TEST(MessageTest, ToStringMentionsEssentials) {
  Update u;
  u.time = util::kHour;
  u.type = UpdateType::kAnnounce;
  u.sender_asn = 64500;
  u.origin_asn = 64501;
  u.prefix = *net::Prefix::parse("10.0.0.1/32");
  u.communities.push_back(kBlackhole);
  const std::string s = u.to_string();
  EXPECT_NE(s.find("ANNOUNCE"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1/32"), std::string::npos);
  EXPECT_NE(s.find("64500"), std::string::npos);
  EXPECT_NE(s.find("BLACKHOLE"), std::string::npos);
}

TEST(MessageTest, SortByTime) {
  UpdateLog log(3);
  log[0].time = 300;
  log[1].time = 100;
  log[2].time = 200;
  sort_updates(log);
  EXPECT_EQ(log[0].time, 100);
  EXPECT_EQ(log[1].time, 200);
  EXPECT_EQ(log[2].time, 300);
}

TEST(MessageTest, WithdrawBeforeAnnounceAtSameInstant) {
  UpdateLog log(2);
  log[0].time = 100;
  log[0].type = UpdateType::kAnnounce;
  log[1].time = 100;
  log[1].type = UpdateType::kWithdraw;
  sort_updates(log);
  EXPECT_EQ(log[0].type, UpdateType::kWithdraw);
  EXPECT_EQ(log[1].type, UpdateType::kAnnounce);
}

TEST(MessageTest, SortIsStableForEqualKeys) {
  UpdateLog log(2);
  log[0].time = 100;
  log[0].sender_asn = 1;
  log[1].time = 100;
  log[1].sender_asn = 2;
  sort_updates(log);
  EXPECT_EQ(log[0].sender_asn, 1u);
  EXPECT_EQ(log[1].sender_asn, 2u);
}

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(to_string(UpdateType::kAnnounce), "ANNOUNCE");
  EXPECT_EQ(to_string(UpdateType::kWithdraw), "WITHDRAW");
}

}  // namespace
}  // namespace bw::bgp
