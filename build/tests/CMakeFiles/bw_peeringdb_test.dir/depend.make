# Empty dependencies file for bw_peeringdb_test.
# This may be replaced when dependencies are built.
