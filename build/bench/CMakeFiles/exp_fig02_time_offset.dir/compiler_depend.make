# Empty compiler generated dependencies file for exp_fig02_time_offset.
# This may be replaced when dependencies are built.
