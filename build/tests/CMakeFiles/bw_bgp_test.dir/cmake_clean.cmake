file(REMOVE_RECURSE
  "CMakeFiles/bw_bgp_test.dir/bgp/blackhole_index_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/blackhole_index_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/community_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/community_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/message_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/message_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/policy_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/policy_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/rib_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/rib_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/route_server_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/route_server_test.cpp.o.d"
  "CMakeFiles/bw_bgp_test.dir/bgp/wire_test.cpp.o"
  "CMakeFiles/bw_bgp_test.dir/bgp/wire_test.cpp.o.d"
  "bw_bgp_test"
  "bw_bgp_test.pdb"
  "bw_bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
