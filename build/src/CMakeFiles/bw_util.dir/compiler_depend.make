# Empty compiler generated dependencies file for bw_util.
# This may be replaced when dependencies are built.
