// Final RTBH event use-case classification (Section 7.3, Fig. 19; built on
// the expected characteristics of Table 1).
//
// Classes assigned per merged event, in priority order:
//   squatting-candidate   prefix <= /24 and RTBH active for months
//   infrastructure        preceding traffic anomaly within 10 minutes
//   zombie-candidate      long-lasting /32 with fewer than 10 sampled
//                         packets — likely once triggered, then forgotten
//                         (the paper's 13%-of-total suspects; some stay
//                         active through the complete measurement period)
//   other                 everything else (the paper's sobering 60%)
#pragma once

#include <string_view>
#include <vector>

#include "core/event_merge.hpp"
#include "core/pre_rtbh.hpp"

namespace bw::core {

enum class EventClass : std::uint8_t {
  kInfrastructureProtection,
  kSquattingCandidate,
  kZombieCandidate,
  kOther,
};

[[nodiscard]] std::string_view to_string(EventClass c);

struct ClassifiedEvent {
  std::size_t event_index{0};
  EventClass cls{EventClass::kOther};
  util::DurationMs duration{0};
  std::uint64_t sampled_packets{0};
};

struct ClassificationReport {
  std::vector<ClassifiedEvent> events;
  std::size_t infrastructure{0};
  std::size_t squatting{0};
  std::size_t squatting_prefixes{0};
  std::size_t squatting_origin_as{0};
  std::size_t zombies{0};
  /// Of the zombie candidates: those still active at the period end.
  std::size_t zombies_until_period_end{0};
  std::size_t other{0};
  /// Of the "other" /32 events: short-lived ones with < 10 sampled packets.
  std::size_t other_len32_low_traffic{0};

  [[nodiscard]] std::size_t total() const { return events.size(); }
};

struct ClassifyConfig {
  util::DurationMs squatting_min_duration{30 * util::kDay};
  /// Minimum duration for a low-traffic /32 to count as a zombie suspect.
  util::DurationMs zombie_min_duration{2 * util::kDay};
  /// Slack when testing whether a zombie reaches the period end.
  util::DurationMs zombie_end_slack{util::kDay};
  std::uint64_t low_traffic_packets{10};
};

[[nodiscard]] ClassificationReport classify_events(
    const Dataset& dataset, const std::vector<RtbhEvent>& events,
    const PreRtbhReport& pre, const ClassifyConfig& config = {},
    KernelEngine engine = KernelEngine::kColumnar);

}  // namespace bw::core
