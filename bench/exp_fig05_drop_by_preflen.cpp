// Figure 5: observed shares of dropped traffic by RTBH prefix length, with
// the per-length traffic share (the opacity axis of the paper's figure).
//
// Paper: 99.9% of RTBH traffic goes to /32 prefixes but only ~50% of the
// packets (44% of bytes) are dropped; /22-/24 blackholes are accepted as
// best paths in 93-99% of the cases; /25-/31 behave like /32.
#include "common.hpp"

int main() {
  using namespace bw;
  auto exp = bench::load_experiment("fig05");
  const auto& drop = exp.report.drop;

  bench::print_header("Fig. 5", "dropped-traffic share by RTBH prefix length");
  util::TextTable table({"prefix len", "traffic share", "dropped (packets)",
                         "dropped (bytes)", "packets"});
  auto csv = bench::open_csv("fig05_drop_by_preflen",
                             {"length", "traffic_share", "drop_rate_packets",
                              "drop_rate_bytes", "packets_total"});
  for (const auto& s : drop.by_length) {
    table.add_row({"/" + std::to_string(s.length),
                   util::fmt_percent(drop.traffic_share(s.length), 3),
                   util::fmt_percent(s.packet_drop_rate(), 1),
                   util::fmt_percent(s.byte_drop_rate(), 1),
                   util::fmt_count(static_cast<std::int64_t>(s.packets_total))});
    csv->write_row({std::to_string(s.length),
                    util::fmt_double(drop.traffic_share(s.length), 6),
                    util::fmt_double(s.packet_drop_rate(), 4),
                    util::fmt_double(s.byte_drop_rate(), 4),
                    std::to_string(s.packets_total)});
  }
  std::cout << table;

  double rate32_p = 0.0;
  double rate32_b = 0.0;
  double rate24 = 0.0;
  for (const auto& s : drop.by_length) {
    if (s.length == 32) {
      rate32_p = s.packet_drop_rate();
      rate32_b = s.byte_drop_rate();
    }
    if (s.length == 24) rate24 = s.packet_drop_rate();
  }
  bench::print_paper_row("traffic share of /32 RTBHs", "99.9%",
                         util::fmt_percent(drop.traffic_share(32), 2));
  bench::print_paper_row("packets dropped for /32", "50%",
                         util::fmt_percent(rate32_p, 1));
  bench::print_paper_row("bytes dropped for /32", "44%",
                         util::fmt_percent(rate32_b, 1));
  bench::print_paper_row("packets dropped for /24", "93-99%",
                         util::fmt_percent(rate24, 1));
  return 0;
}
