// The IXP's RTBH service.
//
// Members trigger blackholing by announcing a prefix with the BLACKHOLE
// community towards the route server; the service maps the special next hop
// to the non-forwarding blackhole MAC (Section 3.1). This class builds
// well-formed RTBH updates and additionally models *other RTBH sources*
// (bilateral/private blackholing, responsible for ~5% of dropped bytes in
// the paper) whose drops are visible on the data plane but have no route
// server announcement.
#pragma once

#include <vector>

#include "bgp/message.hpp"
#include "bgp/rib.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace bw::ixp {

class BlackholeService {
 public:
  explicit BlackholeService(std::uint16_t rs_asn = 64600,
                            net::Ipv4 next_hop = net::Ipv4(10, 66, 6, 6))
      : rs_asn_(rs_asn), next_hop_(next_hop) {}

  [[nodiscard]] net::Ipv4 blackhole_next_hop() const noexcept {
    return next_hop_;
  }
  [[nodiscard]] net::Mac blackhole_mac() const noexcept {
    return net::Mac::blackhole();
  }
  [[nodiscard]] std::uint16_t rs_asn() const noexcept { return rs_asn_; }

  /// Build an RTBH announcement. `extra_communities` may carry targeted-
  /// announcement actions (Section 4.1); the BLACKHOLE and NO_EXPORT
  /// communities are always attached.
  [[nodiscard]] bgp::Update make_announce(
      util::TimeMs time, bgp::Asn sender, bgp::Asn origin,
      const net::Prefix& prefix,
      std::vector<bgp::Community> extra_communities = {}) const;

  /// Build the matching withdrawal (carries the same community set so the
  /// route server can tear the route down at exactly the peers that had it).
  [[nodiscard]] bgp::Update make_withdraw(
      util::TimeMs time, bgp::Asn sender, bgp::Asn origin,
      const net::Prefix& prefix,
      std::vector<bgp::Community> extra_communities = {}) const;

  /// Register a private (bilateral) RTBH interval: traffic to `prefix` is
  /// dropped during `range` with no route-server involvement.
  void add_private_blackhole(const net::Prefix& prefix, util::TimeRange range);

  /// True when `addr` at time `t` falls into a private blackhole.
  [[nodiscard]] bool privately_dropped(net::Ipv4 addr, util::TimeMs t) const {
    return private_.active_at(addr, t);
  }

  [[nodiscard]] std::size_t private_blackhole_count() const noexcept {
    return private_.prefix_count();
  }

 private:
  std::uint16_t rs_asn_;
  net::Ipv4 next_hop_;
  bgp::BlackholeHistory private_;
};

}  // namespace bw::ixp
