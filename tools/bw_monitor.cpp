// bw-monitor: replay a corpus chronologically through the online RTBH
// monitor and print every alert — what an operator tap on the route server
// + IPFIX feed would produce in real time.
//
//   bw-monitor CORPUS [--kinds attack,zombie,lowdrop] [--quiet]
//              [--strict | --skip-bad-rows | --repair]
//              [--replay [--speed N] [--lockstep]]
//              [--ring-capacity N] [--allowance MS] [--shed-mode MODE]
//              [--max-reorder N] [--inject-stream-fault SPEC]
//              [--alerts-out FILE] [--shed-log FILE]
//              [--metrics-out FILE] [--trace-out FILE]
//
// CORPUS is a .bwds file or a CSV corpus directory (same strictness
// contract as bw-analyze). Without --replay the corpus is fed directly
// (batch merge); with --replay it is pushed through the full streaming
// ingest path — per-feed SPSC rings, shedding policy, watermark merge
// (docs/streaming.md). A no-shed streaming run produces the byte-identical
// alert sequence; under overload it degrades loudly and still exits 0.
//
// Exit codes: 0 ok, 2 usage, 3 data error, 4 internal (see tools/cli.hpp).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>

#include "cli.hpp"
#include "core/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stream/replay.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: bw-monitor CORPUS [--kinds LIST] [--quiet]\n"
         "                 [--strict | --skip-bad-rows | --repair]\n"
         "                 [--replay [--speed N] [--lockstep]]\n"
         "                 [--ring-capacity N] [--allowance MS]\n"
         "                 [--shed-mode block|drop-newest|priority]\n"
         "                 [--max-reorder N] [--inject-stream-fault SPEC]\n"
         "                 [--alerts-out FILE] [--shed-log FILE]\n"
         "                 [--metrics-out FILE] [--trace-out FILE]\n"
         "  CORPUS is a .bwds file or a CSV corpus directory.\n"
         "  LIST: comma-separated of start,end,attack,lowdrop,zombie\n"
         "  --quiet: summary only\n"
         "  --replay: stream through rings + shedding + watermark merge\n"
         "  --speed N: corpus-time/wall-clock ratio (threaded replay; 0 =\n"
         "             as fast as possible)\n"
         "  --lockstep: deterministic single-thread replay interleave\n"
         "  --inject-stream-fault SPEC: slow:TICK:DRAIN | delay:US |\n"
         "             burst:N[:PAUSE_US] (comma-separated; forces overload)\n"
         "  --alerts-out FILE: every alert, one stable line each\n"
         "  --shed-log FILE: ground-truth shed log, one line per decision\n"
      << bw::tools::kStrictnessUsage << bw::tools::kObsUsage;
}

std::optional<bw::core::AlertKind> kind_from(const std::string& name) {
  using bw::core::AlertKind;
  if (name == "start") return AlertKind::kEventStarted;
  if (name == "end") return AlertKind::kEventEnded;
  if (name == "attack") return AlertKind::kAttackCorrelated;
  if (name == "lowdrop") return AlertKind::kLowDropRate;
  if (name == "zombie") return AlertKind::kZombieSuspect;
  return std::nullopt;
}

/// The stable one-line alert rendering: what --alerts-out files contain and
/// what the console prints. The replay-convergence check diffs these bytes.
std::string alert_line(const bw::core::Alert& alert) {
  std::ostringstream os;
  os << "[" << bw::util::format_time(alert.time) << "] "
     << bw::core::to_string(alert.kind) << ": " << alert.message;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bw;
  std::string path;
  std::string alerts_out;
  std::string shed_log_out;
  bool quiet = false;
  bool replay = false;
  tools::StrictnessOptions strictness;
  tools::ObsOptions obs_options;
  stream::ReplayOptions replay_options;
  std::unordered_set<core::AlertKind> kinds{core::AlertKind::kAttackCorrelated,
                                            core::AlertKind::kLowDropRate,
                                            core::AlertKind::kZombieSuspect};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_options.parse(argc, argv, i)) {
      continue;
    } else if (strictness.parse(arg)) {
      continue;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--lockstep") {
      replay_options.lockstep = true;
    } else if (arg == "--speed" && i + 1 < argc) {
      replay_options.speed = std::atof(argv[++i]);
      if (replay_options.speed < 0) {
        std::cerr << "bw-monitor: --speed must be >= 0\n";
        return tools::kExitUsage;
      }
    } else if (arg == "--ring-capacity" && i + 1 < argc) {
      replay_options.ring_capacity =
          static_cast<std::size_t>(std::atoll(argv[++i]));
      if (replay_options.ring_capacity == 0) {
        std::cerr << "bw-monitor: --ring-capacity must be > 0\n";
        return tools::kExitUsage;
      }
    } else if (arg == "--allowance" && i + 1 < argc) {
      replay_options.allowance = std::atoll(argv[++i]);
      if (replay_options.allowance < 0) {
        std::cerr << "bw-monitor: --allowance must be >= 0 ms\n";
        return tools::kExitUsage;
      }
    } else if (arg == "--max-reorder" && i + 1 < argc) {
      replay_options.max_reorder =
          static_cast<std::size_t>(std::atoll(argv[++i]));
      if (replay_options.max_reorder == 0) {
        std::cerr << "bw-monitor: --max-reorder must be > 0\n";
        return tools::kExitUsage;
      }
    } else if (arg == "--shed-mode" && i + 1 < argc) {
      auto mode = stream::parse_shed_mode(argv[++i]);
      if (!mode.ok()) {
        std::cerr << "bw-monitor: " << mode.status().to_string() << "\n";
        return tools::kExitUsage;
      }
      replay_options.shed_mode = mode.value();
    } else if (arg == "--inject-stream-fault" && i + 1 < argc) {
      auto plan = testing::parse_stream_fault_spec(argv[++i]);
      if (!plan.ok()) {
        std::cerr << "bw-monitor: " << plan.status().to_string() << "\n";
        return tools::kExitUsage;
      }
      replay_options.fault = plan.value();
    } else if (arg == "--alerts-out" && i + 1 < argc) {
      alerts_out = argv[++i];
    } else if (arg == "--shed-log" && i + 1 < argc) {
      shed_log_out = argv[++i];
    } else if (arg == "--kinds" && i + 1 < argc) {
      kinds.clear();
      std::istringstream list(argv[++i]);
      std::string name;
      while (std::getline(list, name, ',')) {
        const auto kind = kind_from(name);
        if (!kind) {
          std::cerr << "bw-monitor: unknown alert kind: " << name << "\n";
          usage();
          return tools::kExitUsage;
        }
        kinds.insert(*kind);
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return tools::kExitOk;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "bw-monitor: unknown argument: " << arg << "\n";
      usage();
      return tools::kExitUsage;
    }
  }
  if (path.empty()) {
    usage();
    return tools::kExitUsage;
  }
  obs_options.arm();

  try {
    std::cout << "Loading " << path << "...\n";
    auto loaded = tools::load_corpus(path, strictness.load_options);
    if (!loaded.ok()) {
      std::cerr << "bw-monitor: " << loaded.status().to_string() << "\n";
      return tools::kExitData;
    }
    const core::Dataset& dataset = loaded.value();

    // Alert and shed logs are accumulated in memory and committed
    // atomically at the end — a half-written log is worse than none.
    std::string alert_log;
    std::string shed_log;
    std::map<core::AlertKind, std::size_t> counts;
    core::RtbhMonitor monitor({}, [&](const core::Alert& alert) {
      ++counts[alert.kind];
      const std::string line = alert_line(alert);
      if (!alerts_out.empty()) {
        alert_log += line;
        alert_log += '\n';
      }
      if (!quiet && kinds.contains(alert.kind)) {
        std::cout << line << "\n";
      }
    });

    stream::ReplayStats stats;
    if (replay) {
      if (!shed_log_out.empty()) {
        // Threaded replay sheds from both producer threads; the log is the
        // one shared sink, so it takes a lock (shedding is the rare path).
        static std::mutex shed_mutex;
        replay_options.shed_sink = [&](const stream::ShedRecord& rec) {
          const std::lock_guard<std::mutex> lock(shed_mutex);
          shed_log += rec.to_line();
          shed_log += '\n';
        };
      }
      if (replay_options.fault.any() && !quiet) {
        std::cout << "stream fault armed: " << replay_options.fault.summary()
                  << "\n";
      }
      stats = stream::replay_streaming(dataset, monitor, replay_options);
    } else {
      stream::replay_batch(dataset, monitor);
    }

    util::TextTable table({"signal", "count"});
    for (const auto& [kind, n] : counts) {
      table.add_row({std::string(core::to_string(kind)),
                     util::fmt_count(static_cast<std::int64_t>(n))});
    }
    std::cout << "\n" << table << "Events observed: " << monitor.total_events()
              << "\n";
    if (replay) {
      std::cout << "Streaming: " << stats.produced() << " produced, "
                << stats.delivered() << " delivered, " << stats.shed.shed_total
                << " shed, " << stats.mux.late_dropped << " late-dropped ("
                << to_string(replay_options.shed_mode) << " mode, "
                << (replay_options.lockstep ? "lockstep" : "threaded")
                << ")\n";
    }

    if (!alerts_out.empty()) {
      const util::Status st = util::atomic_write_file(alerts_out, alert_log);
      if (!st.ok()) {
        std::cerr << "bw-monitor: " << st.to_string() << "\n";
        return tools::kExitData;
      }
    }
    if (!shed_log_out.empty()) {
      const util::Status st = util::atomic_write_file(shed_log_out, shed_log);
      if (!st.ok()) {
        std::cerr << "bw-monitor: " << st.to_string() << "\n";
        return tools::kExitData;
      }
    }

    obs::Manifest manifest;
    manifest.tool = "bw-monitor";
    manifest.corpus = path;
    manifest.threads = util::ThreadPool::configured_concurrency();
    if (replay) {
      manifest.stream_mode = std::string(to_string(replay_options.shed_mode));
    }
    manifest.populate_from_metrics(obs::Registry::global().snapshot());
    if (!obs_options.emit("bw-monitor", manifest)) return tools::kExitData;

    return tools::kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "bw-monitor: internal error: " << e.what() << "\n";
    return tools::kExitInternal;
  }
}
